"""Sharded-vs-single equivalence: partitioning the DS/RS tiers must be
invisible to applications.

The substrate-independent observable (same as the live-parity battery)
is the per-subscriber sorted plaintext delivery set.  Every topology —
DS-only sharding, RS-only sharding with replication, both, and a wider
4x2 layout — must deliver exactly what the classic single-node
deployment delivers, in broadcast and delegated-matching modes.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.core.system import P3SSystem
from repro.live.scenario import (
    PublicationSpec,
    Scenario,
    SubscriberSpec,
    run_on_simulator,
)
from repro.pbe.schema import Interest

from ..live.conftest import small_config

TOPOLOGIES = [
    pytest.param(2, 1, 1, id="2ds"),
    pytest.param(1, 2, 2, id="2rs-repl2"),
    pytest.param(2, 2, 2, id="2ds-2rs-repl2"),
    pytest.param(4, 2, 2, id="4ds-2rs-repl2"),
]


def _metadata(**overrides):
    base = {"topic": "a", "prio": "lo"}
    base.update(overrides)
    return tuple(sorted(base.items()))


# enough publications that several DS/RS shards own some of the GUIDs
SCENARIO = Scenario(
    subscribers=(
        SubscriberSpec("alice", frozenset({"org"}), (Interest({"topic": "a"}),)),
        SubscriberSpec(
            "bobby", frozenset({"org"}), (Interest({"topic": "b", "prio": "hi"}),)
        ),
        SubscriberSpec("carol", frozenset({"other"}), (Interest({"topic": "a"}),)),
    ),
    publications=tuple(
        PublicationSpec(_metadata(topic="a"), f"story-{i}".encode(), "org")
        for i in range(4)
    )
    + (
        PublicationSpec(_metadata(topic="b", prio="hi"), b"brief-hi", "org"),
        PublicationSpec(_metadata(topic="d"), b"unwanted", "org"),
    ),
)

EXPECTED_ALICE = tuple(sorted(f"story-{i}".encode() for i in range(4)))


@lru_cache(maxsize=None)
def single_node_baseline(delegated: bool):
    config = small_config(
        delegated_matching=delegated, match_workers=1 if delegated else 0
    )
    return run_on_simulator(SCENARIO, config)


class TestShardedEquivalence:
    @pytest.mark.parametrize("ds_shards,rs_shards,replication", TOPOLOGIES)
    def test_broadcast_matches_single_node(self, ds_shards, rs_shards, replication):
        config = small_config(
            ds_shards=ds_shards, rs_shards=rs_shards, rs_replication=replication
        )
        assert run_on_simulator(SCENARIO, config) == single_node_baseline(False)

    @pytest.mark.parametrize("ds_shards,rs_shards,replication", TOPOLOGIES)
    def test_delegated_matching_matches_single_node(
        self, ds_shards, rs_shards, replication
    ):
        config = small_config(
            ds_shards=ds_shards,
            rs_shards=rs_shards,
            rs_replication=replication,
            delegated_matching=True,
            match_workers=1,
        )
        assert run_on_simulator(SCENARIO, config) == single_node_baseline(True)

    def test_the_baseline_itself_is_nontrivial(self):
        baseline = single_node_baseline(False)
        assert baseline["alice"] == EXPECTED_ALICE
        assert baseline["bobby"] == (b"brief-hi",)
        assert baseline["carol"] == ()  # matched but CP-ABE denies


class TestShardedPlacement:
    def test_publications_route_by_guid_and_items_replicate(self):
        config = small_config(ds_shards=2, rs_shards=2, rs_replication=2)
        system = P3SSystem(config)
        try:
            alice = system.add_subscriber("alice", {"org"})
            system.subscribe(alice, Interest({"topic": "a"}))
            system.run()
            publisher = system.add_publisher("pub")
            records = [
                publisher.publish(
                    dict(_metadata(topic="a")), f"p{i}".encode(), policy="org"
                )
                for i in range(8)
            ]
            system.run()

            # every item sits on exactly its GUID's ring replicas
            for record in records:
                for name, rs in system.rs_shards.items():
                    expected = name in system.cluster.rs_replicas(record.guid)
                    assert rs.store.contains(record.guid) == expected

            # each publication was brokered by the shard owning its GUID
            from collections import Counter

            owner_counts = Counter(
                system.cluster.ds_owner(r.guid) for r in records
            )
            status = system.cluster_status()
            assert status["ds_publications"] == {
                name: owner_counts.get(name, 0) for name in system.ds_shards
            }
            assert sum(status["rs_items"].values()) == 2 * len(records)
            assert len(alice.stats.deliveries) == len(records)
        finally:
            system.close()

    def test_subscriptions_and_tokens_reach_every_ds_shard(self):
        config = small_config(ds_shards=3, delegated_matching=True, match_workers=1)
        system = P3SSystem(config)
        try:
            alice = system.add_subscriber("alice", {"org"})
            system.subscribe(alice, Interest({"topic": "a"}))
            system.run()
            for ds in system.ds_shards.values():
                assert ds.registered_subscriber_count == 1
                assert len(ds.registered_tokens) == 1
        finally:
            system.close()
