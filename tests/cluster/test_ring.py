"""Properties of the consistent-hash ring (repro.cluster.ring).

Three guarantees the routing layer leans on, each property-tested:

* **determinism** — placement is a pure function of (node set, vnodes,
  key), pinned to SHA-256 so separate OS processes agree (PYTHONHASHSEED
  never leaks in);
* **balance** — at the default 64 vnodes no node's share of the
  keyspace (analytic arcs *and* empirical key counts) strays beyond a
  small constant factor of the mean;
* **minimality** — adding one node to an *n*-node ring moves ~1/(n+1)
  of the keys and every move lands on the new node; nothing shuffles
  between survivors.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.rebalance import moved_fraction, plan_moves
from repro.cluster.ring import DEFAULT_VNODES, HashRing, hash_key

KEYS = [f"key{i}".encode() for i in range(2000)]

node_counts = st.integers(min_value=2, max_value=8)
node_names = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12),
    min_size=2,
    max_size=8,
    unique=True,
)


class TestDeterminism:
    def test_hash_key_is_pinned_sha256(self):
        # frozen constants: placement must agree across processes and
        # releases — a change here silently re-homes every stored item
        assert hash_key(b"guid-000") == 9465174545327893952
        assert hash_key("alpha") == 14899429819197119431
        assert hash_key("alpha") == hash_key(b"alpha")  # str/bytes agree

    def test_same_nodes_same_placement(self):
        one = HashRing(["rs0", "rs1", "rs2"])
        two = HashRing(["rs0", "rs1", "rs2"])
        assert [one.owner(k) for k in KEYS] == [two.owner(k) for k in KEYS]
        assert one == two

    def test_pinned_example_placement(self):
        ring = HashRing(["rs0", "rs1", "rs2"], vnodes=64)
        assert ring.owner(b"guid-000") == "rs0"
        assert ring.successors(b"guid-000", 2) == ("rs0", "rs1")

    def test_node_order_does_not_matter_for_placement(self):
        # the ring is defined by vnode points, not list order
        a = HashRing(["x", "y", "z"])
        b = HashRing(["z", "x", "y"])
        assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]

    def test_rejects_degenerate_rings(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)
        with pytest.raises(ValueError):
            HashRing(["a"]).successors(b"k", 0)


class TestSuccessors:
    def test_successors_are_distinct_and_start_with_owner(self):
        ring = HashRing([f"rs{i}" for i in range(5)])
        for key in KEYS[:200]:
            replicas = ring.successors(key, 3)
            assert len(replicas) == len(set(replicas)) == 3
            assert replicas[0] == ring.owner(key)

    def test_successors_cap_at_node_count(self):
        ring = HashRing(["a", "b"])
        assert set(ring.successors(b"k", 10)) == {"a", "b"}

    @given(n=node_counts)
    @settings(max_examples=20, deadline=None)
    def test_full_replication_covers_every_node(self, n):
        ring = HashRing([f"s{i}" for i in range(n)])
        assert set(ring.successors(b"any-key", n)) == set(ring.nodes)


class TestBalance:
    @given(names=node_names)
    @settings(max_examples=30, deadline=None)
    def test_keyspace_share_within_constant_factor(self, names):
        ring = HashRing(names, vnodes=DEFAULT_VNODES)
        shares = ring.keyspace_share()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        mean = 1.0 / len(names)
        assert max(shares.values()) <= 2.5 * mean
        assert min(shares.values()) >= mean / 4.0

    @given(n=node_counts)
    @settings(max_examples=10, deadline=None)
    def test_empirical_key_counts_within_constant_factor(self, n):
        ring = HashRing([f"s{i}" for i in range(n)], vnodes=DEFAULT_VNODES)
        counts = ring.counts(KEYS)
        mean = len(KEYS) / n
        assert sum(counts.values()) == len(KEYS)
        assert max(counts.values()) <= 2.5 * mean
        assert min(counts.values()) >= mean / 4.0

    def test_few_vnodes_balance_worse_than_default(self):
        # the reason DEFAULT_VNODES exists: 1 vnode per node is legal but lumpy
        lumpy = HashRing([f"s{i}" for i in range(4)], vnodes=1)
        smooth = HashRing([f"s{i}" for i in range(4)], vnodes=DEFAULT_VNODES)
        spread = lambda ring: max(ring.keyspace_share().values()) - min(
            ring.keyspace_share().values()
        )
        assert spread(smooth) < spread(lumpy)


class TestMinimalMovement:
    @given(n=node_counts)
    @settings(max_examples=10, deadline=None)
    def test_adding_one_node_moves_about_one_over_n_plus_one(self, n):
        old = HashRing([f"s{i}" for i in range(n)])
        new = old.with_node(f"s{n}")
        moved = moved_fraction(KEYS, old, new)
        # expected 1/(n+1); allow 2x for 64-vnode granularity
        assert moved <= 2.0 / (n + 1) + 0.03
        assert moved > 0.0  # the joiner does take real load

    @given(n=node_counts)
    @settings(max_examples=10, deadline=None)
    def test_every_move_lands_on_the_new_node(self, n):
        old = HashRing([f"s{i}" for i in range(n)])
        new = old.with_node("joiner")
        for _key, (before, after) in plan_moves(KEYS, old, new).items():
            assert after[0] == "joiner"  # primary only ever moves TO the joiner
            assert before[0] != "joiner"

    def test_removing_the_added_node_restores_placement(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.with_node("d").without_node("d") == ring
        assert moved_fraction(KEYS, ring, ring.with_node("d").without_node("d")) == 0.0

    def test_with_node_is_idempotent(self):
        ring = HashRing(["a", "b"])
        assert ring.with_node("a") is ring
        assert ring.without_node("zzz") is ring

    def test_replicated_moves_are_bounded_too(self):
        old = HashRing([f"s{i}" for i in range(4)])
        new = old.with_node("s4")
        moves = plan_moves(KEYS, old, new, replication=2)
        # a key's 2-replica set changes only when the joiner enters it
        for _key, (before, after) in moves.items():
            assert "s4" in after and "s4" not in before
        assert len(moves) / len(KEYS) <= 2 * (2.0 / 5) + 0.05
