"""Reliable publish (PUBACK + retransmit + broker dedup) — the upgrade
that closed docs/CHAOS.md's unretried publisher→DS gap.

Three behaviours under test: a dropped publish frame is retransmitted
until the broker acks; a duplicated frame is acked again but processed
once (the (src, seq) dedup window); and the sequencing header is
transport bookkeeping that never reaches delivery frames.
"""

from __future__ import annotations

from repro.chaos.inject import SimFaultInjector
from repro.chaos.schedule import Fault, FaultSchedule
from repro.core.system import P3SSystem
from repro.mq import messages as frames
from repro.mq.broker import Broker
from repro.mq.messages import JmsFrame
from repro.pbe.schema import Interest

from ..live.conftest import small_config


def _metadata(**overrides):
    base = {"topic": "a", "prio": "lo"}
    base.update(overrides)
    return base


def _ready_system(**config_overrides):
    """One matched subscriber, connected publisher, quiescent sim."""
    system = P3SSystem(small_config(reliable_publish=True, **config_overrides))
    alice = system.add_subscriber("alice", {"org"})
    system.subscribe(alice, Interest({"topic": "a"}))
    system.run()
    publisher = system.add_publisher("pub")
    system.run()  # CONNECT casts flow before any fault is armed
    return system, publisher, alice


def _arm(system, *faults):
    schedule = FaultSchedule(seed=0, profile="manual", faults=tuple(faults))
    injector = SimFaultInjector(schedule, system.sim, epoch=system.now)
    system.set_fault_injector(injector)
    return injector


class TestRetransmit:
    def test_dropped_publish_frames_are_retransmitted(self):
        system, publisher, alice = _ready_system()
        injector = _arm(
            system,
            # swallow the first two pub->ds frames (metadata + payload of
            # the first attempt); retransmission must close the gap
            Fault(kind="drop", start=0.0, end=10_000.0, src="pub", dst="ds", hits=(1, 2)),
        )
        record = publisher.publish(_metadata(), b"must-arrive", policy="org")
        system.run()

        assert sum(injector.applied.values()) == 2  # the drops really fired
        assert [d.payload for d in system.deliveries_for(record)] == [b"must-arrive"]
        assert publisher.connection.publish_retransmits >= 1
        system.close()

    def test_duplicated_publish_is_processed_exactly_once(self):
        system, publisher, alice = _ready_system()
        _arm(
            system,
            Fault(
                kind="duplicate",
                start=0.0,
                end=10_000.0,
                src="pub",
                dst="ds",
                delay_s=0.05,
                hits=(1, 2),
            ),
        )
        record = publisher.publish(_metadata(), b"once-only", policy="org")
        system.run()

        # the copies were acked again but deduped on (src, seq)
        assert system.ds.duplicate_publishes >= 1
        assert [d.payload for d in system.deliveries_for(record)] == [b"once-only"]
        assert alice.stats.duplicates_suppressed == 0  # dedup happened at the broker
        system.close()

    def test_sharded_brokers_ack_and_dedup_independently(self):
        system, publisher, alice = _ready_system(
            ds_shards=2, rs_shards=2, rs_replication=2
        )
        _arm(
            system,
            Fault(kind="drop", start=0.0, end=10_000.0, src="pub", dst="ds0", hits=(1,)),
            Fault(kind="drop", start=0.0, end=10_000.0, src="pub", dst="ds1", hits=(1,)),
        )
        records = [
            publisher.publish(_metadata(), f"r{i}".encode(), policy="org")
            for i in range(6)
        ]
        system.run()
        for record in records:
            assert len(system.deliveries_for(record)) == 1
        assert publisher.connection.publish_retransmits >= 1
        system.close()

    def test_unreliable_publish_still_loses_to_the_same_drop(self):
        # the control: without PUBACK the identical fault loses the
        # publication — proving the retry (not luck) closed the gap
        system = P3SSystem(small_config(reliable_publish=False))
        alice = system.add_subscriber("alice", {"org"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.run()
        publisher = system.add_publisher("pub")
        system.run()
        _arm(
            system,
            Fault(kind="drop", start=0.0, end=10_000.0, src="pub", dst="ds", hits=(1, 2)),
        )
        record = publisher.publish(_metadata(), b"lost", policy="org")
        system.run()
        assert system.deliveries_for(record) == []
        assert publisher.connection.publish_retransmits == 0
        system.close()


class TestSequenceHeaderHygiene:
    def test_delivery_headers_strip_the_publish_sequence(self):
        frame = JmsFrame(
            message_id=7,
            headers={frames.HDR_PUB_SEQ: 3, "p3s-kind": "metadata"},
        )
        assert Broker.delivery_headers(frame) == {"p3s-kind": "metadata"}
        # and the original frame keeps its header for client retries
        assert frame.headers[frames.HDR_PUB_SEQ] == 3

    def test_no_sequence_header_leaks_to_subscribers_on_the_wire(self):
        system, publisher, _alice = _ready_system()
        to_alice = []

        def recorder(src, dst, message):
            if dst == "alice":
                to_alice.append(message)
            return False  # observe only, drop nothing

        system.network.set_drop_filter(recorder)
        record = publisher.publish(_metadata(), b"clean", policy="org")
        system.run()
        assert len(system.deliveries_for(record)) == 1
        assert to_alice  # the recorder saw the delivery path
        for message in to_alice:
            payload_headers = getattr(message.payload, "headers", {}) or {}
            assert frames.HDR_PUB_SEQ not in payload_headers
        system.close()
