"""Membership + failure detection (repro.cluster.membership) — unit
semantics of the table, then the simulator integration: a crashed DS
shard is swept out of the routing ring within the failure timeout and
routes again once it heartbeats back.
"""

from __future__ import annotations

from repro.cluster.membership import MembershipTable
from repro.core.system import FAILURE_TIMEOUT_S, P3SSystem

from ..live.conftest import small_config


class TestMembershipTable:
    def test_join_heartbeat_sweep_cycle(self):
        table = MembershipTable(failure_timeout_s=3.0)
        table.join("ds0", "ds", now=0.0)
        table.join("rs0", "rs", now=0.0)
        assert table.is_alive("ds0") and table.is_alive("rs0")

        table.heartbeat("ds0", now=2.0)
        assert table.sweep(now=4.0) == ["rs0"]  # silent past the timeout
        assert table.alive() == ["ds0"]
        assert table.dead("rs") == ["rs0"]
        assert table.sweep(now=5.0) == []  # a death is reported once

    def test_heartbeat_revives_a_dead_member(self):
        table = MembershipTable(failure_timeout_s=1.0)
        table.join("rs1", "rs", now=0.0)
        table.sweep(now=5.0)
        assert not table.is_alive("rs1")
        table.heartbeat("rs1", now=6.0)
        assert table.is_alive("rs1")
        member = table.members["rs1"]
        assert member.failures == 1 and member.recoveries == 1

    def test_one_delayed_beat_does_not_flap(self):
        table = MembershipTable(failure_timeout_s=3.0)
        table.join("ds0", "ds", now=0.0)
        table.heartbeat("ds0", now=1.0)
        assert table.sweep(now=3.5) == []  # 2.5s silent < timeout

    def test_rejoin_is_a_heartbeat_not_a_reset(self):
        table = MembershipTable()
        member = table.join("ds0", "ds", now=0.0)
        again = table.join("ds0", "ds", now=2.0)
        assert again is member
        assert member.joined_at == 0.0 and member.last_heartbeat == 2.0

    def test_heartbeat_from_stranger_raises(self):
        import pytest

        with pytest.raises(KeyError):
            MembershipTable().heartbeat("ghost", now=0.0)

    def test_snapshot_shape(self):
        table = MembershipTable()
        table.join("rs0", "rs", now=0.0)
        table.join("ds0", "ds", now=0.0)
        snap = table.snapshot(now=1.5)
        assert [row["name"] for row in snap] == ["ds0", "rs0"]  # (role, name) order
        assert snap[0] == {
            "name": "ds0",
            "role": "ds",
            "alive": True,
            "age_s": 1.5,
            "silence_s": 1.5,
            "failures": 0,
            "recoveries": 0,
        }


class TestSimulatedFailureDetection:
    def test_crashed_ds_shard_leaves_and_rejoins_the_routing_ring(self):
        system = P3SSystem(small_config(ds_shards=2, rs_shards=2, rs_replication=2))
        try:
            assert sorted(system.cluster.ds_names) == ["ds0", "ds1"]

            system.ds_shards["ds1"].crash()
            system.run(until=system.now + FAILURE_TIMEOUT_S + 2.5)
            assert not system.membership.is_alive("ds1")
            assert system.cluster.ds_names == ["ds0"]  # new publications reroute

            system.ds_shards["ds1"].restart()
            system.run(until=system.now + 2.5)
            assert system.membership.is_alive("ds1")
            assert sorted(system.cluster.ds_names) == ["ds0", "ds1"]
            member = system.membership.members["ds1"]
            assert member.failures == 1 and member.recoveries == 1
        finally:
            system.close()

    def test_rs_ring_stays_static_through_an_rs_crash(self):
        # replication + retrieval failover cover a dead replica; the RS
        # ring must NOT churn (that would force a rebalance mid-failure)
        system = P3SSystem(small_config(ds_shards=2, rs_shards=2, rs_replication=2))
        try:
            system.rs_shards["rs1"].crash()
            system.run(until=system.now + FAILURE_TIMEOUT_S + 2.5)
            assert not system.membership.is_alive("rs1")  # detected...
            assert sorted(system.cluster.rs_names) == ["rs0", "rs1"]  # ...not evicted
        finally:
            system.close()

    def test_cluster_status_reports_membership_and_topology(self):
        system = P3SSystem(small_config(ds_shards=2, rs_shards=2, rs_replication=2))
        try:
            system.run(until=system.now + 2.0)
            status = system.cluster_status()
            assert status["sharded"] is True
            assert status["ds_shards"] == ["ds0", "ds1"]
            assert status["rs_shards"] == ["rs0", "rs1"]
            assert {row["name"] for row in status["membership"]} == {
                "ds0", "ds1", "rs0", "rs1",
            }
            assert all(row["alive"] for row in status["membership"])
            shares = status["cluster"]["rs_keyspace_share"]
            assert abs(sum(shares.values()) - 1.0) < 0.01
        finally:
            system.close()

    def test_single_node_system_has_no_cluster_but_still_reports(self):
        system = P3SSystem(small_config())
        try:
            status = system.cluster_status()
            assert status["sharded"] is False
            assert status["ds_shards"] == ["ds"] and status["rs_shards"] == ["rs"]
            assert "cluster" not in status
        finally:
            system.close()
