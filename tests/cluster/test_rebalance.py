"""Elastic topology (repro.cluster.rebalance): growing a live system by
one RS shard moves only the joiner's key range; growing by one DS shard
bootstraps its registration tables and immediately shares broker load —
all without disturbing applications.
"""

from __future__ import annotations

from collections import Counter

from repro.core.system import P3SSystem
from repro.pbe.schema import Interest

from ..live.conftest import small_config


def _metadata(**overrides):
    base = {"topic": "a", "prio": "lo"}
    base.update(overrides)
    return base


def _published_system(publications: int = 10):
    """Single-node system with one matched subscriber and N stored items."""
    system = P3SSystem(small_config())
    alice = system.add_subscriber("alice", {"org"})
    system.subscribe(alice, Interest({"topic": "a"}))
    system.run()
    publisher = system.add_publisher("pub")
    records = [
        publisher.publish(_metadata(), f"p{i}".encode(), policy="org")
        for i in range(publications)
    ]
    system.run()
    return system, publisher, alice, records


class TestAddRsShard:
    def test_handoff_moves_only_the_joiners_range(self):
        system, _pub, _alice, records = _published_system()
        try:
            before = {r.guid for r in records}
            assert system.rs.store.item_count == len(before)

            rs1, report = system.add_rs_shard()

            # replication stays 1: every item lives on exactly its new
            # ring owner, the copy count equals the eviction count, and
            # only guids the new ring re-homed actually moved (examined
            # counts item-locations, including freshly copied ones)
            assert report.examined >= len(before)
            assert report.copied == report.evicted
            moved = {
                guid
                for guid in before
                if system.cluster.rs_ring.owner(guid) == "rs1"
            }
            assert report.copied == len(moved)
            for guid in before:
                owner = system.cluster.rs_ring.owner(guid)
                assert system.rs_shards[owner].store.contains(guid)
                other = "rs" if owner == "rs1" else "rs1"
                assert not system.rs_shards[other].store.contains(guid)
            assert rs1.store.item_count == len(moved)
        finally:
            system.close()

    def test_deliveries_continue_after_the_rebalance(self):
        system, publisher, alice, records = _published_system(publications=4)
        try:
            system.add_rs_shard()
            more = [
                publisher.publish(_metadata(), f"post-{i}".encode(), policy="org")
                for i in range(6)
            ]
            system.run()
            assert len(alice.stats.deliveries) == len(records) + len(more)
            # post-join items land on whichever shard the new ring says
            for record in more:
                owner = system.cluster.rs_ring.owner(record.guid)
                assert system.rs_shards[owner].store.contains(record.guid)
        finally:
            system.close()

    def test_second_join_reuses_generated_names(self):
        system, _pub, _alice, _records = _published_system(publications=2)
        try:
            rs1, _ = system.add_rs_shard()
            rs2, _ = system.add_rs_shard()
            assert rs1.name == "rs1" and rs2.name == "rs2"
            assert sorted(system.cluster.rs_names) == ["rs", "rs1", "rs2"]
        finally:
            system.close()


class TestAddDsShard:
    def test_joiner_bootstraps_registrations_and_takes_load(self):
        config = small_config(delegated_matching=True, match_workers=1)
        system = P3SSystem(config)
        try:
            alice = system.add_subscriber("alice", {"org"})
            system.subscribe(alice, Interest({"topic": "a"}))
            system.run()

            ds1 = system.add_ds_shard()
            # the joiner copied the token + subscription tables, so it can
            # match without waiting for re-registration
            assert ds1.registered_tokens == system.ds.registered_tokens
            assert len(ds1.registered_tokens) == 1
            assert ds1.registered_subscriber_count == 1

            publisher = system.add_publisher("pub")
            records = [
                publisher.publish(_metadata(), f"p{i}".encode(), policy="org")
                for i in range(10)
            ]
            system.run()
            assert len(alice.stats.deliveries) == len(records)

            # publications split between old and new broker per the ring
            owner_counts = Counter(
                system.cluster.ds_owner(r.guid) for r in records
            )
            status = system.cluster_status()
            assert status["ds_publications"] == {
                name: owner_counts.get(name, 0) for name in system.ds_shards
            }
        finally:
            system.close()

    def test_growing_attaches_a_cluster_to_a_classic_deployment(self):
        system = P3SSystem(small_config())
        try:
            assert system.cluster is None
            system.add_ds_shard()
            assert system.cluster is not None
            # the directory is embedded by reference in every credential,
            # so existing clients see the topology without re-registering
            assert system.ara.directory.cluster is system.cluster
            assert sorted(system.cluster.ds_names) == ["ds", "ds1"]
        finally:
            system.close()
