"""Live sharded parity: the 2x2 replicated TCP deployment delivers
exactly what the simulator's sharded deployment delivers — and the
sharded simulator itself matches single-node, so live-sharded ==
single-node by transitivity (tests/cluster/test_equivalence.py).
"""

from __future__ import annotations

import pytest

from repro.live.deployment import LiveDeployment
from repro.live.scenario import (
    PublicationSpec,
    Scenario,
    SubscriberSpec,
    run_on_live,
    run_on_simulator,
)
from repro.pbe.schema import Interest

from ..live.conftest import run_async, small_config

pytestmark = pytest.mark.live


def _metadata(**overrides):
    base = {"topic": "a", "prio": "lo"}
    base.update(overrides)
    return tuple(sorted(base.items()))


SCENARIO = Scenario(
    subscribers=(
        SubscriberSpec("alice", frozenset({"org"}), (Interest({"topic": "a"}),)),
        SubscriberSpec(
            "bobby", frozenset({"org"}), (Interest({"topic": "b", "prio": "hi"}),)
        ),
        SubscriberSpec("carol", frozenset({"other"}), (Interest({"topic": "a"}),)),
    ),
    publications=tuple(
        PublicationSpec(_metadata(topic="a"), f"story-{i}".encode(), "org")
        for i in range(3)
    )
    + (PublicationSpec(_metadata(topic="b", prio="hi"), b"brief-hi", "org"),),
)

SHARDED = dict(ds_shards=2, rs_shards=2, rs_replication=2)


class TestLiveShardedParity:
    def test_broadcast_delivery_sets_identical(self):
        config = small_config(**SHARDED)
        simulated = run_on_simulator(SCENARIO, config)
        live = run_async(run_on_live(SCENARIO, config, expected=simulated))
        assert simulated == live
        assert live["alice"] == tuple(
            sorted(f"story-{i}".encode() for i in range(3))
        )
        assert live["carol"] == ()

    def test_delegated_matching_delivery_sets_identical(self):
        config = small_config(**SHARDED, delegated_matching=True, match_workers=1)
        simulated = run_on_simulator(SCENARIO, config)
        live = run_async(run_on_live(SCENARIO, config, expected=simulated))
        assert simulated == live
        assert live["bobby"] == (b"brief-hi",)


class TestLiveClusterTelemetry:
    def test_shards_report_cluster_membership_and_health(self):
        async def scenario():
            deployment = LiveDeployment(small_config(**SHARDED))
            await deployment.start()
            try:
                assert deployment.service_names == (
                    "ds0", "ds1", "rs0", "rs1", "pbe-ts", "anon",
                )
                for name, ds in deployment.ds_shards.items():
                    checks = ds.health_checks()
                    assert checks["cluster_member"] is True
                    metrics = {m["name"]: m for m in ds.extra_metrics()}
                    assert metrics["cluster.ds_shards"]["value"] == 2
                    assert metrics["cluster.rs_shards"]["value"] == 2
                    assert metrics["cluster.rs_replication"]["value"] == 2
                    assert metrics["cluster.is_member"] == {
                        "name": "cluster.is_member",
                        "labels": {"shard": name},
                        "value": 1,
                    }
            finally:
                await deployment.close()

        run_async(scenario())
