"""Shard restart hygiene: crashing and restarting a DS shard ten times
must not leak worker processes or file descriptors.

The DS's match pool forks real OS processes (``match_workers >= 2``);
``crash()`` must terminate and reap them, and the lazily re-created pool
after ``restart()`` must not stack resources on the previous
generation's.  Measured with ``multiprocessing.active_children()`` (also
reaps zombies) and ``/proc/self/fd``.
"""

from __future__ import annotations

import gc
import multiprocessing
import os

import pytest

from repro.core.system import P3SSystem
from repro.pbe.schema import Interest

from ..live.conftest import small_config

CYCLES = 10


def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


def _children() -> int:
    return len(multiprocessing.active_children())


@pytest.mark.skipif(
    not os.path.isdir("/proc/self/fd"), reason="needs procfs fd accounting"
)
class TestShardRestartLeaks:
    def test_ten_crash_restart_cycles_hold_processes_and_fds_flat(self):
        config = small_config(
            ds_shards=2,
            rs_shards=2,
            rs_replication=2,
            delegated_matching=True,
            match_workers=2,
        )
        system = P3SSystem(config)
        try:
            alice = system.add_subscriber("alice", {"org"})
            system.subscribe(alice, Interest({"topic": "a"}))
            system.run()

            gc.collect()
            baseline_children = _children()
            baseline_fds = _open_fds()

            ds = system.ds_shards["ds1"]
            for _ in range(CYCLES):
                ds.match_pool.start()  # fork this generation's workers
                assert _children() >= baseline_children + 2
                ds.crash()  # must terminate AND reap them
                assert _children() == baseline_children
                ds.restart()

            gc.collect()
            assert _children() == baseline_children
            # pipes/semaphores from ten dead pools must be gone; small
            # slack for allocator/procfs jitter, nowhere near one pool's
            # worth per cycle
            assert _open_fds() <= baseline_fds + 4
        finally:
            system.close()
        gc.collect()
        assert _children() == baseline_children

    def test_system_close_reaps_every_shards_pool(self):
        config = small_config(
            ds_shards=2, delegated_matching=True, match_workers=2
        )
        system = P3SSystem(config)
        before = _children()
        for ds in system.ds_shards.values():
            ds.match_pool.start()
        assert _children() >= before + 4  # two shards x two workers
        system.close()
        assert _children() == before

    def test_serial_pool_never_forks(self):
        config = small_config(delegated_matching=True, match_workers=1)
        system = P3SSystem(config)
        try:
            before = _children()
            system.ds.match_pool.start()
            assert _children() == before
        finally:
            system.close()
