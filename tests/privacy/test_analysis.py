"""The §6.1 analysis: per-role visibility and threat-model escalation."""

import copy

import pytest

from repro.privacy.adversary import ParticipantView, ThreatModel, combine_views
from repro.privacy.analysis import analyze, build_p3s_gadget, default_views


class TestHBCVisibility:
    """Assertions mirror the paper's 'Summary of ... visibility' paragraphs."""

    def setup_method(self):
        self.report = analyze(ThreatModel.HBC)

    def test_subscriber_reaches_matched_content(self):
        assert self.report.exposed("subscriber", "guid")
        assert self.report.exposed("subscriber", "payload")

    def test_subscriber_does_not_learn_metadata(self):
        # "It does not know metadata description of published payloads even
        # though it receives all PBE encrypted metadata."
        assert not self.report.exposed("subscriber", "x")

    def test_subscriber_does_not_learn_others_interests(self):
        assert not self.report.exposed("subscriber", "a_pid_x")

    def test_ds_learns_nothing_sensitive(self):
        assert self.report.exposures_for("ds") == []

    def test_rs_learns_nothing_sensitive(self):
        # "It knows neither the plaintext payload nor the metadata
        # associated with an encrypted payload."
        assert self.report.exposures_for("rs") == []

    def test_pbe_ts_cannot_associate_interest_with_subscriber(self):
        # "the PBE TS cannot associate the subscription interests to
        # subscriber identities" (it knows y by design — base knowledge,
        # not an exposure)
        assert not self.report.exposed("pbe_ts", "a_sid_y")

    def test_eavesdropper_learns_nothing_sensitive(self):
        assert self.report.exposures_for("eavesdropper") == []

    def test_publisher_learns_no_interests(self):
        assert not self.report.exposed("publisher", "y")
        assert not self.report.exposed("publisher", "a_sid_y")


class TestAnonymizerRole:
    def test_without_anonymizer_association_leaks(self):
        report = analyze(ThreatModel.HBC, views=default_views(use_anonymizer=False))
        assert report.exposed("pbe_ts", "a_sid_y")

    def test_with_anonymizer_it_does_not(self):
        report = analyze(ThreatModel.HBC, views=default_views(use_anonymizer=True))
        assert not report.exposed("pbe_ts", "a_sid_y")


class TestEscalation:
    def test_malicious_client_threatens_interest_privacy(self):
        """Paper: 'privacy of y (subscriber interest) is threatened under
        malicious participants.'"""
        report = analyze(ThreatModel.MALICIOUS)
        assert report.exposed("publisher", "y")
        exposure = next(e for e in report.exposures_for("publisher") if e.element == "y")
        assert exposure.via_attack
        assert any(step.gate_label.endswith("token-probing") for step in exposure.evidence)

    def test_colluding_subscribers_threaten_metadata(self):
        """Pooled tokens across the interest space reveal x (token
        accumulation)."""
        views = default_views()
        views["sub2"] = copy.deepcopy(views["subscriber"])
        views["sub2"].name = "sub2"
        report = analyze(
            ThreatModel.COLLUDING_HBC, views=views, colluding=["subscriber", "sub2"]
        )
        assert report.exposed("coalition", "x")
        exposure = next(e for e in report.exposures_for("coalition") if e.element == "x")
        assert exposure.via_attack

    def test_single_hbc_subscriber_cannot_reach_x(self):
        report = analyze(ThreatModel.HBC)
        assert not report.exposed("subscriber", "x")


class TestViews:
    def test_combine_views_unions_knowledge(self):
        a = ParticipantView("a", "subscriber", base_knowledge={"p"}, capabilities={"c1"})
        b = ParticipantView("b", "subscriber", base_knowledge={"q"})
        combined = combine_views([a, b])
        assert {"p", "q"} <= combined.base_knowledge
        assert "c1" in combined.capabilities

    def test_two_token_holders_gain_accumulation_capability(self):
        a = ParticipantView("a", "subscriber", base_knowledge={"t_y"})
        b = ParticipantView("b", "subscriber", base_knowledge={"t_y"})
        assert "T_Y" in combine_views([a, b]).capabilities

    def test_single_token_holder_does_not(self):
        a = ParticipantView("a", "subscriber", base_knowledge={"t_y"})
        b = ParticipantView("b", "subscriber", base_knowledge=set())
        assert "T_Y" not in combine_views([a, b]).capabilities

    def test_malicious_third_parties_do_not_get_client_powers(self):
        view = ParticipantView("ds", "ds", base_knowledge={"ct_pbe"})
        assert "t_y" not in view.knowledge_under(ThreatModel.MALICIOUS)


class TestP3SGadget:
    def test_retrieval_path(self):
        """guid + RS access yields the ABE ciphertext, then key yields payload."""
        from repro.privacy.knowledge import closure

        g = build_p3s_gadget()
        closed, _ = closure(g, {"guid", "rs_access", "sk_attrs"})
        assert "ct_abe" in closed
        assert "payload" in closed

    def test_no_guid_no_payload(self):
        from repro.privacy.knowledge import closure

        g = build_p3s_gadget()
        closed, _ = closure(g, {"rs_access", "sk_attrs"})
        assert "payload" not in closed

    def test_sensitive_inventory(self):
        g = build_p3s_gadget()
        sensitive = set(g.sensitive_elements())
        assert {"guid", "x", "y", "a_pid_x", "a_sid_y", "payload"} <= sensitive
