"""Trace-based §6.1 visibility report on real protocol runs."""

import pytest

from repro.core import P3SConfig, P3SSystem
from repro.pbe import AttributeSpec, Interest, MetadataSchema
from repro.privacy.trace import trace_visibility


def run_scenario(use_anonymizer=True):
    schema = MetadataSchema(
        [AttributeSpec("topic", ("a", "b", "c", "d"))]
    )
    system = P3SSystem(P3SConfig(schema=schema, use_anonymizer=use_anonymizer))
    matcher = system.add_subscriber("matcher", {"org"})
    bystander = system.add_subscriber("bystander", {"org"})
    system.subscribe(matcher, Interest({"topic": "a"}))
    system.subscribe(bystander, Interest({"topic": "d"}))
    system.run()
    publisher = system.add_publisher("pub")
    system.run()
    publisher.publish({"topic": "a"}, b"payload-1", policy="org")
    publisher.publish({"topic": "a"}, b"payload-2", policy="org")
    system.run()
    return system


class TestTraceVisibility:
    def test_all_claims_hold_with_anonymizer(self):
        system = run_scenario(use_anonymizer=True)
        report = trace_visibility(system)
        assert report.all_hold(), [
            (c.component, c.claim, c.evidence) for c in report.failures()
        ]

    def test_every_component_covered(self):
        report = trace_visibility(run_scenario())
        components = {claim.component for claim in report.claims}
        assert {"ds", "rs", "pbe_ts", "eavesdropper", "subscriber", "publisher"} <= components

    def test_pbe_ts_binding_claim_relaxed_without_anonymizer(self):
        """Without the anonymizer the binding claim is vacuous (the paper's
        own caveat), so the report still holds — but the sources now name
        subscribers."""
        system = run_scenario(use_anonymizer=False)
        report = trace_visibility(system)
        assert report.all_hold()
        assert "matcher" in system.pbe_ts.observed_sources

    def test_failure_detection(self):
        """A run that actually leaks identity to the RS flips the claim."""
        system = run_scenario(use_anonymizer=True)
        system.rs.observed_sources.append("matcher")  # inject a leak
        report = trace_visibility(system)
        failures = report.failures()
        assert any(c.component == "rs" for c in failures)

    def test_per_component_accessor(self):
        report = trace_visibility(run_scenario())
        ds_claims = report.for_component("ds")
        assert len(ds_claims) == 3
        assert all(c.component == "ds" for c in ds_claims)
