"""Gadget graph structure and knowledge closure."""

import pytest

from repro.privacy.gadget import Gadget, GadgetError, cpabe_gadget, pbe_gadget
from repro.privacy.knowledge import closure, derivation


class TestGadgetConstruction:
    def test_add_element_and_gate(self):
        g = Gadget("test")
        g.add_gate(["a", "b"], "c", "combine")
        assert set(g.elements()) == {"a", "b", "c"}
        assert len(g.gates()) == 1

    def test_sensitive_marking(self):
        g = Gadget("test")
        g.add_element("secret", sensitive=True)
        g.add_element("public")
        assert g.sensitive_elements() == ["secret"]

    def test_empty_gate_rejected(self):
        with pytest.raises(GadgetError):
            Gadget("test").add_gate([], "out", "bad")

    def test_attack_gates_flagged(self):
        g = Gadget("test")
        g.add_gate(["a"], "b", "normal")
        g.add_gate(["c"], "d", "attack", attack=True)
        assert len(g.gates(include_attacks=True)) == 2
        assert len(g.gates(include_attacks=False)) == 1

    def test_merge_with_rename(self):
        g1 = Gadget("one")
        g1.add_gate(["m", "k"], "ct", "enc")
        g2 = Gadget("two")
        g2.add_element("m", sensitive=True)
        g2.add_gate(["ct2", "k2"], "m", "dec")
        g1.merge(g2, rename={"m": "guid"})
        assert "guid" in g1.elements()
        # the fused element inherits sensitivity
        assert "guid" in g1.sensitive_elements() or not g2.graph.nodes["m"]["sensitive"]


class TestClosure:
    def test_simple_chain(self):
        g = Gadget("test")
        g.add_gate(["a"], "b", "1")
        g.add_gate(["b"], "c", "2")
        closed, log = closure(g, {"a"})
        assert closed == {"a", "b", "c"}
        assert [step.output for step in log] == ["b", "c"]

    def test_and_gate_needs_all_inputs(self):
        g = Gadget("test")
        g.add_gate(["a", "b"], "c", "and")
        closed, _ = closure(g, {"a"})
        assert "c" not in closed
        closed, _ = closure(g, {"a", "b"})
        assert "c" in closed

    def test_attacks_excludable(self):
        g = Gadget("test")
        g.add_gate(["a"], "secret", "leak", attack=True)
        closed_with, _ = closure(g, {"a"}, include_attacks=True)
        closed_without, _ = closure(g, {"a"}, include_attacks=False)
        assert "secret" in closed_with
        assert "secret" not in closed_without

    def test_derivation_path(self):
        g = Gadget("test")
        g.add_gate(["a", "b"], "c", "mix")
        g.add_gate(["c"], "d", "step")
        g.add_gate(["a"], "unrelated", "noise")
        path = derivation(g, {"a", "b"}, "d")
        assert [step.output for step in path] == ["c", "d"]

    def test_derivation_none_when_unreachable(self):
        g = Gadget("test")
        g.add_gate(["a", "b"], "c", "and")
        assert derivation(g, {"a"}, "c") is None

    def test_derivation_empty_for_initial_knowledge(self):
        g = Gadget("test")
        g.add_element("a")
        assert derivation(g, {"a"}, "a") == []


class TestSchemeGadgets:
    def test_pbe_gadget_query_semantics(self):
        """ct + token yields m; either alone does not."""
        g = pbe_gadget()
        closed, _ = closure(g, {"ct_pbe", "t_y"}, include_attacks=False)
        assert "m" in closed
        closed, _ = closure(g, {"ct_pbe"}, include_attacks=False)
        assert "m" not in closed
        closed, _ = closure(g, {"t_y"}, include_attacks=False)
        assert "m" not in closed

    def test_pbe_gadget_token_does_not_reveal_y_without_encrypt(self):
        g = pbe_gadget()
        closed, _ = closure(g, {"t_y"}, include_attacks=True)
        assert "y" not in closed
        closed, _ = closure(g, {"t_y", "X", "pk_pbe"}, include_attacks=True)
        assert "y" in closed  # the token-probing attack

    def test_cpabe_policy_in_the_clear(self):
        """Anyone holding the ciphertext reads the policy (paper §3.2)."""
        g = cpabe_gadget()
        closed, _ = closure(g, {"ct_abe"})
        assert "policy" in closed
        assert "payload" not in closed

    def test_cpabe_decryption_needs_key(self):
        g = cpabe_gadget()
        closed, _ = closure(g, {"ct_abe", "sk_attrs"})
        assert "payload" in closed
