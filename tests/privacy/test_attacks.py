"""Executable attacks against the real HVE scheme, and the mitigation."""

import pytest

from repro.crypto.group import PairingGroup
from repro.errors import SchemaError
from repro.pbe import ANY, HVE, AttributeSpec, Interest, MetadataSchema
from repro.privacy.analysis import (
    epoch_of,
    token_accumulation_attack,
    token_probing_attack,
    with_epoch_attribute,
)

GROUP = PairingGroup("TOY")


@pytest.fixture(scope="module")
def setting():
    schema = MetadataSchema(
        [
            AttributeSpec("topic", ("a", "b", "c", "d")),
            AttributeSpec("prio", ("lo", "hi")),
        ]
    )
    hve = HVE(GROUP)
    public, master = hve.setup(schema.vector_length)
    return schema, hve, public, master


class TestTokenProbing:
    """Paper §6.1: tokens have no token security — encrypt capability +
    token reveals the interest vector."""

    def test_recovers_exact_interest(self, setting):
        schema, hve, public, master = setting
        interest = Interest({"topic": "c", "prio": ANY})
        token = hve.gen_token(master, schema.encode_interest(interest))
        recovered = token_probing_attack(hve, public, token, schema)
        assert recovered.constraints == {"topic": "c", "prio": ANY}

    def test_recovers_fully_constrained_interest(self, setting):
        schema, hve, public, master = setting
        interest = Interest({"topic": "a", "prio": "lo"})
        token = hve.gen_token(master, schema.encode_interest(interest))
        recovered = token_probing_attack(hve, public, token, schema)
        assert recovered.constraints == {"topic": "a", "prio": "lo"}

    def test_foreign_token_detected(self, setting):
        schema, hve, public, master = setting
        _, other_master = hve.setup(schema.vector_length)
        token = hve.gen_token(other_master, schema.encode_interest(Interest({"topic": "a"})))
        with pytest.raises(SchemaError):
            token_probing_attack(hve, public, token, schema)


class TestTokenAccumulation:
    """Paper §6.1: a subscriber accumulating tokens over the interest space
    can reveal the attribute vector of any ciphertext."""

    def test_recovers_metadata(self, setting):
        schema, hve, public, master = setting
        accumulated = {
            (spec.name, value): hve.gen_token(
                master, schema.encode_interest(Interest({spec.name: value}))
            )
            for spec in schema.attributes
            for value in spec.values
        }
        metadata = {"topic": "b", "prio": "hi"}
        ciphertext = hve.encrypt(public, schema.encode_metadata(metadata), b"guid")
        assert token_accumulation_attack(hve, accumulated, ciphertext, schema) == metadata

    def test_partial_accumulation_partial_recovery(self, setting):
        schema, hve, public, master = setting
        # tokens only for the topic attribute
        accumulated = {
            ("topic", value): hve.gen_token(
                master, schema.encode_interest(Interest({"topic": value}))
            )
            for value in schema.attribute("topic").values
        }
        ciphertext = hve.encrypt(
            public, schema.encode_metadata({"topic": "d", "prio": "lo"}), b"guid"
        )
        recovered = token_accumulation_attack(hve, accumulated, ciphertext, schema)
        assert recovered == {"topic": "d"}  # prio stays hidden


class TestTimestampedTokenMitigation:
    """The paper's mitigation: epoch attribute ⇒ tokens expire."""

    def test_epoch_schema_shape(self, setting):
        schema, *_ = setting
        extended = with_epoch_attribute(schema, num_epochs=4)
        assert extended.vector_length == schema.vector_length + 2
        assert extended.attribute("epoch").values == ("e0", "e1", "e2", "e3")

    def test_token_stops_matching_after_rotation(self, setting):
        schema, hve, _, _ = setting
        extended = with_epoch_attribute(schema, num_epochs=4)
        public, master = hve.setup(extended.vector_length)
        # token pinned to epoch e0
        token = hve.gen_token(
            master, extended.encode_interest(Interest({"topic": "a", "epoch": "e0"}))
        )
        item = {"topic": "a", "prio": "lo"}
        ct_epoch0 = hve.encrypt(
            public, extended.encode_metadata({**item, "epoch": "e0"}), b"guid"
        )
        ct_epoch1 = hve.encrypt(
            public, extended.encode_metadata({**item, "epoch": "e1"}), b"guid"
        )
        assert hve.query(token, ct_epoch0) == b"guid"
        assert hve.query(token, ct_epoch1) is None  # revoked by rotation

    def test_epoch_of(self):
        assert epoch_of(0.0, 10.0, 4) == "e0"
        assert epoch_of(9.99, 10.0, 4) == "e0"
        assert epoch_of(10.0, 10.0, 4) == "e1"
        assert epoch_of(45.0, 10.0, 4) == "e0"  # wraps mod num_epochs

    def test_num_epochs_validated(self):
        schema = MetadataSchema([AttributeSpec("a", ("x", "y"))])
        with pytest.raises(SchemaError):
            with_epoch_attribute(schema, num_epochs=1)

    def test_probing_attack_cost_grows_with_epochs(self, setting):
        """The mitigation also multiplies the probing search space."""
        schema, *_ = setting
        base_space = 1
        for spec in schema.attributes:
            base_space *= len(spec.values)
        extended = with_epoch_attribute(schema, num_epochs=16)
        extended_space = 1
        for spec in extended.attributes:
            extended_space *= len(spec.values)
        assert extended_space == base_space * 16
