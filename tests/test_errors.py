"""Exception hierarchy contracts: one base class per API boundary."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_reproerror(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_crypto_family(self):
        assert issubclass(errors.IntegrityError, errors.DecryptionError)
        assert issubclass(errors.DecryptionError, errors.CryptoError)
        assert issubclass(errors.NotOnCurveError, errors.CryptoError)
        assert issubclass(errors.SerializationError, errors.CryptoError)

    def test_scheme_failures_are_decryption_errors(self):
        # callers catch DecryptionError to handle "could not decrypt" uniformly
        assert issubclass(errors.PolicyNotSatisfiedError, errors.DecryptionError)
        assert issubclass(errors.PredicateMismatchError, errors.DecryptionError)

    def test_p3s_family(self):
        assert issubclass(errors.ItemExpiredError, errors.RetrievalError)
        assert issubclass(errors.RetrievalError, errors.P3SError)
        assert issubclass(errors.TokenRequestError, errors.P3SError)
        assert issubclass(errors.CertificateError, errors.P3SError)

    def test_network_family(self):
        assert issubclass(errors.ChannelClosedError, errors.NetworkError)
        assert issubclass(errors.RoutingError, errors.NetworkError)

    def test_one_catch_all_at_boundary(self):
        """A caller can wrap any repro call in `except ReproError`."""
        with pytest.raises(errors.ReproError):
            raise errors.PolicyNotSatisfiedError("demo")
        with pytest.raises(errors.ReproError):
            raise errors.BrokerError("demo")
