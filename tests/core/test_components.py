"""Component-level tests: ARA, PBE-TS, RS, DS, anonymizer, config."""

import pytest

from repro.core import P3SConfig, P3SSystem, default_schema
from repro.core.ara import RegistrationAuthority
from repro.core.config import ComputeTimings
from repro.core.guid import GUID_BYTES, format_guid, random_guid
from repro.core.messages import AnonEnvelope, EncryptedMetadata, PayloadSubmission, wire_size_of
from repro.crypto.group import PairingGroup
from repro.errors import RegistrationError, SerializationError, TokenRequestError
from repro.pbe import AttributeSpec, Interest, MetadataSchema

GROUP = PairingGroup("TOY")


def small_schema():
    return MetadataSchema([AttributeSpec("topic", ("a", "b", "c", "d"))])


class TestGuid:
    def test_length(self):
        assert len(random_guid()) == GUID_BYTES

    def test_uniqueness(self):
        assert len({random_guid() for _ in range(100)}) == 100

    def test_format(self):
        assert len(format_guid(b"\xab" * 16)) == 16
        assert format_guid(b"\xab" * 16) == "ab" * 8


class TestMessages:
    def test_wire_size_of_bytes(self):
        assert wire_size_of(b"abc") == 3

    def test_wire_size_of_none(self):
        assert wire_size_of(None) == 16

    def test_wire_size_of_dataclasses(self):
        assert EncryptedMetadata(b"x" * 10, 1).wire_size == 10
        assert PayloadSubmission(b"g" * 16, b"c" * 100, 60.0).wire_size == 124
        assert AnonEnvelope("rs", "t", b"y" * 50).wire_size == 82

    def test_wire_size_of_unknown_type(self):
        with pytest.raises(SerializationError):
            wire_size_of(object())


class TestARA:
    def setup_method(self):
        self.ara = RegistrationAuthority(GROUP, small_schema())

    def test_register_subscriber_credentials(self):
        credentials = self.ara.register_subscriber("alice", {"org:acme"})
        assert credentials.certificate.role == "subscriber"
        assert credentials.cpabe_secret_key.attributes == frozenset({"org:acme"})
        assert credentials.schema.vector_length == 2

    def test_register_publisher_credentials(self):
        credentials = self.ara.register_publisher("bob")
        assert credentials.certificate.role == "publisher"
        assert credentials.hve_public_key.n == 2

    def test_duplicate_registration_rejected(self):
        self.ara.register_subscriber("alice", {"a"})
        with pytest.raises(RegistrationError):
            self.ara.register_subscriber("alice", {"a"})
        with pytest.raises(RegistrationError):
            self.ara.register_publisher("alice")

    def test_registered_role(self):
        self.ara.register_publisher("bob")
        assert self.ara.registered_role("bob") == "publisher"
        assert self.ara.registered_role("ghost") is None

    def test_unknown_service_role_rejected(self):
        with pytest.raises(RegistrationError):
            self.ara.install_service("mailman", "m")

    def test_certificates_verify_under_ara_key(self):
        credentials = self.ara.register_subscriber("alice", {"a"})
        credentials.certificate.validate(
            self.ara.directory.ara_verify_key, "subscriber", now=0.0
        )


class TestPBETokenServer:
    def make_system(self):
        return P3SSystem(P3SConfig(schema=small_schema()))

    def test_valid_request_issues_token(self):
        system = self.make_system()
        alice = system.add_subscriber("alice", {"a"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.run()
        assert system.pbe_ts.tokens_issued == 1
        assert len(alice.tokens) == 1

    def test_publisher_certificate_rejected(self):
        """Only subscriber-role certificates may obtain tokens."""
        system = self.make_system()
        bob_credentials = system.ara.register_publisher("bob")
        alice = system.add_subscriber("alice", {"a"})
        system.run()
        # alice tries to use bob's publisher certificate
        from repro.core.pbe_ts import encode_token_request
        from repro.crypto.symmetric import SecretBox

        session_key = SecretBox.generate_key()
        body = encode_token_request(
            session_key, bob_credentials.certificate, Interest({"topic": "a"}), GROUP.zr_bytes
        )
        request = system.pbe_ts.pke.public.encrypt(body)
        sealed_holder = []

        def attempt():
            sealed = yield alice.connection.endpoint.call(
                "pbe-ts", "p3s.token-request", request, len(request)
            )
            sealed_holder.append(sealed)

        system.sim.process(attempt())
        system.run()
        from repro.core.pbe_ts import decode_token_response

        with pytest.raises(TokenRequestError):
            decode_token_response(session_key, sealed_holder[0])
        assert system.pbe_ts.tokens_issued == 0

    def test_expired_certificate_rejected(self):
        system = self.make_system()
        credentials = system.ara.register_subscriber("late", {"a"}, cert_not_after=0.0)
        from repro.mq.client import JmsConnection
        from repro.core.subscriber import Subscriber

        connection = JmsConnection(system.network.add_host("late"), "ds")
        connection.start()
        subscriber = Subscriber(
            credentials, connection, system.group, system.config.timings
        )
        system.run(until=10.0)  # move past expiry
        event = subscriber.subscribe(Interest({"topic": "a"}))
        failures = []
        event.add_callback(lambda e: failures.append(e.failure))
        with pytest.raises(TokenRequestError):
            system.run()

    def test_garbage_request_answered_with_error(self):
        system = self.make_system()
        alice = system.add_subscriber("alice", {"a"})
        system.run()
        responses = []

        def attempt():
            sealed = yield alice.connection.endpoint.call(
                "pbe-ts", "p3s.token-request", b"not a pke blob at all" * 10, 210
            )
            responses.append(sealed)

        system.sim.process(attempt())
        system.run()
        assert responses == [b"\x00"]


class TestRepositoryServer:
    def test_gc_counts(self):
        system = P3SSystem(P3SConfig(schema=small_schema(), t_g=0.0, rs_gc_interval_s=1.0))
        bob = system.add_publisher("bob")
        system.run()
        for _ in range(3):
            bob.publish({"topic": "a"}, b"x", policy="p", ttl_s=0.5)
        system.run()
        assert system.rs.item_count == 3
        system.run(until=system.now + 3.0)
        assert system.rs.item_count == 0
        assert system.rs.expired_count == 3

    def test_failed_retrieval_counter(self):
        system = P3SSystem(P3SConfig(schema=small_schema()))
        alice = system.add_subscriber("alice", {"a"})
        system.run()
        from repro.core.rs import encode_retrieval_request
        from repro.crypto.symmetric import SecretBox

        request = system.rs.pke.public.encrypt(
            encode_retrieval_request(SecretBox.generate_key(), b"\x01" * 16)
        )

        def attempt():
            yield alice.connection.endpoint.call("rs", "p3s.retrieve", request, len(request))

        system.sim.process(attempt())
        system.run()
        assert system.rs.failed_retrievals == 1


class TestAnonymizer:
    def test_relay_records_links_but_server_sees_relay(self):
        system = P3SSystem(P3SConfig(schema=small_schema()))
        alice = system.add_subscriber("alice", {"a"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.run()
        assert ("alice", "pbe-ts") in system.anonymizer.observed_links
        assert "alice" not in system.pbe_ts.observed_sources


class TestConfig:
    def test_with_override(self):
        config = P3SConfig()
        changed = config.with_(latency_s=0.010)
        assert changed.latency_s == 0.010
        assert config.latency_s == 0.045  # original untouched

    def test_default_schema_is_40_bits(self):
        assert default_schema().vector_length == 40  # Table 1: P = 40 bits

    def test_timings_symmetric_scales(self):
        timings = ComputeTimings()
        assert timings.symmetric(2_000_000) == pytest.approx(0.05)
