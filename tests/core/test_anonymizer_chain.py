"""Multi-hop anonymization: relays compose without special-casing.

The anonymizer forwards an opaque (dst, inner_type, inner_payload)
envelope; when the inner request is itself an anon-forward addressed to a
second relay, the chain routes hop by hop — each relay learns only its
predecessor and successor, like a (cryptography-free) mix cascade.
"""

from repro.core import P3SConfig, P3SSystem
from repro.core.anonymizer import AnonymizationService
from repro.core.messages import RPC_ANON_FORWARD, RPC_TOKEN_REQUEST, AnonEnvelope
from repro.core.pbe_ts import decode_token_response, encode_token_request
from repro.crypto.symmetric import SecretBox
from repro.pbe import AttributeSpec, Interest, MetadataSchema


def make_system():
    schema = MetadataSchema([AttributeSpec("topic", ("a", "b", "c", "d"))])
    system = P3SSystem(P3SConfig(schema=schema))
    second_relay = AnonymizationService(system.network.add_host("anon2"))
    second_relay.start()
    return system, second_relay


class TestAnonymizerChain:
    def test_two_hop_token_request(self):
        system, relay2 = make_system()
        alice = system.add_subscriber("alice", {"org"})
        system.run()

        session_key = SecretBox.generate_key()
        request = system.pbe_ts.pke.public.encrypt(
            encode_token_request(
                session_key,
                alice.credentials.certificate,
                Interest({"topic": "a"}),
                system.group.zr_bytes,
            )
        )
        # alice → anon → anon2 → pbe-ts
        inner = AnonEnvelope(dst="pbe-ts", inner_type=RPC_TOKEN_REQUEST, inner_payload=request)
        outer = AnonEnvelope(dst="anon2", inner_type=RPC_ANON_FORWARD, inner_payload=inner)
        responses = []

        def run_request():
            sealed = yield alice.connection.endpoint.call(
                "anon", RPC_ANON_FORWARD, outer, outer.wire_size
            )
            responses.append(sealed)

        system.sim.process(run_request())
        system.run()

        token_bytes = decode_token_response(session_key, responses[0])
        assert token_bytes  # the token came back through both relays

        # hop-by-hop visibility: each relay knows only its neighbours,
        # and the PBE-TS saw the *second* relay as the requester
        assert ("alice", "anon2") in system.anonymizer.observed_links
        assert ("anon", "pbe-ts") in relay2.observed_links
        assert set(system.pbe_ts.observed_sources) == {"anon2"}

    def test_chain_latency_exceeds_single_hop(self):
        """Each extra hop costs one more store-and-forward RTT."""
        system, _ = make_system()
        alice = system.add_subscriber("alice", {"org"})
        system.run()
        start = system.now

        request = system.pbe_ts.pke.public.encrypt(
            encode_token_request(
                SecretBox.generate_key(),
                alice.credentials.certificate,
                Interest({"topic": "b"}),
                system.group.zr_bytes,
            )
        )
        inner = AnonEnvelope(dst="pbe-ts", inner_type=RPC_TOKEN_REQUEST, inner_payload=request)
        outer = AnonEnvelope(dst="anon2", inner_type=RPC_ANON_FORWARD, inner_payload=inner)
        finished = []

        def run_request():
            yield alice.connection.endpoint.call("anon", RPC_ANON_FORWARD, outer, outer.wire_size)
            finished.append(system.now)

        system.sim.process(run_request())
        system.run()
        elapsed = finished[0] - start
        # 3 hops out + 3 hops back at 45 ms latency each ≥ 270 ms
        assert elapsed > 6 * 0.045
