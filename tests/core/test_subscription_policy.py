"""Subscription control at the PBE-TS + certificate pseudonymity."""

import pytest

from repro.core import P3SConfig, P3SSystem, SubscriptionPolicy
from repro.errors import TokenRequestError
from repro.pbe import ANY, AttributeSpec, Interest, MetadataSchema


def make_system(policy=None):
    schema = MetadataSchema(
        [
            AttributeSpec("topic", ("a", "b", "c", "d")),
            AttributeSpec("region", ("n", "s", "e", "w")),
        ]
    )
    return P3SSystem(P3SConfig(schema=schema, subscription_policy=policy))


class TestPseudonymity:
    def test_subscriber_certificate_is_pseudonymous(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        assert alice.credentials.certificate.subject != "alice"
        assert alice.credentials.certificate.subject.startswith("sub-")

    def test_pbe_ts_sees_pseudonyms_not_names(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.run()
        assert system.pbe_ts.observed_subjects
        assert "alice" not in system.pbe_ts.observed_subjects

    def test_distinct_subscribers_distinct_pseudonyms(self):
        system = make_system()
        a = system.add_subscriber("a", {"x"})
        b = system.add_subscriber("b", {"x"})
        assert a.credentials.certificate.subject != b.credentials.certificate.subject


class TestSubscriptionPolicy:
    def test_min_constrained_attributes_enforced(self):
        policy = SubscriptionPolicy(min_constrained_attributes=2)
        system = make_system(policy)
        alice = system.add_subscriber("alice", {"org:acme"})
        event = system.subscribe(alice, Interest({"topic": "a"}))  # only 1 constrained
        with pytest.raises(TokenRequestError):
            system.run()
        assert system.pbe_ts.tokens_issued == 0

    def test_compliant_predicate_accepted(self):
        policy = SubscriptionPolicy(min_constrained_attributes=2)
        system = make_system(policy)
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "a", "region": "n"}))
        system.run()
        assert len(alice.tokens) == 1

    def test_allowed_attributes_enforced(self):
        policy = SubscriptionPolicy(allowed_attributes=frozenset({"topic"}))
        system = make_system(policy)
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "a", "region": ANY}))  # region=ANY ok
        system.run()
        assert len(alice.tokens) == 1
        system.subscribe(alice, Interest({"region": "n"}))
        with pytest.raises(TokenRequestError):
            system.run()

    def test_token_quota_throttles_accumulation(self):
        """The rate-limit counterpart to the §6.1 accumulation attack."""
        policy = SubscriptionPolicy(max_tokens_per_subject=2)
        system = make_system(policy)
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.run()
        system.subscribe(alice, Interest({"topic": "b"}))
        system.run()
        assert len(alice.tokens) == 2
        system.subscribe(alice, Interest({"topic": "c"}))
        with pytest.raises(TokenRequestError):
            system.run()
        assert len(alice.tokens) == 2

    def test_quota_is_per_subject(self):
        policy = SubscriptionPolicy(max_tokens_per_subject=1)
        system = make_system(policy)
        alice = system.add_subscriber("alice", {"org:acme"})
        bob = system.add_subscriber("bob", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.subscribe(bob, Interest({"topic": "b"}))
        system.run()
        assert len(alice.tokens) == len(bob.tokens) == 1

    def test_policy_object_direct_checks(self):
        policy = SubscriptionPolicy(
            min_constrained_attributes=1,
            allowed_attributes=frozenset({"topic"}),
            max_tokens_per_subject=5,
        )
        policy.check("sub-x", Interest({"topic": "a"}), issued_so_far=0)
        with pytest.raises(TokenRequestError):
            policy.check("sub-x", Interest({"topic": ANY}), issued_so_far=0)
        with pytest.raises(TokenRequestError):
            policy.check("sub-x", Interest({"topic": "a"}), issued_so_far=5)
