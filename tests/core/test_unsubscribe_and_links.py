"""Unsubscribe semantics, publisher reconnect, per-link latency."""

import pytest

from repro.core import P3SConfig, P3SSystem
from repro.net.network import Message, Network
from repro.net.simulator import Simulator
from repro.pbe import AttributeSpec, Interest, MetadataSchema


def make_system():
    schema = MetadataSchema([AttributeSpec("topic", ("a", "b", "c", "d"))])
    return P3SSystem(P3SConfig(schema=schema))


class TestUnsubscribe:
    def test_unsubscribed_interest_stops_matching(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org"})
        interest = Interest({"topic": "a"})
        system.subscribe(alice, interest)
        system.run()
        publisher = system.add_publisher("pub")
        system.run()
        record1 = publisher.publish({"topic": "a"}, b"first", policy="org")
        system.run()
        assert len(system.deliveries_for(record1)) == 1
        assert alice.unsubscribe(interest)
        record2 = publisher.publish({"topic": "a"}, b"second", policy="org")
        system.run()
        assert system.deliveries_for(record2) == []

    def test_unsubscribe_unknown_interest(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org"})
        assert not alice.unsubscribe(Interest({"topic": "a"}))

    def test_unsubscribe_is_selective(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.subscribe(alice, Interest({"topic": "b"}))
        system.run()
        alice.unsubscribe(Interest({"topic": "a"}))
        assert len(alice.tokens) == 1
        publisher = system.add_publisher("pub")
        system.run()
        record = publisher.publish({"topic": "b"}, b"still-matches", policy="org")
        system.run()
        assert len(system.deliveries_for(record)) == 1


class TestPublisherReconnect:
    def test_publisher_resumes_after_ds_restart(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.run()
        publisher = system.add_publisher("pub")
        system.run()
        system.ds.crash()
        system.ds.restart()
        alice.reconnect()
        publisher.reconnect()
        system.run()
        record = publisher.publish({"topic": "a"}, b"resumed", policy="org")
        system.run()
        assert len(system.deliveries_for(record)) == 1


class TestPerLinkLatency:
    def test_latency_override(self):
        sim = Simulator()
        net = Network(sim, latency_s=0.045)
        a, b = net.add_host("a"), net.add_host("b")
        a.set_link_latency("b", 0.002)  # same rack
        arrival = a.send("b", Message("m", None, 1000))
        assert arrival == pytest.approx((1000 * 8) / 10_000_000 + 0.002)

    def test_default_latency_unaffected(self):
        sim = Simulator()
        net = Network(sim, latency_s=0.045)
        a, b, c = net.add_host("a"), net.add_host("b"), net.add_host("c")
        a.set_link_latency("b", 0.001)
        arrival_c = a.send("c", Message("m", None, 0))
        assert arrival_c == pytest.approx(0.045)
