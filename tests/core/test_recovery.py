"""Crash/restart robustness — the §6.1 recovery claims, executed."""

from repro.core import P3SConfig, P3SSystem
from repro.pbe import AttributeSpec, Interest, MetadataSchema


def make_system():
    schema = MetadataSchema([AttributeSpec("topic", ("a", "b", "c", "d"))])
    return P3SSystem(P3SConfig(schema=schema))


class TestRSRecovery:
    def test_encrypted_content_survives_restart(self):
        """'The RS stores encrypted content on disk.  A crashed component
        can resume ... without requiring re-encryption of any published
        content.'"""
        system = make_system()
        publisher = system.add_publisher("bob")
        system.run()
        record = publisher.publish({"topic": "a"}, b"durable", policy="org:acme")
        system.run()
        assert system.rs.holds(record.guid)
        system.rs.crash()
        system.rs.restart()
        assert system.rs.holds(record.guid)  # disk store intact
        # a subscriber arriving after the restart can still fetch it
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.run()
        record2 = publisher.publish({"topic": "a"}, b"post-restart", policy="org:acme")
        system.run()
        assert [d.payload for d in alice.stats.deliveries] == [b"post-restart"]

    def test_crashed_rs_fails_fetches_then_recovers(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.run()
        publisher = system.add_publisher("bob")
        system.run()
        # first publication lands normally, then the RS crashes
        record1 = publisher.publish({"topic": "a"}, b"before", policy="org:acme")
        system.run()
        system.rs.crash()
        record2 = publisher.publish({"topic": "a"}, b"lost", policy="org:acme")
        system.run()
        # the store frame was lost while crashed; the fetch failed
        assert alice.stats.failed_fetches == 1
        assert not system.rs.holds(record2.guid)
        system.rs.restart()
        record3 = publisher.publish({"topic": "a"}, b"after", policy="org:acme")
        system.run()
        payloads = [d.payload for d in alice.stats.deliveries]
        assert payloads == [b"before", b"after"]


class TestDSRecovery:
    def test_clients_reregister_after_ds_restart(self):
        """'A restarted DS needs to wait for subscribers and publishers to
        (re)register.'"""
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.run()
        publisher = system.add_publisher("bob")
        system.run()
        system.ds.crash()
        system.ds.restart()
        assert system.ds.registered_subscriber_count == 0
        # publications before re-registration reach nobody
        record_lost = publisher.publish({"topic": "a"}, b"nobody", policy="org:acme")
        system.run()
        assert system.deliveries_for(record_lost) == []
        # clients re-register (keeping their tokens) and service resumes
        alice.reconnect()
        system.run()
        assert system.ds.registered_subscriber_count == 1
        record = publisher.publish({"topic": "a"}, b"resumed", policy="org:acme")
        system.run()
        assert [d.payload for d in system.deliveries_for(record)] == [b"resumed"]


class TestSubscriberRecovery:
    def test_restart_reobtains_tokens(self):
        """'A restarted subscriber simply needs to (re)register with the DS
        and (re)obtain its PBE tokens from the PBE-TS.'"""
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.subscribe(alice, Interest({"topic": "b"}))
        system.run()
        assert len(alice.tokens) == 2
        issued_before = system.pbe_ts.tokens_issued
        alice.restart()
        system.run()
        assert len(alice.tokens) == 2  # re-obtained
        assert system.pbe_ts.tokens_issued == issued_before + 2
        # and matching still works end to end
        publisher = system.add_publisher("bob")
        system.run()
        record = publisher.publish({"topic": "b"}, b"post-restart", policy="org:acme")
        system.run()
        assert len(system.deliveries_for(record)) == 1
