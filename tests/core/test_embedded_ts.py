"""§8 future-work extension: embedded per-subscriber token generation."""

from repro.core import P3SConfig, P3SSystem
from repro.pbe import AttributeSpec, Interest, MetadataSchema


def make_system():
    schema = MetadataSchema([AttributeSpec("topic", ("a", "b", "c", "d"))])
    return P3SSystem(P3SConfig(schema=schema))


class TestEmbeddedTokenSource:
    def test_predicate_never_reaches_pbe_ts(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"}, embedded_token_source=True)
        system.subscribe(alice, Interest({"topic": "a"}))
        system.run()
        assert len(alice.tokens) == 1
        # the centralized PBE-TS never saw the predicate or any request
        assert system.pbe_ts.observed_predicates == []
        assert system.pbe_ts.observed_sources == []
        assert alice.local_token_source.tokens_minted == 1

    def test_locally_minted_token_matches(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"}, embedded_token_source=True)
        system.subscribe(alice, Interest({"topic": "b"}))
        system.run()
        publisher = system.add_publisher("bob")
        system.run()
        record = publisher.publish({"topic": "b"}, b"payload", policy="org:acme")
        system.run()
        deliveries = system.deliveries_for(record)
        assert len(deliveries) == 1
        assert deliveries[0].payload == b"payload"

    def test_mixed_deployment(self):
        """Embedded and centralized subscribers coexist."""
        system = make_system()
        embedded = system.add_subscriber("e", {"org:acme"}, embedded_token_source=True)
        central = system.add_subscriber("c", {"org:acme"})
        system.subscribe(embedded, Interest({"topic": "a"}))
        system.subscribe(central, Interest({"topic": "a"}))
        system.run()
        # only the centralized subscriber's predicate reached the PBE-TS
        assert len(system.pbe_ts.observed_predicates) == 1
        publisher = system.add_publisher("bob")
        system.run()
        record = publisher.publish({"topic": "a"}, b"x", policy="org:acme")
        system.run()
        assert len(system.deliveries_for(record)) == 2
