"""MetricsCollector: lifecycle stats, throughput, CSV export."""

import pytest

from repro.core import P3SConfig, P3SSystem
from repro.core.metrics import LatencyStats, MetricsCollector
from repro.pbe import AttributeSpec, Interest, MetadataSchema


@pytest.fixture(scope="module")
def finished_run():
    schema = MetadataSchema([AttributeSpec("topic", ("a", "b", "c", "d"))])
    system = P3SSystem(P3SConfig(schema=schema))
    for index in range(3):
        subscriber = system.add_subscriber(f"s{index}", {"org"})
        system.subscribe(subscriber, Interest({"topic": "a" if index < 2 else "b"}))
    system.run()
    publisher = system.add_publisher("pub")
    system.run()
    for _ in range(3):
        publisher.publish({"topic": "a"}, b"payload", policy="org")
    system.run()
    return system


class TestLatencyStats:
    def test_from_values(self):
        stats = LatencyStats.from_values([0.1, 0.2, 0.3, 0.4])
        assert stats.count == 4
        assert stats.mean == pytest.approx(0.25)
        assert stats.median in (0.2, 0.3)
        assert stats.maximum == 0.4

    def test_empty(self):
        stats = LatencyStats.from_values([])
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_p95_of_many(self):
        stats = LatencyStats.from_values([float(i) for i in range(100)])
        assert stats.p95 == pytest.approx(94.0)

    # The percentile rule is nearest-rank on (n-1): index = round(f * (n-1)).
    # These pins freeze the rule so p99 cannot silently change definition.

    def test_percentiles_single_value(self):
        stats = LatencyStats.from_values([0.7])
        assert stats.median == stats.p95 == stats.p99 == stats.maximum == 0.7

    def test_percentiles_two_values(self):
        stats = LatencyStats.from_values([2.0, 1.0])
        # round(0.5 * 1) = 0 (banker's rounding), round(0.95) = round(0.99) = 1
        assert stats.median == 1.0
        assert stats.p95 == 2.0
        assert stats.p99 == 2.0

    def test_p99_of_many(self):
        stats = LatencyStats.from_values([float(i) for i in range(100)])
        # round(0.99 * 99) = round(98.01) = 98
        assert stats.p99 == pytest.approx(98.0)
        assert stats.p95 <= stats.p99 <= stats.maximum


class TestCollector:
    def test_publication_metrics(self, finished_run):
        collector = MetricsCollector(finished_run)
        metrics = collector.publication_metrics()
        assert len(metrics) == 3
        for m in metrics:
            assert m.deliveries == 2  # two matching subscribers
            assert m.metadata_bytes > 0
            assert m.payload_bytes > 0
            assert all(latency > 0 for latency in m.latencies)

    def test_latency_stats(self, finished_run):
        collector = MetricsCollector(finished_run)
        stats = collector.latency_stats()
        assert stats.count == 6  # 3 publications × 2 matchers
        assert 0 < stats.median <= stats.p95 <= stats.maximum

    def test_worst_case_stats(self, finished_run):
        collector = MetricsCollector(finished_run)
        worst = collector.worst_case_latency_stats()
        assert worst.count == 3
        assert worst.maximum >= collector.latency_stats().median

    def test_achieved_throughput(self, finished_run):
        collector = MetricsCollector(finished_run)
        throughput = collector.achieved_throughput()
        assert throughput > 0.5  # 3 pubs in well under 6 simulated seconds

    def test_delivery_ratio_complete(self, finished_run):
        assert MetricsCollector(finished_run).delivery_ratio() == 1.0

    def test_component_bytes(self, finished_run):
        counters = MetricsCollector(finished_run).component_bytes()
        ds_sent, ds_received = counters["ds"]
        assert ds_sent > 0 and ds_received > 0
        # the DS fans metadata to 3 subscribers: it sends more than it receives
        assert ds_sent > ds_received

    def test_csv_export(self, finished_run):
        csv_text = MetricsCollector(finished_run).to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("publication_id,")
        assert len(lines) == 1 + 6
        assert any(",s0," in line for line in lines[1:])
