"""End-to-end integration tests of the full P3S protocol."""

import pytest

from repro.core import P3SConfig, P3SSystem
from repro.pbe import ANY, AttributeSpec, Interest, MetadataSchema


def small_schema():
    return MetadataSchema(
        [
            AttributeSpec("topic", ("m&a", "earnings", "litigation", "markets")),
            AttributeSpec("company", ("lehman", "acme", "globex", "initech")),
        ]
    )


def make_system(**overrides):
    config = P3SConfig(schema=small_schema(), **overrides)
    return P3SSystem(config)


METADATA = {"topic": "m&a", "company": "lehman"}


class TestHappyPath:
    def test_matching_subscriber_receives_payload(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "m&a"}))
        system.run()
        bob = system.add_publisher("bob")
        system.run()
        record = bob.publish(METADATA, b"deal update", policy="org:acme")
        system.run()
        deliveries = system.deliveries_for(record)
        assert len(deliveries) == 1
        assert deliveries[0].payload == b"deal update"

    def test_non_matching_subscriber_gets_nothing(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "earnings"}))
        system.run()
        bob = system.add_publisher("bob")
        system.run()
        record = bob.publish(METADATA, b"deal update", policy="org:acme")
        system.run()
        assert system.deliveries_for(record) == []
        assert alice.stats.metadata_seen == 1  # it DID receive encrypted metadata
        assert alice.stats.non_matches == 1
        assert alice.stats.matches == 0

    def test_wildcard_interest(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"company": "lehman", "topic": ANY}))
        system.run()
        bob = system.add_publisher("bob")
        system.run()
        for topic in ("m&a", "earnings"):
            bob.publish({"topic": topic, "company": "lehman"}, b"x", policy="org:acme")
        bob.publish({"topic": "m&a", "company": "acme"}, b"y", policy="org:acme")
        system.run()
        assert alice.stats.matches == 2
        assert alice.stats.non_matches == 1

    def test_fan_out_to_multiple_matchers(self):
        system = make_system()
        subs = [system.add_subscriber(f"s{i}", {"org:acme"}) for i in range(4)]
        for sub in subs[:3]:
            system.subscribe(sub, Interest({"topic": "m&a"}))
        system.subscribe(subs[3], Interest({"topic": "markets"}))
        system.run()
        bob = system.add_publisher("bob")
        system.run()
        record = bob.publish(METADATA, b"payload", policy="org:acme")
        system.run()
        assert len(system.deliveries_for(record)) == 3
        # every subscriber received the encrypted metadata broadcast
        assert all(sub.stats.metadata_seen == 1 for sub in subs)

    def test_multiple_interests_per_subscriber(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "earnings"}))
        system.subscribe(alice, Interest({"company": "lehman"}))
        system.run()
        assert len(alice.tokens) == 2
        bob = system.add_publisher("bob")
        system.run()
        record = bob.publish(METADATA, b"p", policy="org:acme")  # matches 2nd token only
        system.run()
        assert len(system.deliveries_for(record)) == 1

    def test_delivery_latency_positive_and_bounded(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "m&a"}))
        system.run()
        bob = system.add_publisher("bob")
        system.run()
        record = bob.publish(METADATA, b"payload", policy="org:acme")
        system.run()
        (latency,) = system.delivery_latencies(record)
        # at minimum: PBE enc + 2 network hops + match + retrieval RTT
        assert latency > 0.030 + 2 * 0.045 + 0.038
        assert latency < 2.0


class TestAccessControl:
    def test_cpabe_policy_denies_wrong_attributes(self):
        system = make_system()
        carol = system.add_subscriber("carol", {"org:other"})
        system.subscribe(carol, Interest({"topic": "m&a"}))
        system.run()
        bob = system.add_publisher("bob")
        system.run()
        record = bob.publish(METADATA, b"secret", policy="org:acme")
        system.run()
        assert system.deliveries_for(record) == []
        assert carol.stats.matches == 1  # interest matched...
        assert carol.stats.access_denied == 1  # ...but attributes insufficient

    def test_complex_policy(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme", "role:analyst"})
        dave = system.add_subscriber("dave", {"org:acme", "role:intern"})
        for sub in (alice, dave):
            system.subscribe(sub, Interest({"topic": "m&a"}))
        system.run()
        bob = system.add_publisher("bob")
        system.run()
        record = bob.publish(
            METADATA, b"senior only", policy="org:acme and role:analyst"
        )
        system.run()
        deliveries = system.deliveries_for(record)
        assert len(deliveries) == 1
        assert alice.stats.deliveries and not dave.stats.deliveries


class TestDeletion:
    def test_expired_item_not_retrievable(self):
        """§4.3: RS deletes items after TTL_item + T_G; late fetch fails."""
        system = make_system(t_g=1.0, rs_gc_interval_s=0.5)
        bob = system.add_publisher("bob")
        system.run()
        record = bob.publish(METADATA, b"ephemeral", policy="org:acme", ttl_s=2.0)
        system.run()
        assert system.rs.holds(record.guid)
        # advance past TTL + T_G: the GC sweep removes it
        system.run(until=system.now + 5.0)
        assert not system.rs.holds(record.guid)
        assert system.rs.item_count == 0
        # a subscriber that matches only now fails to fetch
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "m&a"}))
        system.run()
        record2 = bob.publish(METADATA, b"fresh", policy="org:acme", ttl_s=0.0)
        system.run(until=system.now + 3.0)  # T_G=1 < fetch time? fetch happens fast
        # fresh item with ttl=0 is deleted T_G after arrival; the immediate
        # fetch may or may not win the race — what must hold is that the
        # item is eventually gone
        system.run(until=system.now + 5.0)
        assert not system.rs.holds(record2.guid)

    def test_strict_deletion_causes_failed_fetches(self):
        """T_G = 0 (strict publisher intent) ⇒ slow consumers fail (§4.3)."""
        system = make_system(t_g=0.0, rs_gc_interval_s=0.01)
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "m&a"}))
        system.run()
        bob = system.add_publisher("bob")
        system.run()
        record = bob.publish(METADATA, b"gone", policy="org:acme", ttl_s=0.0)
        system.run()
        assert system.deliveries_for(record) == []
        assert alice.stats.failed_fetches == 1


class TestPrivacyObservables:
    def test_pbe_ts_sees_predicates_but_not_identities(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "m&a"}))
        system.run()
        # the paper's known exposure: plaintext predicates at the PBE-TS...
        assert any("m&a" in p for _, p in system.pbe_ts.observed_predicates)
        # ...but with the anonymizer the source is never the subscriber
        assert set(system.pbe_ts.observed_sources) == {"anon"}

    def test_without_anonymizer_identity_leaks_to_servers(self):
        system = make_system(use_anonymizer=False)
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "m&a"}))
        system.run()
        assert "alice" in system.pbe_ts.observed_sources

    def test_rs_sees_request_counts_not_content(self):
        system = make_system()
        subs = [system.add_subscriber(f"s{i}", {"org:acme"}) for i in range(2)]
        for sub in subs:
            system.subscribe(sub, Interest({"topic": "m&a"}))
        system.run()
        bob = system.add_publisher("bob")
        system.run()
        record = bob.publish(METADATA, b"payload", policy="org:acme")
        system.run()
        assert system.rs.request_count(record.guid) == 2
        assert set(system.rs.observed_sources) == {"anon"}

    def test_ds_sees_sizes_and_rates_only(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "m&a"}))
        system.run()
        bob = system.add_publisher("bob")
        system.run()
        bob.publish(METADATA, b"p1", policy="org:acme")
        bob.publish(METADATA, b"p2", policy="org:acme")
        system.run()
        assert system.ds.publications_by_publisher["bob"] == 2
        kinds = {kind for kind, _ in system.ds.observed_sizes}
        assert kinds == {"p3s.metadata", "p3s.payload"}

    def test_publisher_learns_nothing_about_delivery(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "m&a"}))
        system.run()
        bob = system.add_publisher("bob")
        system.run()
        record = bob.publish(METADATA, b"payload", policy="org:acme")
        system.run()
        # the publisher-side record contains no delivery/matching facts
        assert not hasattr(record, "matched")
        assert system.deliveries_for(record)  # it WAS delivered

    def test_eavesdropper_trace_shows_only_tls_frames(self):
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "m&a"}))
        system.run()
        assert system.network.trace, "expected wire activity"
        assert all(record.wire_label == "tls" for record in system.network.trace)


class TestFailureHandling:
    def test_lost_metadata_detected_not_delivered(self):
        """A dropped metadata broadcast means no delivery (loss is visible
        to the channel layer as a sequence gap)."""
        system = make_system()
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "m&a"}))
        system.run()
        bob = system.add_publisher("bob")
        system.run()
        system.network.set_drop_filter(
            lambda src, dst, msg: src == "ds" and dst == "alice"
        )
        record = bob.publish(METADATA, b"payload", policy="org:acme")
        system.run()
        assert system.deliveries_for(record) == []
        system.network.set_drop_filter(None)

    def test_guid_unguessable_fetch_fails(self):
        """A party that never matched cannot fetch by guessing GUIDs."""
        system = make_system()
        bob = system.add_publisher("bob")
        system.run()
        bob.publish(METADATA, b"payload", policy="org:acme")
        system.run()
        from repro.core.rs import decode_retrieval_response, encode_retrieval_request
        from repro.crypto.symmetric import SecretBox
        from repro.errors import RetrievalError

        # forge a retrieval with a random guess
        mallory = system.add_subscriber("mallory", {"org:other"})
        system.run()
        session_key = SecretBox.generate_key()
        request = system.rs.pke.public.encrypt(
            encode_retrieval_request(session_key, b"\x00" * 16)
        )
        responses = []

        def attempt():
            sealed = yield mallory.connection.endpoint.call(
                "rs", "p3s.retrieve", request, len(request)
            )
            responses.append(sealed)

        system.sim.process(attempt())
        system.run()
        with pytest.raises(RetrievalError):
            decode_retrieval_response(session_key, responses[0])
