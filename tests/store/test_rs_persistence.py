"""RepositoryStore over durable engines: recovery, GC, verified deletion."""

import os

import pytest

from repro.core.messages import PayloadSubmission
from repro.core.rs import RepositoryStore
from repro.store import SqliteEngine, WalEngine

KEY = bytes(range(64, 96))


def open_engine_at(backend: str, root: str, key=None):
    if backend == "wal":
        return WalEngine(os.path.join(root, "rs"), key=key)
    return SqliteEngine(os.path.join(root, "rs.db"), key=key)


def store_bytes(backend: str, root: str) -> bytes:
    blob = b""
    if backend == "wal":
        directory = os.path.join(root, "rs")
        for name in sorted(os.listdir(directory)):
            with open(os.path.join(directory, name), "rb") as handle:
                blob += handle.read()
    else:
        with open(os.path.join(root, "rs.db"), "rb") as handle:
            blob += handle.read()
    return blob


def submission(guid: bytes, ciphertext: bytes, ttl_s: float = 100.0):
    return PayloadSubmission(guid=guid, ciphertext=ciphertext, ttl_s=ttl_s)


@pytest.mark.parametrize("backend", ["wal", "sqlite"])
class TestRecovery:
    def test_items_survive_reopen_with_ttl_intact(self, tmp_path, backend):
        root = str(tmp_path)
        store = RepositoryStore(t_g=10.0, engine=open_engine_at(backend, root))
        store.store(submission(b"guid-1", b"ciphertext-one"), now=5.0)
        store.store(submission(b"guid-2", b"ciphertext-two", ttl_s=1.0), now=5.0)
        store.close()

        recovered = RepositoryStore(t_g=10.0, engine=open_engine_at(backend, root))
        assert recovered.recovered_count == 2
        assert recovered.lookup(b"guid-1", now=6.0)[1] == "hit"
        # expiry clocks carried over: guid-2 dies at 5 + 1 + 10 = 16
        assert recovered.holds(b"guid-2", now=15.9)
        assert not recovered.holds(b"guid-2", now=16.0)
        recovered.close()

    def test_gc_tombstones_then_compaction_scrubs_ciphertext(self, tmp_path, backend):
        root = str(tmp_path)
        secret = b"EXPIRED-PAYLOAD-CIPHERTEXT-BYTES"
        store = RepositoryStore(t_g=0.0, engine=open_engine_at(backend, root))
        store.store(submission(b"doomed", secret, ttl_s=1.0), now=0.0)
        store.store(submission(b"alive", b"fresh-bytes", ttl_s=500.0), now=0.0)
        assert store.collect_garbage(now=2.0, compact=True) == 1
        store.close()
        # §4.3 deletion, verified: the expired ciphertext is in NO store file
        assert secret not in store_bytes(backend, root)
        assert b"fresh-bytes" in store_bytes(backend, root) or backend == "wal"

        recovered = RepositoryStore(t_g=0.0, engine=open_engine_at(backend, root))
        assert recovered.recovered_count == 1  # no resurrection
        assert not recovered.holds(b"doomed", now=2.0)
        assert recovered.holds(b"alive", now=2.0)
        recovered.close()

    def test_sealed_rs_ciphertext_never_in_the_clear_on_disk(self, tmp_path, backend):
        root = str(tmp_path)
        payload = b"CPABE-CIPHERTEXT-AT-REST"
        store = RepositoryStore(engine=open_engine_at(backend, root, key=KEY))
        store.store(submission(b"guid", payload), now=0.0)
        store.close()
        assert payload not in store_bytes(backend, root)
        recovered = RepositoryStore(engine=open_engine_at(backend, root, key=KEY))
        assert recovered.lookup(b"guid", now=1.0)[0][1:] == payload
        recovered.close()

    def test_request_counts_are_not_protocol_state(self, tmp_path, backend):
        root = str(tmp_path)
        store = RepositoryStore(engine=open_engine_at(backend, root))
        store.store(submission(b"guid", b"ct"), now=0.0)
        store.lookup(b"guid", now=1.0)
        assert store.request_count(b"guid") == 1
        store.close()
        recovered = RepositoryStore(engine=open_engine_at(backend, root))
        assert recovered.request_count(b"guid") == 0  # observability resets
        recovered.close()


@pytest.mark.parametrize("backend", ["wal", "sqlite"])
class TestClockEpochRebase:
    """Persisted expiries come from the storing process's clock
    (time.monotonic live), whose epoch dies with a reboot.  Recovery with
    ``now`` rebases each item onto the live clock via the wall-clock
    timestamp persisted alongside it, so the §4.3 TTL guarantee holds
    across reboots, not just same-boot restarts."""

    def test_reboot_dead_epoch_items_still_expire_on_schedule(self, tmp_path, backend):
        root = str(tmp_path)
        # previous boot: monotonic clock deep into its epoch
        store = RepositoryStore(
            t_g=5.0,
            engine=open_engine_at(backend, root),
            wall_clock=lambda: 1_000_000.0,
        )
        store.store(submission(b"guid", b"ct", ttl_s=10.0), now=98_765.0)
        store.close()
        # after reboot: monotonic restarted near zero, and an hour of
        # real time passed — far beyond TTL_item + T_G = 15 s.  Without
        # the rebase, expires_at=98_780 from the dead epoch would compare
        # above the new clock for ~27 hours and GC would retain the
        # expired ciphertext the whole time.
        recovered = RepositoryStore(
            t_g=5.0,
            engine=open_engine_at(backend, root),
            now=3.0,
            wall_clock=lambda: 1_003_600.0,
        )
        assert recovered.recovered_count == 1
        assert not recovered.holds(b"guid", now=3.0)
        assert recovered.collect_garbage(now=3.0) == 1
        recovered.close()

    def test_same_boot_restart_preserves_remaining_ttl(self, tmp_path, backend):
        root = str(tmp_path)
        store = RepositoryStore(
            t_g=5.0, engine=open_engine_at(backend, root), wall_clock=lambda: 500.0
        )
        store.store(submission(b"guid", b"ct", ttl_s=10.0), now=100.0)
        store.close()
        # 4 real seconds later, same clock epoch: rebasing reproduces the
        # original schedule (item still dies at 100 + 10 + 5 = 115)
        recovered = RepositoryStore(
            t_g=5.0,
            engine=open_engine_at(backend, root),
            now=104.0,
            wall_clock=lambda: 504.0,
        )
        assert recovered.holds(b"guid", now=114.9)
        assert not recovered.holds(b"guid", now=115.0)
        recovered.close()

    def test_backward_wall_clock_jump_never_extends_ttl(self, tmp_path, backend):
        root = str(tmp_path)
        store = RepositoryStore(
            t_g=0.0, engine=open_engine_at(backend, root), wall_clock=lambda: 900.0
        )
        store.store(submission(b"guid", b"ct", ttl_s=10.0), now=50.0)
        store.close()
        # NTP stepped the wall clock backward across the restart: elapsed
        # clamps to zero, granting the full TTL again at worst
        recovered = RepositoryStore(
            t_g=0.0,
            engine=open_engine_at(backend, root),
            now=60.0,
            wall_clock=lambda: 880.0,
        )
        assert recovered.holds(b"guid", now=69.9)
        assert not recovered.holds(b"guid", now=70.0)
        recovered.close()


class TestMemoryEngineUnchanged:
    def test_default_store_is_volatile_and_recovers_nothing(self):
        store = RepositoryStore()
        store.store(submission(b"guid", b"ct"), now=0.0)
        assert store.engine.backend == "memory"
        assert store.recovered_count == 0
        assert not store.engine.durable
