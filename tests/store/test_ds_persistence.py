"""DS registries over a durable store: restart without re-registration.

The paper's §6.1 restart story — "a restarted DS needs to wait for
subscribers and publishers to (re)register" — is the cost the
persistence layer removes: with a durable engine the subscription table
and the delegated-matching token registry come back from disk.  With
the memory engine the old semantics hold verbatim
(tests/core/test_recovery.py still passes unchanged).
"""

import os

from repro.core import P3SConfig, P3SSystem
from repro.pbe import AttributeSpec, Interest, MetadataSchema


def make_system(tmp_path, **overrides):
    schema = MetadataSchema([AttributeSpec("topic", ("a", "b", "c", "d"))])
    config = P3SConfig(
        schema=schema,
        store_backend="wal",
        data_dir=str(tmp_path / "data"),
        **overrides,
    )
    return P3SSystem(config)


class TestDurableDSRestart:
    def test_subscriptions_survive_ds_restart(self, tmp_path):
        system = make_system(tmp_path)
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.run()
        publisher = system.add_publisher("bob")
        system.run()
        assert system.ds.registered_subscriber_count == 1

        system.ds.crash()
        system.ds.restart()
        # no re-registration needed: the table came back from the store
        assert system.ds.recovered_registrations >= 1
        assert system.ds.registered_subscriber_count == 1
        record = publisher.publish({"topic": "a"}, b"post-restart", policy="org:acme")
        system.run()
        assert [d.payload for d in system.deliveries_for(record)] == [b"post-restart"]

    def test_delegated_tokens_survive_ds_restart(self, tmp_path):
        system = make_system(tmp_path, delegated_matching=True, match_workers=1)
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.run()
        assert len(system.ds.registered_tokens) == 1
        tokens_before = list(system.ds.registered_tokens)

        system.ds.crash()
        assert system.ds.registered_tokens == []  # in-process copy died
        system.ds.restart()
        assert system.ds.registered_tokens == tokens_before

        publisher = system.add_publisher("bob")
        system.run()
        record = publisher.publish({"topic": "a"}, b"matched", policy="org:acme")
        system.run()
        assert [d.payload for d in system.deliveries_for(record)] == [b"matched"]
        system.ds.close_match_pool()

    def test_token_unregistration_is_durable_too(self, tmp_path):
        system = make_system(tmp_path, delegated_matching=True, match_workers=1)
        alice = system.add_subscriber("alice", {"org:acme"})
        interest = Interest({"topic": "a"})
        system.subscribe(alice, interest)
        system.run()
        assert len(system.ds.registered_tokens) == 1
        alice.unsubscribe(interest)
        system.run()
        assert system.ds.registered_tokens == []
        system.ds.crash()
        system.ds.restart()
        # the tombstoned registration must not be resurrected
        assert system.ds.registered_tokens == []
        system.ds.close_match_pool()

    def test_store_files_land_under_data_dir(self, tmp_path):
        system = make_system(tmp_path)
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "a"}))
        system.run()
        assert os.path.exists(tmp_path / "data" / "ds" / "wal.log")
        assert os.path.exists(tmp_path / "data" / "rs" / "wal.log")
