"""Regression guard for the expiry min-heap: GC must not scan live items.

Before the heap, ``collect_garbage`` walked every stored item on every
sweep — O(n) per sweep even when nothing expired.  With the heap a sweep
pops only entries whose deadline has passed (plus lazily-invalidated
stale entries): O(expired · log n).  ``last_gc_examined`` counts the
pops so this property is asserted, not assumed.
"""

from repro.core.messages import PayloadSubmission
from repro.core.rs import RepositoryStore


def submission(guid: bytes, ttl_s: float) -> PayloadSubmission:
    return PayloadSubmission(guid=guid, ciphertext=b"ct", ttl_s=ttl_s)


class TestGCHeap:
    def test_sweep_examines_only_expired_entries(self):
        store = RepositoryStore(t_g=0.0)
        for index in range(5000):
            store.store(submission(b"live-%04d" % index, ttl_s=10_000.0), now=0.0)
        for index in range(5):
            store.store(submission(b"dead-%04d" % index, ttl_s=1.0), now=0.0)
        removed = store.collect_garbage(now=5.0)
        assert removed == 5
        assert store.expired_count == 5
        # the sweep popped the 5 expired entries, not the 5000 live ones
        assert store.last_gc_examined == 5
        assert store.item_count == 5000

    def test_idle_sweep_examines_nothing(self):
        store = RepositoryStore(t_g=0.0)
        for index in range(100):
            store.store(submission(b"%02d" % index, ttl_s=1000.0), now=0.0)
        assert store.collect_garbage(now=1.0) == 0
        assert store.last_gc_examined == 0

    def test_overwritten_guid_does_not_double_free(self):
        """Re-storing a GUID leaves a stale heap entry; the sweep must
        drop it lazily without deleting the fresher item."""
        store = RepositoryStore(t_g=0.0)
        store.store(submission(b"guid", ttl_s=1.0), now=0.0)     # expires at 1
        store.store(submission(b"guid", ttl_s=1000.0), now=0.0)  # expires at 1000
        removed = store.collect_garbage(now=5.0)
        assert removed == 0
        assert store.last_gc_examined == 1  # the stale entry, popped and skipped
        assert store.holds(b"guid", now=5.0)
        # and the real deadline still fires
        assert store.collect_garbage(now=1001.0) == 1
        assert not store.holds(b"guid", now=1001.0)

    def test_repeated_sweeps_stay_cheap(self):
        store = RepositoryStore(t_g=0.0)
        for index in range(1000):
            store.store(submission(b"%03d" % index, ttl_s=10_000.0), now=0.0)
        total_examined = 0
        for sweep in range(50):
            store.collect_garbage(now=float(sweep))
            total_examined += store.last_gc_examined
        assert total_examined == 0  # 50 sweeps over 1000 live items: no work

    def test_heap_rebuilt_on_recovery(self, tmp_path):
        from repro.store import WalEngine

        path = str(tmp_path / "rs")
        store = RepositoryStore(t_g=0.0, engine=WalEngine(path))
        store.store(submission(b"soon", ttl_s=1.0), now=0.0)
        store.store(submission(b"late", ttl_s=1000.0), now=0.0)
        store.close()
        recovered = RepositoryStore(t_g=0.0, engine=WalEngine(path))
        assert recovered.collect_garbage(now=5.0) == 1
        assert recovered.last_gc_examined == 1
        assert recovered.holds(b"late", now=5.0)
        recovered.close()
