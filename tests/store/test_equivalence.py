"""Backend equivalence: memory vs wal vs sqlite deliver identical bytes.

The storage engine changes durability, never protocol behaviour: the
same scenario run over each backend must produce byte-identical delivery
sets at every subscriber, identical retrieval outcomes, and the same
HBC-observable counters.  (The delegated-matching analogue lives in
``tests/par/test_equivalence.py``; this is the persistence analogue.)
"""

import os

import pytest

from repro.core import P3SConfig, P3SSystem
from repro.pbe import AttributeSpec, Interest, MetadataSchema
from repro.store import BACKENDS

SCHEMA = MetadataSchema(
    [AttributeSpec("topic", ("a", "b", "c", "d")), AttributeSpec("prio", ("lo", "hi"))]
)

PUBLICATIONS = [
    ({"topic": "a", "prio": "hi"}, b"alpha high", "org:acme"),
    ({"topic": "b", "prio": "lo"}, b"beta low", "org:acme"),
    ({"topic": "a", "prio": "lo"}, b"alpha low", "org:other"),
    ({"topic": "c", "prio": "hi"}, b"gamma high", "org:acme"),
]


def run_scenario(backend: str, root: str, delegated: bool = False):
    config = P3SConfig(
        schema=SCHEMA,
        store_backend=backend,
        data_dir=os.path.join(root, backend) if backend != "memory" else None,
        store_key=bytes(range(32)) if backend != "memory" else None,
        delegated_matching=delegated,
        match_workers=1 if delegated else None,
    )
    system = P3SSystem(config)
    try:
        alice = system.add_subscriber("alice", {"org:acme"})
        system.subscribe(alice, Interest({"topic": "a"}))
        bob = system.add_subscriber("bob", {"org:acme", "org:other"})
        system.subscribe(bob, Interest({"prio": "hi"}))
        system.run()
        publisher = system.add_publisher("pub")
        system.run()
        for metadata, payload, policy in PUBLICATIONS:
            publisher.publish(metadata, payload, policy=policy)
        system.run()
        deliveries = {
            name: tuple(sorted(d.payload for d in sub.stats.deliveries))
            for name, sub in system.subscribers.items()
        }
        counters = {
            "stored": system.rs.stored_count,
            "failed_retrievals": system.rs.failed_retrievals,
            "published": system.ds.published_count,
            "delivered": system.ds.delivered_count,
        }
        return deliveries, counters
    finally:
        system.rs.store.close()
        system.ds.store.close()
        system.ds.close_match_pool()


class TestBackendEquivalence:
    def test_all_backends_deliver_identical_bytes(self, tmp_path):
        results = {
            backend: run_scenario(backend, str(tmp_path)) for backend in BACKENDS
        }
        baseline_deliveries, baseline_counters = results["memory"]
        assert baseline_deliveries["alice"]  # the scenario is not vacuous
        assert baseline_deliveries["bob"]
        for backend in ("wal", "sqlite"):
            deliveries, counters = results[backend]
            assert deliveries == baseline_deliveries, backend
            assert counters == baseline_counters, backend

    def test_delegated_matching_equivalent_across_backends(self, tmp_path):
        results = {
            backend: run_scenario(backend, str(tmp_path), delegated=True)[0]
            for backend in BACKENDS
        }
        assert results["memory"] == results["wal"] == results["sqlite"]
        assert any(results["memory"].values())
