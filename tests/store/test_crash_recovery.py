"""The crash battery: fire every injection point, reopen, compare states.

The invariant under test (docs/PERSISTENCE.md): after a crash at *any*
point, reopening the store recovers exactly the committed state — every
mutation whose call returned is present, no tombstoned entry is
resurrected, and the only permitted divergence is the in-flight record
at the instant of death, which may legally be present iff its full frame
reached the file (``append.after_write`` / ``append.after_fsync``).

A "crash" here drops the engine object without closing it (a real
``kill -9`` runs no destructors) and re-opens the directory.
"""

import pytest

from repro.store import CRASH_POINTS, FaultPlan, SimulatedCrash, WalEngine

APPEND_POINTS = tuple(p for p in CRASH_POINTS if p.startswith("append."))
COMPACT_POINTS = tuple(p for p in CRASH_POINTS if not p.startswith("append."))
# the in-flight record's full frame reached the file at these points, so
# recovery legitimately replays it even though the call never returned
DURABLE_BEFORE_RETURN = ("append.after_write", "append.after_fsync")


def run_workload(engine, committed):
    """Mutate the store, mirroring into ``committed`` only after each call
    returns; returns normally or propagates SimulatedCrash mid-way."""
    for index in range(8):
        key = f"k{index}".encode()
        value = (f"value-{index}-" * 3).encode()
        engine.put("items", key, value)
        committed[key] = value
        if index % 3 == 2:
            victim = f"k{index - 1}".encode()
            engine.delete("items", victim)
            del committed[victim]


class TestAppendCrashes:
    @pytest.mark.parametrize("point", APPEND_POINTS)
    @pytest.mark.parametrize("hit", [1, 4, 9])
    def test_recovery_equals_committed_state(self, tmp_path, point, hit):
        path = str(tmp_path / "store")
        committed: dict[bytes, bytes] = {}
        engine = WalEngine(path, faults=FaultPlan(point, hit=hit))
        in_flight = None

        def tracked_put(ns, key, value, _put=engine.put):
            nonlocal in_flight
            in_flight = ("put", key, value)
            lsn = _put(ns, key, value)
            in_flight = None
            return lsn

        def tracked_delete(ns, key, _delete=engine.delete):
            nonlocal in_flight
            in_flight = ("delete", key, None)
            lsn = _delete(ns, key)
            in_flight = None
            return lsn

        engine.put, engine.delete = tracked_put, tracked_delete
        with pytest.raises(SimulatedCrash):
            run_workload(engine, committed)
        assert in_flight is not None

        expected = dict(committed)
        if point in DURABLE_BEFORE_RETURN:
            op, key, value = in_flight
            if op == "put":
                expected[key] = value
            else:
                expected.pop(key, None)

        recovered = WalEngine(path)
        assert dict(recovered.items("items")) == expected
        assert recovered.recovery.clean == (point != "append.partial_write")
        # and the reopened store accepts writes again
        recovered.put("items", b"post-crash", b"ok")
        assert recovered.get("items", b"post-crash") == b"ok"
        recovered.close()

    @pytest.mark.parametrize("point", APPEND_POINTS)
    def test_no_tombstone_resurrection(self, tmp_path, point):
        """A committed delete stays deleted whatever the next crash does."""
        path = str(tmp_path / "store")
        with WalEngine(path) as engine:
            engine.put("items", b"victim", b"gone")
            engine.delete("items", b"victim")
        engine = WalEngine(path, faults=FaultPlan(point))
        with pytest.raises(SimulatedCrash):
            engine.put("items", b"next", b"v")
        recovered = WalEngine(path)
        assert recovered.get("items", b"victim") is None
        recovered.close()


class TestCompactionCrashes:
    @pytest.mark.parametrize("point", COMPACT_POINTS)
    def test_crash_during_compaction_loses_nothing(self, tmp_path, point):
        path = str(tmp_path / "store")
        committed: dict[bytes, bytes] = {}
        engine = WalEngine(path, faults=FaultPlan(point))
        run_workload(engine, committed)  # append points are unarmed: completes
        with pytest.raises(SimulatedCrash):
            engine.compact()
        recovered = WalEngine(path)
        assert dict(recovered.items("items")) == committed
        assert recovered.last_lsn == 10  # 8 puts + 2 deletes, none lost
        # a compaction after recovery completes and converges the files
        recovered.compact()
        recovered.close()
        final = WalEngine(path)
        assert dict(final.items("items")) == committed
        final.close()

    def test_double_crash_same_point_still_recovers(self, tmp_path):
        """Crashing again during the recovery-side compaction is survivable."""
        path = str(tmp_path / "store")
        committed: dict[bytes, bytes] = {}
        engine = WalEngine(path, faults=FaultPlan("snapshot.after_rename"))
        run_workload(engine, committed)
        with pytest.raises(SimulatedCrash):
            engine.compact()
        engine = WalEngine(path, faults=FaultPlan("snapshot.after_rename"))
        with pytest.raises(SimulatedCrash):
            engine.compact()
        recovered = WalEngine(path)
        assert dict(recovered.items("items")) == committed
        recovered.close()
