"""WAL backend: append/recover semantics, verified deletion, corruption."""

import os

import pytest

from repro.errors import CorruptRecordError, RecoveryError, StorageError
from repro.store import (
    FaultPlan,
    SimulatedCrash,
    WalEngine,
    corrupt_crc,
    corrupt_length,
    inspect_store,
    tear_tail,
)
from repro.store.records import MAX_RECORD_LEN
from repro.store.wal import LOG_NAME

KEY = bytes(range(32))


def all_store_bytes(path: str) -> bytes:
    blob = b""
    for name in sorted(os.listdir(path)):
        with open(os.path.join(path, name), "rb") as handle:
            blob += handle.read()
    return blob


class TestRoundtrip:
    def test_put_get_delete_survive_reopen(self, tmp_path):
        path = str(tmp_path / "store")
        with WalEngine(path) as engine:
            engine.put("items", b"a", b"alpha")
            engine.put("items", b"b", b"beta")
            engine.put("subs", b"t\x00alice", b"")
            engine.delete("items", b"a")
            assert engine.get("items", b"a") is None
            assert engine.get("items", b"b") == b"beta"
        with WalEngine(path) as engine:
            assert engine.recovery.log_records_replayed == 4
            assert engine.recovery.clean
            assert engine.get("items", b"a") is None
            assert engine.get("items", b"b") == b"beta"
            assert engine.items("subs") == [(b"t\x00alice", b"")]
            assert engine.last_lsn == 4

    def test_last_writer_wins_across_reopen(self, tmp_path):
        path = str(tmp_path / "store")
        with WalEngine(path) as engine:
            for generation in range(3):
                engine.put("items", b"k", f"gen-{generation}".encode())
        with WalEngine(path) as engine:
            assert engine.get("items", b"k") == b"gen-2"

    def test_delete_is_idempotent_and_missing_key_is_none(self, tmp_path):
        with WalEngine(str(tmp_path / "store")) as engine:
            engine.delete("items", b"ghost")
            assert engine.get("items", b"ghost") is None
            assert engine.items("items") == []


class TestVerifiedDeletion:
    def test_compaction_scrubs_deleted_values_from_every_file(self, tmp_path):
        path = str(tmp_path / "store")
        secret = b"EXPIRED-CIPHERTEXT-MUST-NOT-SURVIVE"
        with WalEngine(path) as engine:
            engine.put("items", b"doomed", secret)
            engine.put("items", b"kept", b"still-live")
            assert secret in all_store_bytes(path)  # in the log pre-compaction
            engine.delete("items", b"doomed")
            assert secret in all_store_bytes(path)  # tombstoned, bytes remain
            engine.compact()
            assert secret not in all_store_bytes(path)
            assert engine.get("items", b"kept") == b"still-live"
        with WalEngine(path) as engine:
            assert engine.get("items", b"doomed") is None
            assert engine.get("items", b"kept") == b"still-live"

    def test_sealed_values_never_touch_disk_in_the_clear(self, tmp_path):
        path = str(tmp_path / "store")
        plaintext = b"THE-PAYLOAD-CIPHERTEXT"
        with WalEngine(path, key=KEY) as engine:
            engine.put("items", b"g", plaintext)
            engine.compact()
        assert plaintext not in all_store_bytes(path)
        with WalEngine(path, key=KEY) as engine:
            assert engine.get("items", b"g") == plaintext

    def test_sealing_flag_mismatch_refuses_to_open(self, tmp_path):
        path = str(tmp_path / "store")
        with WalEngine(path, key=KEY) as engine:
            engine.put("items", b"g", b"v")
        with pytest.raises(RecoveryError):
            WalEngine(path)

    def test_compaction_keeps_exactly_one_snapshot(self, tmp_path):
        path = str(tmp_path / "store")
        with WalEngine(path) as engine:
            for index in range(4):
                engine.put("items", bytes([index]), b"v")
                engine.compact()
            snapshots = [n for n in os.listdir(path) if n.endswith(".snap")]
            assert len(snapshots) == 1

    def test_auto_compaction_at_snapshot_every(self, tmp_path):
        path = str(tmp_path / "store")
        with WalEngine(path, snapshot_every=8) as engine:
            for index in range(20):
                engine.put("items", bytes([index]), b"v" * 10)
            assert engine.compactions >= 2
        with WalEngine(path, snapshot_every=8) as engine:
            # replay cost is bounded by snapshot_every, not history length
            assert engine.recovery.log_records_replayed < 8
            assert engine.count("items") == 20


class TestCorruption:
    def fill(self, path: str) -> None:
        with WalEngine(path) as engine:
            for index in range(5):
                engine.put("items", bytes([index]), b"payload-%d" % index)

    def test_torn_tail_is_truncated_and_prefix_recovered(self, tmp_path):
        path = str(tmp_path / "store")
        self.fill(path)
        tear_tail(os.path.join(path, LOG_NAME), drop_bytes=7)
        with WalEngine(path) as engine:
            assert not engine.recovery.clean
            assert engine.recovery.torn_bytes > 0
            assert engine.count("items") == 4  # last record lost, prefix intact
            assert engine.last_lsn == 4
        with WalEngine(path) as engine:
            assert engine.recovery.clean  # the tail was truncated off

    def test_corrupt_final_record_treated_as_torn_tail(self, tmp_path):
        path = str(tmp_path / "store")
        self.fill(path)
        corrupt_crc(os.path.join(path, LOG_NAME), record_index=-1)
        with WalEngine(path) as engine:
            assert engine.count("items") == 4

    def test_corrupt_middle_record_raises_not_truncates(self, tmp_path):
        """A bad CRC with committed records after it is corruption, not a
        crash residue — silently truncating would drop committed data."""
        path = str(tmp_path / "store")
        self.fill(path)
        corrupt_crc(os.path.join(path, LOG_NAME), record_index=1)
        with pytest.raises(CorruptRecordError):
            WalEngine(path)

    def test_corrupt_length_prefix_mid_file_is_corruption_not_a_tear(self, tmp_path):
        """A damaged length prefix can claim bytes all the way past EOF;
        honouring it as a torn tail would silently swallow the committed
        records after it.  A torn append can only leave behind a prefix
        of a real (bounded-length) frame, so an implausible length is
        always corruption."""
        path = str(tmp_path / "store")
        self.fill(path)
        corrupt_length(os.path.join(path, LOG_NAME), record_index=1)
        with pytest.raises(CorruptRecordError):
            WalEngine(path)

    def test_corrupt_length_prefix_on_final_record_is_corruption_too(self, tmp_path):
        path = str(tmp_path / "store")
        self.fill(path)
        corrupt_length(os.path.join(path, LOG_NAME), record_index=-1)
        with pytest.raises(CorruptRecordError):
            WalEngine(path)

    def test_oversized_value_refused_at_write_time(self, tmp_path):
        """The MAX_RECORD_LEN bound the scanner relies on is enforced on
        the write path, so every on-disk length a writer produced passes
        the recovery sanity check."""
        with WalEngine(str(tmp_path / "store")) as engine:
            with pytest.raises(CorruptRecordError):
                engine.put("items", b"k", bytes(MAX_RECORD_LEN))

    def test_write_after_injected_crash_refuses(self, tmp_path):
        path = str(tmp_path / "store")
        engine = WalEngine(path, faults=FaultPlan("append.before_write"))
        with pytest.raises(SimulatedCrash):
            engine.put("items", b"k", b"v")
        with pytest.raises(StorageError):
            engine.put("items", b"k", b"v")
        assert not engine.healthy


class TestSnapshotFallback:
    def test_corrupt_newest_snapshot_falls_back_when_log_still_covers_it(
        self, tmp_path
    ):
        """A crash between the snapshot rename and the log truncation
        leaves two snapshots and a log still based on the older one; if
        the newest then rots, recovery loads the older snapshot and
        replays the full log — nothing committed is lost."""
        path = str(tmp_path / "store")
        with WalEngine(path) as engine:
            engine.put("items", b"a", b"v1")
            engine.compact()  # snapshot A
            engine.put("items", b"b", b"v2")
        engine = WalEngine(path, faults=FaultPlan("snapshot.after_rename"))
        engine.put("items", b"c", b"v3")
        with pytest.raises(SimulatedCrash):
            engine.compact()  # snapshot B renamed in; log/unlink never ran
        snapshots = sorted(n for n in os.listdir(path) if n.endswith(".snap"))
        assert len(snapshots) == 2
        corrupt_crc(os.path.join(path, snapshots[-1]))  # bit rot in the newest
        with WalEngine(path) as recovered:
            assert recovered.recovery.snapshots_skipped == 1
            assert not recovered.recovery.clean
            assert dict(recovered.items("items")) == {
                b"a": b"v1",
                b"b": b"v2",
                b"c": b"v3",
            }

    def test_corrupt_snapshot_with_truncated_log_refuses_to_open(self, tmp_path):
        """Once compaction truncated the log to the newest snapshot, that
        snapshot is the only copy of the older records — if it is corrupt
        the state is genuinely unrecoverable, and the open must say so
        rather than come up with a silently partial store."""
        path = str(tmp_path / "store")
        with WalEngine(path) as engine:
            engine.put("items", b"a", b"v1")
            engine.put("items", b"b", b"v2")
            engine.compact()
        snapshots = [n for n in os.listdir(path) if n.endswith(".snap")]
        assert len(snapshots) == 1
        corrupt_crc(os.path.join(path, snapshots[0]))
        with pytest.raises(RecoveryError):
            WalEngine(path)


class TestInspect:
    def test_inspect_reports_counts_without_key(self, tmp_path):
        path = str(tmp_path / "store")
        with WalEngine(path, key=KEY) as engine:
            engine.put("items", b"a", b"v1")
            engine.put("items", b"b", b"v2")
            engine.delete("items", b"a")
        report = inspect_store(path)
        assert report["backend"] == "wal"
        assert report["sealed"] is True
        assert report["last_committed_lsn"] == 3
        assert report["live_records"] == 1
        assert report["tombstones"] == 1
        assert report["total_records"] == 3
        assert report["live_ratio"] == pytest.approx(1 / 3)
        assert report["namespaces"] == {"items": 1}
        assert report["torn_tail_bytes"] == 0

    def test_inspect_sees_torn_tail(self, tmp_path):
        path = str(tmp_path / "store")
        with WalEngine(path) as engine:
            engine.put("items", b"a", b"v1")
            engine.put("items", b"b", b"v2")
        tear_tail(os.path.join(path, LOG_NAME), drop_bytes=5)
        report = inspect_store(path)
        # what the next open will truncate: the surviving partial frame
        assert report["torn_tail_bytes"] > 0
        assert report["live_records"] == 1
