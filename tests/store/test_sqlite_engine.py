"""SQLite backend: roundtrip, secure deletion, keyless inspection."""

import pytest

from repro.store import SqliteEngine, inspect_store

KEY = bytes(range(32, 64))


def db_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


class TestRoundtrip:
    def test_put_get_delete_survive_reopen(self, tmp_path):
        path = str(tmp_path / "store.db")
        with SqliteEngine(path) as engine:
            engine.put("items", b"a", b"alpha")
            engine.put("items", b"b", b"beta")
            engine.delete("items", b"a")
            assert engine.last_lsn == 3
        with SqliteEngine(path) as engine:
            assert engine.get("items", b"a") is None
            assert engine.get("items", b"b") == b"beta"
            assert engine.last_lsn == 3

    def test_last_writer_wins(self, tmp_path):
        path = str(tmp_path / "store.db")
        with SqliteEngine(path) as engine:
            engine.put("items", b"k", b"old")
            engine.put("items", b"k", b"new")
        with SqliteEngine(path) as engine:
            assert engine.get("items", b"k") == b"new"
            assert engine.count("items") == 1

    def test_namespaces_are_disjoint(self, tmp_path):
        with SqliteEngine(str(tmp_path / "store.db")) as engine:
            engine.put("items", b"k", b"item")
            engine.put("subs", b"k", b"sub")
            assert engine.get("items", b"k") == b"item"
            assert engine.get("subs", b"k") == b"sub"


class TestVerifiedDeletion:
    def test_compaction_scrubs_deleted_values_from_the_file(self, tmp_path):
        path = str(tmp_path / "store.db")
        secret = b"EXPIRED-CIPHERTEXT-MUST-NOT-SURVIVE"
        with SqliteEngine(path) as engine:
            engine.put("items", b"doomed", secret)
            engine.put("items", b"kept", b"still-live")
            engine.delete("items", b"doomed")
            engine.compact()  # VACUUM on top of secure_delete
            assert engine.get("items", b"kept") == b"still-live"
        assert secret not in db_bytes(path)
        with SqliteEngine(path) as engine:
            assert engine.get("items", b"doomed") is None

    def test_sealed_values_never_touch_disk_in_the_clear(self, tmp_path):
        path = str(tmp_path / "store.db")
        plaintext = b"THE-PAYLOAD-CIPHERTEXT"
        with SqliteEngine(path, key=KEY) as engine:
            engine.put("items", b"g", plaintext)
        assert plaintext not in db_bytes(path)
        with SqliteEngine(path, key=KEY) as engine:
            assert engine.get("items", b"g") == plaintext


class TestInspect:
    def test_inspect_reports_counts_without_key(self, tmp_path):
        path = str(tmp_path / "store.db")
        with SqliteEngine(path, key=KEY) as engine:
            engine.put("items", b"a", b"v1")
            engine.put("items", b"b", b"v2")
            engine.delete("items", b"a")
            engine.put("subs", b"t\x00alice", b"")
        report = inspect_store(path)
        assert report["backend"] == "sqlite"
        assert report["last_committed_lsn"] == 4
        assert report["live_records"] == 2
        assert report["tombstones"] == 1
        assert report["total_records"] == 4
        assert report["live_ratio"] == pytest.approx(0.5)
        assert report["namespaces"] == {"items": 1, "subs": 1}
