"""Metadata schema and interest predicate tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchemaError
from repro.pbe.schema import ANY, AttributeSpec, Interest, MetadataSchema


def make_schema():
    return MetadataSchema(
        [
            AttributeSpec("topic", ("m&a", "earnings", "litigation", "markets")),
            AttributeSpec("region", ("us", "eu", "apac", "latam")),
            AttributeSpec("priority", ("low", "high")),
        ]
    )


class TestAttributeSpec:
    def test_bits(self):
        assert AttributeSpec("a", ("x", "y")).bits == 1
        assert AttributeSpec("a", tuple("abcdefgh")).bits == 3

    def test_index_of(self):
        spec = AttributeSpec("a", ("x", "y", "z"))
        assert spec.index_of("y") == 1

    def test_unknown_value(self):
        with pytest.raises(SchemaError):
            AttributeSpec("a", ("x", "y")).index_of("q")

    def test_too_few_values(self):
        with pytest.raises(SchemaError):
            AttributeSpec("a", ("only",))

    def test_duplicate_values(self):
        with pytest.raises(SchemaError):
            AttributeSpec("a", ("x", "x"))


class TestMetadataSchema:
    def setup_method(self):
        self.schema = make_schema()

    def test_vector_length(self):
        assert self.schema.vector_length == 2 + 2 + 1

    def test_paper_shape_3n_bits(self):
        # N attributes with 8 values each → 3N bits (paper §3.1)
        schema = MetadataSchema(
            [AttributeSpec(f"a{i}", tuple(f"v{j}" for j in range(8))) for i in range(5)]
        )
        assert schema.vector_length == 15

    def test_encode_metadata(self):
        bits = self.schema.encode_metadata(
            {"topic": "m&a", "region": "latam", "priority": "high"}
        )
        assert bits == [0, 0, 1, 1, 1]

    def test_encode_metadata_requires_all_attributes(self):
        with pytest.raises(SchemaError):
            self.schema.encode_metadata({"topic": "m&a"})

    def test_encode_metadata_rejects_unknown(self):
        with pytest.raises(SchemaError):
            self.schema.encode_metadata(
                {"topic": "m&a", "region": "us", "priority": "low", "bogus": "x"}
            )

    def test_encode_interest_with_wildcards(self):
        bits = self.schema.encode_interest(Interest({"region": "eu"}))
        assert bits == [None, None, 0, 1, None]

    def test_encode_interest_full(self):
        bits = self.schema.encode_interest(
            Interest({"topic": "markets", "region": "us", "priority": "low"})
        )
        assert bits == [1, 1, 0, 0, 0]

    def test_encode_interest_rejects_all_wildcard(self):
        with pytest.raises(SchemaError):
            self.schema.encode_interest(Interest({}))
        with pytest.raises(SchemaError):
            self.schema.encode_interest(Interest({"topic": ANY}))

    def test_encode_interest_rejects_unknown_attribute(self):
        with pytest.raises(SchemaError):
            self.schema.encode_interest(Interest({"bogus": "x"}))

    def test_attribute_lookup(self):
        assert self.schema.attribute("topic").name == "topic"
        with pytest.raises(SchemaError):
            self.schema.attribute("bogus")

    def test_duplicate_names_rejected(self):
        spec = AttributeSpec("a", ("x", "y"))
        with pytest.raises(SchemaError):
            MetadataSchema([spec, spec])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            MetadataSchema([])

    def test_json_roundtrip(self):
        restored = MetadataSchema.from_json(self.schema.to_json())
        assert restored == self.schema
        assert restored.vector_length == self.schema.vector_length

    def test_malformed_json(self):
        with pytest.raises(SchemaError):
            MetadataSchema.from_json('{"not": "a list"}')


class TestInterestSemantics:
    def setup_method(self):
        self.schema = make_schema()
        self.metadata = {"topic": "m&a", "region": "us", "priority": "high"}

    def test_exact_match(self):
        assert Interest({"topic": "m&a", "region": "us"}).matches(self.metadata)

    def test_wildcard_match(self):
        assert Interest({"topic": "m&a", "region": ANY}).matches(self.metadata)

    def test_mismatch(self):
        assert not Interest({"topic": "earnings"}).matches(self.metadata)

    def test_describe(self):
        text = Interest({"topic": "m&a", "region": ANY}).describe()
        assert "topic=m&a" in text
        assert "region=*" in text
        assert Interest({}).describe() == "<match-all>"

    @settings(max_examples=40)
    @given(
        st.sampled_from(["m&a", "earnings", "litigation", "markets"]),
        st.sampled_from(["us", "eu", "apac", "latam"]),
        st.sampled_from(["low", "high"]),
        st.sampled_from(["m&a", "earnings", "litigation", "markets"]),
    )
    def test_plaintext_matching_agrees_with_encoding(self, topic, region, priority, wanted):
        """Interest.matches and the bit-vector match predicate must agree."""
        metadata = {"topic": topic, "region": region, "priority": priority}
        interest = Interest({"topic": wanted, "region": ANY})
        x = self.schema.encode_metadata(metadata)
        y = self.schema.encode_interest(interest)
        vector_match = all(y_i is None or y_i == x_i for x_i, y_i in zip(x, y))
        assert vector_match == interest.matches(metadata)
