"""Bit-encoding helpers for the binary HVE alphabet."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchemaError
from repro.pbe.encoding import bits_needed, decode_value, encode_value, wildcard_bits


class TestBitsNeeded:
    @pytest.mark.parametrize(
        "domain,expected",
        [(2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (16, 4), (256, 8)],
    )
    def test_widths(self, domain, expected):
        assert bits_needed(domain) == expected

    def test_paper_mapping(self):
        # paper §3.1: N attributes × 8 values → 3 bits per attribute
        assert bits_needed(8) == 3

    def test_tiny_domain_rejected(self):
        with pytest.raises(SchemaError):
            bits_needed(1)


class TestEncodeDecode:
    def test_all_values_distinct(self):
        encodings = [tuple(encode_value(i, 8)) for i in range(8)]
        assert len(set(encodings)) == 8

    def test_roundtrip_exhaustive(self):
        for domain in (2, 3, 5, 8, 11):
            for index in range(domain):
                assert decode_value(encode_value(index, domain), domain) == index

    def test_big_endian(self):
        assert encode_value(4, 8) == [1, 0, 0]
        assert encode_value(1, 8) == [0, 0, 1]

    def test_out_of_range_rejected(self):
        with pytest.raises(SchemaError):
            encode_value(8, 8)
        with pytest.raises(SchemaError):
            encode_value(-1, 8)

    def test_decode_wrong_width(self):
        with pytest.raises(SchemaError):
            decode_value([0, 1], 8)

    def test_decode_out_of_domain(self):
        # 3 values need 2 bits, but '11' = 3 is outside the domain
        with pytest.raises(SchemaError):
            decode_value([1, 1], 3)

    @settings(max_examples=50)
    @given(st.integers(min_value=2, max_value=64), st.data())
    def test_roundtrip_property(self, domain, data):
        index = data.draw(st.integers(min_value=0, max_value=domain - 1))
        assert decode_value(encode_value(index, domain), domain) == index


class TestWildcard:
    def test_spans_attribute_width(self):
        assert wildcard_bits(8) == [None, None, None]
        assert wildcard_bits(2) == [None]
