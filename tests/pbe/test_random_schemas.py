"""Property tests over randomized metadata-space shapes.

The schema → bit-vector → HVE pipeline must agree with plaintext
predicate evaluation for *any* space shape, not just the fixtures used
elsewhere.  Schemas here vary attribute counts and domain sizes
(including non-power-of-two domains, which exercise the rejected-codes
edge of the bit encoding).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.group import PairingGroup
from repro.pbe import ANY, HVE, AttributeSpec, Interest, MetadataSchema

GROUP = PairingGroup("TOY")
HVE_SCHEME = HVE(GROUP)


@st.composite
def schema_and_query(draw):
    num_attributes = draw(st.integers(min_value=1, max_value=3))
    specs = []
    for index in range(num_attributes):
        domain_size = draw(st.integers(min_value=2, max_value=6))
        specs.append(
            AttributeSpec(f"a{index}", tuple(f"v{j}" for j in range(domain_size)))
        )
    schema = MetadataSchema(specs)
    metadata = {
        spec.name: draw(st.sampled_from(spec.values)) for spec in schema.attributes
    }
    constraints = {}
    for spec in schema.attributes:
        choice = draw(st.sampled_from(["any", "match", "random"]))
        if choice == "match":
            constraints[spec.name] = metadata[spec.name]
        elif choice == "random":
            constraints[spec.name] = draw(st.sampled_from(spec.values))
        else:
            constraints[spec.name] = ANY
    return schema, metadata, Interest(constraints)


class TestRandomizedSchemas:
    @settings(max_examples=15, deadline=None)
    @given(schema_and_query())
    def test_hve_agrees_with_plaintext_matching(self, case):
        schema, metadata, interest = case
        if interest.is_all_wildcard():
            return
        public, master = HVE_SCHEME.setup(schema.vector_length)
        ciphertext = HVE_SCHEME.encrypt(public, schema.encode_metadata(metadata), b"guid")
        token = HVE_SCHEME.gen_token(master, schema.encode_interest(interest))
        hve_match = HVE_SCHEME.query(token, ciphertext) == b"guid"
        assert hve_match == interest.matches(metadata)

    @settings(max_examples=30)
    @given(schema_and_query())
    def test_encoding_roundtrip_shape(self, case):
        schema, metadata, interest = case
        x = schema.encode_metadata(metadata)
        assert len(x) == schema.vector_length
        assert all(bit in (0, 1) for bit in x)
        if not interest.is_all_wildcard():
            y = schema.encode_interest(interest)
            assert len(y) == schema.vector_length
            assert all(bit in (0, 1, None) for bit in y)
            # vector-level match must equal plaintext match
            vector_match = all(b is None or b == a for a, b in zip(x, y))
            assert vector_match == interest.matches(metadata)
