"""q-ary (large-alphabet) HVE variant."""

import pytest

from repro.crypto.group import PairingGroup
from repro.errors import ParameterError, SchemaError
from repro.pbe import ANY, AttributeSpec, Interest, MetadataSchema
from repro.pbe.hve import HVE
from repro.pbe.qary import QaryHVE, QaryToken

GROUP = PairingGroup("TOY")
SCHEME = QaryHVE(GROUP)
SIZES = [4, 4, 2]
PUBLIC, MASTER = SCHEME.setup(SIZES)
GUID = b"guid-9876543210ff"


class TestMatchSemantics:
    def test_exact_match(self):
        ciphertext = SCHEME.encrypt(PUBLIC, [2, 1, 0], GUID)
        assert SCHEME.query(SCHEME.gen_token(MASTER, [2, 1, 0]), ciphertext) == GUID

    def test_symbol_mismatch(self):
        ciphertext = SCHEME.encrypt(PUBLIC, [2, 1, 0], GUID)
        assert SCHEME.query(SCHEME.gen_token(MASTER, [3, 1, 0]), ciphertext) is None

    def test_wildcards(self):
        ciphertext = SCHEME.encrypt(PUBLIC, [2, 1, 0], GUID)
        assert SCHEME.query(SCHEME.gen_token(MASTER, [None, 1, None]), ciphertext) == GUID
        assert SCHEME.query(SCHEME.gen_token(MASTER, [None, 3, None]), ciphertext) is None

    def test_all_symbol_values_distinct(self):
        for symbol in range(4):
            ciphertext = SCHEME.encrypt(PUBLIC, [symbol, 0, 0], GUID)
            for wanted in range(4):
                token = SCHEME.gen_token(MASTER, [wanted, None, None])
                assert (SCHEME.query(token, ciphertext) == GUID) == (wanted == symbol)

    def test_collusion_resistance(self):
        ciphertext = SCHEME.encrypt(PUBLIC, [2, 1, 0], GUID)
        token_a = SCHEME.gen_token(MASTER, [2, None, None])
        token_b = SCHEME.gen_token(MASTER, [None, 1, None])
        merged = QaryToken(
            n=3,
            positions=token_a.positions + token_b.positions,
            components=token_a.components + token_b.components,
        )
        assert SCHEME.query(merged, ciphertext) is None


class TestValidation:
    def test_bad_alphabet(self):
        with pytest.raises(ParameterError):
            SCHEME.setup([4, 1])
        with pytest.raises(ParameterError):
            SCHEME.setup([])

    def test_symbol_out_of_range(self):
        with pytest.raises(ParameterError):
            SCHEME.encrypt(PUBLIC, [4, 0, 0], GUID)

    def test_vector_length_mismatch(self):
        with pytest.raises(ParameterError):
            SCHEME.encrypt(PUBLIC, [0, 0], GUID)
        with pytest.raises(ParameterError):
            SCHEME.gen_token(MASTER, [0, 0])

    def test_all_wildcard_rejected(self):
        with pytest.raises(ParameterError):
            SCHEME.gen_token(MASTER, [None, None, None])

    def test_token_symbol_out_of_alphabet(self):
        with pytest.raises(ParameterError):
            SCHEME.gen_token(MASTER, [9, None, None])


class TestSchemaIntegration:
    def setup_method(self):
        self.schema = MetadataSchema(
            [
                AttributeSpec("topic", ("m&a", "earnings", "litigation", "markets")),
                AttributeSpec("region", ("us", "eu", "apac", "latam")),
                AttributeSpec("priority", ("low", "high")),
            ]
        )
        sizes = QaryHVE.sizes_for_schema(self.schema)
        assert sizes == [4, 4, 2]
        self.public, self.master = SCHEME.setup(sizes)

    def test_metadata_and_interest_pipeline(self):
        ciphertext = SCHEME.encrypt_metadata(
            self.public,
            self.schema,
            {"topic": "m&a", "region": "us", "priority": "high"},
            GUID,
        )
        matching = SCHEME.token_for_interest(
            self.master, self.schema, Interest({"topic": "m&a", "region": ANY})
        )
        rival = SCHEME.token_for_interest(
            self.master, self.schema, Interest({"topic": "earnings"})
        )
        assert SCHEME.query(matching, ciphertext) == GUID
        assert SCHEME.query(rival, ciphertext) is None

    def test_missing_metadata_attribute(self):
        with pytest.raises(SchemaError):
            SCHEME.encrypt_metadata(self.public, self.schema, {"topic": "m&a"}, GUID)

    def test_agrees_with_binary_scheme(self):
        """Both encodings implement the same predicate."""
        binary = HVE(GROUP)
        binary_public, binary_master = binary.setup(self.schema.vector_length)
        metadata = {"topic": "litigation", "region": "eu", "priority": "low"}
        interests = [
            Interest({"topic": "litigation"}),
            Interest({"topic": "m&a"}),
            Interest({"region": "eu", "priority": "low"}),
            Interest({"region": "eu", "priority": "high"}),
        ]
        qary_ct = SCHEME.encrypt_metadata(self.public, self.schema, metadata, GUID)
        binary_ct = binary.encrypt(binary_public, self.schema.encode_metadata(metadata), GUID)
        for interest in interests:
            qary_hit = SCHEME.query(
                SCHEME.token_for_interest(self.master, self.schema, interest), qary_ct
            )
            binary_hit = binary.query(
                binary.gen_token(binary_master, self.schema.encode_interest(interest)),
                binary_ct,
            )
            assert (qary_hit == GUID) == (binary_hit == GUID) == interest.matches(metadata)

    def test_fewer_pairings_than_binary(self):
        """The whole point: one position per attribute."""
        qary_token = SCHEME.token_for_interest(
            self.master, self.schema, Interest({"topic": "m&a", "region": "us"})
        )
        binary = HVE(GROUP)
        _, binary_master = binary.setup(self.schema.vector_length)
        binary_token = binary.gen_token(
            binary_master,
            self.schema.encode_interest(Interest({"topic": "m&a", "region": "us"})),
        )
        assert len(qary_token.positions) == 2  # vs 4 bit positions
        assert len(binary_token.positions) == 4
