"""Schema → HVE integration: the full PBE pipeline P3S uses."""

import pytest

from repro.crypto.group import PairingGroup
from repro.pbe import ANY, HVE, AttributeSpec, Interest, MetadataSchema

GROUP = PairingGroup("TOY")


@pytest.fixture(scope="module")
def pipeline():
    schema = MetadataSchema(
        [
            AttributeSpec("topic", ("m&a", "earnings", "litigation", "markets")),
            AttributeSpec("company", ("lehman", "acme", "globex", "initech")),
            AttributeSpec("urgency", ("routine", "flash")),
        ]
    )
    hve = HVE(GROUP)
    public, master = hve.setup(schema.vector_length)
    return schema, hve, public, master


def publish(pipeline, metadata, guid=b"guid-1234"):
    schema, hve, public, _ = pipeline
    return hve.encrypt(public, schema.encode_metadata(metadata), guid)


def subscribe(pipeline, constraints):
    schema, hve, _, master = pipeline
    return hve.gen_token(master, schema.encode_interest(Interest(constraints)))


class TestPipeline:
    def test_topic_subscription_matches(self, pipeline):
        _, hve, _, _ = pipeline
        ct = publish(pipeline, {"topic": "m&a", "company": "lehman", "urgency": "flash"})
        tok = subscribe(pipeline, {"topic": "m&a"})
        assert hve.query(tok, ct) == b"guid-1234"

    def test_company_specific_interest(self, pipeline):
        _, hve, _, _ = pipeline
        ct = publish(pipeline, {"topic": "earnings", "company": "lehman", "urgency": "routine"})
        lehman_watcher = subscribe(pipeline, {"company": "lehman"})
        acme_watcher = subscribe(pipeline, {"company": "acme"})
        assert hve.query(lehman_watcher, ct) == b"guid-1234"
        assert hve.query(acme_watcher, ct) is None

    def test_conjunctive_interest(self, pipeline):
        _, hve, _, _ = pipeline
        ct = publish(pipeline, {"topic": "m&a", "company": "acme", "urgency": "flash"})
        tok = subscribe(pipeline, {"topic": "m&a", "urgency": "flash", "company": ANY})
        assert hve.query(tok, ct) == b"guid-1234"
        tok2 = subscribe(pipeline, {"topic": "m&a", "urgency": "routine"})
        assert hve.query(tok2, ct) is None

    def test_exhaustive_value_sweep(self, pipeline):
        """Every (published value, subscribed value) combination behaves."""
        schema, hve, _, _ = pipeline
        topics = schema.attribute("topic").values
        for published in topics:
            ct = publish(
                pipeline, {"topic": published, "company": "acme", "urgency": "routine"}
            )
            for wanted in topics:
                tok = subscribe(pipeline, {"topic": wanted})
                assert (hve.query(tok, ct) is not None) == (published == wanted)

    def test_distinct_guids_recovered(self, pipeline):
        _, hve, _, _ = pipeline
        tok = subscribe(pipeline, {"urgency": "flash"})
        for i in range(3):
            guid = f"guid-{i:04d}".encode()
            ct = publish(
                pipeline,
                {"topic": "markets", "company": "globex", "urgency": "flash"},
                guid=guid,
            )
            assert hve.query(tok, ct) == guid
