"""The match memo must eliminate pairings on repeated evaluations.

IP08 cannot short-circuit *within* one evaluation — the pairing product
only reveals match/no-match after the full multi-pairing, which is what
attribute-hiding requires.  What it can do is never evaluate the same
(token, ciphertext) pair twice: ``matches()`` followed by ``query()``,
or a re-broadcast ciphertext, must cost zero pairings the second time.
These tests pin that behaviour through the obs registry's pairing
counters.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.group import PairingGroup
from repro.obs import Observability
from repro.pbe.hve import HVE


@pytest.fixture()
def setup():
    group = PairingGroup("TOY", rng=random.Random(0x5C1))
    hve = HVE(group)
    public, master = hve.setup(4)
    ciphertext = hve.encrypt(public, [1, 0, 1, 0], b"shortcircuit-g!!")
    matching = hve.gen_token(master, [1, 0, None, None])
    missing = hve.gen_token(master, [0, 1, None, None])
    return hve, ciphertext, matching, missing


def _pairings(metrics) -> float:
    return metrics.counter_total("op.pairing")


def test_repeat_query_on_non_match_costs_zero_pairings(setup):
    hve, ciphertext, _, missing = setup
    obs = Observability()
    with obs.installed():
        assert hve.query(missing, ciphertext) is None
        first = _pairings(obs.metrics)
        assert first > 0, "first evaluation must pay real pairings"
        assert hve.query(missing, ciphertext) is None
        assert _pairings(obs.metrics) == first, "memo hit must add no pairings"
        assert obs.metrics.counter_total("op.hve.match_memo_hit") == 1


def test_matches_then_query_single_evaluation(setup):
    hve, ciphertext, matching, _ = setup
    obs = Observability()
    with obs.installed():
        assert hve.matches(matching, ciphertext) is True
        first = _pairings(obs.metrics)
        payload = hve.query(matching, ciphertext)
        assert payload == b"shortcircuit-g!!"
        assert _pairings(obs.metrics) == first
        assert obs.metrics.counter_total("op.hve.match_memo_hit") == 1


def test_distinct_ciphertexts_not_conflated(setup):
    hve, ciphertext, matching, _ = setup
    obs = Observability()
    with obs.installed():
        hve.query(matching, ciphertext)
        first = _pairings(obs.metrics)
        other = hve.encrypt(
            hve.setup(4)[0], [1, 0, 1, 0], b"other-ciphertxt!"
        )  # different key: must NOT hit the memo (and must not match)
        assert hve.query(matching, other) is None
        assert _pairings(obs.metrics) > first


def test_memo_disabled_reevaluates():
    hve = HVE(PairingGroup("TOY"), match_cache_size=0)
    public, master = hve.setup(4)
    ct = hve.encrypt(public, [1, 1, 0, 0], b"memoless-guid!!!")
    token = hve.gen_token(master, [0, 0, None, None])
    obs = Observability()
    with obs.installed():
        assert hve.query(token, ct) is None
        first = _pairings(obs.metrics)
        assert hve.query(token, ct) is None
        assert _pairings(obs.metrics) == 2 * first, "no memo → full re-evaluation"


def test_precompute_disabled_still_memoizes():
    hve_naive = HVE(PairingGroup("TOY"), precompute=False)
    public, master = hve_naive.setup(4)
    ct = hve_naive.encrypt(public, [0, 1, 0, 1], b"naive-memo-guid!")
    token = hve_naive.gen_token(master, [0, 1, None, None])
    obs = Observability()
    with obs.installed():
        assert hve_naive.query(token, ct) == b"naive-memo-guid!"
        first = _pairings(obs.metrics)
        assert hve_naive.query(token, ct) == b"naive-memo-guid!"
        assert _pairings(obs.metrics) == first
