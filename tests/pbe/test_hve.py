"""IP08 HVE: match semantics, wildcards, collusion, serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.group import PairingGroup
from repro.errors import ParameterError, SerializationError
from repro.pbe.hve import HVE, HVEToken
from repro.pbe.serialize import (
    deserialize_hve_ciphertext,
    deserialize_hve_token,
    hve_ciphertext_size,
    hve_token_size,
    serialize_hve_ciphertext,
    serialize_hve_token,
)

GROUP = PairingGroup("TOY")
SCHEME = HVE(GROUP)
N = 6
PUBLIC, MASTER = SCHEME.setup(N)
GUID = b"guid-0123456789abcdef"


def encrypt(bits):
    return SCHEME.encrypt(PUBLIC, list(bits), GUID)


def token(bits):
    return SCHEME.gen_token(MASTER, list(bits))


class TestMatchSemantics:
    def test_exact_match(self):
        ct = encrypt([1, 0, 1, 1, 0, 0])
        assert SCHEME.query(token([1, 0, 1, 1, 0, 0]), ct) == GUID

    def test_single_bit_mismatch(self):
        ct = encrypt([1, 0, 1, 1, 0, 0])
        assert SCHEME.query(token([1, 0, 1, 1, 0, 1]), ct) is None

    def test_wildcards_span_positions(self):
        ct = encrypt([1, 0, 1, 1, 0, 0])
        assert SCHEME.query(token([1, None, None, 1, None, None]), ct) == GUID

    def test_wildcard_and_mismatch(self):
        ct = encrypt([1, 0, 1, 1, 0, 0])
        assert SCHEME.query(token([0, None, None, 1, None, None]), ct) is None

    def test_single_position_token(self):
        ct = encrypt([1, 0, 1, 1, 0, 0])
        assert SCHEME.query(token([None, None, None, None, None, 0]), ct) == GUID
        assert SCHEME.query(token([None, None, None, None, None, 1]), ct) is None

    def test_matches_alias(self):
        ct = encrypt([0, 0, 0, 0, 0, 0])
        assert SCHEME.matches(token([0, 0, None, None, None, None]), ct)
        assert not SCHEME.matches(token([1, None, None, None, None, None]), ct)

    def test_all_zero_vector(self):
        ct = encrypt([0] * N)
        assert SCHEME.query(token([0] * N), ct) == GUID

    def test_payload_integrity(self):
        ct = encrypt([1] * N)
        assert SCHEME.query(token([1] * N), ct) == GUID

    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=N, max_size=N),
        st.lists(st.sampled_from([0, 1, None]), min_size=N, max_size=N),
    )
    def test_query_iff_match(self, x, y):
        if all(value is None for value in y):
            return
        ct = encrypt(x)
        tok = token(y)
        expected = all(y_i is None or y_i == x_i for x_i, y_i in zip(x, y))
        assert (SCHEME.query(tok, ct) == GUID) == expected


class TestValidation:
    def test_bad_vector_length(self):
        with pytest.raises(ParameterError):
            SCHEME.encrypt(PUBLIC, [1, 0], GUID)

    def test_bad_bit_value(self):
        with pytest.raises(ParameterError):
            SCHEME.encrypt(PUBLIC, [2] * N, GUID)

    def test_bad_interest_length(self):
        with pytest.raises(ParameterError):
            SCHEME.gen_token(MASTER, [1, None])

    def test_all_wildcard_rejected(self):
        with pytest.raises(ParameterError):
            SCHEME.gen_token(MASTER, [None] * N)

    def test_bad_interest_value(self):
        with pytest.raises(ParameterError):
            SCHEME.gen_token(MASTER, [7] + [None] * (N - 1))

    def test_setup_rejects_zero_length(self):
        with pytest.raises(ParameterError):
            SCHEME.setup(0)

    def test_token_ciphertext_length_mismatch(self):
        other_public, other_master = SCHEME.setup(3)
        ct = SCHEME.encrypt(other_public, [1, 0, 1], GUID)
        with pytest.raises(ParameterError):
            SCHEME.query(token([1] + [None] * (N - 1)), ct)


class TestIsolationAndCollusion:
    def test_fresh_setup_tokens_useless(self):
        ct = encrypt([1, 0, 1, 1, 0, 0])
        _, other_master = SCHEME.setup(N)
        foreign = SCHEME.gen_token(other_master, [1, 0, 1, 1, 0, 0])
        assert SCHEME.query(foreign, ct) is None

    def test_combined_token_halves_fail(self):
        """Mixing components of two matching tokens must not match.

        Each token shares y₀ afresh, so components from different tokens
        never sum back to y₀.
        """
        ct = encrypt([1, 0, 1, 1, 0, 0])
        token_a = token([1, 0, None, None, None, None])
        token_b = token([None, None, 1, 1, None, None])
        frankenstein = HVEToken(
            n=N,
            positions=token_a.positions + token_b.positions,
            components=token_a.components + token_b.components,
        )
        assert SCHEME.query(frankenstein, ct) is None

    def test_subset_of_token_positions_fails(self):
        """Dropping positions from a token breaks the additive sharing."""
        full = token([1, 0, 1, None, None, None])
        truncated = HVEToken(n=N, positions=full.positions[:2], components=full.components[:2])
        ct = encrypt([1, 0, 1, 1, 0, 0])
        assert SCHEME.query(truncated, ct) is None

    def test_two_mismatched_tokens_stay_mismatched(self):
        ct = encrypt([1, 1, 1, 1, 1, 1])
        assert SCHEME.query(token([0, None, None, None, None, None]), ct) is None
        assert SCHEME.query(token([None, 0, None, None, None, None]), ct) is None


class TestHVESerialization:
    def test_ciphertext_roundtrip(self):
        ct = encrypt([1, 0, 1, 1, 0, 0])
        blob = serialize_hve_ciphertext(GROUP, ct)
        assert len(blob) == hve_ciphertext_size(GROUP, N, len(GUID))
        restored = deserialize_hve_ciphertext(GROUP, blob)
        assert SCHEME.query(token([1, 0, None, None, None, None]), restored) == GUID

    def test_token_roundtrip(self):
        tok = token([1, 0, None, None, None, 1])
        blob = serialize_hve_token(GROUP, tok)
        assert len(blob) == hve_token_size(GROUP, 3)
        restored = deserialize_hve_token(GROUP, blob)
        ct = encrypt([1, 0, 1, 1, 0, 1])
        assert SCHEME.query(restored, ct) == GUID

    def test_truncated_ciphertext_rejected(self):
        blob = serialize_hve_ciphertext(GROUP, encrypt([1] * N))
        with pytest.raises(SerializationError):
            deserialize_hve_ciphertext(GROUP, blob[:-1])

    def test_truncated_token_rejected(self):
        blob = serialize_hve_token(GROUP, token([1] + [None] * (N - 1)))
        with pytest.raises(SerializationError):
            deserialize_hve_token(GROUP, blob[:-1])

    def test_size_formulas_track_n(self):
        for n in (1, 4, 16):
            public, master = SCHEME.setup(n)
            ct = SCHEME.encrypt(public, [0] * n, GUID)
            assert len(serialize_hve_ciphertext(GROUP, ct)) == hve_ciphertext_size(
                GROUP, n, len(GUID)
            )
