"""HVE wildcard-position sweeps.

Systematic coverage of the token wildcard structure: every single-
position token against every attribute vector bit, fully-constrained
(no-wildcard) tokens, the rejected all-wildcard token, and adversarial
near-misses that agree with the ciphertext everywhere except exactly one
position.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.group import PairingGroup
from repro.errors import ParameterError
from repro.pbe.hve import HVE

N = 6
X = [1, 0, 1, 1, 0, 0]
PAYLOAD = b"wildcard-sweep!!"


@pytest.fixture(scope="module")
def setup():
    group = PairingGroup("TOY", rng=random.Random(0x111D))
    hve = HVE(group)
    public, master = hve.setup(N)
    ciphertext = hve.encrypt(public, X, PAYLOAD)
    return hve, master, ciphertext


def test_single_position_sweep(setup):
    """Token constraining only position i matches iff y_i == x_i."""
    hve, master, ciphertext = setup
    for i in range(N):
        for bit in (0, 1):
            y: list[int | None] = [None] * N
            y[i] = bit
            token = hve.gen_token(master, y)
            result = hve.query(token, ciphertext)
            if bit == X[i]:
                assert result == PAYLOAD, f"position {i} bit {bit} should match"
            else:
                assert result is None, f"position {i} bit {bit} should not match"


def test_no_wildcard_exact_vector_matches(setup):
    hve, master, ciphertext = setup
    token = hve.gen_token(master, list(X))
    assert hve.query(token, ciphertext) == PAYLOAD


def test_all_wildcard_token_rejected(setup):
    hve, master, _ = setup
    with pytest.raises(ParameterError):
        hve.gen_token(master, [None] * N)


def test_adversarial_near_miss_sweep(setup):
    """Fully-constrained tokens differing from x in exactly one position
    must all fail — no partial-match leakage at any position."""
    hve, master, ciphertext = setup
    for i in range(N):
        y = list(X)
        y[i] ^= 1
        token = hve.gen_token(master, y)
        assert hve.query(token, ciphertext) is None, f"near-miss at {i} matched"


def test_near_miss_with_wildcards_elsewhere(setup):
    """One wrong constrained position poisons the match even when every
    other position is a wildcard."""
    hve, master, ciphertext = setup
    for i in range(N):
        y: list[int | None] = [None] * N
        y[i] = X[i] ^ 1
        y[(i + 1) % N] = X[(i + 1) % N]  # one correct anchor as well
        token = hve.gen_token(master, y)
        assert hve.query(token, ciphertext) is None


def test_wildcard_count_gradient(setup):
    """Growing the wildcard set of a correct token never breaks the match."""
    hve, master, ciphertext = setup
    for wildcards in range(N):  # 0 .. N-1 wildcard positions
        y: list[int | None] = list(X)
        for j in range(wildcards):
            y[N - 1 - j] = None
        token = hve.gen_token(master, y)
        assert hve.query(token, ciphertext) == PAYLOAD
