"""HVE public/master key serialization and compressed ciphertexts."""

import pytest

from repro.crypto.group import PairingGroup
from repro.errors import SerializationError
from repro.pbe import (
    HVE,
    deserialize_hve_ciphertext,
    deserialize_hve_master_key,
    deserialize_hve_public_key,
    hve_ciphertext_size,
    serialize_hve_ciphertext,
    serialize_hve_master_key,
    serialize_hve_public_key,
)

GROUP = PairingGroup("TOY")
SCHEME = HVE(GROUP)
N = 4
PUBLIC, MASTER = SCHEME.setup(N)
GUID = b"guid-abcdef12345"


class TestHVEKeySerialization:
    def test_public_key_roundtrip_encrypts(self):
        restored = deserialize_hve_public_key(
            GROUP, serialize_hve_public_key(GROUP, PUBLIC)
        )
        ciphertext = SCHEME.encrypt(restored, [1, 0, 1, 0], GUID)
        token = SCHEME.gen_token(MASTER, [1, 0, None, None])
        assert SCHEME.query(token, ciphertext) == GUID

    def test_master_key_roundtrip_mints_tokens(self):
        restored = deserialize_hve_master_key(
            GROUP, serialize_hve_master_key(GROUP, MASTER)
        )
        ciphertext = SCHEME.encrypt(PUBLIC, [1, 0, 1, 0], GUID)
        token = SCHEME.gen_token(restored, [1, 0, 1, 0])
        assert SCHEME.query(token, ciphertext) == GUID

    def test_public_key_bad_length(self):
        data = serialize_hve_public_key(GROUP, PUBLIC)
        with pytest.raises(SerializationError):
            deserialize_hve_public_key(GROUP, data[:-1])

    def test_master_key_bad_length(self):
        data = serialize_hve_master_key(GROUP, MASTER)
        with pytest.raises(SerializationError):
            deserialize_hve_master_key(GROUP, data + b"\x00")


class TestCompressedCiphertexts:
    def test_compressed_roundtrip_queries(self):
        ciphertext = SCHEME.encrypt(PUBLIC, [1, 1, 0, 0], GUID)
        blob = serialize_hve_ciphertext(GROUP, ciphertext, compressed=True)
        restored = deserialize_hve_ciphertext(GROUP, blob)
        token = SCHEME.gen_token(MASTER, [1, 1, None, None])
        assert SCHEME.query(token, restored) == GUID

    def test_compression_halves_point_footprint(self):
        ciphertext = SCHEME.encrypt(PUBLIC, [1, 1, 0, 0], GUID)
        plain = serialize_hve_ciphertext(GROUP, ciphertext)
        packed = serialize_hve_ciphertext(GROUP, ciphertext, compressed=True)
        assert len(plain) == hve_ciphertext_size(GROUP, N, len(GUID))
        assert len(packed) == hve_ciphertext_size(GROUP, N, len(GUID), compressed=True)
        point_savings = 2 * N * (GROUP.g1_bytes - GROUP.g1_bytes_compressed)
        assert len(plain) - len(packed) == point_savings

    def test_unknown_flags_rejected(self):
        ciphertext = SCHEME.encrypt(PUBLIC, [1, 1, 0, 0], GUID)
        blob = bytearray(serialize_hve_ciphertext(GROUP, ciphertext))
        blob[0] = 0x7F
        with pytest.raises(SerializationError):
            deserialize_hve_ciphertext(GROUP, bytes(blob))


class TestCompressedPoints:
    def test_roundtrip_both_parities(self):
        from repro.crypto.curve import Point

        params = GROUP.params
        for scalar in (3, 5, 7, 11, 13):
            point = GROUP.generator * scalar
            restored = Point.from_bytes_compressed(point.to_bytes_compressed(), params)
            assert restored == point

    def test_infinity_roundtrip(self):
        from repro.crypto.curve import Point

        inf = Point.infinity(GROUP.params)
        assert Point.from_bytes_compressed(inf.to_bytes_compressed(), GROUP.params).is_infinity

    def test_invalid_x_rejected(self):
        from repro.crypto.curve import Point
        from repro.errors import NotOnCurveError

        # find an x not on the curve
        q = GROUP.params.q
        width = GROUP.params.q_bytes
        from repro.crypto.field import fq_is_square

        x = 2
        while fq_is_square((x**3 + x) % q, q):
            x += 1
        data = b"\x02" + x.to_bytes(width, "big")
        with pytest.raises(NotOnCurveError):
            Point.from_bytes_compressed(data, GROUP.params)

    def test_windowed_mul_matches_plain_ladder(self):
        from repro.crypto.curve import Point

        def plain(point, k):
            result = Point.infinity(point.params)
            addend = point
            while k:
                if k & 1:
                    result = result + addend
                k >>= 1
                if k:
                    addend = addend + addend
            return result

        point = GROUP.generator
        for scalar in (1, 2, 255, (1 << 64) + 12345, GROUP.order - 1):
            assert point.scalar_mul_windowed(scalar) == plain(point, scalar)
