"""The shipped examples must run clean end to end (they assert internally)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "ma_deal_feed.py",
        "coalition_intel.py",
        "private_chat.py",
        "hardened_deployment.py",
    ],
)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_quickstart_output_content(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "alice received" in output
    assert "bob received nothing" in output
    assert "anon" in output
