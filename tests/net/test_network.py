"""Network timing model: serialization, latency, egress queueing, trace."""

import pytest

from repro.errors import RoutingError
from repro.net.network import Message, Network
from repro.net.simulator import Simulator


def make_net(bandwidth=10_000_000, latency=0.045):
    sim = Simulator()
    net = Network(sim, default_bandwidth_bps=bandwidth, latency_s=latency)
    return sim, net


def msg(size, msg_type="data"):
    return Message(msg_type=msg_type, payload=None, size_bytes=size)


class TestTimingModel:
    def test_serialization_plus_latency(self):
        sim, net = make_net()
        a, b = net.add_host("a"), net.add_host("b")
        arrivals = []

        def receiver():
            _, message = yield b.receive()
            arrivals.append(sim.now)

        sim.process(receiver())
        a.send("b", msg(10_000))  # 10 KB at 10 Mbps = 8 ms + 45 ms latency
        sim.run()
        assert arrivals[0] == pytest.approx(0.008 + 0.045)

    def test_egress_queueing(self):
        """Two back-to-back sends serialize one after the other."""
        sim, net = make_net()
        a, b = net.add_host("a"), net.add_host("b")
        arrivals = []

        def receiver():
            for _ in range(2):
                yield b.receive()
                arrivals.append(sim.now)

        sim.process(receiver())
        a.send("b", msg(10_000))
        a.send("b", msg(10_000))
        sim.run()
        assert arrivals[0] == pytest.approx(0.053)
        assert arrivals[1] == pytest.approx(0.008 + 0.008 + 0.045)

    def test_per_link_bandwidth_override(self):
        """The DS→RS hop runs at LAN speed (paper topology)."""
        sim, net = make_net()
        ds, rs = net.add_host("ds"), net.add_host("rs")
        ds.set_link_bandwidth("rs", 100_000_000)
        arrivals = []

        def receiver():
            yield rs.receive()
            arrivals.append(sim.now)

        sim.process(receiver())
        ds.send("rs", msg(100_000))  # 100 KB at 100 Mbps = 8 ms
        sim.run()
        assert arrivals[0] == pytest.approx(0.008 + 0.045)

    def test_distinct_egress_interfaces_parallel(self):
        """Different senders do not share an egress bottleneck."""
        sim, net = make_net()
        a, b, c = net.add_host("a"), net.add_host("b"), net.add_host("c")
        arrivals = {}

        def receiver():
            for _ in range(2):
                src, _ = yield c.receive()
                arrivals[src] = sim.now

        sim.process(receiver())
        a.send("c", msg(10_000))
        b.send("c", msg(10_000))
        sim.run()
        assert arrivals["a"] == pytest.approx(0.053)
        assert arrivals["b"] == pytest.approx(0.053)

    def test_predicted_arrival_matches(self):
        sim, net = make_net()
        a, b = net.add_host("a"), net.add_host("b")
        predicted = a.send("b", msg(10_000))
        actual = []

        def receiver():
            yield b.receive()
            actual.append(sim.now)

        sim.process(receiver())
        sim.run()
        assert actual[0] == pytest.approx(predicted)


class TestBookkeeping:
    def test_duplicate_host_rejected(self):
        _, net = make_net()
        net.add_host("a")
        with pytest.raises(RoutingError):
            net.add_host("a")

    def test_unknown_destination_rejected(self):
        _, net = make_net()
        a = net.add_host("a")
        with pytest.raises(RoutingError):
            a.send("ghost", msg(10))

    def test_byte_counters(self):
        sim, net = make_net()
        a, b = net.add_host("a"), net.add_host("b")

        def receiver():
            yield b.receive()

        sim.process(receiver())
        a.send("b", msg(1234))
        sim.run()
        assert a.bytes_sent == 1234
        assert b.bytes_received == 1234

    def test_trace_records_eavesdropper_view(self):
        sim, net = make_net()
        a, b = net.add_host("a"), net.add_host("b")
        a.send("b", msg(999, msg_type="secret-request"))
        sim.run()
        record = net.trace[0]
        assert (record.src, record.dst, record.size_bytes) == ("a", "b", 999)
        # wire label is the TLS-level view, not the message type
        assert record.wire_label == "tls"


class TestFailureInjection:
    def test_drop_filter_loses_message(self):
        sim, net = make_net()
        a, b = net.add_host("a"), net.add_host("b")
        net.set_drop_filter(lambda src, dst, message: dst == "b")
        received = []

        def receiver():
            yield b.receive()
            received.append(True)

        sim.process(receiver())
        a.send("b", msg(100))
        sim.run()
        assert not received
        assert len(net.trace) == 1  # still observed on the wire

    def test_drop_filter_selective(self):
        sim, net = make_net()
        a, b = net.add_host("a"), net.add_host("b")
        net.set_drop_filter(lambda src, dst, message: message.msg_type == "bad")
        received = []

        def receiver():
            while True:
                _, message = yield b.receive()
                received.append(message.msg_type)

        sim.process(receiver())
        a.send("b", msg(100, "bad"))
        a.send("b", msg(100, "good"))
        sim.run()
        assert received == ["good"]
