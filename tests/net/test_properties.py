"""Property-based tests of simulator and network invariants."""

from hypothesis import given, settings, strategies as st

from repro.net.network import Message, Network
from repro.net.simulator import Simulator


class TestSimulatorProperties:
    @settings(max_examples=50)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20))
    def test_callbacks_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
        sim.run()
        observed_times = [t for t, _ in fired]
        assert observed_times == sorted(observed_times)
        # each callback fires exactly at its delay
        assert all(t == d for t, d in fired)
        assert len(fired) == len(delays)

    @settings(max_examples=30)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=10),
        st.floats(min_value=0.0, max_value=10.0),
    )
    def test_run_until_is_a_clean_cut(self, delays, cutoff):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run(until=cutoff)
        assert all(d <= cutoff for d in fired)
        assert sim.now == max([cutoff] + [d for d in delays if d <= cutoff])
        sim.run()
        assert sorted(fired) == sorted(delays)

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=30))
    def test_store_preserves_fifo(self, count):
        sim = Simulator()
        store = sim.store()
        received = []

        def consumer():
            for _ in range(count):
                received.append((yield store.get()))

        sim.process(consumer())
        for item in range(count):
            store.put(item)
        sim.run()
        assert received == list(range(count))


class TestNetworkProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=100_000), min_size=1, max_size=15))
    def test_fifo_per_sender_pair(self, sizes):
        """Messages between one host pair arrive in send order, whatever
        their sizes (egress serialization preserves order)."""
        sim = Simulator()
        net = Network(sim)
        a, b = net.add_host("a"), net.add_host("b")
        received = []

        def receiver():
            for _ in range(len(sizes)):
                _, message = yield b.receive()
                received.append(message.headers["index"])

        sim.process(receiver())
        for index, size in enumerate(sizes):
            a.send("b", Message("m", None, size, headers={"index": index}))
        sim.run()
        assert received == list(range(len(sizes)))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=50_000), min_size=1, max_size=10))
    def test_byte_conservation(self, sizes):
        sim = Simulator()
        net = Network(sim)
        a, b = net.add_host("a"), net.add_host("b")

        def receiver():
            for _ in range(len(sizes)):
                yield b.receive()

        sim.process(receiver())
        for size in sizes:
            a.send("b", Message("m", None, size))
        sim.run()
        assert a.bytes_sent == b.bytes_received == sum(sizes)
        assert len(net.trace) == len(sizes)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=1_000_000),
        st.floats(min_value=0.001, max_value=1.0),
    )
    def test_arrival_time_formula(self, size, latency):
        """arrival = ser(size) + ℓ for a single message on an idle egress."""
        sim = Simulator()
        net = Network(sim, default_bandwidth_bps=10_000_000, latency_s=latency)
        a, b = net.add_host("a"), net.add_host("b")
        predicted = a.send("b", Message("m", None, size))
        expected = (size * 8) / 10_000_000 + latency
        assert abs(predicted - expected) < 1e-9


class TestGadgetDot:
    def test_dot_renders_conventions(self):
        from repro.privacy.gadget import pbe_gadget

        dot = pbe_gadget().to_dot()
        assert dot.startswith('digraph "pbe"')
        assert "penwidth=3" in dot  # sensitive elements
        assert 'label="&"' in dot  # AND gates
        assert "color=orange" in dot  # attack gates
        assert dot.rstrip().endswith("}")
