"""Secure channel layer and RPC endpoint tests."""

import pytest

from repro.errors import ChannelClosedError, NetworkError
from repro.net.channel import TLS_RECORD_OVERHEAD, SecureChannelLayer
from repro.net.network import Network
from repro.net.rpc import RpcEndpoint
from repro.net.simulator import Simulator


def make_pair():
    sim = Simulator()
    net = Network(sim)
    a = SecureChannelLayer(net.add_host("a"))
    b = SecureChannelLayer(net.add_host("b"))
    return sim, net, a, b


class TestSecureChannel:
    def test_record_overhead_added(self):
        sim, net, a, b = make_pair()
        a.send("b", "t", None, 1000)
        assert net.trace[0].size_bytes == 1000 + TLS_RECORD_OVERHEAD

    def test_sequence_numbers_increment(self):
        sim, net, a, b = make_pair()
        received = []

        def receiver():
            for _ in range(3):
                _, message = yield b.receive()
                received.append(message.headers["seq"])

        sim.process(receiver())
        for _ in range(3):
            a.send("b", "t", None, 10)
        sim.run()
        assert received == [0, 1, 2]

    def test_loss_detected_via_gap(self):
        sim, net, a, b = make_pair()
        net.set_drop_filter(lambda src, dst, message: message.headers.get("seq") == 1)

        def receiver():
            while True:
                yield b.receive()

        sim.process(receiver())
        for _ in range(3):
            a.send("b", "t", None, 10)
        sim.run()
        assert b.gaps_detected("a") == 1

    def test_closed_channel_rejects_send(self):
        _, _, a, _ = make_pair()
        a.close()
        with pytest.raises(ChannelClosedError):
            a.send("b", "t", None, 10)


class TestRpc:
    def test_call_response(self):
        sim, net, a, b = make_pair()
        ra, rb = RpcEndpoint(a), RpcEndpoint(b)
        rb.serve("double", lambda src, msg: (msg.payload * 2, 8))
        ra.start(), rb.start()
        results = []

        def client():
            results.append((yield ra.call("b", "double", 21, 8)))

        sim.process(client())
        sim.run()
        assert results == [42]

    def test_concurrent_calls_correlate(self):
        sim, net, a, b = make_pair()
        ra, rb = RpcEndpoint(a), RpcEndpoint(b)

        def slow(src, msg):
            yield sim.timeout(1.0 if msg.payload == "slow" else 0.0)
            return ("answer-" + msg.payload, 16)

        rb.serve("work", slow)
        ra.start(), rb.start()
        results = {}

        def client(tag):
            results[tag] = yield ra.call("b", "work", tag, 16)

        sim.process(client("slow"))
        sim.process(client("fast"))
        sim.run()
        assert results == {"slow": "answer-slow", "fast": "answer-fast"}

    def test_duplicate_handler_rejected(self):
        _, _, a, _ = make_pair()
        endpoint = RpcEndpoint(a)
        endpoint.serve("x", lambda s, m: (None, 0))
        with pytest.raises(NetworkError):
            endpoint.serve("x", lambda s, m: (None, 0))

    def test_one_way_cast_handler(self):
        sim, net, a, b = make_pair()
        ra, rb = RpcEndpoint(a), RpcEndpoint(b)
        seen = []
        rb.serve("notify", lambda src, msg: seen.append((src, msg.payload)))
        ra.start(), rb.start()
        ra.cast("b", "notify", "hello", 16)
        sim.run()
        assert seen == [("a", "hello")]

    def test_unknown_request_ignored(self):
        sim, net, a, b = make_pair()
        ra, rb = RpcEndpoint(a), RpcEndpoint(b)
        ra.start(), rb.start()
        fired = []
        reply = ra.call("b", "nope", None, 8)
        reply.add_callback(lambda event: fired.append(True))
        sim.run()
        assert not fired  # no handler: request silently dropped

    def test_generator_handler_simulated_time(self):
        sim, net, a, b = make_pair()
        ra, rb = RpcEndpoint(a), RpcEndpoint(b)

        def handler(src, msg):
            yield sim.timeout(2.0)
            return ("done", 8)

        rb.serve("work", handler)
        ra.start(), rb.start()
        completion = []

        def client():
            yield ra.call("b", "work", None, 8)
            completion.append(sim.now)

        sim.process(client())
        sim.run()
        assert completion[0] > 2.0
