"""Discrete-event simulator core behaviour."""

import pytest

from repro.errors import NetworkError
from repro.net.simulator import Simulator, all_of


class TestClockAndTimeouts:
    def test_initial_time(self):
        assert Simulator().now == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulator()
        ticks = []

        def proc():
            yield sim.timeout(2.5)
            ticks.append(sim.now)

        sim.process(proc())
        sim.run()
        assert ticks == [2.5]

    def test_timeouts_ordered(self):
        sim = Simulator()
        order = []

        def make(delay, tag):
            def proc():
                yield sim.timeout(delay)
                order.append(tag)

            return proc

        sim.process(make(3.0, "c")())
        sim.process(make(1.0, "a")())
        sim.process(make(2.0, "b")())
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            def proc(t=tag):
                yield sim.timeout(1.0)
                order.append(t)
            sim.process(proc())
        sim.run()
        assert order == ["first", "second", "third"]

    def test_run_until(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(10.0)
            fired.append(True)

        sim.process(proc())
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert not fired
        sim.run()
        assert fired

    def test_negative_delay_rejected(self):
        with pytest.raises(NetworkError):
            Simulator().schedule(-1.0, lambda: None)

    def test_timeout_value(self):
        sim = Simulator()
        seen = []

        def proc():
            value = yield sim.timeout(1.0, value="payload")
            seen.append(value)

        sim.process(proc())
        sim.run()
        assert seen == ["payload"]


class TestEventsAndProcesses:
    def test_manual_event(self):
        sim = Simulator()
        event = sim.event()
        seen = []

        def waiter():
            seen.append((yield event))

        def trigger():
            yield sim.timeout(1.0)
            event.succeed(42)

        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert seen == [42]

    def test_event_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(NetworkError):
            event.succeed(2)

    def test_event_failure_raises_in_waiter(self):
        sim = Simulator()
        event = sim.event()
        caught = []

        def waiter():
            try:
                yield event
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(waiter())
        event.fail(ValueError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_process_return_value(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            return "child-result"

        def parent(results):
            value = yield sim.process(child())
            results.append(value)

        results = []
        sim.process(parent(results))
        sim.run()
        assert results == ["child-result"]

    def test_process_must_yield_events(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(NetworkError):
            sim.run()

    def test_waiting_on_triggered_event(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("early")
        seen = []

        def late_waiter():
            seen.append((yield event))

        sim.process(late_waiter())
        sim.run()
        assert seen == ["early"]


class TestStore:
    def test_fifo_order(self):
        sim = Simulator()
        store = sim.store()
        seen = []

        def consumer():
            for _ in range(3):
                seen.append((yield store.get()))

        store.put("a")
        store.put("b")
        sim.process(consumer())
        store.put("c")
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = sim.store()
        seen = []

        def consumer():
            seen.append((yield store.get()))
            seen.append(sim.now)

        def producer():
            yield sim.timeout(3.0)
            store.put("item")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert seen == ["item", 3.0]

    def test_len(self):
        sim = Simulator()
        store = sim.store()
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestAllOf:
    def test_joins_values(self):
        sim = Simulator()
        results = []

        def proc():
            events = [sim.timeout(1.0, "a"), sim.timeout(3.0, "b"), sim.timeout(2.0, "c")]
            values = yield all_of(sim, events)
            results.append((sim.now, values))

        sim.process(proc())
        sim.run()
        assert results == [(3.0, ["a", "b", "c"])]

    def test_empty(self):
        sim = Simulator()
        results = []

        def proc():
            values = yield all_of(sim, [])
            results.append(values)

        sim.process(proc())
        sim.run()
        assert results == [[]]
