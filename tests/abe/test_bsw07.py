"""BSW07 CP-ABE: correctness, policy coverage, collusion resistance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.abe.bsw07 import CPABE, CPABESecretKey
from repro.abe.policy import parse_policy
from repro.crypto.group import PairingGroup
from repro.errors import PolicyError, PolicyNotSatisfiedError

GROUP = PairingGroup("TOY")
SCHEME = CPABE(GROUP)
PUBLIC, MASTER = SCHEME.setup()


def key_for(*attributes):
    return SCHEME.keygen(MASTER, set(attributes))


class TestCorrectness:
    def setup_method(self):
        self.message = GROUP.random_gt()

    def test_single_attribute(self):
        ct = SCHEME.encrypt(PUBLIC, self.message, "a")
        assert SCHEME.decrypt(key_for("a"), ct) == self.message

    def test_and_gate(self):
        ct = SCHEME.encrypt(PUBLIC, self.message, "a and b and c")
        assert SCHEME.decrypt(key_for("a", "b", "c"), ct) == self.message

    def test_or_gate_left_branch(self):
        ct = SCHEME.encrypt(PUBLIC, self.message, "a or b")
        assert SCHEME.decrypt(key_for("a"), ct) == self.message

    def test_or_gate_right_branch(self):
        ct = SCHEME.encrypt(PUBLIC, self.message, "a or b")
        assert SCHEME.decrypt(key_for("b"), ct) == self.message

    def test_threshold_gate(self):
        ct = SCHEME.encrypt(PUBLIC, self.message, "2 of (a, b, c)")
        assert SCHEME.decrypt(key_for("b", "c"), ct) == self.message

    def test_nested_policy(self):
        ct = SCHEME.encrypt(PUBLIC, self.message, "a and (b or 2 of (c, d, e))")
        assert SCHEME.decrypt(key_for("a", "d", "e"), ct) == self.message
        assert SCHEME.decrypt(key_for("a", "b"), ct) == self.message

    def test_duplicate_attribute_in_policy(self):
        # same attribute appears at two leaves; traversal must map components correctly
        ct = SCHEME.encrypt(PUBLIC, self.message, "(a and b) or (a and c)")
        assert SCHEME.decrypt(key_for("a", "c"), ct) == self.message

    def test_extra_attributes_in_key(self):
        ct = SCHEME.encrypt(PUBLIC, self.message, "a")
        assert SCHEME.decrypt(key_for("a", "b", "z"), ct) == self.message

    def test_policy_object_accepted(self):
        ct = SCHEME.encrypt(PUBLIC, self.message, parse_policy("a or b"))
        assert SCHEME.decrypt(key_for("a"), ct) == self.message

    def test_ciphertexts_randomized(self):
        ct1 = SCHEME.encrypt(PUBLIC, self.message, "a")
        ct2 = SCHEME.encrypt(PUBLIC, self.message, "a")
        assert ct1.c_tilde != ct2.c_tilde


class TestRejection:
    def setup_method(self):
        self.message = GROUP.random_gt()

    def test_missing_attribute(self):
        ct = SCHEME.encrypt(PUBLIC, self.message, "a and b")
        with pytest.raises(PolicyNotSatisfiedError):
            SCHEME.decrypt(key_for("a"), ct)

    def test_threshold_not_met(self):
        ct = SCHEME.encrypt(PUBLIC, self.message, "3 of (a, b, c, d)")
        with pytest.raises(PolicyNotSatisfiedError):
            SCHEME.decrypt(key_for("a", "b"), ct)

    def test_empty_attribute_set_rejected_at_keygen(self):
        with pytest.raises(PolicyError):
            SCHEME.keygen(MASTER, set())

    def test_wrong_master_key(self):
        other_public, other_master = SCHEME.setup()
        ct = SCHEME.encrypt(other_public, self.message, "a")
        key = SCHEME.keygen(MASTER, {"a"})  # key from a different authority
        assert SCHEME.decrypt(key, ct) != self.message


class TestCollusionResistance:
    def test_combined_components_fail(self):
        """Two keys, each missing one attribute, cannot be merged.

        The per-key randomizer r differs between the keys, so grafting
        Bob's D_y component onto Alice's key yields garbage.
        """
        message = GROUP.random_gt()
        ct = SCHEME.encrypt(PUBLIC, message, "x and y")
        alice = key_for("x")
        bob = key_for("y")
        merged = CPABESecretKey(
            attributes=frozenset({"x", "y"}),
            d=alice.d,
            components={**alice.components, **bob.components},
        )
        assert SCHEME.decrypt(merged, ct) != message

    def test_merged_with_bobs_d_also_fails(self):
        message = GROUP.random_gt()
        ct = SCHEME.encrypt(PUBLIC, message, "x and y")
        alice = key_for("x")
        bob = key_for("y")
        merged = CPABESecretKey(
            attributes=frozenset({"x", "y"}),
            d=bob.d,
            components={**alice.components, **bob.components},
        )
        assert SCHEME.decrypt(merged, ct) != message

    def test_each_key_alone_fails_cleanly(self):
        message = GROUP.random_gt()
        ct = SCHEME.encrypt(PUBLIC, message, "x and y")
        for key in (key_for("x"), key_for("y")):
            with pytest.raises(PolicyNotSatisfiedError):
                SCHEME.decrypt(key, ct)


class TestProperties:
    @settings(max_examples=8, deadline=None)
    @given(st.sets(st.sampled_from(["a", "b", "c", "d"]), min_size=1))
    def test_decrypts_iff_policy_satisfied(self, attributes):
        message = GROUP.random_gt()
        policy = parse_policy("(a and b) or (c and d)")
        ct = SCHEME.encrypt(PUBLIC, message, policy)
        key = SCHEME.keygen(MASTER, attributes)
        if policy.satisfied_by(attributes):
            assert SCHEME.decrypt(key, ct) == message
        else:
            with pytest.raises(PolicyNotSatisfiedError):
                SCHEME.decrypt(key, ct)
