"""Policy language parser and tree semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.abe.policy import PolicyNode, parse_policy, policy_to_string
from repro.errors import PolicyError


class TestParser:
    def test_single_attribute(self):
        node = parse_policy("org:acme")
        assert node.is_leaf
        assert node.attribute == "org:acme"

    def test_and(self):
        node = parse_policy("a and b")
        assert node.threshold == 2
        assert len(node.children) == 2

    def test_or(self):
        node = parse_policy("a or b or c")
        assert node.threshold == 1
        assert len(node.children) == 3

    def test_threshold_gate(self):
        node = parse_policy("2 of (a, b, c)")
        assert node.threshold == 2
        assert len(node.children) == 3

    def test_nested(self):
        node = parse_policy("a and (b or 2 of (c, d, e))")
        assert node.threshold == 2
        inner_or = node.children[1]
        assert inner_or.threshold == 1
        inner_threshold = inner_or.children[1]
        assert inner_threshold.threshold == 2

    def test_keywords_case_insensitive(self):
        assert parse_policy("a AND b").threshold == 2
        assert parse_policy("a Or b").threshold == 1

    def test_idempotent_on_trees(self):
        node = parse_policy("a and b")
        assert parse_policy(node) is node

    def test_attributes(self):
        assert parse_policy("a and (b or c)").attributes() == {"a", "b", "c"}

    def test_leaves_order(self):
        leaves = parse_policy("a and (b or c) and d").leaves()
        assert [leaf.attribute for leaf in leaves] == ["a", "b", "c", "d"]

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "a and",
            "and a",
            "a b",
            "(a",
            "a)",
            "2 of (a)",
            "0 of (a, b)",
            "5 of (a, b)",
            "2 off (a, b)",
            "a & b",
            "a and or b",
            ",",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(PolicyError):
            parse_policy(bad)

    def test_rejects_mixed_and_or_without_parens(self):
        with pytest.raises(PolicyError):
            parse_policy("a and b or c")

    def test_parenthesized_mixing_ok(self):
        node = parse_policy("(a and b) or c")
        assert node.threshold == 1


class TestSatisfaction:
    def test_and_semantics(self):
        node = parse_policy("a and b")
        assert node.satisfied_by({"a", "b"})
        assert not node.satisfied_by({"a"})
        assert not node.satisfied_by(set())

    def test_or_semantics(self):
        node = parse_policy("a or b")
        assert node.satisfied_by({"b"})
        assert not node.satisfied_by({"c"})

    def test_threshold_semantics(self):
        node = parse_policy("2 of (a, b, c)")
        assert node.satisfied_by({"a", "c"})
        assert not node.satisfied_by({"b"})

    def test_satisfying_children_count(self):
        node = parse_policy("2 of (a, b, c)")
        picked = node.satisfying_children({"a", "b", "c"})
        assert len(picked) == 2

    def test_satisfying_children_unsatisfied_raises(self):
        node = parse_policy("a and b")
        with pytest.raises(PolicyError):
            node.satisfying_children({"a"})

    def test_satisfying_children_on_leaf_raises(self):
        with pytest.raises(PolicyError):
            parse_policy("a").satisfying_children({"a"})

    def test_extra_attributes_ignored(self):
        assert parse_policy("a").satisfied_by({"a", "b", "z"})


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "a and b",
            "a or b or c",
            "2 of (a, b, c)",
            "a and (b or 2 of (c, d, e))",
            "(a and b) or (c and d)",
        ],
    )
    def test_to_string_reparses_equal(self, text):
        tree = parse_policy(text)
        assert parse_policy(policy_to_string(tree)) == tree


class TestNodeValidation:
    def test_leaf_with_children_rejected(self):
        with pytest.raises(PolicyError):
            PolicyNode(attribute="a", threshold=1, children=(PolicyNode.leaf("b"),))

    def test_gate_without_children_rejected(self):
        with pytest.raises(PolicyError):
            PolicyNode(attribute=None, threshold=1, children=())

    def test_gate_bad_threshold_rejected(self):
        with pytest.raises(PolicyError):
            PolicyNode.gate(3, [PolicyNode.leaf("a")])

    def test_helpers(self):
        node = PolicyNode.and_(PolicyNode.leaf("a"), PolicyNode.leaf("b"))
        assert node.threshold == 2
        node = PolicyNode.or_(PolicyNode.leaf("a"), PolicyNode.leaf("b"))
        assert node.threshold == 1


attribute_names = st.sampled_from(["a", "b", "c", "d", "e"])


@st.composite
def policy_trees(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return PolicyNode.leaf(draw(attribute_names))
    num_children = draw(st.integers(min_value=1, max_value=3))
    children = [draw(policy_trees(depth=depth - 1)) for _ in range(num_children)]
    threshold = draw(st.integers(min_value=1, max_value=num_children))
    return PolicyNode.gate(threshold, children)


class TestPolicyProperties:
    @settings(max_examples=60)
    @given(policy_trees(), st.sets(attribute_names))
    def test_satisfying_children_consistent(self, tree, attributes):
        # satisfied_by and satisfying_children must agree at every gate
        if tree.is_leaf:
            return
        if tree.satisfied_by(attributes):
            picked = tree.satisfying_children(attributes)
            assert len(picked) == tree.threshold
        else:
            with pytest.raises(PolicyError):
                tree.satisfying_children(attributes)

    @settings(max_examples=60)
    @given(policy_trees())
    def test_string_roundtrip(self, tree):
        assert parse_policy(policy_to_string(tree)).attributes() == tree.attributes()

    @settings(max_examples=60)
    @given(policy_trees(), st.sets(attribute_names))
    def test_roundtrip_preserves_satisfaction(self, tree, attributes):
        reparsed = parse_policy(policy_to_string(tree))
        assert reparsed.satisfied_by(attributes) == tree.satisfied_by(attributes)
