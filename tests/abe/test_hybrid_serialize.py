"""Hybrid CP-ABE and serialization round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.abe import (
    HybridCPABE,
    cpabe_ciphertext_size,
    deserialize_ciphertext,
    deserialize_hybrid,
    deserialize_secret_key,
    serialize_ciphertext,
    serialize_hybrid,
    serialize_secret_key,
)
from repro.crypto.group import PairingGroup
from repro.errors import DecryptionError, PolicyNotSatisfiedError, SerializationError

GROUP = PairingGroup("TOY")
SCHEME = HybridCPABE(GROUP)
PUBLIC, MASTER = SCHEME.setup()
KEY = SCHEME.keygen(MASTER, {"org:acme", "role:analyst"})


class TestHybrid:
    def test_roundtrip(self):
        ct = SCHEME.encrypt(PUBLIC, b"payload", "org:acme")
        assert SCHEME.decrypt(KEY, ct) == b"payload"

    def test_empty_payload(self):
        ct = SCHEME.encrypt(PUBLIC, b"", "org:acme")
        assert SCHEME.decrypt(KEY, ct) == b""

    def test_large_payload(self):
        payload = bytes(range(256)) * 64  # 16 KiB
        ct = SCHEME.encrypt(PUBLIC, payload, "org:acme and role:analyst")
        assert SCHEME.decrypt(KEY, ct) == payload

    def test_policy_not_satisfied(self):
        ct = SCHEME.encrypt(PUBLIC, b"secret", "org:other")
        with pytest.raises(PolicyNotSatisfiedError):
            SCHEME.decrypt(KEY, ct)

    def test_tampered_dem_detected(self):
        ct = SCHEME.encrypt(PUBLIC, b"secret", "org:acme")
        tampered = type(ct)(kem=ct.kem, sealed=ct.sealed[:-1] + bytes([ct.sealed[-1] ^ 1]))
        with pytest.raises(DecryptionError):
            SCHEME.decrypt(KEY, tampered)

    @settings(max_examples=5, deadline=None)
    @given(st.binary(max_size=256))
    def test_roundtrip_property(self, payload):
        ct = SCHEME.encrypt(PUBLIC, payload, "org:acme")
        assert SCHEME.decrypt(KEY, ct) == payload


class TestSerialization:
    def test_ciphertext_roundtrip(self):
        message = GROUP.random_gt()
        ct = SCHEME.abe.encrypt(PUBLIC, message, "a and (b or c)")
        restored = deserialize_ciphertext(GROUP, serialize_ciphertext(GROUP, ct))
        assert restored.c_tilde == ct.c_tilde
        assert restored.c == ct.c
        assert restored.leaf_components == ct.leaf_components
        assert restored.policy == ct.policy

    def test_restored_ciphertext_decrypts(self):
        ct = SCHEME.encrypt(PUBLIC, b"bytes", "org:acme")
        restored = deserialize_hybrid(GROUP, serialize_hybrid(GROUP, ct))
        assert SCHEME.decrypt(KEY, restored) == b"bytes"

    def test_secret_key_roundtrip(self):
        restored = deserialize_secret_key(GROUP, serialize_secret_key(GROUP, KEY))
        assert restored.attributes == KEY.attributes
        ct = SCHEME.encrypt(PUBLIC, b"bytes", "role:analyst")
        assert SCHEME.decrypt(restored, ct) == b"bytes"

    def test_truncated_rejected(self):
        ct = SCHEME.encrypt(PUBLIC, b"bytes", "org:acme")
        blob = serialize_hybrid(GROUP, ct)
        with pytest.raises(SerializationError):
            deserialize_hybrid(GROUP, blob[: len(blob) // 2])

    def test_trailing_bytes_rejected(self):
        ct = SCHEME.encrypt(PUBLIC, b"bytes", "org:acme")
        with pytest.raises(SerializationError):
            deserialize_hybrid(GROUP, serialize_hybrid(GROUP, ct) + b"\x00")

    def test_size_model_close_to_actual(self):
        payload = b"x" * 1000
        ct = SCHEME.encrypt(PUBLIC, payload, "org:acme and role:analyst")
        actual = len(serialize_hybrid(GROUP, ct))
        predicted = cpabe_ciphertext_size(GROUP, num_leaves=2, payload_len=len(payload))
        # the model uses a nominal attribute-name length; allow small slack
        assert abs(actual - predicted) < 100

    def test_size_grows_linearly_with_leaves(self):
        sizes = []
        for policy, leaves in [("a", 1), ("a and b", 2), ("a and b and c and d", 4)]:
            ct = SCHEME.encrypt(PUBLIC, b"p", policy)
            sizes.append(len(serialize_hybrid(GROUP, ct)))
        per_leaf = (sizes[2] - sizes[0]) / 3
        assert per_leaf == pytest.approx(2 * GROUP.g1_bytes + 2 * 4 + 4 + 1, abs=16)
