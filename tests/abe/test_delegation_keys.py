"""BSW07 key delegation and public/master key serialization."""

import pytest

from repro.abe.bsw07 import CPABE
from repro.abe.serialize import (
    deserialize_master_key,
    deserialize_public_key,
    serialize_master_key,
    serialize_public_key,
)
from repro.crypto.group import PairingGroup
from repro.errors import PolicyError, PolicyNotSatisfiedError, SerializationError

GROUP = PairingGroup("TOY")
SCHEME = CPABE(GROUP)
PUBLIC, MASTER = SCHEME.setup()


class TestDelegation:
    def test_delegated_key_decrypts_within_subset(self):
        parent = SCHEME.keygen(MASTER, {"a", "b", "c"})
        child = SCHEME.delegate(PUBLIC, parent, {"a", "b"})
        message = GROUP.random_gt()
        ciphertext = SCHEME.encrypt(PUBLIC, message, "a and b")
        assert SCHEME.decrypt(child, ciphertext) == message

    def test_delegated_key_lacks_dropped_attribute(self):
        parent = SCHEME.keygen(MASTER, {"a", "b", "c"})
        child = SCHEME.delegate(PUBLIC, parent, {"a"})
        ciphertext = SCHEME.encrypt(PUBLIC, GROUP.random_gt(), "a and c")
        with pytest.raises(PolicyNotSatisfiedError):
            SCHEME.decrypt(child, ciphertext)

    def test_cannot_delegate_unheld_attribute(self):
        parent = SCHEME.keygen(MASTER, {"a"})
        with pytest.raises(PolicyError):
            SCHEME.delegate(PUBLIC, parent, {"a", "z"})

    def test_cannot_delegate_empty_set(self):
        parent = SCHEME.keygen(MASTER, {"a"})
        with pytest.raises(PolicyError):
            SCHEME.delegate(PUBLIC, parent, set())

    def test_delegated_keys_do_not_collude(self):
        """Two delegations from one parent use fresh randomizers."""
        from repro.abe.bsw07 import CPABESecretKey

        parent = SCHEME.keygen(MASTER, {"x", "y"})
        child_x = SCHEME.delegate(PUBLIC, parent, {"x"})
        child_y = SCHEME.delegate(PUBLIC, parent, {"y"})
        message = GROUP.random_gt()
        ciphertext = SCHEME.encrypt(PUBLIC, message, "x and y")
        merged = CPABESecretKey(
            attributes=frozenset({"x", "y"}),
            d=child_x.d,
            components={**child_x.components, **child_y.components},
        )
        assert SCHEME.decrypt(merged, ciphertext) != message

    def test_two_level_delegation(self):
        parent = SCHEME.keygen(MASTER, {"a", "b", "c"})
        child = SCHEME.delegate(PUBLIC, parent, {"a", "b"})
        grandchild = SCHEME.delegate(PUBLIC, child, {"a"})
        message = GROUP.random_gt()
        ciphertext = SCHEME.encrypt(PUBLIC, message, "a")
        assert SCHEME.decrypt(grandchild, ciphertext) == message


class TestKeySerialization:
    def test_public_key_roundtrip(self):
        data = serialize_public_key(GROUP, PUBLIC)
        restored = deserialize_public_key(GROUP, data)
        message = GROUP.random_gt()
        ciphertext = SCHEME.encrypt(restored, message, "a")
        key = SCHEME.keygen(MASTER, {"a"})
        assert SCHEME.decrypt(key, ciphertext) == message

    def test_master_key_roundtrip(self):
        data = serialize_master_key(GROUP, MASTER)
        restored = deserialize_master_key(GROUP, data)
        key = SCHEME.keygen(restored, {"a"})
        message = GROUP.random_gt()
        ciphertext = SCHEME.encrypt(PUBLIC, message, "a")
        assert SCHEME.decrypt(key, ciphertext) == message

    def test_public_key_trailing_bytes_rejected(self):
        data = serialize_public_key(GROUP, PUBLIC)
        with pytest.raises(SerializationError):
            deserialize_public_key(GROUP, data + b"\x00")

    def test_master_key_bad_length_rejected(self):
        with pytest.raises(SerializationError):
            deserialize_master_key(GROUP, b"\x00" * 5)
