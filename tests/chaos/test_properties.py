"""Property-based chaos tests: random fault schedules, small workloads.

Two tiers, matching the cost of each property:

* cheap structural properties of schedules and injection (many
  Hypothesis examples) — round-trips, determinism, budget discipline;
* the headline delivery property (few examples, each a full crypto
  run): under any generated schedule whose loss stays within the retry
  budget — drops and partitions bounded in hit count / window length —
  every subscriber receives exactly its oracle set.
"""

from hypothesis import given, settings, strategies as st

from repro.chaos import Fault, FaultSchedule, run_chaos
from repro.chaos.inject import SimFaultInjector
from repro.chaos.schedule import PROFILES
from repro.cluster.router import shard_names
from repro.net.network import Message, Network
from repro.net.simulator import Simulator

SUBS = ["sub00", "sub01"]

seeds = st.integers(min_value=0, max_value=2**31 - 1)
profile_names = st.sampled_from(sorted(PROFILES))


# a budget-respecting fault, the generator's contract in miniature:
# loss kinds only on the retried retrieval path, bounded hits/windows
budgeted_faults = st.one_of(
    st.builds(
        Fault,
        kind=st.just("drop"),
        start=st.floats(min_value=0.0, max_value=0.3),
        end=st.floats(min_value=0.5, max_value=1.0),
        src=st.sampled_from(["anon", "sub00", "sub01"]),
        dst=st.just("rs"),
        hits=st.sets(st.integers(min_value=1, max_value=4), min_size=1, max_size=2).map(
            lambda s: tuple(sorted(s))
        ),
    ).map(lambda f: Fault(f.kind, f.start, f.end, src=f.src, dst="rs" if f.src == "anon" else "anon", hits=f.hits)),
    st.builds(
        Fault,
        kind=st.sampled_from(["delay", "reorder"]),
        start=st.floats(min_value=0.0, max_value=0.3),
        end=st.floats(min_value=0.4, max_value=1.0),
        src=st.sampled_from(["ds", "pub", "anon"]),
        dst=st.sampled_from(["sub*", "ds", "rs"]),
        delay_s=st.floats(min_value=0.01, max_value=0.4),
    ),
    st.builds(
        Fault,
        kind=st.just("duplicate"),
        start=st.floats(min_value=0.0, max_value=0.3),
        end=st.floats(min_value=0.4, max_value=1.0),
        src=st.sampled_from(["ds", "anon"]),
        dst=st.sampled_from(["sub*", "rs"]),
        delay_s=st.floats(min_value=0.01, max_value=0.2),
        hits=st.just((1,)),
    ),
    st.builds(
        Fault,
        kind=st.just("partition"),
        start=st.floats(min_value=0.0, max_value=0.2),
        end=st.floats(min_value=0.3, max_value=0.6),  # heals within the budget
        node=st.just("anon"),
    ),
)

budgeted_schedules = st.lists(budgeted_faults, min_size=0, max_size=4).map(
    lambda faults: FaultSchedule(seed=0, profile="property", faults=tuple(faults))
)


class TestScheduleProperties:
    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, profile=profile_names)
    def test_generation_is_a_pure_function_of_the_seed(self, seed, profile):
        a = FaultSchedule.generate(seed, profile, SUBS)
        b = FaultSchedule.generate(seed, profile, SUBS)
        assert a == b

    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, profile=profile_names)
    def test_json_round_trip_is_lossless(self, seed, profile):
        schedule = FaultSchedule.generate(seed, profile, SUBS)
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, profile=profile_names)
    def test_generated_loss_respects_the_retry_budget(self, seed, profile):
        prof = PROFILES[profile]
        retried = set()
        for rs in shard_names("rs", prof.rs_shards):
            retried |= {("anon", rs), (rs, "anon")}
        for name in SUBS:
            retried |= {(name, "anon"), ("anon", name)}
        for ds in shard_names("ds", prof.ds_shards):
            retried.add(("pub", ds))
        for fault in FaultSchedule.generate(seed, profile, SUBS).faults:
            if fault.kind == "drop":
                assert (fault.src, fault.dst) in retried
                assert 1 <= len(fault.hits) <= prof.max_loss_hits
            elif fault.kind == "partition":
                assert fault.node in prof.partition_targets
                assert fault.end - fault.start <= prof.max_partition_s + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(schedule=budgeted_schedules, frames=st.integers(min_value=1, max_value=8))
    def test_injector_conserves_or_drops_frames(self, schedule, frames):
        """Every transmitted frame is delivered 0, 1, or 2 times — never lost
        by accounting, never multiplied beyond one duplicate."""
        sim = Simulator()
        network = Network(sim, latency_s=0.01)
        src = network.add_host("anon")
        network.add_host("rs")
        network.set_fault_injector(SimFaultInjector(schedule, sim))
        for _ in range(frames):
            src.send("rs", Message("m", b"x", size_bytes=10))
        sim.run()
        delivered = len(network.host("rs").inbox)
        assert 0 <= delivered <= 2 * frames


class TestDeliveryProperty:
    """The headline invariant, over random budget-respecting schedules.

    Each example is a full HVE/CP-ABE run, so the example count is kept
    deliberately small; the seeded profile battery in test_runner.py
    covers breadth, this covers schedule shapes no profile generates.
    """

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=999), schedule=budgeted_schedules)
    def test_delivery_matches_oracle_under_budgeted_faults(self, seed, schedule):
        report = run_chaos(seed, "smoke", schedule=schedule)
        assert report.passed, [f.to_dict() for f in report.failures()]

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=999))
    def test_generated_profile_schedules_pass(self, seed):
        report = run_chaos(seed, "default")
        assert report.passed, [f.to_dict() for f in report.failures()]
