"""Live parity under faults: the demo scenario through a fault proxy.

The PR 3 parity guarantee — the TCP deployment delivers exactly what
the simulator delivers — re-proven with a :class:`FaultProxy` in front
of the anonymizer tearing connections and delaying frames, and a
dispatch shim duplicating DELIVER pushes at every subscriber.  Three
fixed seeds; each run must end with simulator-equal delivery sets and a
reassemblable span trace despite the reconnects and retries underneath.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.chaos.proxy import FaultProxy, duplicate_dispatch, interpose
from repro.live.deployment import LiveDeployment
from repro.live.scenario import default_scenario, run_on_simulator
from repro.mq import messages as frames
from repro.obs import Observability
from repro.obs.ring import DEFAULT_FLIGHT_RECORDER_CAPACITY

from ..live.conftest import run_async

pytestmark = pytest.mark.live

SEEDS = (3, 5, 9)


async def _run_faulted(scenario, config, expected, seed):
    """The live scenario with anon proxied, armed after the setup phase."""
    deployment = LiveDeployment(config)
    await deployment.start()
    proxies: dict[str, FaultProxy] = {}
    try:
        # interpose on the anonymizer only: it carries exactly the
        # retried retrieval path, so every injected tear is survivable
        proxies = await interpose(
            deployment,
            ["anon"],
            seed=seed,
            tear_every_conns=2,
            tear_after_chunks_max=4,
            delay_every_chunks=3,
            delay_s=0.02,
        )
        for spec in scenario.subscribers:
            subscriber = await deployment.add_subscriber(
                spec.name, set(spec.attributes), retry_delay_s=0.1
            )
            # a torn connection must surface as a retryable timeout well
            # inside the test budget, not the 15s production default
            subscriber.endpoint.call_timeout_s = 2.0
            duplicate_dispatch(subscriber.endpoint, frames.DELIVER, every=2)
            for interest in spec.interests:
                await subscriber.subscribe(interest)
        for proxy in proxies.values():
            proxy.arm()
        publisher = await deployment.add_publisher(scenario.publisher_name)
        for publication in scenario.publications:
            await publisher.publish(
                publication.metadata_dict,
                publication.payload,
                policy=publication.policy,
                ttl_s=publication.ttl_s,
            )
        await asyncio.gather(
            *(
                deployment.subscribers[name].wait_for_deliveries(len(payloads), 60.0)
                for name, payloads in expected.items()
                if payloads
            )
        )
        await asyncio.sleep(0.3)  # let acks, spans, and counters settle
        for proxy in proxies.values():
            proxy.disarm()
        delivered = {
            name: tuple(sorted(d.payload for d in subscriber.stats.deliveries))
            for name, subscriber in deployment.subscribers.items()
        }
        stats = {
            name: subscriber.stats
            for name, subscriber in deployment.subscribers.items()
        }
        aggregator = await deployment.scrape()
        proxy_counters = {
            name: {"tears": p.tears, "delays": p.delays, "connections": p.connections}
            for name, p in proxies.items()
        }
        return delivered, stats, aggregator, proxy_counters
    finally:
        for proxy in proxies.values():
            await proxy.close()
        await deployment.close()


class TestLiveParityUnderFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_delivery_sets_match_simulator(self, seed):
        scenario = default_scenario()
        obs = Observability(span_capacity=DEFAULT_FLIGHT_RECORDER_CAPACITY)
        try:
            from repro.core.config import P3SConfig

            config = P3SConfig(obs=obs)
            expected = run_on_simulator(scenario, config)
            delivered, stats, aggregator, proxy_counters = run_async(
                _run_faulted(scenario, config, expected, seed)
            )
        finally:
            obs.uninstall()

        # the headline: sim-vs-TCP delivery equality despite the faults
        assert delivered == expected

        # the proxy actually interfered with steady-state traffic
        counters = proxy_counters["anon"]
        assert counters["connections"] > 0
        assert counters["tears"] + counters["delays"] > 0

        # the DELIVER duplication shim fired and was absorbed by dedup:
        # nobody delivered more than the oracle, and at least one
        # duplicate notification was suppressed across the fleet
        assert sum(s.duplicates_suppressed for s in stats.values()) > 0

        # span-trace reassembly survives the chaos: every service
        # scraped, and the publish->deliver causal chain is present
        assert aggregator.all_ready
        span_names = {span["name"] for span in aggregator.spans()}
        assert "subscriber.retrieve" in span_names
        latency = aggregator.latency_summary()
        assert latency["count"] >= sum(1 for p in expected.values() for _ in p)
