"""Chaos → SLO loop closure: injected faults must surface as burn-rate
alerts, clean runs must stay silent, and everything must clear.

The unit half feeds :func:`check_alerting` hand-built states (it is
pure in its inputs); the integration half runs real seeded chaos runs
with the alerting ``ci`` profile.
"""

from repro.chaos.invariants import check_alerting
from repro.chaos.runner import run_chaos
from repro.chaos.schedule import PROFILES, FaultSchedule


def _report(slos: dict, alerts: list) -> dict:
    return {"slos": slos, "alerts": alerts, "active_alerts": []}


def _slo(good: int, bad: int) -> dict:
    return {"good": good, "bad": bad}


def _alert(slo: str, cleared: bool = True) -> dict:
    return {
        "slo": slo,
        "severity": "page",
        "window": "0.25s/1s",
        "labels": {},
        "fired_at": 0.2,
        "cleared_at": 0.6 if cleared else None,
    }


def _rows(results) -> dict:
    return {result.name: result for result in results}


SCHEDULE = {"faults": [{"kind": "drop", "src": "pub", "dst": "ds"}]}


class TestCheckAlerting:
    def test_degradation_without_alert_fails_detection(self):
        # the engine's promise: a bad event in a mapped SLO must alert
        rows = _rows(
            check_alerting(
                _report({"delivery_latency": _slo(good=2, bad=1)}, alerts=[]),
                [{"kind": "drop", "src": "pub", "dst": "ds", "fault": 0}],
                SCHEDULE,
            )
        )
        assert not rows["alerting.expected_fired"].passed
        assert "delivery_latency" in rows["alerting.expected_fired"].detail

    def test_fault_absorbed_inside_threshold_is_waived(self):
        # a drop retried inside the latency budget leaves no bad event;
        # requiring an alert there would make the invariant seed-lucky
        rows = _rows(
            check_alerting(
                _report({"delivery_latency": _slo(good=3, bad=0)}, alerts=[]),
                [{"kind": "drop", "src": "pub", "dst": "ds", "fault": 0}],
                SCHEDULE,
            )
        )
        assert rows["alerting.expected_fired"].passed

    def test_expected_alert_firing_passes(self):
        rows = _rows(
            check_alerting(
                _report(
                    {"delivery_latency": _slo(good=2, bad=1)},
                    alerts=[_alert("delivery_latency")],
                ),
                [{"kind": "partition", "src": "ds", "dst": "sub0", "fault": 0}],
                SCHEDULE,
            )
        )
        assert all(row.passed for row in rows.values())

    def test_unexplained_alert_is_spurious(self):
        rows = _rows(
            check_alerting(
                _report(
                    {"delivery_latency": _slo(good=2, bad=1)},
                    alerts=[_alert("delivery_latency")],
                ),
                [],  # nothing was injected
                {"faults": []},
            )
        )
        assert not rows["alerting.no_spurious"].passed

    def test_duplicate_away_from_subscribers_explains_nothing(self):
        # a duplicated DS->RS store frame is absorbed idempotently; an
        # integrity alert cannot be pinned on it
        rows = _rows(
            check_alerting(
                _report(
                    {"delivery_integrity": _slo(good=2, bad=1)},
                    alerts=[_alert("delivery_integrity")],
                ),
                [{"kind": "duplicate", "src": "ds", "dst": "rs", "fault": 0}],
                {"faults": [{"kind": "duplicate", "src": "ds", "dst": "rs"}]},
            )
        )
        assert not rows["alerting.no_spurious"].passed

    def test_duplicate_to_subscriber_explains_integrity(self):
        rows = _rows(
            check_alerting(
                _report(
                    {"delivery_integrity": _slo(good=2, bad=1)},
                    alerts=[_alert("delivery_integrity")],
                ),
                [{"kind": "duplicate", "src": "ds", "dst": "sub1", "fault": 0}],
                {"faults": [{"kind": "duplicate", "src": "ds", "dst": "sub1"}]},
            )
        )
        assert all(row.passed for row in rows.values())

    def test_stuck_alert_fails_all_cleared(self):
        rows = _rows(
            check_alerting(
                _report(
                    {"delivery_latency": _slo(good=2, bad=1)},
                    alerts=[_alert("delivery_latency", cleared=False)],
                ),
                [{"kind": "drop", "src": "pub", "dst": "ds", "fault": 0}],
                SCHEDULE,
            )
        )
        assert rows["alerting.expected_fired"].passed
        assert not rows["alerting.all_cleared"].passed

    def test_clean_report_passes_everything(self):
        rows = _rows(check_alerting(_report({}, alerts=[]), [], {"faults": []}))
        assert all(row.passed for row in rows.values())


class TestChaosAlertingIntegration:
    def test_ci_profile_enables_alerting(self):
        assert PROFILES["ci"].alerts
        assert not PROFILES["default"].alerts

    def test_faulted_run_fires_and_clears(self):
        # seed 36: duplicate-to-subscriber + partition — both mapped
        # alert families fire, and every alert clears by quiescence
        report = run_chaos(36, "ci")
        assert report.passed, [r for r in report.invariants if not r.passed]
        assert report.slo is not None
        fired = {alert["slo"] for alert in report.slo["alerts"]}
        assert fired == {"delivery_latency", "delivery_integrity"}
        assert report.slo["active_alerts"] == []
        families = {result.family for result in report.invariants}
        assert "alerting" in families

    def test_clean_run_fires_nothing(self):
        schedule = FaultSchedule(seed=7, profile="ci")
        report = run_chaos(7, "ci", schedule=schedule)
        assert report.passed
        assert report.slo["alerts"] == []
        assert all(
            entry["bad"] == 0 for entry in report.slo["slos"].values()
        )

    def test_slo_section_replays_bit_identically(self):
        first = run_chaos(14, "ci")
        second = run_chaos(14, "ci")
        assert first.to_json() == second.to_json()
        assert first.slo["alerts"], "seed 14's drop/delay faults must alert"

    def test_non_alerting_profile_has_no_slo_section(self):
        report = run_chaos(3, "smoke")
        assert report.slo is None
        assert "slo" not in report.to_dict()
