"""Composed faults: a network partition racing a WAL snapshot crash.

The scenario the PR 6 store battery cannot produce alone: *while* the
anonymizer is partitioned off (retrieval traffic failing and retrying),
the RS's WAL engine crashes mid-snapshot.  Recovery must hand back
exactly the committed pre-crash state — every publication whose store
call returned, nothing lost, nothing resurrected — and ciphertext that
was TTL-expired and compacted away before the crash must stay
physically absent from every store file (§4.3's verified deletion).
"""

import pytest

from repro.chaos import Fault, FaultSchedule, SimFaultInjector, check_durability
from repro.chaos.invariants import scan_files_for
from repro.chaos.oracle import chaos_schema, generate_scenario
from repro.core.config import P3SConfig
from repro.core.system import P3SSystem
from repro.store import FaultPlan, SimulatedCrash, WalEngine

SEED = 13
PARTITION = FaultSchedule(
    seed=SEED,
    profile="composed-crash",
    faults=(Fault("partition", 0.0, 0.6, node="anon"),),
)


@pytest.fixture
def durable_system(tmp_path):
    config = P3SConfig(schema=chaos_schema()).with_(
        store_backend="wal",
        data_dir=str(tmp_path),
        store_fsync=False,
        store_snapshot_every=4,  # small: the publication burst crosses it
    )
    system = P3SSystem(config)
    yield system, str(tmp_path / "rs")
    system.ds.close_match_pool()
    system.ds.store.close()


def test_partition_plus_snapshot_crash_recovers_committed_state(durable_system):
    system, rs_dir = durable_system
    scenario = generate_scenario(SEED, n_subscribers=3, n_publications=6)
    for spec in scenario.subscribers:
        subscriber = system.add_subscriber(spec.name, attributes=set(spec.attributes))
        subscriber.call_timeout_s = 0.3
        subscriber.retry_delay_s = 0.1
        for interest in spec.interests:
            system.subscribe(subscriber, interest)
    system.run()

    # phase 1: a short-TTL publication, expired and compacted away
    # before the crash — its ciphertext must never come back
    publisher = system.add_publisher(scenario.publisher_name)
    publisher.publish(
        scenario.publications[0].metadata_dict,
        b"ephemeral-secret-payload",
        policy=scenario.publications[0].policy,
        ttl_s=0.2,
    )
    system.run()
    engine = system.rs.store.engine
    (expired_guid,) = [g for g, _ in engine.items("items")]
    expired_ciphertext = system.rs.store._items[expired_guid].ciphertext
    removed = system.rs.store.collect_garbage(system.now + 10_000.0, compact=True)
    assert removed == 1
    assert scan_files_for(rs_dir, expired_ciphertext) == []

    # phase 2: mirror committed state (successful returns only), arm the
    # snapshot crash and the partition, publish through both
    committed: dict[bytes, bytes] = {}
    in_flight: list[bytes] = []

    def tracked_put(ns, key, value, _put=engine.put):
        in_flight.append(bytes(key))
        lsn = _put(ns, key, value)
        committed[bytes(key)] = bytes(value)
        in_flight.pop()
        return lsn

    engine.put = tracked_put
    engine._faults = FaultPlan("snapshot.before_rename")
    injector = SimFaultInjector(PARTITION, system.sim, epoch=system.now)
    system.set_fault_injector(injector)
    # stagger the submissions so the 4th RS put (the snapshot trigger)
    # lands while earlier publications' retrievals are still retrying
    # against the partitioned anonymizer — the two faults must overlap
    for index, publication in enumerate(scenario.publications):
        system.sim.schedule(
            index * 0.08,
            lambda p=publication: publisher.publish(
                p.metadata_dict, p.payload, policy=p.policy, ttl_s=p.ttl_s
            ),
        )
    with pytest.raises(SimulatedCrash):
        system.run()
    system.set_fault_injector(None)
    assert len(in_flight) == 1  # the put whose snapshot died
    assert any(entry["kind"] == "partition" for entry in injector.applied_summary())

    # recovery: a crash runs no destructors — abandon the handle, reopen
    recovered_engine = WalEngine(rs_dir, fsync=False)
    try:
        recovered = dict(recovered_engine.items("items"))
        # the in-flight record's WAL append completed before the snapshot
        # started, so recovery legally replays it; nothing else may differ
        expected = dict(committed)
        expected[in_flight[0]] = recovered[in_flight[0]]
        results = check_durability(expected, recovered)
        assert all(r.passed for r in results), [r.to_dict() for r in results]
        # the pre-crash expired item stays dead: not in the recovered
        # state, its ciphertext in no surviving store file
        assert expired_guid not in recovered
        assert scan_files_for(rs_dir, expired_ciphertext) == []
        # and the reopened store is writable again
        recovered_engine.put("items", b"post-crash", b"ok")
        assert recovered_engine.get("items", b"post-crash") == b"ok"
    finally:
        recovered_engine.close()


def test_crash_free_partition_run_keeps_store_consistent(durable_system):
    """Control: the same partition without the WAL fault loses nothing."""
    system, rs_dir = durable_system
    scenario = generate_scenario(SEED, n_subscribers=3, n_publications=6)
    for spec in scenario.subscribers:
        subscriber = system.add_subscriber(spec.name, attributes=set(spec.attributes))
        subscriber.call_timeout_s = 0.3
        subscriber.retry_delay_s = 0.1
        for interest in spec.interests:
            system.subscribe(subscriber, interest)
    system.run()
    injector = SimFaultInjector(PARTITION, system.sim, epoch=system.now)
    system.set_fault_injector(injector)
    publisher = system.add_publisher(scenario.publisher_name)
    for publication in scenario.publications:
        publisher.publish(
            publication.metadata_dict,
            publication.payload,
            policy=publication.policy,
            ttl_s=publication.ttl_s,
        )
    system.run()
    system.set_fault_injector(None)
    engine = system.rs.store.engine
    committed = dict(engine.items("items"))
    assert len(committed) == len(scenario.publications)
    recovered_engine = WalEngine(rs_dir, fsync=False)
    try:
        results = check_durability(committed, dict(recovered_engine.items("items")))
        assert all(r.passed for r in results), [r.to_dict() for r in results]
    finally:
        recovered_engine.close()
