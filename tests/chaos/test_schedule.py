"""Schedules: seeded generation, serialization, matching, injection, shrinking."""

import pytest

from repro.chaos.inject import SimFaultInjector
from repro.chaos.schedule import (
    FAULT_KINDS,
    PROFILES,
    Fault,
    FaultSchedule,
    minimize_schedule,
)
from repro.cluster.router import shard_names
from repro.net.network import Message, Network
from repro.net.simulator import Simulator

SUBS = ["sub00", "sub01", "sub02"]


class TestFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("meteor", 0.0, 1.0)

    def test_window_is_half_open(self):
        fault = Fault("drop", 1.0, 2.0)
        assert not fault.in_window(0.999)
        assert fault.in_window(1.0)
        assert fault.in_window(1.999)
        assert not fault.in_window(2.0)

    def test_link_matching_exact_wildcard_prefix(self):
        assert Fault("drop", 0, 1, src="anon", dst="rs").matches_link("anon", "rs")
        assert not Fault("drop", 0, 1, src="anon", dst="rs").matches_link("rs", "anon")
        assert Fault("drop", 0, 1, src="*", dst="sub*").matches_link("ds", "sub07")
        assert not Fault("drop", 0, 1, src="*", dst="sub*").matches_link("ds", "pub")

    def test_partition_matches_either_direction(self):
        fault = Fault("partition", 0, 1, node="anon")
        assert fault.matches_link("anon", "rs")
        assert fault.matches_link("sub00", "anon")
        assert not fault.matches_link("ds", "sub00")

    def test_dict_round_trip_preserves_everything(self):
        fault = Fault("duplicate", 0.1, 0.9, src="ds", dst="sub*", delay_s=0.05, hits=(2, 4))
        assert Fault.from_dict(fault.to_dict()) == fault


class TestGeneration:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.generate(31, "default", SUBS)
        b = FaultSchedule.generate(31, "default", SUBS)
        assert a == b
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        assert FaultSchedule.generate(1, "heavy", SUBS) != FaultSchedule.generate(2, "heavy", SUBS)

    def test_json_round_trip(self):
        schedule = FaultSchedule.generate(7, "ci", SUBS)
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_profiles_generate_valid_faults(self, profile):
        schedule = FaultSchedule.generate(11, profile, SUBS)
        assert len(schedule.faults) == PROFILES[profile].n_faults
        for fault in schedule.faults:
            assert fault.kind in FAULT_KINDS
            assert fault.end > fault.start >= 0.0

    @pytest.mark.parametrize("profile", ["heavy", "shard"])
    def test_loss_faults_only_on_retried_links(self, profile):
        """Drops must never land on the unacknowledged DS-originated casts
        (ds -> rs store, ds -> sub deliver); the publish path is retried
        (PUBACK/retransmit) so it is fair game."""
        prof = PROFILES[profile]
        retried = set()
        for rs in shard_names("rs", prof.rs_shards):
            retried |= {("anon", rs), (rs, "anon")}
        for name in SUBS:
            retried |= {(name, "anon"), ("anon", name)}
        for ds in shard_names("ds", prof.ds_shards):
            retried.add(("pub", ds))
        for seed in range(30):
            for fault in FaultSchedule.generate(seed, profile, SUBS).faults:
                if fault.kind == "drop":
                    assert (fault.src, fault.dst) in retried
                elif fault.kind == "partition":
                    assert fault.node in prof.partition_targets

    def test_without_removes_one_fault(self):
        schedule = FaultSchedule.generate(7, "default", SUBS)
        shrunk = schedule.without(2)
        assert len(shrunk.faults) == len(schedule.faults) - 1
        assert schedule.faults[2] not in shrunk.faults or (
            schedule.faults.count(schedule.faults[2]) > 1
        )


def _wired_pair():
    sim = Simulator()
    network = Network(sim, latency_s=0.01)
    src = network.add_host("a")
    network.add_host("b")
    return sim, network, src


def _send(src, n=1):
    for _ in range(n):
        src.send("b", Message("m", b"x", size_bytes=10))


class TestSimFaultInjector:
    """Injector semantics against a bare two-host network."""

    def _run(self, faults, n=3):
        sim, network, src = _wired_pair()
        schedule = FaultSchedule(seed=0, profile="unit", faults=tuple(faults))
        injector = SimFaultInjector(schedule, sim)
        network.set_fault_injector(injector)
        _send(src, n)
        sim.run()
        return sim, network, injector

    def test_drop_loses_selected_frames(self):
        sim, network, injector = self._run([Fault("drop", 0.0, 1.0, src="a", dst="b", hits=(2,))])
        assert len(network.host("b").inbox) == 2
        assert sum(injector.applied.values()) == 1

    def test_drop_without_hits_loses_everything_in_window(self):
        _, network, _ = self._run([Fault("drop", 0.0, 1.0, src="a", dst="b")])
        assert len(network.host("b").inbox) == 0

    def test_partition_cuts_both_directions(self):
        sim = Simulator()
        network = Network(sim, latency_s=0.01)
        a = network.add_host("a")
        b = network.add_host("b")
        schedule = FaultSchedule(
            seed=0, profile="unit", faults=(Fault("partition", 0.0, 1.0, node="a"),)
        )
        network.set_fault_injector(SimFaultInjector(schedule, sim))
        a.send("b", Message("m", b"x", size_bytes=10))
        b.send("a", Message("m", b"y", size_bytes=10))
        sim.run()
        assert len(network.host("a").inbox) == 0
        assert len(network.host("b").inbox) == 0

    def test_duplicate_delivers_twice(self):
        _, network, injector = self._run(
            [Fault("duplicate", 0.0, 1.0, src="a", dst="b", delay_s=0.05, hits=(1,))], n=1
        )
        assert len(network.host("b").inbox) == 2

    def test_delay_defers_delivery(self):
        sim, network, _ = self._run(
            [Fault("delay", 0.0, 1.0, src="a", dst="b", delay_s=0.5)], n=1
        )
        # base latency 0.01 plus 0.5 injected
        assert sim.now >= 0.5
        assert len(network.host("b").inbox) == 1

    def test_faults_outside_window_do_nothing(self):
        _, network, injector = self._run([Fault("drop", 5.0, 6.0, src="a", dst="b")])
        assert len(network.host("b").inbox) == 3
        assert not injector.applied

    def test_epoch_shifts_the_window(self):
        """arm() rebases windows: a [0, 1) fault armed at t=5 applies at t=5."""
        sim, network, src = _wired_pair()
        schedule = FaultSchedule(
            seed=0, profile="unit", faults=(Fault("drop", 0.0, 1.0, src="a", dst="b"),)
        )
        injector = SimFaultInjector(schedule, sim)
        network.set_fault_injector(injector)
        sim.schedule(5.0, lambda: None)
        sim.run()
        injector.arm(epoch=sim.now)
        _send(src)
        sim.run()
        assert len(network.host("b").inbox) == 0

    def test_applied_summary_is_deterministic_shape(self):
        _, _, injector = self._run([Fault("drop", 0.0, 1.0, src="a", dst="b", hits=(1, 3))])
        summary = injector.applied_summary()
        assert summary == [
            {"fault": 0, "kind": "drop", "src": "a", "dst": "b", "count": 2}
        ]


class TestMinimizeSchedule:
    def test_shrinks_to_single_culprit(self):
        faults = tuple(
            Fault("delay", 0.0, 1.0, src="a", dst="b", delay_s=0.01) for _ in range(4)
        ) + (Fault("drop", 0.0, 1.0, src="x", dst="y"),)
        schedule = FaultSchedule(seed=0, profile="unit", faults=faults)

        def still_fails(candidate):
            return any(f.kind == "drop" for f in candidate.faults)

        minimal = minimize_schedule(schedule, still_fails)
        assert len(minimal.faults) == 1
        assert minimal.faults[0].kind == "drop"

    def test_keeps_jointly_necessary_pair(self):
        faults = (
            Fault("drop", 0.0, 1.0, src="a", dst="b"),
            Fault("delay", 0.0, 1.0, src="c", dst="d", delay_s=0.1),
            Fault("duplicate", 0.0, 1.0, src="e", dst="f", delay_s=0.1),
        )
        schedule = FaultSchedule(seed=0, profile="unit", faults=faults)
        kinds_needed = {"drop", "duplicate"}

        def still_fails(candidate):
            return kinds_needed <= {f.kind for f in candidate.faults}

        minimal = minimize_schedule(schedule, still_fails)
        assert {f.kind for f in minimal.faults} == kinds_needed
        assert len(minimal.faults) == 2
