"""End-to-end chaos runs: determinism, passing profiles, mutation testing.

The mutation tests are the teeth of the harness: each invariant family
must *fail* when the corresponding defense is deliberately broken
(dedup disabled, retries disabled, anonymization log tainted, WAL
recovery corrupted) and *pass* on the intact build under the very same
fault schedule — proving the invariants measure the defenses rather
than vacuously passing.
"""

import pytest

from repro.chaos import (
    Fault,
    FaultSchedule,
    check_durability,
    minimize,
    run_chaos,
)
from repro.cli import main

# a bounded burst of drops on the retried retrieval path: the intact
# retry budget (8 attempts) absorbs it; a build with retries disabled
# loses the affected deliveries permanently
DROP_BURST = FaultSchedule(
    seed=7,
    profile="mutation",
    faults=(Fault("drop", 0.0, 10.0, src="anon", dst="rs", hits=(1, 2)),),
)

# duplicate every DS -> subscriber DELIVER cast once: the intact GUID
# dedup suppresses the second notification; a build without dedup
# retrieves and delivers twice
DUPLICATE_DELIVERS = FaultSchedule(
    seed=7,
    profile="mutation",
    faults=(Fault("duplicate", 0.0, 10.0, src="ds", dst="sub*", delay_s=0.01),),
)

# a partition that never heals within the retry budget: legitimately
# fails on any build — the minimization test's known-bad schedule
ETERNAL_PARTITION = FaultSchedule(
    seed=7,
    profile="mutation",
    faults=(
        Fault("delay", 0.0, 0.3, src="ds", dst="sub*", delay_s=0.05),
        Fault("partition", 0.0, 100.0, node="anon"),
        Fault("duplicate", 0.0, 0.3, src="pub", dst="ds", delay_s=0.01, hits=(1,)),
    ),
)


def _disable_dedup(system):
    for subscriber in system.subscribers.values():
        subscriber._dedup = None


def _disable_retries(system):
    for subscriber in system.subscribers.values():
        subscriber.retrieval_retries = 1


def _taint_observation_log(system):
    system.rs.observed_sources.append("sub00")


class TestDeterminism:
    def test_same_seed_bit_identical_report(self):
        a = run_chaos(7, "smoke")
        b = run_chaos(7, "smoke")
        assert a.to_json() == b.to_json()

    def test_durable_profile_bit_identical_report(self):
        a = run_chaos(3, "ci")
        b = run_chaos(3, "ci")
        assert a.to_json() == b.to_json()

    def test_replayed_schedule_reproduces_failure_identically(self):
        a = run_chaos(7, "smoke", schedule=ETERNAL_PARTITION)
        b = run_chaos(7, "smoke", schedule=FaultSchedule.from_json(ETERNAL_PARTITION.to_json()))
        assert not a.passed and not b.passed
        assert a.to_json() == b.to_json()

    def test_report_carries_no_wall_clock_or_paths(self):
        report = run_chaos(7, "smoke").to_json()
        assert "/tmp" not in report and "p3s-chaos-" not in report


class TestPassingProfiles:
    @pytest.mark.parametrize("profile", ["smoke", "default", "partition"])
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_profile_passes_on_intact_build(self, profile, seed):
        report = run_chaos(seed, profile)
        assert report.passed, [f.to_dict() for f in report.failures()]

    def test_ci_profile_checks_all_five_families(self):
        report = run_chaos(7, "ci")
        assert report.passed, [f.to_dict() for f in report.failures()]
        families = {result.family for result in report.invariants}
        assert families == {
            "delivery", "privacy", "durability", "liveness", "alerting"
        }

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            run_chaos(7, "hurricane")


class TestMutationDelivery:
    """delivery.* must catch a build whose GUID dedup is disabled."""

    def test_duplicate_casts_without_dedup_fail(self):
        report = run_chaos(7, "smoke", schedule=DUPLICATE_DELIVERS, mutate=_disable_dedup)
        assert not report.passed
        assert any(f.name == "delivery.no_duplicates" for f in report.failures())

    def test_duplicate_casts_with_dedup_pass(self):
        report = run_chaos(7, "smoke", schedule=DUPLICATE_DELIVERS)
        assert report.passed, [f.to_dict() for f in report.failures()]

    def test_dedup_suppression_is_counted(self):
        """The regression teeth for the idempotent-delivery satellite."""
        system_stats = {}

        def capture(system):
            system_stats["subs"] = list(system.subscribers.values())

        report = run_chaos(7, "smoke", schedule=DUPLICATE_DELIVERS, mutate=capture)
        assert report.passed
        assert sum(s.stats.duplicates_suppressed for s in system_stats["subs"]) > 0


class TestMutationLiveness:
    """liveness.*/delivery.* must catch a build whose retry loop is disabled."""

    def test_drop_burst_without_retries_fails(self):
        report = run_chaos(7, "smoke", schedule=DROP_BURST, mutate=_disable_retries)
        assert not report.passed
        failed = {f.name for f in report.failures()}
        assert "liveness.eventual_delivery" in failed

    def test_drop_burst_with_retries_passes(self):
        report = run_chaos(7, "smoke", schedule=DROP_BURST)
        assert report.passed, [f.to_dict() for f in report.failures()]


class TestMutationPrivacy:
    """privacy.* must catch a subscriber identity reaching a server log."""

    def test_tainted_observation_log_fails(self):
        report = run_chaos(7, "smoke", mutate=_taint_observation_log)
        assert not report.passed
        failed = {f.name for f in report.failures()}
        assert "privacy.no_subscriber_identity_at_servers" in failed

    def test_untainted_log_passes(self):
        assert run_chaos(7, "smoke").passed


class TestMutationDurability:
    """durability.* must catch recovery that loses, corrupts, or resurrects."""

    def test_lost_committed_key_fails(self):
        committed = {b"g1": b"v1", b"g2": b"v2"}
        recovered = {b"g1": b"v1"}
        results = {r.name: r for r in check_durability(committed, recovered)}
        assert not results["durability.committed_recovered"].passed

    def test_corrupt_value_fails(self):
        committed = {b"g1": b"v1"}
        recovered = {b"g1": b"XX"}
        results = {r.name: r for r in check_durability(committed, recovered)}
        assert not results["durability.committed_recovered"].passed

    def test_resurrected_key_fails(self):
        committed = {b"g1": b"v1"}
        recovered = {b"g1": b"v1", b"zombie": b"v9"}
        results = {r.name: r for r in check_durability(committed, recovered)}
        assert not results["durability.no_resurrection"].passed

    def test_faithful_recovery_passes(self):
        state = {b"g1": b"v1", b"g2": b"v2"}
        assert all(r.passed for r in check_durability(state, dict(state)))

    def test_expired_ciphertext_on_disk_fails(self, tmp_path):
        (tmp_path / "segment.wal").write_bytes(b"prefix SECRET-CT suffix")
        results = {
            r.name: r
            for r in check_durability(
                {}, {}, expired=[(b"g1", b"SECRET-CT")], store_root=str(tmp_path)
            )
        }
        assert not results["durability.expired_ciphertext_absent"].passed

    def test_scrubbed_ciphertext_passes(self, tmp_path):
        (tmp_path / "segment.wal").write_bytes(b"nothing to see")
        results = {
            r.name: r
            for r in check_durability(
                {}, {}, expired=[(b"g1", b"SECRET-CT")], store_root=str(tmp_path)
            )
        }
        assert results["durability.expired_ciphertext_absent"].passed


class TestMinimize:
    def test_minimize_isolates_the_partition(self):
        minimal, report = minimize(7, "smoke", schedule=ETERNAL_PARTITION)
        assert not report.passed
        assert len(minimal.faults) == 1
        assert minimal.faults[0].kind == "partition"

    def test_minimize_returns_passing_run_unchanged(self):
        minimal, report = minimize(7, "smoke", schedule=DROP_BURST)
        assert report.passed
        assert minimal == DROP_BURST


class TestCli:
    def test_chaos_run_exit_zero_on_pass(self, capsys):
        assert main(["chaos", "run", "--seed", "7", "--profile", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out

    def test_chaos_run_exit_one_on_failure(self, tmp_path, capsys):
        schedule_path = tmp_path / "schedule.json"
        schedule_path.write_text(ETERNAL_PARTITION.to_json())
        report_path = tmp_path / "report.json"
        min_path = tmp_path / "minimal.json"
        with pytest.raises(SystemExit) as excinfo:
            main([
                "chaos", "run", "--seed", "7", "--profile", "smoke",
                "--schedule", str(schedule_path),
                "--report", str(report_path),
                "--minimize", "--min-out", str(min_path),
            ])
        assert excinfo.value.code == 1
        assert report_path.exists()
        minimal = FaultSchedule.from_json(min_path.read_text())
        assert len(minimal.faults) == 1 and minimal.faults[0].kind == "partition"

    def test_chaos_report_file_matches_in_process_run(self, tmp_path):
        report_path = tmp_path / "report.json"
        main(["chaos", "run", "--seed", "11", "--profile", "smoke",
              "--report", str(report_path)])
        assert report_path.read_text().strip() == run_chaos(11, "smoke").to_json()

    def test_chaos_profiles_lists_them(self, capsys):
        assert main(["chaos", "profiles"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "default", "ci", "heavy", "partition"):
            assert name in out
