"""The live telemetry plane: health RPCs, per-service metrics scrapes,
OpenMetrics round-trips over the wire, and the flight-recorder
memory-flatness guarantee (the PR's acceptance scenario)."""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.core.ara import RegistrationAuthority
from repro.errors import TransportError
from repro.live.channel import ServerIdentity
from repro.live.deployment import SERVICE_NAMES, LiveDeployment
from repro.live.rpc import AddressBook, LiveRpcEndpoint
from repro.live.services import LiveAnonymizationService
from repro.live.telemetry import service_health_snapshot
from repro.obs import Histogram, Observability, parse_openmetrics
from repro.pbe.schema import Interest

from .conftest import run_async, small_config

pytestmark = pytest.mark.live


@pytest.fixture
def obs():
    instance = Observability()
    yield instance
    instance.uninstall()


async def _run_traffic(deployment: LiveDeployment, publications: int = 2):
    """One subscriber, one publisher, ``publications`` matching messages."""
    subscriber = await deployment.add_subscriber("alice", {"org:acme"})
    await subscriber.subscribe(Interest({"topic": "a"}))
    publisher = await deployment.add_publisher("pub")
    for index in range(publications):
        await publisher.publish(
            {"topic": "a", "prio": "lo"}, f"msg {index}".encode(), policy="org:acme"
        )
    await subscriber.wait_for_deliveries(publications, 60.0)
    await asyncio.sleep(0.2)  # acks, stores, span ends


class TestHealth:
    def test_all_four_services_report_ready(self, obs):
        async def scenario():
            deployment = LiveDeployment(small_config(obs=obs))
            await deployment.start()
            try:
                aggregator = await deployment.scrape()
            finally:
                await deployment.close()
            assert aggregator.services() == sorted(SERVICE_NAMES)
            assert aggregator.all_alive
            assert aggregator.all_ready
            for name in SERVICE_NAMES:
                checks = aggregator.health(name)["checks"]
                assert checks["trust_root_loaded"]
                assert checks["listening"]
                assert checks["dial_backoff_quiet"]
            assert aggregator.health("rs")["checks"]["gc_running"]

        run_async(scenario())

    def test_downed_service_reads_dead_and_fails_all_alive(self, obs):
        async def scenario():
            deployment = LiveDeployment(small_config(obs=obs))
            await deployment.start()
            try:
                await deployment.pbe_ts.close()
                aggregator = await deployment.scrape()
            finally:
                await deployment.close()
            assert not aggregator.health("pbe-ts")["alive"]
            assert not aggregator.all_alive
            assert not aggregator.all_ready
            # the others are unaffected
            assert aggregator.health("ds")["ready"]

        run_async(scenario())


class TestMetricsAggregation:
    def test_aggregated_op_totals_match_the_process_registry(self, obs):
        async def scenario():
            deployment = LiveDeployment(small_config(obs=obs))
            await deployment.start()
            try:
                await _run_traffic(deployment)
                return await deployment.scrape()
            finally:
                await deployment.close()

        aggregator = run_async(scenario())
        # every op.* series the services attributed to themselves must
        # reappear, with the same totals, in the aggregated view
        expected: dict[str, float] = {}
        for (name, label_key), counter in obs.metrics.counters.items():
            if name.startswith("op.") and dict(label_key).get("component") in SERVICE_NAMES:
                expected[name] = expected.get(name, 0) + counter.value
        assert expected, "traffic should have produced service-attributed ops"
        for name, total in expected.items():
            assert aggregator.counter_total(name) == total, name
        # and the DS protocol counters came through under their service:
        # each publication is two PUBLISH frames (metadata + payload)
        assert aggregator.service_counter_total("ds", "ds.published") == 4
        assert aggregator.service_counter_total("ds", "ds.delivered") >= 2

    def test_per_service_transport_counters_present(self, obs):
        async def scenario():
            deployment = LiveDeployment(small_config(obs=obs))
            await deployment.start()
            try:
                await _run_traffic(deployment, publications=1)
                return await deployment.scrape()
            finally:
                await deployment.close()

        aggregator = run_async(scenario())
        for name in SERVICE_NAMES:
            assert aggregator.service_counter_total(name, "live.net.rx_bytes") > 0
            assert aggregator.service_counter_total(name, "live.net.rx_frames") > 0
            assert aggregator.service_counter_total(name, "live.rpc.open_connections") > 0
        # the DS sends deliveries, so it must have counted tx traffic too
        assert aggregator.service_counter_total("ds", "live.net.tx_bytes") > 0


class TestExpositionOverRpc:
    def test_openmetrics_round_trips_through_the_wire(self, obs):
        async def scenario():
            deployment = LiveDeployment(small_config(obs=obs))
            await deployment.start()
            client = deployment.telemetry_client("probe")
            try:
                await _run_traffic(deployment)
                snapshot = await client.metrics("ds")
                text = await client.metrics_text("ds")
            finally:
                await client.close()
                await deployment.close()
            return snapshot, text

        snapshot, text = run_async(scenario())
        parsed = parse_openmetrics(text)
        published = next(
            entry["value"]
            for entry in snapshot["counters"]
            if entry["name"] == "ds.published"
        )
        assert parsed.value("p3s_ds_published_total", service="ds") == published
        assert parsed.types["p3s_ds_published"] == "counter"
        # gauges keep their unsuffixed names and gauge type
        assert parsed.types["p3s_live_rpc_open_connections"] == "gauge"
        assert parsed.value("p3s_live_rpc_open_connections", service="ds") > 0


class TestFlightRecorderAcceptance:
    def test_memory_flat_with_correct_latency_percentiles(self):
        capacity = 48
        obs = Observability(span_capacity=capacity)
        try:

            async def scenario():
                deployment = LiveDeployment(small_config(obs=obs))
                await deployment.start()
                try:
                    # phase 1 — an unpolled burst: far more spans than the
                    # ring holds, so evictions must happen and storage must
                    # stay flat at the bound
                    await _run_traffic(deployment, publications=6)
                    assert obs.tracer.dropped_spans > 0
                    assert len(obs.tracer.spans) <= capacity
                    aggregator = await deployment.scrape()
                    # phase 2 — polled traffic, the pattern `live top`
                    # drives: scraping between publications reassembles
                    # complete traces across drains even though the ring
                    # never holds a whole trace's history at once
                    publisher = deployment.publishers["pub"]
                    subscriber = deployment.subscribers["alice"]
                    for index in range(2):
                        await publisher.publish(
                            {"topic": "a", "prio": "lo"},
                            f"polled {index}".encode(),
                            policy="org:acme",
                        )
                        aggregator = await deployment.scrape(aggregator)
                    await subscriber.wait_for_deliveries(8, 60.0)
                    await asyncio.sleep(0.2)
                    aggregator = await deployment.scrape(aggregator)
                    first_count = len(aggregator.spans())
                    # drains are exactly-once: a second sweep adds nothing
                    aggregator = await deployment.scrape(aggregator)
                    assert len(aggregator.spans()) == first_count
                    assert len(obs.tracer.spans) <= capacity
                    return aggregator
                finally:
                    await deployment.close()

            aggregator = run_async(scenario())
        finally:
            obs.uninstall()
        assert aggregator.total_dropped_spans > 0
        latencies = aggregator.publish_deliver_latencies()
        # evicted traces are skipped, but the freshest ones survive whole
        assert latencies
        assert all(value > 0 for value in latencies)
        summary = aggregator.latency_summary()
        reference = Histogram("ref", ())
        for value in latencies:
            reference.observe(value)
        assert summary["count"] == len(latencies)
        assert summary["p50_s"] == reference.percentile(0.5)
        assert summary["p95_s"] == reference.percentile(0.95)
        assert summary["p50_s"] <= summary["p95_s"] <= summary["max_s"]


class TestBackoffReadiness:
    def test_dial_backoff_fails_readiness_until_it_resolves(self, group):
        config = small_config()

        async def scenario():
            ara = RegistrationAuthority(group, config.schema)
            book = AddressBook()
            identity = ServerIdentity.issue(ara, group, "anon")
            endpoint = LiveRpcEndpoint(
                "anon",
                book,
                ara_verify_key=ara.directory.ara_verify_key,
                identity=identity,
                reconnect_attempts=4,
                backoff_base_s=0.3,
                backoff_cap_s=0.6,
                connect_timeout_s=0.5,
            )
            service = LiveAnonymizationService(endpoint)
            host, port = await service.start()
            book.register("anon", host, port, identity.service_key)
            # a directory entry nobody listens on: grab a port, release it
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
            probe.close()
            ghost = ServerIdentity.issue(ara, group, "ghost")
            book.register("ghost", "127.0.0.1", dead_port, ghost.service_key)
            try:
                assert service_health_snapshot(service)["ready"]
                call = asyncio.ensure_future(
                    endpoint.call("ghost", "p3s.anything", None, timeout_s=10.0)
                )
                await asyncio.sleep(0.45)  # inside the retry backoff window
                during = service_health_snapshot(service)
                assert during["checks"]["dial_backoff_quiet"] is False
                assert not during["ready"]
                with pytest.raises(TransportError):
                    await call
                after = service_health_snapshot(service)
                assert after["checks"]["dial_backoff_quiet"] is True
                assert after["ready"]
                assert endpoint.reconnects >= 1
            finally:
                await service.close()

        run_async(scenario())
