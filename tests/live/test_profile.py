"""The live profiling surface: KIND_PROFILE admin RPCs, scrape-time
profile collection, and origin-dedup across co-hosted services."""

from __future__ import annotations

import pytest

from repro.live.deployment import SERVICE_NAMES, LiveDeployment
from repro.obs import Observability
from repro.obs.prof import DeterministicSampler, StackSampler
from repro.pbe.schema import Interest

from .conftest import run_async, small_config

pytestmark = pytest.mark.live


@pytest.fixture
def obs():
    instance = Observability()
    yield instance
    instance.uninstall()


async def _run_traffic(deployment: LiveDeployment, publications: int = 2):
    subscriber = await deployment.add_subscriber("alice", {"org:acme"})
    await subscriber.subscribe(Interest({"topic": "a"}))
    publisher = await deployment.add_publisher("pub")
    for index in range(publications):
        await publisher.publish(
            {"topic": "a", "prio": "lo"}, f"msg {index}".encode(), policy="org:acme"
        )
    await subscriber.wait_for_deliveries(publications, 60.0)


class TestProfileRpc:
    def test_kind_profile_returns_the_samplers_snapshot(self, obs):
        sampler = DeterministicSampler(every=2, obs=obs, origin="det-test-1")
        obs.profiler = sampler

        async def scenario():
            deployment = LiveDeployment(small_config(obs=obs))
            await deployment.start()
            client = deployment.telemetry_client("probe")
            try:
                await _run_traffic(deployment)
                return await client.profile("ds")
            finally:
                await client.close()
                await deployment.close()

        snapshot = run_async(scenario())
        assert snapshot["service"] == "ds"
        profile = snapshot["profile"]
        assert profile["origin"] == "det-test-1"
        assert profile["mode"] == "det"
        assert profile["samples"], "traffic must have produced op samples"
        # the snapshot is non-destructive: a second poll sees >= the same
        assert sampler.profile().to_dict()["samples"] == profile["samples"]

    def test_without_profiler_the_rpc_reports_none(self, obs):
        async def scenario():
            deployment = LiveDeployment(small_config(obs=obs))
            await deployment.start()
            client = deployment.telemetry_client("probe")
            try:
                return await client.profile("rs")
            finally:
                await client.close()
                await deployment.close()

        snapshot = run_async(scenario())
        assert snapshot == {"service": "rs", "profile": None}


class TestScrapeCollection:
    def test_scrape_merges_one_origin_across_cohosted_services(self, obs):
        # all four in-process services share one sampler: the aggregate
        # must carry ONE copy of its profile, attributed to all four
        obs.profiler = DeterministicSampler(every=2, obs=obs, origin="det-shared")

        async def scenario():
            deployment = LiveDeployment(small_config(obs=obs))
            await deployment.start()
            try:
                await _run_traffic(deployment)
                aggregator = await deployment.scrape()
                # scraping twice must not double the merged weights
                return await deployment.scrape(aggregator)
            finally:
                await deployment.close()

        aggregator = run_async(scenario())
        origins = aggregator.profile_origins()
        assert list(origins) == ["det-shared"]
        assert origins["det-shared"] == sorted(SERVICE_NAMES)
        merged = aggregator.merged_profile()
        single = obs.profiler.profile()
        assert merged.total("count") == single.total("count")
        assert merged.mode == "det"
        # hot frames surface the crypto leaves for `live top`
        frames = [frame for frame, _self, _fraction in aggregator.hot_frames()]
        assert any(frame.startswith("op.") for frame in frames)

    def test_wall_sampler_profiles_flow_through_scrape(self, obs):
        obs.profiler = StackSampler(hz=97.0, obs=obs, origin="wall-live-1")
        obs.profiler.start()

        async def scenario():
            deployment = LiveDeployment(small_config(obs=obs))
            await deployment.start()
            try:
                await _run_traffic(deployment, publications=3)
                return await deployment.scrape()
            finally:
                await deployment.close()
                obs.profiler.stop()

        aggregator = run_async(scenario())
        assert "wall-live-1" in aggregator.profile_origins()
        merged = aggregator.merged_profile()
        assert merged.mode == "wall"
        assert merged.total("wall_s") > 0
        document = aggregator.to_json()
        assert document["profile"]["origins"]["wall-live-1"] == sorted(SERVICE_NAMES)
