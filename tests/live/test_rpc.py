"""LiveRpcEndpoint: request/response, one-way, push, reconnect, shutdown."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.ara import RegistrationAuthority
from repro.errors import TransportError
from repro.live.channel import ServerIdentity
from repro.live.rpc import AddressBook, LiveRpcEndpoint
from repro.pbe.schema import AttributeSpec, MetadataSchema

from .conftest import run_async

pytestmark = pytest.mark.live

SCHEMA = MetadataSchema([AttributeSpec("topic", ("a", "b"))])


@pytest.fixture(scope="module")
def ara(group):
    return RegistrationAuthority(group, SCHEMA)


async def server_endpoint(ara, group, name="svc", **kwargs) -> LiveRpcEndpoint:
    endpoint = LiveRpcEndpoint(
        name,
        AddressBook(),
        ara_verify_key=ara.directory.ara_verify_key,
        identity=ServerIdentity.issue(ara, group, name),
        **kwargs,
    )
    return endpoint


def client_endpoint(ara, server: LiveRpcEndpoint, bound, name="cli", **kwargs):
    book = AddressBook()
    book.register(server.name, bound[0], bound[1], server.identity.service_key)
    return LiveRpcEndpoint(
        name, book, ara_verify_key=ara.directory.ara_verify_key, **kwargs
    )


class TestRequestResponse:
    def test_call_returns_handler_payload(self, ara, group):
        async def scenario():
            server = await server_endpoint(ara, group)
            server.serve("echo", lambda src, msg: (b"echo:" + msg.payload, 1))
            bound = await server.start_server()
            client = client_endpoint(ara, server, bound)
            try:
                assert await client.call("svc", "echo", b"hi") == b"echo:hi"
            finally:
                await client.close()
                await server.close()

        run_async(scenario())

    def test_async_handler_and_concurrent_calls(self, ara, group):
        async def scenario():
            server = await server_endpoint(ara, group)

            async def slow_echo(src, msg):
                await asyncio.sleep(0.05)
                return (msg.payload * 2, 1)

            server.serve("echo", slow_echo)
            bound = await server.start_server()
            client = client_endpoint(ara, server, bound)
            try:
                results = await asyncio.gather(
                    *(client.call("svc", "echo", bytes([i])) for i in range(5))
                )
                assert results == [bytes([i]) * 2 for i in range(5)]
            finally:
                await client.close()
                await server.close()

        run_async(scenario())

    def test_call_timeout_raises_transport_error(self, ara, group):
        async def scenario():
            server = await server_endpoint(ara, group)

            async def never(src, msg):
                await asyncio.Event().wait()

            server.serve("stall", never)
            bound = await server.start_server()
            client = client_endpoint(ara, server, bound)
            try:
                with pytest.raises(TransportError, match="timed out"):
                    await client.call("svc", "stall", b"x", timeout_s=0.2)
            finally:
                await client.close()
                await server.close()

        run_async(scenario())


class TestOneWayAndPush:
    def test_cast_and_server_push_over_client_connection(self, ara, group):
        async def scenario():
            server = await server_endpoint(ara, group)
            received = asyncio.get_running_loop().create_future()

            async def on_note(src, msg):
                # push back over the connection the client opened
                await server.cast(src, "note.reply", b"pushed:" + msg.payload)

            server.serve("note", on_note)
            bound = await server.start_server()
            client = client_endpoint(ara, server, bound)
            client.serve("note.reply", lambda src, msg: received.set_result(
                (src, msg.payload)
            ))
            try:
                await client.cast("svc", "note", b"ping")
                src, payload = await asyncio.wait_for(received, 10.0)
                assert src == "svc"
                assert payload == b"pushed:ping"
            finally:
                await client.close()
                await server.close()

        run_async(scenario())

    def test_frame_src_is_the_authenticated_peer(self, ara, group):
        async def scenario():
            server = await server_endpoint(ara, group)
            seen = asyncio.get_running_loop().create_future()
            server.serve("who", lambda src, msg: seen.set_result((src, msg.src)))
            bound = await server.start_server()
            client = client_endpoint(ara, server, bound, name="mallory-claims-alice")
            try:
                await client.cast("svc", "who", b"")
                handler_src, frame_src = await asyncio.wait_for(seen, 10.0)
                # both reflect the handshake identity, not frame contents
                assert handler_src == "mallory-claims-alice"
                assert frame_src == "mallory-claims-alice"
            finally:
                await client.close()
                await server.close()

        run_async(scenario())


class TestReconnectAndShutdown:
    def test_unreachable_peer_backs_off_then_raises(self, ara, group):
        async def scenario():
            server = await server_endpoint(ara, group)
            bound = await server.start_server()
            client = client_endpoint(
                ara, server, bound,
                reconnect_attempts=3, backoff_base_s=0.05, backoff_cap_s=0.2,
                connect_timeout_s=1.0,
            )
            await server.close()  # nothing listening any more
            started = time.monotonic()
            with pytest.raises(TransportError, match="could not reach"):
                await client.call("svc", "echo", b"x")
            elapsed = time.monotonic() - started
            # attempts 2 and 3 sleep 0.05 + 0.1 before giving up
            assert elapsed >= 0.15
            await client.close()

        run_async(scenario())

    def test_reconnects_after_connection_drop(self, ara, group):
        async def scenario():
            server = await server_endpoint(ara, group)
            server.serve("echo", lambda src, msg: (msg.payload, 1))
            bound = await server.start_server()
            client = client_endpoint(ara, server, bound, backoff_base_s=0.01)
            try:
                assert await client.call("svc", "echo", b"one") == b"one"
                # sever the established channel from the server side
                for channel in list(server._channels.values()):
                    await channel.close()
                await asyncio.sleep(0.05)
                # next call dials a fresh connection transparently
                assert await client.call("svc", "echo", b"two") == b"two"
            finally:
                await client.close()
                await server.close()

        run_async(scenario())

    def test_close_fails_pending_calls(self, ara, group):
        async def scenario():
            server = await server_endpoint(ara, group)

            async def never(src, msg):
                await asyncio.Event().wait()

            server.serve("stall", never)
            bound = await server.start_server()
            client = client_endpoint(ara, server, bound)
            task = asyncio.ensure_future(client.call("svc", "stall", b"x"))
            await asyncio.sleep(0.2)  # let the request reach the server
            await client.close()
            with pytest.raises(TransportError):
                await task
            await server.close()

        run_async(scenario())

    def test_send_after_close_raises(self, ara, group):
        async def scenario():
            server = await server_endpoint(ara, group)
            bound = await server.start_server()
            client = client_endpoint(ara, server, bound)
            await client.close()
            with pytest.raises(TransportError, match="closed"):
                await client.cast("svc", "anything", b"")
            await server.close()

        run_async(scenario())
