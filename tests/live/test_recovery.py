"""Live-service restart recovery: readiness must not depend on traffic.

A restarted DS that recovered delegated-matching tokens from its durable
store reports ``match_pool_warm`` in its health checks.  The pool must
therefore be forked during recovery, not lazily on the first
publication: a readiness-gated deployment routes no traffic to a
not-ready DS, so a lazily-warmed pool would never warm and the service
would wedge as not-ready forever.
"""

from __future__ import annotations

import pytest

from repro.live.rpc import AddressBook, LiveRpcEndpoint
from repro.live.services import LiveDisseminationServer
from repro.store import WalEngine
from repro.store.codec import NS_TOKENS, encode_token, token_key

from .conftest import run_async

pytestmark = pytest.mark.live


class TestRecoveredRegistrationsWarmPool:
    def test_restarted_ds_is_ready_before_any_publication(self, tmp_path, group):
        path = str(tmp_path / "ds")
        # a previous DS process registered one delegated-matching token
        with WalEngine(path) as engine:
            engine.put(
                NS_TOKENS, token_key("alice", b"tok"), encode_token("alice", b"tok")
            )

        ds = LiveDisseminationServer(
            LiveRpcEndpoint("ds", AddressBook()),
            "rs",
            group=group,
            match_workers=1,
            store=WalEngine(path),
        )
        try:
            assert ds.recovered_registrations == 1
            # the pool was warmed during recovery, so readiness holds
            # with zero publications processed
            assert ds._match_pool is not None
            assert ds.health_checks()["match_pool_warm"]
        finally:
            run_async(ds.close())

    def test_recovery_without_tokens_does_not_fork_a_pool(self, tmp_path, group):
        path = str(tmp_path / "ds")
        WalEngine(path).close()  # durable but empty store
        ds = LiveDisseminationServer(
            LiveRpcEndpoint("ds", AddressBook()),
            "rs",
            group=group,
            match_workers=1,
            store=WalEngine(path),
        )
        try:
            assert ds.recovered_registrations == 0
            assert ds._match_pool is None  # no tokens -> nothing to warm
            assert ds.health_checks()["match_pool_warm"]
        finally:
            run_async(ds.close())
