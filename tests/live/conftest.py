"""Shared helpers for the live-transport battery.

Every test here touches real sockets, so two conventions apply
throughout:

* **ephemeral ports** — services bind port 0 and report what they got;
  nothing assumes a free fixed port;
* **per-test timeouts** — all async work runs through :func:`run_async`,
  which wraps the coroutine in ``asyncio.wait_for``; a wedged handshake
  or lost frame fails the test instead of hanging the suite.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import P3SConfig
from repro.pbe.schema import AttributeSpec, MetadataSchema

DEFAULT_TIMEOUT_S = 120.0


def run_async(coro, timeout_s: float = DEFAULT_TIMEOUT_S):
    """Run one test coroutine in a fresh event loop, with a hard timeout."""
    return asyncio.run(asyncio.wait_for(coro, timeout_s))


def small_config(**overrides) -> P3SConfig:
    """A deployment config sized for fast tests (2-attribute schema)."""
    schema = MetadataSchema(
        [
            AttributeSpec("topic", ("a", "b", "c", "d")),
            AttributeSpec("prio", ("lo", "hi")),
        ]
    )
    return P3SConfig(schema=schema, **overrides)


@pytest.fixture(scope="session")
def group():
    from repro.crypto.group import PairingGroup

    return PairingGroup("TOY")
