"""Secure channel: handshake, AEAD records, loss and tamper detection."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.core.ara import RegistrationAuthority
from repro.errors import HandshakeError, MessageLossError, TransportError
from repro.live.channel import (
    SecureChannel,
    ServerIdentity,
    ServiceKey,
    accept_channel,
    connect_channel,
)
from repro.pbe.schema import AttributeSpec, MetadataSchema

from .conftest import run_async

pytestmark = pytest.mark.live

SCHEMA = MetadataSchema([AttributeSpec("topic", ("a", "b"))])


@pytest.fixture(scope="module")
def ara(group):
    return RegistrationAuthority(group, SCHEMA)


@pytest.fixture()
def identity(ara, group):
    return ServerIdentity.issue(ara, group, "svc")


async def accept_one(identity):
    """Listen on an ephemeral port, accept + handshake one connection."""
    loop = asyncio.get_running_loop()
    accepted: asyncio.Future = loop.create_future()

    async def on_connection(reader, writer):
        try:
            channel = await accept_channel(reader, writer, identity, timeout=10.0)
            if not accepted.done():
                accepted.set_result(channel)
        except Exception as exc:  # surfaced to the test, not swallowed
            if not accepted.done():
                accepted.set_exception(exc)

    server = await asyncio.start_server(on_connection, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    return server, port, accepted


class TestHandshake:
    def test_echo_and_bidirectional_records(self, ara, identity):
        async def scenario():
            server, port, accepted = await accept_one(identity)
            client = await connect_channel(
                "127.0.0.1", port, identity.service_key,
                ara.directory.ara_verify_key, "alice",
            )
            peer = await accepted
            assert client.peer_name == "svc"
            assert peer.peer_name == "alice"
            await client.send_record(b"ping")
            assert await peer.recv_record() == b"ping"
            await peer.send_record(b"pong")
            assert await client.recv_record() == b"pong"
            await client.close()
            await peer.close()
            server.close()
            await server.wait_closed()

        run_async(scenario())

    def test_forged_service_key_rejected(self, group, ara, identity):
        # a key binding signed by a DIFFERENT trust root must not verify
        other_ara = RegistrationAuthority(group, SCHEMA)
        forged = ServiceKey(
            identity.name,
            identity.keypair.public,
            other_ara.sign_service_key(identity.name, identity.keypair.public.to_bytes()),
        )

        async def scenario():
            with pytest.raises(HandshakeError):
                await connect_channel(
                    "127.0.0.1", 1, forged, ara.directory.ara_verify_key, "alice"
                )

        run_async(scenario())

    def test_server_without_matching_key_fails_echo(self, group, ara, identity):
        # directory lies about the server's key: the pre-master is sealed to
        # a key the server does not hold, so it can never produce the echo
        imposter_key = ServiceKey(
            "svc", ServerIdentity.issue(ara, group, "svc2").keypair.public,
            identity.signature,
        )

        async def scenario():
            server, port, accepted = await accept_one(identity)
            with pytest.raises(HandshakeError):
                await connect_channel(
                    "127.0.0.1", port, imposter_key, None, "alice", timeout=5.0
                )
            with pytest.raises(HandshakeError):
                await accepted
            server.close()
            await server.wait_closed()

        run_async(scenario())

    def test_connect_to_dead_port_raises_transport_error(self, ara, identity):
        async def scenario():
            # bind-then-close guarantees a port with no listener
            server = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            with pytest.raises(TransportError):
                await connect_channel(
                    "127.0.0.1", port, identity.service_key,
                    ara.directory.ara_verify_key, "alice", timeout=2.0,
                )

        run_async(scenario())


async def connected_pair(ara, identity) -> tuple[SecureChannel, SecureChannel]:
    server, port, accepted = await accept_one(identity)
    client = await connect_channel(
        "127.0.0.1", port, identity.service_key,
        ara.directory.ara_verify_key, "alice",
    )
    peer = await accepted
    server.close()
    await server.wait_closed()
    return client, peer


def _raw_record(channel: SecureChannel, seq: int, plaintext: bytes) -> bytes:
    """Frame one record exactly as send_record would, for a chosen seq."""
    sealed = channel._send_box.seal(plaintext, associated_data=struct.pack(">Q", seq))
    return struct.pack(">IQ", len(sealed) + 8, seq) + sealed


class TestRecordProtection:
    def test_tampered_record_fails_authentication(self, ara, identity):
        async def scenario():
            client, peer = await connected_pair(ara, identity)
            wire = bytearray(_raw_record(client, seq=0, plaintext=b"secret"))
            wire[-1] ^= 0x01  # flip one ciphertext bit
            client._writer.write(bytes(wire))
            await client._writer.drain()
            with pytest.raises(TransportError) as excinfo:
                await peer.recv_record()
            assert not isinstance(excinfo.value, MessageLossError)
            await client.close()

        run_async(scenario())

    def test_sequence_gap_raises_message_loss(self, ara, identity):
        async def scenario():
            client, peer = await connected_pair(ara, identity)
            # skip seq 0: a dropped record, not a forged one
            client._writer.write(_raw_record(client, seq=1, plaintext=b"late"))
            await client._writer.drain()
            with pytest.raises(MessageLossError):
                await peer.recv_record()
            await client.close()

        run_async(scenario())

    def test_replayed_record_rejected(self, ara, identity):
        async def scenario():
            client, peer = await connected_pair(ara, identity)
            replay = _raw_record(client, seq=0, plaintext=b"once")
            client._writer.write(replay + replay)
            await client._writer.drain()
            assert await peer.recv_record() == b"once"
            with pytest.raises(MessageLossError):  # same seq again = gap rule
                await peer.recv_record()
            await client.close()

        run_async(scenario())

    def test_peer_disconnect_raises_transport_error(self, ara, identity):
        async def scenario():
            client, peer = await connected_pair(ara, identity)
            await client.close()
            with pytest.raises(TransportError):
                await peer.recv_record()
            with pytest.raises(TransportError):
                await peer.recv_record()  # closed channels stay closed

        run_async(scenario())

    def test_send_after_close_raises(self, ara, identity):
        async def scenario():
            client, peer = await connected_pair(ara, identity)
            await client.close()
            with pytest.raises(TransportError):
                await client.send_record(b"too late")
            await peer.close()

        run_async(scenario())
