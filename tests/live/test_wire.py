"""Frame and payload codec: round-trips and malformed-input rejection."""

from __future__ import annotations

import pytest

from repro.core.messages import AnonEnvelope, EncryptedMetadata, PayloadSubmission
from repro.errors import TransportError
from repro.live.wire import decode_frame, decode_payload, encode_frame, encode_payload
from repro.mq.messages import JmsFrame
from repro.net.transport import TransportMessage
from repro.obs.tracing import CONTEXT_HEADER, SpanContext

pytestmark = pytest.mark.live


def roundtrip(message: TransportMessage) -> TransportMessage:
    return decode_frame(encode_frame(message))


class TestPayloadCodecs:
    @pytest.mark.parametrize(
        "payload",
        [
            None,
            b"",
            b"\x00\xffsome-bytes",
            "plain text ✓",
            EncryptedMetadata(hve_bytes=b"\x01" * 64, publication_id=7),
            PayloadSubmission(guid=b"g" * 16, ciphertext=b"\x02" * 80, ttl_s=12.5),
            AnonEnvelope(dst="rs", inner_type="p3s.retrieve", inner_payload=b"req"),
            JmsFrame(
                topic="p3s.metadata",
                body=EncryptedMetadata(hve_bytes=b"\x03" * 10, publication_id=1),
                body_size=10,
                message_id=42,
                headers={"p3s-kind": "p3s.metadata"},
            ),
        ],
    )
    def test_roundtrip(self, payload):
        decoded = decode_payload(encode_payload(payload))
        assert decoded == payload

    def test_nested_envelope(self):
        inner = PayloadSubmission(guid=b"g" * 16, ciphertext=b"c" * 8, ttl_s=1.0)
        envelope = AnonEnvelope(dst="rs", inner_type="p3s.store", inner_payload=inner)
        assert decode_payload(encode_payload(envelope)) == envelope

    def test_unencodable_payload_rejected(self):
        with pytest.raises(TransportError):
            encode_payload(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(TransportError):
            decode_payload(bytes([250]) + b"junk")

    def test_empty_payload_rejected(self):
        with pytest.raises(TransportError):
            decode_payload(b"")


class TestFrameCodec:
    def test_roundtrip_with_headers(self):
        message = TransportMessage(
            msg_type="p3s.retrieve",
            payload=b"ciphertext",
            src="alice",
            headers={"rpc": "request", "corr": 9, "reply_to": "alice"},
        )
        decoded = roundtrip(message)
        assert decoded.msg_type == message.msg_type
        assert decoded.payload == message.payload
        assert decoded.src == message.src
        assert decoded.headers == message.headers

    def test_span_context_survives_the_wire(self):
        context = SpanContext(trace_id=0xDEAD, span_id=0xBEEF)
        message = TransportMessage(
            msg_type="jms.publish", payload=None, src="pub",
            headers={CONTEXT_HEADER: context, "p3s-kind": "p3s.metadata"},
        )
        decoded = roundtrip(message)
        restored = decoded.headers[CONTEXT_HEADER]
        assert isinstance(restored, SpanContext)
        assert (restored.trace_id, restored.span_id) == (0xDEAD, 0xBEEF)

    def test_unserializable_header_rejected(self):
        message = TransportMessage(
            msg_type="x", payload=None, src="s", headers={"bad": object()}
        )
        with pytest.raises(TransportError):
            encode_frame(message)

    @pytest.mark.parametrize("data", [b"", b"\x00", b"\x00\x40short", b"\xff\xff"])
    def test_truncated_frames_rejected(self, data):
        with pytest.raises(TransportError):
            decode_frame(data)

    def test_truncated_tail_rejected(self):
        encoded = encode_frame(
            TransportMessage(msg_type="t", payload=b"full-payload", src="s")
        )
        with pytest.raises(TransportError):
            decode_frame(encoded[:3])
