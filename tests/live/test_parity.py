"""Substrate parity: the live TCP deployment delivers exactly what the
simulator delivers.

GUIDs and ciphertexts are randomized per run, so the substrate-
independent observable is the *plaintext delivery set* per subscriber —
publish → match → retrieve → deliver must produce byte-identical
payloads on both substrates, in broadcast and delegated-matching modes.
"""

from __future__ import annotations

import pytest

from repro.live.scenario import (
    PublicationSpec,
    Scenario,
    SubscriberSpec,
    default_scenario,
    run_on_live,
    run_on_simulator,
)
from repro.pbe.schema import Interest

from .conftest import run_async, small_config

pytestmark = pytest.mark.live


def _metadata(**overrides):
    base = {"topic": "a", "prio": "lo"}
    base.update(overrides)
    return tuple(sorted(base.items()))


SMALL_SCENARIO = Scenario(
    subscribers=(
        SubscriberSpec("alice", frozenset({"org"}), (Interest({"topic": "a"}),)),
        SubscriberSpec(
            "bobby", frozenset({"org"}), (Interest({"topic": "b", "prio": "hi"}),)
        ),
        SubscriberSpec("carol", frozenset({"other"}), (Interest({"topic": "a"}),)),
    ),
    publications=(
        PublicationSpec(_metadata(topic="a"), b"payload-for-topic-a", "org"),
        PublicationSpec(
            _metadata(topic="b", prio="hi"), b"payload-for-b-hi", "org"
        ),
        PublicationSpec(_metadata(topic="d"), b"payload-nobody-wants", "org"),
    ),
)


class TestDeliveryParity:
    def test_broadcast_delivery_sets_identical(self):
        config = small_config()
        simulated = run_on_simulator(SMALL_SCENARIO, config)
        live = run_async(run_on_live(SMALL_SCENARIO, config, expected=simulated))
        assert simulated == live
        # the scenario is non-trivial on both substrates
        assert live["alice"] == (b"payload-for-topic-a",)
        assert live["bobby"] == (b"payload-for-b-hi",)
        assert live["carol"] == ()  # matched, but CP-ABE policy denies

    def test_delegated_matching_delivery_sets_identical(self):
        config = small_config(delegated_matching=True, match_workers=1)
        simulated = run_on_simulator(SMALL_SCENARIO, config)
        live = run_async(run_on_live(SMALL_SCENARIO, config, expected=simulated))
        assert simulated == live
        assert live["alice"] == (b"payload-for-topic-a",)

    def test_default_demo_scenario_parity(self):
        scenario = default_scenario()
        simulated = run_on_simulator(scenario)
        live = run_async(run_on_live(scenario, expected=simulated))
        assert simulated == live
        assert any(payloads for payloads in live.values())


class TestLiveObservables:
    def test_subscriber_and_service_counters(self):
        import asyncio

        from repro.live.deployment import LiveDeployment

        async def scenario():
            deployment = LiveDeployment(small_config())
            await deployment.start()
            try:
                alice = await deployment.add_subscriber("alice", {"org"})
                await alice.subscribe(Interest({"topic": "a"}))
                carol = await deployment.add_subscriber("carol", {"other"})
                await carol.subscribe(Interest({"topic": "a"}))
                publisher = await deployment.add_publisher("pub")
                await publisher.publish(
                    dict(_metadata(topic="a")), b"observable", policy="org"
                )
                await alice.wait_for_deliveries(1, timeout_s=60.0)
                # carol matches but is denied; wait for her attempt to finish
                for _ in range(200):
                    if carol.stats.access_denied:
                        break
                    await asyncio.sleep(0.05)
                # subscriber-side stats mirror the simulator's semantics
                assert alice.stats.metadata_seen == 1
                assert alice.stats.matches == 1
                assert len(alice.stats.deliveries) == 1
                assert carol.stats.access_denied == 1
                assert carol.stats.deliveries == []
                # service-side HBC observables populated over the real wire
                assert deployment.ds.publications_by_publisher["pub"] == 1
                assert deployment.ds.delivered_count >= 2
                assert deployment.rs.store.stored_count == 1
                assert deployment.rs.store.item_count == 1
                assert deployment.pbe_ts.issuer.tokens_issued == 2
                # the anonymizer hid subscriber identities from RS/PBE-TS
                assert set(deployment.pbe_ts.observed_sources) == {"anon"}
                assert set(deployment.rs.observed_sources) == {"anon"}
                assert ("alice", "pbe-ts") in deployment.anonymizer.observed_links
            finally:
                await deployment.close()

        run_async(scenario())

    def test_expired_item_fails_fetch_after_gc(self):
        import asyncio

        from repro.live.deployment import LiveDeployment

        async def scenario():
            config = small_config(t_g=0.0, rs_gc_interval_s=0.05)
            deployment = LiveDeployment(config)
            await deployment.start()
            try:
                alice = await deployment.add_subscriber(
                    "alice", {"org"}, retrieval_retries=1, retry_delay_s=0.05
                )
                await alice.subscribe(Interest({"topic": "a"}))
                publisher = await deployment.add_publisher("pub")
                # TTL 0 + T_G 0: the item is dead on arrival at the RS
                await publisher.publish(
                    dict(_metadata(topic="a")), b"ephemeral", policy="org", ttl_s=0.0
                )
                for _ in range(400):
                    if alice.stats.failed_fetches:
                        break
                    await asyncio.sleep(0.05)
                assert alice.stats.failed_fetches == 1
                assert alice.stats.deliveries == []
            finally:
                await deployment.close()

        run_async(scenario())
