"""Analytic models vs full protocol simulation: band agreement."""

import pytest

from repro.perf.latency import baseline_latency, p3s_latency
from repro.perf.params import ModelParams
from repro.perf.validation import (
    simulate_baseline_latency,
    simulate_p3s_latency,
    simulate_p3s_throughput,
)

# a small deployment both tractable to simulate and expressible in the model
SMALL = ModelParams(num_subscribers=10, match_fraction=0.2, broker_threads=1)


def small_model(payload_bytes):
    # substitute the real encrypted-metadata size the simulation will use
    # (n=3 bits → tiny) so the model and simulation describe the same system
    from repro.crypto.group import PairingGroup
    from repro.pbe.serialize import hve_ciphertext_size

    group = PairingGroup("TOY")
    p_e = hve_ciphertext_size(group, 3, 16)
    return SMALL.with_(encrypted_metadata_bytes=p_e)


class TestLatencyAgreement:
    @pytest.mark.parametrize("payload", [1_000, 100_000])
    def test_p3s_simulation_within_band(self, payload):
        params = small_model(payload)
        model = p3s_latency(payload, params).total
        simulated = simulate_p3s_latency(payload, params, 10, 2).value
        # the model is a worst-case estimate; the simulation must come in
        # at the same order — within [0.3×, 1.5×] of the model
        assert 0.3 * model < simulated < 1.5 * model

    @pytest.mark.parametrize("payload", [1_000, 100_000])
    def test_baseline_simulation_within_band(self, payload):
        params = small_model(payload)
        model = baseline_latency(payload, params).total
        simulated = simulate_baseline_latency(payload, params, 10, 2).value
        assert 0.3 * model < simulated < 1.5 * model

    def test_relative_ordering_preserved(self):
        """P3S slower than baseline at small payloads — in both worlds."""
        params = small_model(1_000)
        assert p3s_latency(1_000, params).total > baseline_latency(1_000, params).total
        p3s_sim = simulate_p3s_latency(1_000, params, 10, 2).value
        base_sim = simulate_baseline_latency(1_000, params, 10, 2).value
        assert p3s_sim > base_sim

    def test_latency_grows_with_payload_in_simulation(self):
        params = small_model(1_000)
        small = simulate_p3s_latency(1_000, params, 6, 2).value
        large = simulate_p3s_latency(1_000_000, params, 6, 2).value
        assert large > small + 0.5  # ≥ ~0.8 s extra serialization at 10 Mbps


class TestThroughputAgreement:
    def test_sustained_load_achieves_model_order(self):
        """Achieved rate lands in the band of the model's bottleneck rate."""
        from repro.perf.throughput import p3s_throughput

        params = small_model(1_000)
        model_rate = p3s_throughput(1_000, params).total
        simulated = simulate_p3s_throughput(1_000, params, 10, 2, num_publications=8)
        assert 0.3 * model_rate < simulated.value < 3.0 * model_rate

    def test_all_publications_delivered(self):
        params = small_model(1_000)
        point = simulate_p3s_throughput(1_000, params, 6, 3, num_publications=5)
        assert point.num_matching == 3  # the helper asserts full delivery internally
