"""ASCII plotting and the CLI experiment runner."""

import pytest

from repro.cli import build_parser, main
from repro.perf.plot import ascii_plot


class TestAsciiPlot:
    def test_basic_shape(self):
        text = ascii_plot(
            [1_000, 10_000, 100_000],
            {"a": [1.0, 2.0, 4.0], "b": [4.0, 2.0, 1.0]},
            width=40,
            height=8,
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "* a" in lines[1] and "o b" in lines[1]
        body = [line for line in lines if "|" in line]
        assert len(body) == 8
        assert any("*" in line for line in body)
        assert any("o" in line for line in body)

    def test_linear_scales(self):
        text = ascii_plot(
            [1, 2, 3], {"s": [5, 5, 5]}, log_x=False, log_y=False, height=4, width=20
        )
        assert "|" in text

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {})

    def test_axis_labels_present(self):
        text = ascii_plot([10, 1000], {"s": [1, 100]}, x_label="bytes", y_label="rate")
        assert "bytes" in text
        assert "(y: rate)" in text


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for command in ("table1", "fig8", "fig9", "fig10", "calibrate", "demo", "attacks"):
            args = parser.parse_args([command] if command not in ("table1", "calibrate") else [command, "-p", "TOY"])
            assert callable(args.func)

    def test_fig8_runs(self, capsys):
        assert main(["fig8"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 8" in output
        assert "100 MB" in output

    def test_fig10_runs(self, capsys):
        assert main(["fig10"]) == 0
        assert "f = 50%" in capsys.readouterr().out

    def test_calibrate_runs_small(self, capsys):
        assert main(["calibrate", "-p", "TOY", "--vector-bits", "4"]) == 0
        output = capsys.readouterr().out
        assert "pbe_match_s" in output
        assert "P_E" in output

    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "delivered" in output
        assert "anon" in output

    def test_attacks_run(self, capsys):
        assert main(["attacks"]) == 0
        output = capsys.readouterr().out
        assert "token-probing" in output
        assert "token-accumulation" in output
