"""The versioned bench schema, the legacy BENCH_pr*.json normalizers,
and the perf-regression gate's pass/fail behaviour."""

from __future__ import annotations

import os

import pytest

from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    load_bench_file,
    load_history,
    write_bench,
)
from repro.perf.gate import baseline_checks, format_gate, run_gate, smoke_checks

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))


class TestBenchSchema:
    def test_v1_document_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        records = [
            BenchRecord("x.speedup", 2.5, "ratio", floor=1.5),
            BenchRecord(
                "x.latency_ms", 12.0, "ms", direction="lower", tolerance=0.2, seed=7
            ),
        ]
        document = write_bench(str(path), "x", records, workload={"n": 8}, seed=7)
        assert document["bench_schema"] == BENCH_SCHEMA_VERSION
        assert document["env"]["python"]
        loaded = {record.name: record for record in load_bench_file(str(path))}
        assert loaded["x.speedup"].floor == 1.5
        assert loaded["x.speedup"].source == "BENCH_x.json"
        assert loaded["x.latency_ms"].direction == "lower"
        assert loaded["x.latency_ms"].tolerance == 0.2
        assert loaded["x.latency_ms"].seed == 7

    def test_tolerance_defaults_by_unit(self):
        assert BenchRecord("a", 1.0, "ratio").effective_tolerance() == 0.40
        assert BenchRecord("a", 1.0, "fraction").effective_tolerance() == 0.10
        assert BenchRecord("a", 1.0, "furlongs").effective_tolerance() == 0.75
        assert BenchRecord("a", 1.0, "ms", tolerance=0.05).effective_tolerance() == 0.05

    def test_unknown_schema_version_raises(self, tmp_path):
        path = tmp_path / "BENCH_future.json"
        path.write_text('{"bench_schema": 99, "records": []}')
        with pytest.raises(ValueError, match="bench_schema 99"):
            load_bench_file(str(path))

    def test_unrecognized_shape_raises_not_vacuous(self, tmp_path):
        path = tmp_path / "BENCH_mystery.json"
        path.write_text('{"something": 1}')
        with pytest.raises(ValueError, match="unrecognized"):
            load_bench_file(str(path))


class TestLegacyNormalizers:
    """Every committed PR-era BENCH file must normalize into records."""

    EXPECTED = {
        "BENCH_pr2.json": {"match_fanout.precompute_speedup", "match_fanout.pool4_speedup"},
        "BENCH_pr3.json": {"live_substrate.rpc_echo_p95_ms", "live_substrate.live_over_sim"},
        "BENCH_pr4.json": {"telemetry.scrape_p95_ms", "telemetry.flight_recorder_overhead_pct"},
        "BENCH_pr6.json": {"store.wal_fsync_records_per_s"},
        "BENCH_pr8.json": {"cluster.speedup_ds2"},
        "BENCH_pr9.json": {"obs_overhead.always_recovery", "obs_overhead.sampled_recovery"},
    }

    def test_every_committed_legacy_file_normalizes(self):
        for filename, expected in self.EXPECTED.items():
            path = os.path.join(REPO_ROOT, filename)
            names = {record.name for record in load_bench_file(path)}
            assert expected <= names, filename

    def test_history_merges_all_files_and_honors_floors(self):
        history = load_history(REPO_ROOT)
        # one uniform stream across six legacy shapes + the v1 pr10 file
        for expected in self.EXPECTED.values():
            assert expected <= set(history)
        assert "prof.det_recovery" in history  # the v1-schema newcomer
        assert history["prof.det_recovery"].source == "BENCH_pr10.json"
        for record in history.values():
            if record.floor is not None:
                assert record.value >= record.floor, record.name

    def test_later_files_supersede_earlier_records(self, tmp_path):
        write_bench(
            str(tmp_path / "BENCH_a.json"), "a", [BenchRecord("shared.metric", 1.0)]
        )
        write_bench(
            str(tmp_path / "BENCH_b.json"), "b", [BenchRecord("shared.metric", 2.0)]
        )
        history = load_history(str(tmp_path))
        assert history["shared.metric"].value == 2.0
        assert history["shared.metric"].source == "BENCH_b.json"


class TestGate:
    def test_smoke_passes_on_the_committed_history(self):
        report = run_gate(root=REPO_ROOT, smoke=True)
        assert report.checks, "committed history must produce checks"
        assert report.passed, [check.detail for check in report.failures]
        assert "perf gate: PASS" in format_gate(report)

    def test_smoke_fails_on_synthetically_regressed_history(self):
        history = {
            "match_fanout.precompute_speedup": BenchRecord(
                "match_fanout.precompute_speedup", 1.1, "ratio", floor=1.3
            )
        }
        report = run_gate(history=history, fresh={})
        assert not report.passed
        (failure,) = report.failures
        assert failure.kind == "floor"
        assert "FAIL" in format_gate(report)

    def test_fresh_regression_beyond_tolerance_fails(self):
        history = {
            "match_fanout.precompute_speedup": BenchRecord(
                "match_fanout.precompute_speedup", 10.0, "ratio", floor=1.3
            )
        }
        # within the 40% ratio band: passes
        good = run_gate(history=history, fresh={"match_fanout.precompute_speedup": 6.5})
        assert good.passed
        # beyond it: the baseline check fails (the floor still holds)
        bad = run_gate(history=history, fresh={"match_fanout.precompute_speedup": 4.0})
        assert not bad.passed
        assert [check.kind for check in bad.failures] == ["baseline"]

    def test_lower_is_better_direction_mirrors(self):
        history = {
            "x.latency_ms": BenchRecord(
                "x.latency_ms", 10.0, "ms", direction="lower", tolerance=0.5
            )
        }
        assert run_gate(history=history, fresh={"x.latency_ms": 14.0}).passed
        assert not run_gate(history=history, fresh={"x.latency_ms": 16.0}).passed

    def test_fresh_ceiling_checks_apply(self):
        history = {
            "x.overhead": BenchRecord(
                "x.overhead", 10.0, "count", direction="lower", ceiling=80.0
            )
        }
        report = run_gate(history=history, fresh={"x.overhead": 90.0})
        assert not report.passed
        assert any(check.kind == "ceiling" for check in report.failures)

    def test_unknown_fresh_metric_is_informational(self):
        report = run_gate(history={}, fresh={"new.metric": 1.23})
        assert report.passed
        (check,) = report.checks
        assert "informational" in check.detail

    def test_fresh_probes_pass_against_committed_history(self):
        # the acceptance run: re-measure the cheap machine-independent
        # ratios on this tree against the committed baselines
        report = run_gate(root=REPO_ROOT, only=["prof"])
        assert report.passed, [check.detail for check in report.failures]
        names = {check.name for check in report.checks}
        assert "prof.det_recovery" in names

    def test_smoke_report_mentions_sources(self):
        report = run_gate(root=REPO_ROOT, smoke=True)
        assert any("BENCH_pr2.json" in check.detail for check in report.checks)
