"""Analytic model tests: Fig. 8-10 shapes and the paper's stated conclusions."""

import pytest

from repro.perf import (
    MESSAGE_SIZES,
    PAPER_PARAMS,
    ModelParams,
    baseline_latency,
    baseline_throughput,
    latency_ratio,
    p3s_latency,
    p3s_throughput,
    throughput_ratio,
)


class TestLatencyModel:
    def test_baseline_components(self):
        breakdown = baseline_latency(10_000, PAPER_PARAMS)
        # t1 = 45 ms + 8 ms serialization
        assert breakdown.components["t1"] == pytest.approx(0.053)
        # t2 = 0.05 ms × 100
        assert breakdown.components["t2"] == pytest.approx(0.005)
        # t3 = 5 matching subscribers × t1
        assert breakdown.components["t3"] == pytest.approx(5 * 0.053)

    def test_p3s_metadata_path_dominates_small_payloads(self):
        """Fig. 8: 'for small payloads P3S exhibits a threshold' — the DS
        broadcast of P_E to all N_s subscribers."""
        breakdown = p3s_latency(1_000, PAPER_PARAMS)
        assert breakdown.components["t_f"] > breakdown.components["t_b"]
        assert breakdown.components["t_f2"] > 0.5 * breakdown.components["t_f"]

    def test_p3s_follows_baseline_for_large_payloads(self):
        """Fig. 8(a): 'The P3S system follows the baseline for large
        payloads' — serialization dominates."""
        for size in (10_000_000, 100_000_000):
            assert latency_ratio(size, PAPER_PARAMS) == pytest.approx(1.0, abs=0.05)

    def test_within_ten_times_everywhere(self):
        """§2 performance target + Fig. 8(b): within 10× of baseline."""
        for size in MESSAGE_SIZES:
            assert latency_ratio(size, PAPER_PARAMS) < 10.0

    def test_ratio_decreases_toward_parity(self):
        """The advantage of the baseline shrinks with payload size until the
        two systems converge (after which the ratio hovers at ~1)."""
        ratios = [latency_ratio(size, PAPER_PARAMS) for size in MESSAGE_SIZES]
        converged = False
        for previous, current in zip(ratios, ratios[1:]):
            if abs(previous - 1.0) < 0.05:
                converged = True
            if not converged:
                assert current < previous
            else:
                assert current == pytest.approx(1.0, abs=0.1)

    def test_p3s_worst_case_uses_slower_path(self):
        breakdown = p3s_latency(50_000_000, PAPER_PARAMS)
        assert breakdown.total == pytest.approx(
            max(breakdown.components["t_f"], breakdown.components["t_b"])
            + breakdown.components["t_r"]
        )


class TestThroughputModel:
    def test_baseline_bandwidth_bound(self):
        """'bandwidth is the dominant factor in the baseline.'"""
        assert baseline_throughput(100_000, PAPER_PARAMS).bottleneck == "r2_egress"

    def test_p3s_small_payload_flat(self):
        """Fig. 9: 'P3S performance flattens because regardless of the
        payload size, the DS must send the PBE encrypted metadata to each
        of the 100 subscribers.'"""
        small = p3s_throughput(1_000, PAPER_PARAMS)
        also_small = p3s_throughput(10_000, PAPER_PARAMS)
        assert small.bottleneck == "r1_ds_broadcast"
        assert small.total == pytest.approx(also_small.total)

    def test_p3s_large_payload_rs_bound(self):
        """'it is the bandwidth out of the RS that limits the throughput.'"""
        assert p3s_throughput(10_000_000, PAPER_PARAMS).bottleneck == "r3_rs_egress"

    def test_large_payload_parity(self):
        """Fig. 9: 'almost exactly the same behavior as the baseline for
        large payloads.'"""
        for size in (3_000_000, 30_000_000):
            assert throughput_ratio(size, PAPER_PARAMS) == pytest.approx(1.0, abs=0.01)

    def test_small_payload_low_match_rate_is_the_weak_spot(self):
        """'P3S performs worse than the baseline for small payloads.'"""
        assert throughput_ratio(1_000, PAPER_PARAMS) < 0.1

    def test_higher_match_rate_benefits_p3s(self):
        """Fig. 10: 'increasing the match rate benefits P3S.'"""
        f50 = PAPER_PARAMS.with_(match_fraction=0.5)
        for size in (1_000, 10_000, 100_000):
            assert throughput_ratio(size, f50) > throughput_ratio(size, PAPER_PARAMS)

    def test_ratio_independent_of_subscriber_count(self):
        """'P3S throughput relative to the baseline shows no dependence on
        the number of subscribers for a fixed matching rate f.'"""
        for n in (50, 100, 400):
            params = PAPER_PARAMS.with_(num_subscribers=n)
            # in the bandwidth-bound regime the ratio is m·f/P_E, N_s-free
            assert throughput_ratio(10_000, params) == pytest.approx(
                throughput_ratio(10_000, PAPER_PARAMS)
            )

    def test_bandwidth_helps_both_equally(self):
        """'increasing the network bandwidth from 10 to 100 Mbps helps both
        systems equally.'"""
        fast = PAPER_PARAMS.with_(bandwidth_bps=100_000_000)
        assert throughput_ratio(10_000, fast) == pytest.approx(
            throughput_ratio(10_000, PAPER_PARAMS)
        )

    def test_hierarchical_dissemination_lifts_small_payload_throughput(self):
        """§6.2 extension: a relay tree removes the DS broadcast bottleneck."""
        flat = p3s_throughput(1_000, PAPER_PARAMS)
        tree = p3s_throughput(1_000, PAPER_PARAMS, relay_fanout=10)
        assert tree.total == pytest.approx(flat.total * 10)

    def test_relay_fanout_capped_at_subscribers(self):
        assert p3s_throughput(1_000, PAPER_PARAMS, relay_fanout=1000).total == pytest.approx(
            p3s_throughput(1_000, PAPER_PARAMS).total
        )


class TestModelParams:
    def test_ser(self):
        assert PAPER_PARAMS.ser(10_000) == pytest.approx(0.008)
        assert PAPER_PARAMS.ser(10_000, 100_000_000) == pytest.approx(0.0008)

    def test_cpabe_size_formula(self):
        # c_A = 2·V·k + m = 2·10·48 + m
        assert PAPER_PARAMS.cpabe_ciphertext_bytes(1000) == 960 + 1000

    def test_with_override(self):
        assert PAPER_PARAMS.with_(match_fraction=0.5).match_fraction == 0.5
        assert PAPER_PARAMS.match_fraction == 0.05
