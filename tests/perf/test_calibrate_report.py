"""Calibration and report-formatting tests."""

import pytest

from repro.core.config import ComputeTimings
from repro.perf.calibrate import calibrate
from repro.perf.params import ModelParams
from repro.perf.report import format_rate, format_seconds, format_size, format_table, series_table


@pytest.fixture(scope="module")
def result():
    return calibrate("TOY", vector_bits=6, policy_attributes=2, repetitions=1)


class TestCalibration:
    def test_all_timings_positive(self, result):
        assert result.pairing_s > 0
        assert result.pbe_encrypt_s > 0
        assert result.pbe_match_s > 0
        assert result.pbe_token_gen_s > 0
        assert result.cpabe_encrypt_s > 0
        assert result.cpabe_decrypt_s > 0
        assert result.pke_op_s > 0

    def test_sizes_match_serializers(self, result):
        from repro.crypto.group import PairingGroup
        from repro.pbe.serialize import hve_ciphertext_size

        group = PairingGroup("TOY")
        assert result.encrypted_metadata_bytes == hve_ciphertext_size(group, 6, 16)
        assert result.cpabe_overhead_bytes > 0

    def test_as_model_params(self, result):
        params = result.as_model_params()
        assert params.pbe_match_s == result.pbe_match_s
        assert params.encrypted_metadata_bytes == result.encrypted_metadata_bytes
        # untouched fields keep Table 1 values
        assert params.num_subscribers == ModelParams().num_subscribers

    def test_as_compute_timings(self, result):
        timings = result.as_compute_timings()
        assert isinstance(timings, ComputeTimings)
        assert timings.pbe_match == result.pbe_match_s

    def test_match_cost_scales_with_vector_length(self):
        short = calibrate("TOY", vector_bits=4, policy_attributes=2, repetitions=1)
        long = calibrate("TOY", vector_bits=16, policy_attributes=2, repetitions=1)
        assert long.pbe_match_s > short.pbe_match_s
        assert long.encrypted_metadata_bytes > short.encrypted_metadata_bytes


class TestReportFormatting:
    def test_format_size(self):
        assert format_size(512) == "512 B"
        assert format_size(10_000) == "10 KB"
        assert format_size(3_000_000) == "3 MB"
        assert format_size(2_500_000_000) == "2.5 GB"

    def test_format_seconds(self):
        assert format_seconds(2.5) == "2.5 s"
        assert format_seconds(0.038) == "38 ms"
        assert format_seconds(0.00005) == "50 µs"

    def test_format_rate(self):
        assert format_rate(250.0) == "250/s"
        assert format_rate(0.025) == "0.025/s"

    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_series_table(self):
        text = series_table(
            [1_000, 1_000_000],
            {"latency": [0.1, 2.0]},
            title="demo",
        )
        assert "1 KB" in text and "1 MB" in text
        assert "100 ms" in text and "2 s" in text
