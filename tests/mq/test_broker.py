"""Mini-JMS broker and client API tests."""

import pytest

from repro.errors import BrokerError
from repro.mq.broker import Broker
from repro.mq.client import JmsConnection
from repro.mq.messages import FRAME_HEADER_BYTES
from repro.net.network import Network
from repro.net.simulator import Simulator


def make_system(num_clients=2):
    sim = Simulator()
    net = Network(sim)
    broker = Broker(net.add_host("broker"))
    broker.start()
    connections = []
    for i in range(num_clients):
        connection = JmsConnection(net.add_host(f"client-{i}"), "broker")
        connection.start()
        connections.append(connection)
    return sim, net, broker, connections


class TestPubSub:
    def test_single_subscriber_receives(self):
        sim, _, broker, (pub, sub) = make_system()
        received = []
        consumer = sub.create_session().create_consumer("news")
        consumer.set_message_listener(lambda frame: received.append(frame.body))
        sim.run()  # let CONNECT/SUBSCRIBE land
        pub.create_session().create_producer("news").send(b"hello", 5)
        sim.run()
        assert received == [b"hello"]

    def test_fan_out_to_all_subscribers(self):
        sim, _, broker, connections = make_system(num_clients=4)
        publisher, *subscribers = connections
        received = {connection.client_name: [] for connection in subscribers}
        for connection in subscribers:
            consumer = connection.create_session().create_consumer("updates")
            consumer.set_message_listener(
                lambda frame, name=connection.client_name: received[name].append(frame.body)
            )
        sim.run()
        publisher.create_session().create_producer("updates").send(b"item", 4)
        sim.run()
        assert all(bodies == [b"item"] for bodies in received.values())

    def test_topic_isolation(self):
        sim, _, broker, (pub, sub) = make_system()
        news, sports = [], []
        session = sub.create_session()
        session.create_consumer("news").set_message_listener(lambda f: news.append(f.body))
        session.create_consumer("sports").set_message_listener(lambda f: sports.append(f.body))
        sim.run()
        pub.create_session().create_producer("news").send(b"n1", 2)
        sim.run()
        assert news == [b"n1"]
        assert sports == []

    def test_publisher_does_not_receive_own_items(self):
        sim, _, broker, (pub, sub) = make_system()
        pub_received = []
        # publisher subscribes to nothing
        sub.create_session().create_consumer("t").set_message_listener(lambda f: None)
        sim.run()
        pub.create_session().create_producer("t").send(b"x", 1)
        sim.run()
        assert pub_received == []

    def test_no_subscribers_drops_silently(self):
        sim, _, broker, (pub, _) = make_system()
        sim.run()
        pub.create_session().create_producer("void").send(b"x", 1)
        sim.run()
        assert broker.published_count == 1
        assert broker.delivered_count == 0


class TestBrokerAccounting:
    def test_acks_counted(self):
        sim, _, broker, (pub, sub) = make_system()
        sub.create_session().create_consumer("t").set_message_listener(lambda f: None)
        sim.run()
        pub.create_session().create_producer("t").send(b"x", 1)
        sim.run()
        assert broker.acked_count == 1

    def test_message_ids_unique_and_increasing(self):
        sim, _, broker, (pub, sub) = make_system()
        ids = []
        sub.create_session().create_consumer("t").set_message_listener(
            lambda frame: ids.append(frame.message_id)
        )
        sim.run()
        producer = pub.create_session().create_producer("t")
        producer.send(b"a", 1)
        producer.send(b"b", 1)
        sim.run()
        assert ids == sorted(ids)
        assert len(set(ids)) == 2

    def test_subscribe_before_connect_rejected(self):
        sim = Simulator()
        net = Network(sim)
        broker = Broker(net.add_host("broker"))
        broker.start()
        # forge a SUBSCRIBE without CONNECT
        from repro.mq import messages as frames
        from repro.mq.messages import JmsFrame
        from repro.net.channel import SecureChannelLayer

        rogue = SecureChannelLayer(net.add_host("rogue"))
        rogue.send("broker", frames.SUBSCRIBE, JmsFrame(topic="t"), 64)
        with pytest.raises(BrokerError):
            sim.run()

    def test_frame_wire_size(self):
        from repro.mq.messages import JmsFrame

        assert JmsFrame(body_size=100).wire_size == 100 + FRAME_HEADER_BYTES


class TestClientApi:
    def test_session_requires_started_connection(self):
        sim = Simulator()
        net = Network(sim)
        Broker(net.add_host("broker")).start()
        connection = JmsConnection(net.add_host("c"), "broker")
        with pytest.raises(BrokerError):
            connection.create_session()

    def test_listener_set_once(self):
        sim, _, broker, (_, sub) = make_system()
        consumer = sub.create_session().create_consumer("t")
        consumer.set_message_listener(lambda f: None)
        with pytest.raises(BrokerError):
            consumer.set_message_listener(lambda f: None)

    def test_unsubscribe_stops_delivery(self):
        sim, _, broker, (pub, sub) = make_system()
        received = []
        sub.create_session().create_consumer("t").set_message_listener(
            lambda frame: received.append(frame.body)
        )
        sim.run()
        broker._unsubscribe(sub.client_name, "t")
        pub.create_session().create_producer("t").send(b"x", 1)
        sim.run()
        assert received == []
