"""Tail-based trace sampling: head decisions, propagation, promotion."""

import pytest

from repro.obs.sampling import TraceSampler, decision
from repro.obs.tracing import SpanContext, Tracer

SEED = 42
KEEP_RATE = 0.25
TRACES = 400


class TestDecision:
    def test_deterministic(self):
        first = [decision(SEED, tid, KEEP_RATE) for tid in range(TRACES)]
        second = [decision(SEED, tid, KEEP_RATE) for tid in range(TRACES)]
        assert first == second

    def test_seed_changes_the_kept_set(self):
        kept_a = {tid for tid in range(TRACES) if decision(1, tid, KEEP_RATE)}
        kept_b = {tid for tid in range(TRACES) if decision(2, tid, KEEP_RATE)}
        assert kept_a != kept_b

    def test_keep_rate_bounds(self):
        assert all(decision(SEED, tid, 1.0) for tid in range(TRACES))
        assert not any(decision(SEED, tid, 0.0) for tid in range(TRACES))

    def test_keep_fraction_tracks_rate(self):
        kept = sum(decision(SEED, tid, KEEP_RATE) for tid in range(4000))
        assert 0.15 < kept / 4000 < 0.35

    def test_rate_is_monotone_per_trace(self):
        # a trace kept at rate r is kept at every rate above r
        for tid in range(100):
            if decision(SEED, tid, 0.1):
                assert decision(SEED, tid, 0.5)


class TestSampler:
    def test_counters(self):
        sampler = TraceSampler(keep_rate=KEEP_RATE, seed=SEED)
        kept = sum(sampler.keep(tid) for tid in range(TRACES))
        assert sampler.kept_traces == kept
        assert sampler.dropped_traces == TRACES - kept
        block = sampler.counters()
        assert block["kept_traces"] == kept
        assert block["promoted_traces"] == 0

    def test_keep_rate_validated(self):
        with pytest.raises(ValueError):
            TraceSampler(keep_rate=1.5)


class TestTracerIntegration:
    def _tracer(self, **kwargs):
        return Tracer(sampler=TraceSampler(keep_rate=KEEP_RATE, seed=SEED), **kwargs)

    def test_unsampled_roots_are_buffered_not_recorded(self):
        tracer = self._tracer()
        for _ in range(50):
            tracer.end_span(tracer.start_span("publish", "pub"))
        recorded = {span.trace_id for span in tracer.spans}
        expected = {
            tid for tid in range(1, 51) if decision(SEED, tid, KEEP_RATE)
        }
        assert recorded == expected

    def test_children_follow_the_head_decision(self):
        tracer = self._tracer()
        for _ in range(50):
            root = tracer.start_span("publish", "pub")
            child = tracer.start_span("ds.fan_out", "ds", parent=root)
            tracer.end_span(child)
            tracer.end_span(root)
        for span in tracer.spans:
            assert decision(SEED, span.trace_id, KEEP_RATE)
        # kept traces are complete: both spans present
        by_trace = {}
        for span in tracer.spans:
            by_trace.setdefault(span.trace_id, set()).add(span.name)
        assert all(names == {"publish", "ds.fan_out"} for names in by_trace.values())

    def test_error_span_promotes_the_whole_trace(self):
        tracer = Tracer(sampler=TraceSampler(keep_rate=0.0, seed=SEED))
        root = tracer.start_span("publish", "pub")
        child = tracer.start_span("ds.fan_out", "ds", parent=root)
        assert len(tracer.spans) == 0  # nothing sampled
        tracer.end_span(child, error="boom")
        assert {span.name for span in tracer.spans} == {"publish", "ds.fan_out"}
        tracer.end_span(root)
        assert tracer.sampler.promoted_traces == 1

    def test_status_attribute_promotes(self):
        tracer = Tracer(sampler=TraceSampler(keep_rate=0.0, seed=SEED))
        span = tracer.start_span("retrieve", "sub")
        tracer.end_span(span, status="exhausted")
        assert [s.name for s in tracer.spans] == ["retrieve"]

    def test_slow_span_promotes(self):
        tracer = Tracer(
            sampler=TraceSampler(keep_rate=0.0, seed=SEED),
            slow_span_threshold_s=0.0,  # every finished span counts as slow
        )
        span = tracer.start_span("match", "sub")
        tracer.end_span(span)
        assert [s.name for s in tracer.spans] == ["match"]
        assert tracer.sampler.promoted_traces == 1

    def test_later_spans_of_a_promoted_trace_record_directly(self):
        tracer = Tracer(sampler=TraceSampler(keep_rate=0.0, seed=SEED))
        root = tracer.start_span("publish", "pub")
        tracer.end_span(root, error="boom")
        late = tracer.start_span("retry", "pub", parent=root)
        tracer.end_span(late)
        assert {s.name for s in tracer.spans} == {"publish", "retry"}
        assert tracer.sampler.promoted_traces == 1  # promoted once

    def test_pending_buffer_bounded_with_eviction_counter(self):
        tracer = Tracer(
            sampler=TraceSampler(keep_rate=0.0, seed=SEED),
            pending_trace_capacity=8,
        )
        for _ in range(20):
            tracer.end_span(tracer.start_span("publish", "pub"))
        assert len(tracer._pending) == 8
        assert tracer.sampler.evicted_traces == 12
        assert len(tracer.spans) == 0

    def test_decision_stable_across_wire_propagation(self):
        """The acceptance property: for a pinned seed the kept trace-id
        set is identical on both sides of the wire — the downstream
        tracer honours the propagated bit and never re-decides."""
        upstream = self._tracer()
        downstream = self._tracer()
        for _ in range(100):
            root = upstream.start_span("publish", "pub")
            headers = Tracer.inject({}, root)
            wire = headers["obs-ctx"].to_wire()  # live substrate JSON form
            context = SpanContext.from_wire(wire)
            remote = downstream.start_span("ds.fan_out", "ds", parent=context)
            downstream.end_span(remote)
            upstream.end_span(root)
        kept_upstream = {span.trace_id for span in upstream.spans}
        kept_downstream = {span.trace_id for span in downstream.spans}
        assert kept_upstream == kept_downstream
        assert kept_upstream == {
            tid for tid in range(1, 101) if decision(SEED, tid, KEEP_RATE)
        }

    def test_legacy_two_element_wire_form_reads_as_sampled(self):
        context = SpanContext.from_wire([7, 9])
        assert context == SpanContext(7, 9, sampled=True)
        assert SpanContext.from_wire([7, 9, 0]).sampled is False
        assert SpanContext.from_wire("garbage") is None
