"""MetricsRegistry: counters, histograms, grouping, CSV export."""

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounters:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        registry.inc("op.pairing", component="alice")
        registry.inc("op.pairing", 4, component="alice")
        registry.inc("op.pairing", component="bob")
        assert registry.counter_value("op.pairing", component="alice") == 5
        assert registry.counter_value("op.pairing", component="bob") == 1
        assert registry.counter_value("op.pairing", component="carol") == 0
        assert registry.counter_total("op.pairing") == 6

    def test_counters_by_label(self):
        registry = MetricsRegistry()
        registry.inc("net.bytes", 100, src="pub", dst="ds")
        registry.inc("net.bytes", 50, src="ds", dst="alice")
        registry.inc("net.bytes", 25, src="ds", dst="bob")
        assert registry.counters_by_label("net.bytes", "src") == {"pub": 100, "ds": 75}
        assert registry.counters_by_label("net.bytes", "dst") == {
            "ds": 100, "alice": 50, "bob": 25,
        }

    def test_counter_names(self):
        registry = MetricsRegistry()
        registry.inc("op.b", component="x")
        registry.inc("op.a", component="x")
        registry.inc("op.a", component="y")
        assert registry.counter_names() == ["op.a", "op.b"]


class TestHistograms:
    def test_observe_and_stats(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("net.inbox_depth", value, host="ds")
        histogram = registry.histogram("net.inbox_depth", host="ds")
        assert histogram.count == 4
        assert histogram.total == 10.0
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.maximum == 4.0

    def test_percentile_nearest_rank(self):
        registry = MetricsRegistry()
        for value in range(100):
            registry.observe("h", float(value))
        histogram = registry.histogram("h")
        # same rule as LatencyStats: index = round(fraction * (n-1))
        assert histogram.percentile(0.95) == 94.0
        assert histogram.percentile(0.99) == 98.0
        assert histogram.percentile(0.0) == 0.0
        assert histogram.percentile(1.0) == 99.0

    def test_missing_histogram(self):
        assert MetricsRegistry().histogram("nope") is None

    def test_percentile_of_empty_histogram_is_zero(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0)
        histogram = registry.histogram("h")
        histogram.values.clear()
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert histogram.percentile(fraction) == 0.0
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.maximum == 0.0

    def test_percentile_of_single_sample(self):
        registry = MetricsRegistry()
        registry.observe("h", 42.0)
        histogram = registry.histogram("h")
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert histogram.percentile(fraction) == 42.0

    def test_percentile_all_equal_samples(self):
        registry = MetricsRegistry()
        for _ in range(7):
            registry.observe("h", 3.0)
        histogram = registry.histogram("h")
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert histogram.percentile(fraction) == 3.0

    def test_percentile_clamps_out_of_range_fractions(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("h", value)
        histogram = registry.histogram("h")
        assert histogram.percentile(-0.5) == 1.0
        assert histogram.percentile(1.5) == 3.0


class TestSeriesSnapshots:
    def test_counter_series_filter(self):
        registry = MetricsRegistry()
        registry.inc("op.pairing", 3, component="ds")
        registry.inc("op.pairing", 9, component="rs")
        mine = registry.counter_series(where=lambda _n, labels: labels.get("component") == "ds")
        assert mine == [{"name": "op.pairing", "labels": {"component": "ds"}, "value": 3}]

    def test_histogram_series_caps_values_but_keeps_totals(self):
        registry = MetricsRegistry()
        for value in range(10):
            registry.observe("h", float(value), host="ds")
        (series,) = registry.histogram_series(max_values=3)
        assert series["values"] == [7.0, 8.0, 9.0]  # most recent survive
        assert series["count"] == 10
        assert series["sum"] == 45.0


class TestLifecycleAndExport:
    def test_empty_and_clear(self):
        registry = MetricsRegistry()
        assert registry.empty
        registry.inc("c")
        registry.observe("h", 1.0)
        assert not registry.empty
        registry.clear()
        assert registry.empty

    def test_csv_export(self):
        registry = MetricsRegistry()
        registry.inc("op.pairing", 3, component="alice")
        registry.observe("op.pairing.wall_s", 0.25, component="alice")
        csv_text = registry.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "kind,name,labels,count,sum,mean,p95,max"
        assert any(line.startswith("counter,op.pairing,component=alice,3,") for line in lines)
        assert any(line.startswith("histogram,op.pairing.wall_s,") for line in lines)
