"""Tracer: span lifecycle, stack discipline, context inject/extract."""

from repro.obs.tracing import CONTEXT_HEADER, Span, SpanContext, Tracer


def make_tracer(start=0.0):
    clock = {"now": start}
    tracer = Tracer(lambda: clock["now"])
    return tracer, clock


class TestSpanLifecycle:
    def test_start_end_records_times(self):
        tracer, clock = make_tracer()
        span = tracer.start_span("work", component="c1")
        clock["now"] = 2.5
        tracer.end_span(span, status="ok")
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5
        assert span.attributes["status"] == "ok"
        assert span.wall_duration >= 0.0
        assert tracer.spans == [span]

    def test_root_span_gets_fresh_trace(self):
        tracer, _ = make_tracer()
        a = tracer.start_span("a", component="c")
        b = tracer.start_span("b", component="c")
        assert a.trace_id != b.trace_id
        assert a.parent_id is None

    def test_explicit_parent_span(self):
        tracer, _ = make_tracer()
        parent = tracer.start_span("p", component="c")
        child = tracer.start_span("k", component="c", parent=parent)
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert tracer.children_of(parent) == [child]

    def test_parent_from_context(self):
        tracer, _ = make_tracer()
        remote = SpanContext(trace_id="t-1", span_id="s-1")
        child = tracer.start_span("k", component="c", parent=remote)
        assert child.trace_id == "t-1"
        assert child.parent_id == "s-1"

    def test_scoped_span_nests_via_stack(self):
        tracer, _ = make_tracer()
        with tracer.span("outer", component="c1") as outer:
            assert tracer.current_span() is outer
            assert tracer.current_component() == "c1"
            with tracer.span("inner", component="c2") as inner:
                assert inner.parent_id == outer.span_id
        assert tracer.current_span() is None
        assert outer.finished and inner.finished

    def test_attach_pushes_without_ending(self):
        tracer, _ = make_tracer()
        span = tracer.start_span("long", component="c1")
        with tracer.attach(span):
            assert tracer.current_component() == "c1"
        assert tracer.current_span() is None
        assert not span.finished  # attach never ends the span

    def test_roots_and_walk(self):
        tracer, _ = make_tracer()
        root = tracer.start_span("r", component="c")
        mid = tracer.start_span("m", component="c", parent=root)
        leaf = tracer.start_span("l", component="c", parent=mid)
        other = tracer.start_span("o", component="c")
        assert tracer.roots() == [root, other]
        assert [s.name for s, _ in tracer.walk(root)] == ["r", "m", "l"]


class TestContextPropagation:
    def test_inject_extract_roundtrip(self):
        tracer, _ = make_tracer()
        span = tracer.start_span("s", component="c")
        headers = Tracer.inject({"other": 1}, span)
        assert headers["other"] == 1
        context = Tracer.extract(headers)
        assert context == span.context
        assert isinstance(context, SpanContext)

    def test_extract_missing_or_none(self):
        assert Tracer.extract(None) is None
        assert Tracer.extract({}) is None
        assert Tracer.extract({CONTEXT_HEADER: "garbage"}) is None

    def test_to_dict_is_json_ready(self):
        tracer, clock = make_tracer()
        span = tracer.start_span("s", component="c", k="v")
        clock["now"] = 1.0
        tracer.end_span(span)
        row = span.to_dict()
        assert row["name"] == "s"
        assert row["component"] == "c"
        assert row["attributes"] == {"k": "v"}
        assert row["start_s"] == 0.0
        assert row["end_s"] == 1.0
