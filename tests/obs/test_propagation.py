"""End-to-end observability: span propagation across the simulated system."""

import pytest

from repro.core import P3SConfig, P3SSystem
from repro.core.metrics import MetricsCollector
from repro.obs import Observability
from repro.obs import profile
from repro.pbe import AttributeSpec, Interest, MetadataSchema


SCHEMA = MetadataSchema([AttributeSpec("topic", ("a", "b", "c", "d"))])


def run_system(obs):
    """One publisher, two matching + one non-matching subscriber, one publication."""
    system = P3SSystem(P3SConfig(schema=SCHEMA, obs=obs))
    for index, topic in enumerate(("a", "a", "b")):
        subscriber = system.add_subscriber(f"s{index}", {"org"})
        system.subscribe(subscriber, Interest({"topic": topic}))
    system.run()
    publisher = system.add_publisher("pub")
    system.run()
    record = publisher.publish({"topic": "a"}, b"payload", policy="org")
    system.run()
    return system, record


@pytest.fixture()
def traced_run():
    obs = Observability()
    try:
        system, record = run_system(obs)
        yield obs, system, record
    finally:
        obs.uninstall()


class TestSpanPropagation:
    def test_one_root_span_per_publication(self, traced_run):
        obs, system, record = traced_run
        publish_roots = [
            span for span in obs.tracer.roots() if span.name == "publish"
        ]
        assert len(publish_roots) == 1
        (root,) = publish_roots
        assert root.component == "pub"
        assert root.attributes["publication_id"] == record.publication_id

    def test_child_span_per_hop(self, traced_run):
        obs, system, record = traced_run
        (root,) = [s for s in obs.tracer.roots() if s.name == "publish"]
        tree = [span for span, _ in obs.tracer.walk(root)]
        names = [span.name for span in tree]
        # publisher-side stages
        assert names.count("pbe.encrypt") == 1
        assert names.count("abe.encrypt") == 1
        # broker hops
        assert names.count("ds.fan_out") == 1
        assert names.count("ds.forward_rs") == 1
        assert names.count("rs.store") == 1
        # all three subscribers match-test the broadcast; two match + retrieve
        assert names.count("subscriber.match") == 3
        assert names.count("subscriber.retrieve") == 2
        assert names.count("rs.retrieve") == 2
        assert names.count("abe.decrypt") == 2
        assert names.count("deliver") == 2
        # everything hangs off the ONE publish trace
        assert {span.trace_id for span in tree} == {root.trace_id}

    def test_hop_parentage(self, traced_run):
        obs, system, _ = traced_run
        (fan_out,) = obs.tracer.find("ds.fan_out")
        for match in obs.tracer.find("subscriber.match"):
            assert match.parent_id == fan_out.span_id
        for retrieve in obs.tracer.find("subscriber.retrieve"):
            parent = next(
                s for s in obs.tracer.spans if s.span_id == retrieve.parent_id
            )
            assert parent.name == "subscriber.match"
            assert parent.component == retrieve.component

    def test_match_outcomes_attributed(self, traced_run):
        obs, system, _ = traced_run
        outcomes = {
            span.component: span.attributes["matched"]
            for span in obs.tracer.find("subscriber.match")
        }
        assert outcomes == {"s0": True, "s1": True, "s2": False}

    def test_crypto_ops_attributed_to_components(self, traced_run):
        obs, system, _ = traced_run
        by_component = obs.metrics.counters_by_label("op.hve.match", "component")
        assert by_component == {"s0": 1, "s1": 1, "s2": 1}
        assert obs.metrics.counter_total("op.hve.match_hit") == 2
        assert obs.metrics.counter_value("op.abe.decrypt", component="s0") == 1
        assert obs.metrics.counter_value("op.hve.encrypt", component="pub") == 1
        assert obs.metrics.counter_total("op.pairing") > 0

    def test_all_spans_finished(self, traced_run):
        obs, _, _ = traced_run
        assert obs.tracer.spans  # non-trivial run
        assert all(span.finished for span in obs.tracer.spans)

    def test_exports_nonempty(self, traced_run):
        obs, _, _ = traced_run
        jsonl = obs.spans_jsonl()
        assert len(jsonl.strip().splitlines()) == len(obs.tracer.spans)
        assert "net.bytes" in obs.metrics_csv()
        tree = obs.format_tree()
        assert "publish [pub]" in tree
        assert "hve.match" in obs.format_ops()


class TestCollectorIntegration:
    def test_component_bytes_from_registry(self, traced_run):
        obs, system, _ = traced_run
        collector = MetricsCollector(system)
        counters = collector.component_bytes()
        # the registry path must agree with the per-host counters
        for name, host in system.network.hosts.items():
            assert counters[name] == (host.bytes_sent, host.bytes_received)

    def test_crypto_op_counts(self, traced_run):
        obs, system, _ = traced_run
        counts = MetricsCollector(system).crypto_op_counts()
        assert counts["op.hve.match"] == 3
        assert counts["op.abe.decrypt"] == 2
        assert all(name.startswith("op.") for name in counts)


class TestDisabledMode:
    def test_disabled_run_records_nothing(self):
        sentinel = Observability()  # never installed
        system, record = run_system(obs=None)
        assert len(system.deliveries_for(record)) == 2
        assert sentinel.metrics.empty
        assert sentinel.tracer.spans == []
        assert profile.active() is None

    def test_collector_falls_back_to_host_counters(self):
        system, _ = run_system(obs=None)
        counters = MetricsCollector(system).component_bytes()
        assert counters["ds"][0] > 0

    def test_uninstall_stops_recording(self):
        obs = Observability()
        obs.install()
        obs.uninstall()
        profile.record_op("pairing")
        assert obs.metrics.empty

    def test_install_is_exclusive(self):
        first, second = Observability(), Observability()
        try:
            first.install()
            second.install()
            assert not first.active and second.active
            profile.record_op("pairing")
            assert first.metrics.empty
            assert second.metrics.counter_total("op.pairing") == 1
        finally:
            profile.deactivate()


@pytest.mark.live
class TestLiveSpanPropagation:
    """The same publish trace, reassembled across real TCP sockets.

    Span context rides in the live wire-frame headers, so every hop —
    publisher → DS fan-out → subscriber match → RS retrieve → delivery —
    must land in ONE trace even though each leg crossed a socket.
    """

    def _run_live(self, obs):
        import asyncio

        from repro.core.config import P3SConfig
        from repro.live.deployment import LiveDeployment

        async def scenario():
            deployment = LiveDeployment(P3SConfig(schema=SCHEMA, obs=obs))
            await deployment.start()
            try:
                alice = await deployment.add_subscriber("alice", {"org"})
                await alice.subscribe(Interest({"topic": "a"}))
                publisher = await deployment.add_publisher("pub")
                record = await publisher.publish(
                    {"topic": "a"}, b"traced", policy="org"
                )
                await alice.wait_for_deliveries(1, timeout_s=60.0)
                return record
            finally:
                await deployment.close()

        return asyncio.run(asyncio.wait_for(scenario(), 120.0))

    def test_publish_trace_spans_every_networked_hop(self):
        obs = Observability()
        try:
            record = self._run_live(obs)
            (root,) = [s for s in obs.tracer.roots() if s.name == "publish"]
            assert root.component == "pub"
            assert root.attributes["publication_id"] == record.publication_id
            tree = [span for span, _ in obs.tracer.walk(root)]
            names = [span.name for span in tree]
            for hop in (
                "pbe.encrypt",
                "abe.encrypt",
                "ds.fan_out",
                "ds.forward_rs",
                "rs.store",
                "subscriber.match",
                "subscriber.retrieve",
                "rs.retrieve",
                "abe.decrypt",
                "deliver",
            ):
                assert names.count(hop) == 1, hop
            # one trace id across publisher, DS, RS, and subscriber spans,
            # despite every parent/child edge crossing a socket boundary
            assert {span.trace_id for span in tree} == {root.trace_id}
            components = {span.component for span in tree}
            assert {"pub", "ds", "rs", "alice"} <= components
        finally:
            obs.uninstall()

    def test_cross_socket_parentage(self):
        obs = Observability()
        try:
            self._run_live(obs)
            (fan_out,) = obs.tracer.find("ds.fan_out")
            (match,) = obs.tracer.find("subscriber.match")
            (retrieve,) = obs.tracer.find("subscriber.retrieve")
            (rs_retrieve,) = obs.tracer.find("rs.retrieve")
            # DS→subscriber edge restored from wire headers
            assert match.parent_id == fan_out.span_id
            # subscriber→RS request edge restored from RPC headers,
            # with the anonymizer hop interposed exactly as in the simulator
            assert retrieve.parent_id == match.span_id
            anon_hops = [
                s for s in obs.tracer.find("anon.forward")
                if s.span_id == rs_retrieve.parent_id
            ]
            assert len(anon_hops) == 1
            assert anon_hops[0].parent_id == retrieve.span_id
        finally:
            obs.uninstall()
