"""Flight recorder: bounding, eviction accounting, destructive drain."""

import pytest

from repro.obs import DEFAULT_FLIGHT_RECORDER_CAPACITY, FlightRecorder, Tracer
from repro.obs.tracing import Span


def _span(span_id: int, finished: bool = True) -> Span:
    return Span(
        span_id=span_id,
        trace_id=1,
        parent_id=None,
        name=f"s{span_id}",
        component="test",
        start=float(span_id),
        end=float(span_id) + 1 if finished else None,
    )


class TestFlightRecorder:
    def test_unbounded_by_default(self):
        ring = FlightRecorder()
        for index in range(10_000):
            ring.append(_span(index))
        assert len(ring) == 10_000
        assert ring.dropped == 0

    def test_wraparound_keeps_most_recent_and_counts_drops(self):
        ring = FlightRecorder(capacity=4)
        spans = [_span(i) for i in range(10)]
        for span in spans:
            ring.append(span)
        assert len(ring) == 4
        assert list(ring) == spans[6:]
        assert ring.dropped == 6

    def test_exactly_at_capacity_drops_nothing(self):
        ring = FlightRecorder(capacity=3)
        for index in range(3):
            ring.append(_span(index))
        assert len(ring) == 3
        assert ring.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_eviction_hook_sees_the_evicted_span(self):
        evicted = []
        ring = FlightRecorder(capacity=2, on_evict=evicted.append)
        spans = [_span(i) for i in range(5)]
        for span in spans:
            ring.append(span)
        assert evicted == spans[:3]

    def test_drain_returns_finished_only_and_removes_them(self):
        ring = FlightRecorder(capacity=8)
        done = [_span(1), _span(3)]
        open_span = _span(2, finished=False)
        ring.append(done[0])
        ring.append(open_span)
        ring.append(done[1])
        assert ring.drain() == done
        assert list(ring) == [open_span]
        # finishing the straggler makes it drainable exactly once
        open_span.end = 9.0
        assert ring.drain() == [open_span]
        assert ring.drain() == []

    def test_list_compatibility(self):
        ring = FlightRecorder()
        first, second = _span(1), _span(2)
        ring.append(first)
        ring.append(second)
        assert ring == [first, second]
        assert ring != [first]
        assert ring[0] is first
        assert ring[-1] is second
        assert ring[0:1] == [first]
        assert bool(ring)
        ring.clear()
        assert not ring
        assert ring == []

    def test_default_capacity_constant_is_sane(self):
        assert DEFAULT_FLIGHT_RECORDER_CAPACITY >= 1024


class TestTracerWithRecorder:
    def test_tracer_storage_stays_flat_under_capacity(self):
        tracer = Tracer(capacity=16)
        for _ in range(200):
            tracer.end_span(tracer.start_span("op", component="c"))
        assert len(tracer.spans) == 16
        assert tracer.dropped_spans == 200 - 16

    def test_eviction_prunes_the_id_index(self):
        tracer = Tracer(capacity=4)
        for _ in range(100):
            tracer.end_span(tracer.start_span("op", component="c"))
        assert len(tracer._by_id) == 4

    def test_drain_finished_leaves_open_spans(self):
        tracer = Tracer(capacity=16)
        open_span = tracer.start_span("long", component="c")
        tracer.end_span(tracer.start_span("quick", component="c"))
        drained = tracer.drain_finished()
        assert [span.name for span in drained] == ["quick"]
        assert list(tracer.spans) == [open_span]
        tracer.end_span(open_span)
        assert [span.name for span in tracer.drain_finished()] == ["long"]

    def test_slow_span_log(self):
        tracer = Tracer(slow_span_threshold_s=0.0)  # everything is "slow"
        tracer.end_span(tracer.start_span("a", component="c"))
        tracer.end_span(tracer.start_span("b", component="c"))
        assert [span.name for span in tracer.slow_spans] == ["a", "b"]

    def test_no_slow_log_without_threshold(self):
        tracer = Tracer()
        tracer.end_span(tracer.start_span("a", component="c"))
        assert not tracer.slow_spans

    def test_slow_log_is_bounded(self):
        tracer = Tracer(slow_span_threshold_s=0.0, slow_log_capacity=3)
        for index in range(10):
            tracer.end_span(tracer.start_span(f"s{index}", component="c"))
        assert [span.name for span in tracer.slow_spans] == ["s7", "s8", "s9"]
