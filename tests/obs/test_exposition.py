"""OpenMetrics exposition: rendering, escaping, and round-trip parsing."""

import pytest

from repro.obs import MetricsRegistry, parse_openmetrics, sanitize_metric_name, to_openmetrics


def test_sanitize_metric_name():
    assert sanitize_metric_name("op.hve.match") == "p3s_op_hve_match"
    assert sanitize_metric_name("live.net.tx_bytes") == "p3s_live_net_tx_bytes"
    assert sanitize_metric_name("weird metric-name!", namespace="") == "weird_metric_name_"


def test_counter_rendering_and_types():
    registry = MetricsRegistry()
    registry.inc("op.pairing", 3, component="ds")
    registry.inc("live.rpc.open_connections", 2)
    text = to_openmetrics(registry, gauge_names={"live.rpc.open_connections"})
    assert "# TYPE p3s_op_pairing counter" in text
    assert 'p3s_op_pairing_total{component="ds"} 3' in text
    assert "# TYPE p3s_live_rpc_open_connections gauge" in text
    # gauges do not get the _total suffix
    assert "p3s_live_rpc_open_connections 2" in text
    assert text.endswith("# EOF\n")


def test_histogram_renders_as_summary():
    registry = MetricsRegistry()
    for value in (1.0, 2.0, 3.0, 4.0):
        registry.observe("op.match.wall_s", value, component="sub")
    text = to_openmetrics(registry)
    parsed = parse_openmetrics(text)
    assert parsed.types["p3s_op_match_wall_s"] == "summary"
    assert parsed.value("p3s_op_match_wall_s_count", component="sub") == 4
    assert parsed.value("p3s_op_match_wall_s_sum", component="sub") == 10.0
    # nearest-rank rule: index = round(0.5 * 3) = 2 → the third sample
    assert parsed.value("p3s_op_match_wall_s", component="sub", quantile="0.5") == 3.0
    assert parsed.value("p3s_op_match_wall_s", component="sub", quantile="0.99") == 4.0


def test_round_trip_every_sample():
    registry = MetricsRegistry()
    registry.inc("op.g1_exp", 41, component="pbe-ts")
    registry.inc("op.g1_exp", 7, component="ds")
    registry.inc("net.bytes", 123456, src="pub", dst="ds")
    registry.observe("net.egress_wait_s", 0.25, host="ds")
    text = to_openmetrics(registry)
    parsed = parse_openmetrics(text)
    assert parsed.value("p3s_op_g1_exp_total", component="pbe-ts") == 41
    assert parsed.value("p3s_op_g1_exp_total", component="ds") == 7
    assert parsed.total("p3s_op_g1_exp_total") == 48
    assert parsed.value("p3s_net_bytes_total", dst="ds", src="pub") == 123456
    assert parsed.value("p3s_net_egress_wait_s_sum", host="ds") == 0.25


def test_label_escaping_round_trips():
    registry = MetricsRegistry()
    hostile = 'quote " backslash \\ newline \n done'
    registry.inc("op.weird", 1, component=hostile)
    text = to_openmetrics(registry)
    assert "\n done" not in text.split("# EOF")[0].splitlines()[1]  # newline escaped
    parsed = parse_openmetrics(text)
    assert parsed.value("p3s_op_weird_total", component=hostile) == 1


def test_extra_labels_stamped_on_every_sample():
    registry = MetricsRegistry()
    registry.inc("op.pairing", 5, component="ds")
    registry.observe("op.pairing.wall_s", 0.1, component="ds")
    parsed = parse_openmetrics(to_openmetrics(registry, extra_labels={"service": "ds"}))
    assert parsed.value("p3s_op_pairing_total", component="ds", service="ds") == 5
    assert parsed.value(
        "p3s_op_pairing_wall_s_count", component="ds", service="ds"
    ) == 1


def test_float_values_survive():
    registry = MetricsRegistry()
    registry.inc("op.fractional", 2.5)
    parsed = parse_openmetrics(to_openmetrics(registry))
    assert parsed.value("p3s_op_fractional_total") == 2.5


def test_empty_registry_is_just_eof():
    assert to_openmetrics(MetricsRegistry()) == "# EOF\n"
    assert parse_openmetrics("# EOF\n").samples == {}


class TestByteIdenticalRoundTrip:
    """render(parse(text)) == text — the parser keeps enough structure
    (sample order, TYPE placement, exemplars) to re-emit its input."""

    def _registry(self):
        registry = MetricsRegistry()
        registry.inc("op.pairing", 120, component="ds")
        registry.inc("op.fractional", 2.5)
        registry.observe("op.match.wall_s", 0.25, component="sub")
        registry.observe("op.match.wall_s", 4.0, component="sub")
        return registry

    def test_plain_series_round_trip_bytes(self):
        text = to_openmetrics(self._registry())
        assert parse_openmetrics(text).render() == text

    def test_exemplar_round_trip_bytes(self):
        registry = self._registry()
        registry.observe_exemplar("slo.latency_s", 4.0, 88, slo="delivery_latency")
        text = to_openmetrics(registry)
        assert '# {trace_id="88"} 4' in text
        parsed = parse_openmetrics(text)
        assert parsed.render() == text
        key = next(iter(parsed.exemplars))
        labels, value = parsed.exemplars[key]
        assert dict(labels) == {"trace_id": "88"}
        assert value == 4.0

    def test_hostile_labels_round_trip_bytes(self):
        registry = self._registry()
        registry.inc("op.weird", 1, component='we"ird\\x', note="line\nbreak")
        text = to_openmetrics(registry)
        parsed = parse_openmetrics(text)
        assert parsed.render() == text
        assert parsed.value("p3s_op_weird_total", component='we"ird\\x', note="line\nbreak") == 1

    def test_integer_valued_floats_render_without_decimal(self):
        # 120.0 must render "120" both times or the round trip drifts
        registry = MetricsRegistry()
        registry.inc("op.pairing", 120.0)
        text = to_openmetrics(registry)
        assert "p3s_op_pairing_total 120\n" in text
        assert parse_openmetrics(text).render() == text


class TestParserStrictness:
    def test_missing_eof_rejected(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("p3s_x_total 1\n")

    def test_content_after_eof_rejected(self):
        with pytest.raises(ValueError, match="after"):
            parse_openmetrics("# EOF\np3s_x_total 1\n")

    def test_malformed_sample_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_openmetrics("!!nonsense!!\n# EOF\n")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_openmetrics("p3s_x_total notanumber\n# EOF\n")

    def test_malformed_labels_rejected(self):
        with pytest.raises(ValueError, match="label"):
            parse_openmetrics('p3s_x_total{component=unquoted} 1\n# EOF\n')
