"""SLO engine: burn rates, error budgets, multi-window alerting, ingest."""

import pytest

from repro.obs import parse_openmetrics, to_openmetrics
from repro.obs.exposition import Exposition
from repro.obs.slo import (
    CHAOS_WINDOWS,
    SLO_GAUGE_METRICS,
    BurnRateWindow,
    SloEngine,
    SloSpec,
    chaos_slos,
    default_slos,
)


def _latency_engine(threshold_s: float = 1.0) -> SloEngine:
    return SloEngine(
        (
            SloSpec(
                name="delivery_latency",
                description="latency",
                objective=0.95,
                windows=CHAOS_WINDOWS,
                threshold_s=threshold_s,
            ),
        )
    )


class TestRecording:
    def test_value_vs_threshold_derives_goodness(self):
        engine = _latency_engine(threshold_s=1.0)
        assert engine.record("delivery_latency", at=0.0, value=0.5) is True
        assert engine.record("delivery_latency", at=0.1, value=1.5) is False
        assert engine.counts("delivery_latency") == (1, 1)

    def test_explicit_good_wins(self):
        engine = _latency_engine()
        assert engine.record("delivery_latency", good=False, at=0.0, value=0.1) is False

    def test_record_without_good_or_value_raises(self):
        engine = SloEngine(chaos_slos(1.0))
        with pytest.raises(ValueError):
            engine.record("delivery_integrity", at=0.0)

    def test_out_of_order_events_are_resorted(self):
        engine = _latency_engine()
        engine.record("delivery_latency", at=2.0, value=0.1)
        engine.record("delivery_latency", at=0.1, value=9.0)
        # the bad event at 0.1 must land in the (0, 0.25] window
        assert engine.burn_rate("delivery_latency", 0.25, 0.25) > 0


class TestBurnRates:
    def test_empty_window_burns_nothing(self):
        engine = _latency_engine()
        assert engine.burn_rate("delivery_latency", 1.0, 100.0) == 0.0

    def test_all_bad_window_burns_at_inverse_budget(self):
        engine = _latency_engine()
        engine.record("delivery_latency", at=0.1, value=9.0)
        # bad_fraction 1.0 over budget 0.05 → burn 20
        assert engine.burn_rate("delivery_latency", 1.0, 1.0) == pytest.approx(20.0)

    def test_burn_across_aggregates_label_groups(self):
        engine = SloEngine(default_slos())
        engine.record("publish_ack", good=False, at=0.0, service="ds0")
        engine.record("publish_ack", good=True, at=0.0, service="ds1")
        # the unlabeled group is empty, but the aggregate sees both
        assert engine.burn_rate("publish_ack", 300, 0.0) == 0.0
        assert engine.burn_rate_across("publish_ack", 300, 0.0) == pytest.approx(10.0)

    def test_error_budget_lifetime(self):
        engine = _latency_engine()
        assert engine.error_budget_remaining("delivery_latency") == 1.0
        for index in range(19):
            engine.record("delivery_latency", at=index * 0.01, value=0.1)
        engine.record("delivery_latency", at=0.2, value=9.0)
        # 1 bad of 20 = exactly the 5% budget → 0 left
        assert engine.error_budget_remaining("delivery_latency") == pytest.approx(0.0)
        engine.record("delivery_latency", at=0.3, value=9.0)
        assert engine.error_budget_remaining("delivery_latency") < 0


class TestAlerting:
    def test_fire_and_clear_cycle(self):
        engine = _latency_engine()
        engine.record("delivery_latency", at=0.1, value=9.0)
        fired = engine.evaluate(0.2)
        assert {alert.window for alert in fired} == {"0.25s/1s", "0.75s/2.5s"}
        assert all(alert.active for alert in engine.alerts)
        # past its 0.25s short window the page clears; the ticket's
        # longer short window still holds the event
        engine.evaluate(0.8)
        states = {alert.window: alert.active for alert in engine.alerts}
        assert states["0.25s/1s"] is False
        assert states["0.75s/2.5s"] is True
        engine.evaluate(4.0)
        assert engine.active_alerts() == []
        assert all(alert.cleared_at is not None for alert in engine.alerts)

    def test_both_windows_must_burn(self):
        # a bad event older than the short window must not fire
        engine = SloEngine(
            (
                SloSpec(
                    name="delivery_latency",
                    description="latency",
                    objective=0.95,
                    windows=(CHAOS_WINDOWS[0],),  # the 0.25s/1s page only
                    threshold_s=1.0,
                ),
            )
        )
        engine.record("delivery_latency", at=0.0, value=9.0)
        engine.record("delivery_latency", at=0.5, value=0.1)
        assert engine.evaluate(0.5) == []  # short window holds only the good event
        # the long window alone keeps burning, yet no alert: both must
        assert engine.burn_rate("delivery_latency", 1.0, 0.5) >= 1.0

    def test_no_traffic_never_pages(self):
        engine = _latency_engine()
        assert engine.evaluate(10.0) == []
        assert engine.alerts == []

    def test_alert_groups_by_labels(self):
        engine = SloEngine(default_slos())
        engine.record("publish_ack", good=False, at=0.0, service="ds0")
        engine.record("publish_ack", good=True, at=0.0, service="ds1")
        fired = engine.evaluate(0.0)
        assert fired
        assert all(dict(alert.labels)["service"] == "ds0" for alert in fired)

    def test_zero_budget_objective(self):
        engine = SloEngine(
            (
                SloSpec(
                    name="strict",
                    description="no failures ever",
                    objective=1.0,
                    windows=(BurnRateWindow(0.25, 1.0, 1.0),),
                ),
            )
        )
        engine.record("strict", good=True, at=0.0)
        assert engine.evaluate(0.1) == []
        engine.record("strict", good=False, at=0.2)
        assert engine.evaluate(0.3)


class _FakeAggregator:
    """The TelemetryAggregator surface SloEngine.ingest consumes."""

    def __init__(self):
        self.latencies: dict[int, float] = {}
        self.counters: dict[str, dict[str, float]] = {}

    def publish_deliver_trace_latencies(self):
        return dict(self.latencies)

    def services(self):
        return sorted(self.counters)

    def service_counter_total(self, service, name):
        return self.counters.get(service, {}).get(name, 0.0)


class TestIngest:
    def test_latency_traces_consumed_once(self):
        engine = SloEngine(default_slos(latency_threshold_s=1.0))
        agg = _FakeAggregator()
        agg.latencies = {11: 0.2, 12: 3.0}
        assert engine.ingest(agg, now=1.0) == 2
        assert engine.counts("delivery_latency") == (1, 1)
        # re-polling the same traces records nothing new
        assert engine.ingest(agg, now=2.0) == 0
        agg.latencies[13] = 0.1
        assert engine.ingest(agg, now=3.0) == 1

    def test_publish_ack_grace_interval(self):
        engine = SloEngine(default_slos())
        agg = _FakeAggregator()
        # first poll catches an ack mid-flight: delivered 2, acked 1
        agg.counters["ds"] = {"ds.delivered": 2, "ds.acked": 1}
        engine.ingest(agg, now=0.0)
        assert engine.counts("publish_ack") == (1, 0)  # backlog is pending, not bad
        # the ack lands before the next poll: credited good, never bad
        agg.counters["ds"] = {"ds.delivered": 2, "ds.acked": 2}
        engine.ingest(agg, now=1.0)
        assert engine.counts("publish_ack") == (2, 0)

    def test_publish_ack_stale_backlog_goes_bad(self):
        engine = SloEngine(default_slos())
        agg = _FakeAggregator()
        agg.counters["ds"] = {"ds.delivered": 3, "ds.acked": 1}
        engine.ingest(agg, now=0.0)
        # the backlog survived a full poll interval → bad
        engine.ingest(agg, now=1.0)
        assert engine.counts("publish_ack") == (1, 2)
        # a straggler acked later is credited good without re-debiting
        agg.counters["ds"] = {"ds.delivered": 3, "ds.acked": 3}
        engine.ingest(agg, now=2.0)
        good, bad = engine.counts("publish_ack")
        assert (good, bad) == (3, 2)

    def test_store_recovery_once_per_observed_recovery(self):
        engine = SloEngine(default_slos(recovery_threshold_s=2.0))
        agg = _FakeAggregator()
        agg.counters["rs"] = {"store.recovery_s": 0.5}
        engine.ingest(agg, now=0.0)
        engine.ingest(agg, now=1.0)  # unchanged gauge: no new event
        assert engine.counts("store_recovery") == (1, 0)
        agg.counters["rs"] = {"store.recovery_s": 5.0}  # a new, slow recovery
        engine.ingest(agg, now=2.0)
        assert engine.counts("store_recovery") == (1, 1)


class TestExport:
    def _burned_engine(self) -> SloEngine:
        engine = SloEngine(chaos_slos(1.0))
        engine.record("delivery_latency", at=0.1, value=0.2, trace_id=77)
        engine.record("delivery_latency", at=0.2, value=4.0, trace_id=88)
        engine.record("delivery_integrity", good=True, at=0.2)
        engine.evaluate(0.3)
        return engine

    def test_report_document_shape(self):
        report = self._burned_engine().report()
        latency = report["slos"]["delivery_latency"]
        assert latency["good"] == 1 and latency["bad"] == 1
        assert latency["error_budget_remaining"] == pytest.approx(-9.0)
        assert latency["burn_rates"]["0.25s/1s"]["severity"] == "page"
        assert latency["burn_rates"]["0.25s/1s"]["short_burn"] > 1
        assert {alert["slo"] for alert in report["active_alerts"]} == {
            "delivery_latency"
        }

    def test_slo_series_round_trip_with_exemplars(self):
        """slo_* series survive the strict OpenMetrics round trip
        byte-identically, exemplar trace ids included."""
        registry = self._burned_engine().registry()
        text = to_openmetrics(registry, gauge_names=SLO_GAUGE_METRICS)
        assert "# TYPE p3s_slo_alert_active gauge" in text
        assert 'p3s_slo_alert_active{severity="page",slo="delivery_latency"} 1' in text
        # the slowest delivery's trace id is attached as an exemplar
        assert '# {trace_id="88"}' in text
        parsed = parse_openmetrics(text)
        assert parsed.render() == text
        assert parsed.value(
            "p3s_slo_bad_total", slo="delivery_latency"
        ) == 1

    def test_alert_active_gauge_clears(self):
        engine = self._burned_engine()
        engine.evaluate(10.0)
        text = to_openmetrics(engine.registry(), gauge_names=SLO_GAUGE_METRICS)
        assert 'p3s_slo_alert_active{severity="page",slo="delivery_latency"} 0' in text

    def test_exposition_class_importable(self):
        assert Exposition is parse_openmetrics("# EOF\n").__class__
