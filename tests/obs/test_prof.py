"""repro.obs.prof: profile model round-trips, sampler bounds, the
deterministic-replay contract, and the PR's overhead acceptance bound."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.aggregate import TelemetryAggregator
from repro.obs.observability import Observability
from repro.obs.prof import (
    OVERFLOW_FRAME,
    DeterministicSampler,
    Profile,
    StackSampler,
    cost_ledger,
    diff_profiles,
    format_diff,
    format_ledger,
    format_report,
    load_profile,
    parse_folded,
    parse_speedscope,
    record_demo,
)
from repro.obs.prof.sampler import _StackTable
from repro.obs.prof.workload import run_demo_workload


class TestProfileModel:
    def _sample_profile(self) -> Profile:
        profile = Profile(mode="det", origin="test-1", meta={"every": 4})
        profile.add(("pub", "pbe.encrypt", "op.pairing"), count=3)
        profile.add(("pub", "pbe.encrypt", "op.g1_exp"), count=5)
        profile.add(("ds", "ds.fan_out", "op.hve.match"), count=2)
        return profile

    def test_folded_round_trip(self):
        profile = self._sample_profile()
        text = profile.folded()
        parsed = parse_folded(text)
        assert {
            stack: weight.count for stack, weight in parsed.samples.items()
        } == {stack: weight.count for stack, weight in profile.samples.items()}
        # deterministic ordering: re-rendering is byte-identical
        assert parsed.folded() == text

    def test_folded_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_folded("just-a-stack-no-weight\n")

    def test_speedscope_round_trip_is_lossless(self):
        profile = self._sample_profile()
        document = profile.to_speedscope(name="demo")
        assert document["$schema"].startswith("https://www.speedscope.app")
        assert document["profiles"][0]["type"] == "sampled"
        back = parse_speedscope(document)
        assert back.origin == "test-1"
        assert back.mode == "det"
        assert back.meta["every"] == 4
        assert back.folded() == profile.folded()

    def test_load_profile_sniffs_both_formats(self, tmp_path):
        import json

        profile = self._sample_profile()
        folded = tmp_path / "p.folded"
        folded.write_text(profile.folded())
        speedscope = tmp_path / "p.prof.json"
        speedscope.write_text(json.dumps(profile.to_speedscope()))
        assert load_profile(str(folded)).folded() == profile.folded()
        assert load_profile(str(speedscope)).folded() == profile.folded()

    def test_merge_dedups_by_stack_and_sums_weights(self):
        one = self._sample_profile()
        two = self._sample_profile()
        two.add(("rs", "rs.store", "op.g1_exp"), count=7)
        merged = Profile(mode="det", origin="merged")
        merged.merge(one)
        merged.merge(two)
        # shared stacks summed, not duplicated
        assert merged.samples[("pub", "pbe.encrypt", "op.pairing")].count == 6
        assert merged.samples[("rs", "rs.store", "op.g1_exp")].count == 7
        assert len(merged.samples) == len(two.samples)

    def test_diff_ranks_self_time_deltas(self):
        before = Profile(mode="det")
        before.add(("pub", "op.pairing"), count=5)
        before.add(("pub", "op.g1_exp"), count=5)
        after = Profile(mode="det")
        after.add(("pub", "op.pairing"), count=15)  # regressed share
        after.add(("pub", "op.g1_exp"), count=5)
        deltas = diff_profiles(before, after)
        assert deltas[0].frame == "op.pairing"
        assert deltas[0].delta == pytest.approx(0.75 - 0.5)
        assert deltas[-1].frame == "op.g1_exp"
        assert deltas[-1].delta < 0
        assert "op.pairing" in format_diff(deltas)

    def test_report_names_components_and_frames(self):
        report = format_report(self._sample_profile())
        assert "op.g1_exp" in report
        assert "pub=" in report and "ds=" in report

    def test_stack_table_overflow_preserves_weight(self):
        table = _StackTable(max_stacks=4)
        for index in range(10):
            table.add((f"frame-{index}",), 1, 0.0, 0.0)
        profile = table.snapshot(Profile(mode="det"))
        # cardinality capped at max_stacks + the overflow bucket...
        assert len(profile.samples) <= 5
        assert profile.samples[(OVERFLOW_FRAME,)].count == table.overflowed == 6
        # ...but no weight was dropped
        assert profile.total("count") == 10


class TestStackSampler:
    def test_ring_stays_bounded_under_soak(self):
        sampler = StackSampler(hz=50.0, ring_capacity=64, max_stacks=256)
        errors: list[BaseException] = []

        def soak():
            # drive the sampling step directly (no timer thread): each
            # call samples the main thread once
            try:
                for _ in range(10_000):
                    sampler._sample_once(1e-6, 1e-6)
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        worker = threading.Thread(target=soak)
        worker.start()
        worker.join()
        assert not errors
        assert sampler.ticks == 10_000
        # memory flat: ring holds exactly its capacity, rest evicted+counted
        assert len(sampler.recent_samples()) == 64
        assert sampler.ring_evicted == 10_000 - 64
        profile = sampler.profile()
        assert profile.meta["ring_evicted"] == 10_000 - 64
        # nothing lost from the aggregate either
        assert profile.total("count") == 10_000

    def test_background_thread_attributes_active_span(self):
        obs = Observability()
        try:
            sampler = StackSampler(hz=250.0, obs=obs)
            deadline = time.perf_counter() + 0.4
            with sampler:
                with obs.tracer.span("pbe.encrypt", "pub"):
                    while time.perf_counter() < deadline:
                        sum(i * i for i in range(500))
            profile = sampler.profile()
        finally:
            obs.uninstall()
        assert not sampler.running
        assert profile.meta["ticks"] > 0
        roots = {stack[0] for stack in profile.samples}
        assert "pub" in roots
        attributed = [s for s in profile.samples if s[0] == "pub"]
        assert all(stack[1] == "pbe.encrypt" for stack in attributed)

    def test_recent_samples_carry_trace_links(self):
        obs = Observability()
        try:
            sampler = StackSampler(hz=250.0, obs=obs)
            deadline = time.perf_counter() + 0.3
            with sampler:
                with obs.tracer.span("ds.fan_out", "ds"):
                    while time.perf_counter() < deadline:
                        sum(i * i for i in range(500))
        finally:
            obs.uninstall()
        linked = [s for s in sampler.recent_samples() if s["component"] == "ds"]
        assert linked
        assert all(s["trace_id"] is not None for s in linked)


class TestDeterministicSampler:
    def test_every_n_op_firing(self):
        sampler = DeterministicSampler(every=4)
        for _ in range(7):
            sampler.on_op("pairing")
        assert sampler.samples_taken == 1
        sampler.on_op("pairing", count=9)  # 16 total: fires at 8, 12, 16
        assert sampler.samples_taken == 4
        assert sampler.ops_seen == 16

    def test_replay_is_byte_identical_for_pinned_seed(self):
        first, _ = record_demo(publications=8, seed=11, mode="det", every=4)
        second, _ = record_demo(publications=8, seed=11, mode="det", every=4)
        assert first.folded() == second.folded()
        assert first.folded()  # non-trivial recording
        # and a different seed actually changes the recording
        other, _ = record_demo(publications=8, seed=12, mode="det", every=4)
        assert other.folded() != first.folded()

    def test_stacks_are_component_and_span_attributed(self):
        profile, stats = record_demo(publications=8, seed=3, mode="det", every=4)
        assert stats["delivered"] >= 1
        components = {stack[0] for stack in profile.samples}
        # publisher-side encryption and subscriber-side matching both
        # show up with their component roots and op.* leaves
        assert "pub" in components
        assert any(c in components for c in ("alice", "bob"))
        assert all(stack[-1].startswith("op.") for stack in profile.samples)
        match_stacks = [
            stack
            for stack in profile.samples
            if stack[-1] in ("op.hve.match", "op.pairing") and stack[0] != "unattributed"
        ]
        assert match_stacks, "crypto pairing/match frames must carry components"

    def test_profiler_overhead_within_five_percent(self):
        # the PR's acceptance bound: deterministic profiling costs <=5%
        # throughput on the 50-publication demo.  Interleaved best-of-N
        # with a GC sweep before each timed run: single-run jitter on
        # this workload is itself a few percent, and best-of filters it
        # from both sides equally.
        import gc

        def run(with_profiler: bool) -> float:
            obs = Observability()
            if with_profiler:
                obs.profiler = DeterministicSampler(every=8, obs=obs)
            gc.collect()
            start = time.perf_counter()
            run_demo_workload(50, seed=2, obs=obs)
            return time.perf_counter() - start

        for flag in (False, True):
            run(flag)  # warm caches/imports outside the scored runs
        best = {False: float("inf"), True: float("inf")}
        for _ in range(4):
            for flag in (False, True):  # interleaved: drift hits both
                best[flag] = min(best[flag], run(flag))
        overhead = best[True] / best[False] - 1.0
        assert overhead <= 0.05, f"profiler overhead {overhead:.1%} > 5%"


class TestAggregatorMerge:
    def _profile_dict(self, origin: str, count: int = 10) -> dict:
        profile = Profile(mode="det", origin=origin)
        profile.add(("ds", "ds.fan_out", "op.hve.match"), count=count)
        return profile.to_dict()

    def test_same_origin_across_services_dedups(self):
        # one process hosting four services reports the same sampler to
        # each KIND_PROFILE scrape: merge must keep one copy, not four
        aggregator = TelemetryAggregator()
        for service in ("anon", "ds", "rs", "pbe-ts"):
            aggregator.add_profile(service, self._profile_dict("wall-77-1"))
        merged = aggregator.merged_profile()
        assert merged.total("count") == 10
        assert aggregator.profile_origins() == {
            "wall-77-1": ["anon", "ds", "pbe-ts", "rs"]
        }

    def test_distinct_origins_sum(self):
        aggregator = TelemetryAggregator()
        aggregator.add_profile("ds0", self._profile_dict("wall-77-1", 10))
        aggregator.add_profile("ds1", self._profile_dict("wall-78-1", 3))
        merged = aggregator.merged_profile()
        assert merged.total("count") == 13
        assert merged.samples[("ds", "ds.fan_out", "op.hve.match")].count == 13

    def test_hot_frames_rank_leaves(self):
        aggregator = TelemetryAggregator()
        profile = Profile(mode="det", origin="det-1")
        profile.add(("pub", "op.g1_exp"), count=9)
        profile.add(("pub", "op.pairing"), count=1)
        aggregator.add_profile("pub", profile.to_dict())
        frames = aggregator.hot_frames(limit=2)
        assert frames[0][0] == "op.g1_exp"
        assert frames[0][2] == pytest.approx(0.9)
        assert aggregator.to_json()["profile"]["hot_frames"][0]["frame"] == "op.g1_exp"


class TestCostLedger:
    def test_ledger_joins_counts_models_and_measurements(self):
        from repro.perf.calibrate import calibrate

        obs = Observability()
        run_demo_workload(6, seed=1, obs=obs)
        calibration = calibrate("TOY", vector_bits=6, policy_attributes=2, repetitions=1)
        rows = cost_ledger(obs.metrics, calibration)
        assert rows
        by_op = {(row.component, row.op) for row in rows}
        assert any(op == "hve.encrypt" for _c, op in by_op)
        assert any(op == "pairing" for _c, op in by_op)
        # sorted by descending modeled cost
        modeled = [row.modeled_s for row in rows]
        assert modeled == sorted(modeled, reverse=True)
        # instrumented ops carry a measurement and therefore a drift
        instrumented = [row for row in rows if row.op == "hve.encrypt"]
        assert instrumented and all(row.measured_s is not None for row in instrumented)
        assert all(row.drift is not None for row in instrumented)
        # pairing has a counter but no wall histogram: modeled only
        pairing = [row for row in rows if row.op == "pairing"]
        assert pairing and all(row.measured_s is None for row in pairing)
        text = format_ledger(rows)
        assert "hve.encrypt" in text and "totals:" in text
