"""TelemetryAggregator: health merge, label-scoped metric merge, span
reassembly and publish→deliver latency."""

from repro.obs import TelemetryAggregator


def _health(service: str, ready: bool = True, **checks: bool) -> dict:
    return {
        "service": service,
        "alive": True,
        "ready": ready,
        "checks": checks or {"listening": True},
    }


def _snapshot(service: str, counters=None, histograms=None) -> dict:
    return {
        "service": service,
        "counters": counters or [],
        "histograms": histograms or [],
    }


def _span(trace_id, span_id, name, start, end, component="x") -> dict:
    return {
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": None,
        "name": name,
        "component": component,
        "start_s": start,
        "end_s": end,
    }


class TestHealth:
    def test_all_ready_requires_every_service(self):
        agg = TelemetryAggregator()
        agg.update_health("ds", _health("ds"))
        agg.update_health("rs", _health("rs", ready=False, gc_running=False))
        assert agg.all_alive
        assert not agg.all_ready
        rows = {row[0]: row for row in agg.health_rows()}
        assert rows["ds"][2] == "yes"
        assert rows["rs"][2] == "NO"
        assert "gc_running" in rows["rs"][3]

    def test_empty_aggregator_is_not_ready(self):
        agg = TelemetryAggregator()
        assert not agg.all_alive
        assert not agg.all_ready

    def test_unknown_service_reads_as_dead(self):
        agg = TelemetryAggregator()
        assert agg.health("ghost") == {"service": "ghost", "alive": False, "ready": False}


class TestMetricsMerge:
    def test_same_name_different_services_stay_separate(self):
        agg = TelemetryAggregator()
        agg.update_metrics(
            "ds", _snapshot("ds", [{"name": "op.g1_exp", "labels": {"component": "ds"}, "value": 5}])
        )
        agg.update_metrics(
            "rs", _snapshot("rs", [{"name": "op.g1_exp", "labels": {"component": "rs"}, "value": 7}])
        )
        merged = agg.merged_registry()
        assert merged.counter_value("op.g1_exp", component="ds", service="ds") == 5
        assert merged.counter_value("op.g1_exp", component="rs", service="rs") == 7
        assert agg.counter_total("op.g1_exp") == 12
        assert agg.service_counter_total("ds", "op.g1_exp") == 5

    def test_same_name_different_labels_within_one_service(self):
        agg = TelemetryAggregator()
        agg.update_metrics(
            "anon",
            _snapshot(
                "anon",
                [
                    {"name": "live.net.tx_bytes", "labels": {"peer": "rs"}, "value": 100},
                    {"name": "live.net.tx_bytes", "labels": {"peer": "pbe-ts"}, "value": 50},
                ],
            ),
        )
        merged = agg.merged_registry()
        assert merged.counter_value("live.net.tx_bytes", peer="rs", service="anon") == 100
        assert merged.counter_value("live.net.tx_bytes", peer="pbe-ts", service="anon") == 50
        assert agg.service_counter_total("anon", "live.net.tx_bytes") == 150

    def test_repeated_polls_replace_not_accumulate(self):
        agg = TelemetryAggregator()
        for total in (10, 25):
            agg.update_metrics(
                "ds", _snapshot("ds", [{"name": "ds.published", "labels": {}, "value": total}])
            )
        assert agg.counter_total("ds.published") == 25

    def test_histograms_merge_with_service_label(self):
        agg = TelemetryAggregator()
        agg.update_metrics(
            "rs",
            _snapshot(
                "rs",
                histograms=[
                    {"name": "op.store.wall_s", "labels": {}, "values": [0.1, 0.3]}
                ],
            ),
        )
        histogram = agg.merged_registry().histogram("op.store.wall_s", service="rs")
        assert histogram.count == 2

    def test_op_table_columns_by_service(self):
        agg = TelemetryAggregator()
        agg.update_metrics(
            "ds", _snapshot("ds", [{"name": "op.pairing", "labels": {"component": "ds"}, "value": 4}])
        )
        table = agg.op_table()
        assert "pairing" in table
        assert "ds" in table


class TestSpans:
    def test_dedup_across_services(self):
        agg = TelemetryAggregator()
        shared = _span(1, 1, "publish", 0.0, 1.0)
        agg.add_spans("ds", [shared], dropped=2)
        agg.add_spans("rs", [dict(shared)], dropped=3)
        assert len(agg.spans()) == 1
        assert agg.total_dropped_spans == 5

    def test_finished_span_wins_over_open(self):
        agg = TelemetryAggregator()
        agg.add_spans("ds", [_span(1, 1, "publish", 0.0, None)])
        agg.add_spans("ds", [_span(1, 1, "publish", 0.0, 2.5)])
        (span,) = agg.spans()
        assert span["end_s"] == 2.5

    def test_publish_deliver_latency_per_trace(self):
        agg = TelemetryAggregator()
        # trace 1: publish at t=1, two delivers ending at 1.4 and 1.9
        agg.add_spans(
            "ds",
            [
                _span(1, 1, "publish", 1.0, 1.1),
                _span(1, 2, "deliver", 1.3, 1.4),
                _span(1, 3, "deliver", 1.7, 1.9),
            ],
        )
        # trace 2: publish still missing its deliver — skipped
        agg.add_spans("ds", [_span(2, 4, "publish", 5.0, 5.1)])
        latencies = agg.publish_deliver_latencies()
        assert latencies == [pytest_approx(0.9)]
        summary = agg.latency_summary()
        assert summary["count"] == 1
        assert summary["p50_s"] == pytest_approx(0.9)
        assert summary["max_s"] == pytest_approx(0.9)

    def test_latency_window_bounds_history(self):
        agg = TelemetryAggregator(latency_window=3)
        for trace in range(10):
            agg.add_spans(
                "ds",
                [
                    _span(trace, trace * 2 + 1, "publish", float(trace), float(trace)),
                    _span(trace, trace * 2 + 2, "deliver", float(trace), trace + 0.5),
                ],
            )
        assert len(agg.publish_deliver_latencies()) == 3


def pytest_approx(value, rel=1e-9):
    import pytest

    return pytest.approx(value, rel=rel)


def test_to_json_shape():
    agg = TelemetryAggregator()
    agg.update_health("ds", _health("ds"))
    agg.update_metrics(
        "ds", _snapshot("ds", [{"name": "op.pairing", "labels": {"component": "ds"}, "value": 2}])
    )
    agg.add_spans("ds", [_span(1, 1, "publish", 0.0, 0.1), _span(1, 2, "deliver", 0.2, 0.4)])
    document = agg.to_json()
    assert document["all_alive"] and document["all_ready"]
    assert document["services"]["ds"]["ready"]
    assert document["ops"]["op.pairing"] == {"ds": 2}
    assert document["span_count"] == 2
    assert document["latency"]["count"] == 1
    assert document["span_evictions"] == 0
    assert document["observability"]["ds"]["dropped_spans"] == 0


class TestSpanTableBound:
    def test_lru_eviction_with_counter(self):
        agg = TelemetryAggregator(span_table_capacity=4)
        for index in range(10):
            agg.add_spans("ds", [_span(index, index, "publish", float(index), None)])
        assert len(agg.spans()) == 4
        assert agg.span_evictions == 6
        # oldest-touched evicted first: the survivors are the newest
        assert agg.trace_ids() == [6, 7, 8, 9]

    def test_re_seen_span_is_refreshed_not_evicted(self):
        agg = TelemetryAggregator(span_table_capacity=3)
        agg.add_spans("ds", [_span(1, 1, "publish", 0.0, 0.1)])
        agg.add_spans("ds", [_span(2, 2, "publish", 1.0, 1.1)])
        # trace 1 arrives again (second service's scrape): touched → MRU
        agg.add_spans("rs", [_span(1, 1, "publish", 0.0, 0.1)])
        agg.add_spans("ds", [_span(3, 3, "publish", 2.0, 2.1)])
        agg.add_spans("ds", [_span(4, 4, "publish", 3.0, 3.1)])
        assert 1 in agg.trace_ids()  # survived: it was re-touched
        assert 2 not in agg.trace_ids()  # the actual LRU entry went

    def test_unbounded_table_never_evicts(self):
        agg = TelemetryAggregator(span_table_capacity=None)
        for index in range(10_000):
            agg.add_spans("ds", [_span(index, index, "publish", 0.0, 0.1)])
        assert agg.span_evictions == 0
        assert len(agg.spans()) == 10_000

    def test_default_capacity_is_sane(self):
        from repro.obs.aggregate import DEFAULT_SPAN_TABLE_CAPACITY

        assert DEFAULT_SPAN_TABLE_CAPACITY >= 1024
        assert TelemetryAggregator().span_table_capacity == DEFAULT_SPAN_TABLE_CAPACITY


class TestServiceObservability:
    def _sampler_counters(self):
        return [
            {"name": "obs.dropped_spans", "labels": {}, "value": 3},
            {"name": "obs.slow_spans", "labels": {}, "value": 1},
            {"name": "obs.sampler.keep_rate", "labels": {}, "value": 0.01},
            {"name": "obs.sampler.kept_traces", "labels": {}, "value": 5},
            {"name": "obs.sampler.dropped_traces", "labels": {}, "value": 495},
            {"name": "obs.sampler.promoted_traces", "labels": {}, "value": 2},
            {"name": "obs.sampler.evicted_traces", "labels": {}, "value": 0},
        ]

    def test_sampler_block_present_when_sampling(self):
        agg = TelemetryAggregator()
        agg.update_metrics("ds", _snapshot("ds", self._sampler_counters()))
        block = agg.service_observability("ds")
        assert block["dropped_spans"] == 3
        assert block["slow_spans"] == 1
        assert block["sampler"]["keep_rate"] == 0.01
        assert block["sampler"]["dropped_traces"] == 495

    def test_sampler_block_absent_without_sampler(self):
        agg = TelemetryAggregator()
        agg.update_metrics(
            "rs", _snapshot("rs", [{"name": "obs.dropped_spans", "labels": {}, "value": 0}])
        )
        assert "sampler" not in agg.service_observability("rs")

    def test_to_json_carries_per_service_observability(self):
        agg = TelemetryAggregator()
        agg.update_health("ds", _health("ds"))
        agg.update_metrics("ds", _snapshot("ds", self._sampler_counters()))
        document = agg.to_json()
        assert document["observability"]["ds"]["sampler"]["kept_traces"] == 5
