"""Unit and property tests for F_q / F_q2 arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.field import Fq2, fq_inv, fq_is_square, fq_sqrt
from repro.crypto.params import TOY
from repro.errors import ParameterError

Q = TOY.q

elements = st.builds(
    lambda a, b: Fq2(a, b, Q),
    st.integers(min_value=0, max_value=Q - 1),
    st.integers(min_value=0, max_value=Q - 1),
)
nonzero_elements = elements.filter(lambda e: not e.is_zero())


class TestFqHelpers:
    def test_inverse_roundtrip(self):
        for a in (1, 2, 17, Q - 1, 12345678901234567):
            assert (a * fq_inv(a, Q)) % Q == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ValueError):
            fq_inv(0, Q)

    def test_sqrt_of_square(self):
        for a in (2, 3, 9, 1 << 40):
            square = (a * a) % Q
            root = fq_sqrt(square, Q)
            assert (root * root) % Q == square

    def test_sqrt_rejects_non_residue(self):
        # −1 is a non-residue when q ≡ 3 (mod 4)
        assert not fq_is_square(Q - 1, Q)
        with pytest.raises(ParameterError):
            fq_sqrt(Q - 1, Q)

    def test_sqrt_requires_3_mod_4(self):
        with pytest.raises(ParameterError):
            fq_sqrt(4, 13)  # 13 ≡ 1 (mod 4)

    def test_is_square_zero(self):
        assert fq_is_square(0, Q)


class TestFq2Basics:
    def test_one_and_zero(self):
        assert Fq2.one(Q).is_one()
        assert Fq2.zero(Q).is_zero()
        assert not Fq2.one(Q).is_zero()

    def test_i_squared_is_minus_one(self):
        i = Fq2(0, 1, Q)
        assert i * i == Fq2(Q - 1, 0, Q)

    def test_square_matches_mul(self):
        e = Fq2(123456789, 987654321, Q)
        assert e.square() == e * e

    def test_pow_small(self):
        e = Fq2(3, 5, Q)
        assert e**0 == Fq2.one(Q)
        assert e**1 == e
        assert e**5 == e * e * e * e * e

    def test_negative_pow_is_inverse_pow(self):
        e = Fq2(3, 5, Q)
        assert e**-3 == (e.inverse()) ** 3

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Fq2.zero(Q).inverse()

    def test_bytes_roundtrip(self):
        e = Fq2(42, 4242, Q)
        width = TOY.q_bytes
        data = e.to_bytes(width)
        assert len(data) == 2 * width
        assert Fq2.from_bytes(data, Q) == e

    def test_eq_other_type(self):
        assert Fq2.one(Q) != "one"


class TestFq2Properties:
    @settings(max_examples=50)
    @given(elements, elements, elements)
    def test_mul_associative(self, x, y, z):
        assert (x * y) * z == x * (y * z)

    @settings(max_examples=50)
    @given(elements, elements)
    def test_mul_commutative(self, x, y):
        assert x * y == y * x

    @settings(max_examples=50)
    @given(elements, elements, elements)
    def test_distributive(self, x, y, z):
        assert x * (y + z) == x * y + x * z

    @settings(max_examples=50)
    @given(nonzero_elements)
    def test_inverse_roundtrip(self, x):
        assert (x * x.inverse()).is_one()

    @settings(max_examples=50)
    @given(elements)
    def test_conjugate_is_frobenius(self, x):
        # In F_{q^2}, the Frobenius map z -> z^q equals conjugation.
        assert x**Q == x.conjugate()

    @settings(max_examples=50)
    @given(elements)
    def test_add_neg_is_zero(self, x):
        assert (x + (-x)).is_zero()
