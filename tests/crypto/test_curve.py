"""Unit and property tests for curve point arithmetic and hash-to-point."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.curve import Point, hash_to_point
from repro.crypto.params import TOY
from repro.errors import NotOnCurveError, SerializationError

G = Point.generator(TOY)
R = TOY.r

scalars = st.integers(min_value=0, max_value=R - 1)


class TestGroupLaw:
    def test_generator_on_curve(self):
        assert G._on_curve()

    def test_generator_order(self):
        assert (G * R).is_infinity
        assert not (G * (R - 1)).is_infinity

    def test_identity(self):
        inf = Point.infinity(TOY)
        assert G + inf == G
        assert inf + G == G
        assert (inf + inf).is_infinity

    def test_inverse(self):
        assert (G + (-G)).is_infinity

    def test_doubling_matches_addition(self):
        assert G.double() == G * 2

    def test_scalar_zero(self):
        assert (G * 0).is_infinity

    def test_scalar_negative(self):
        assert G * (-3) == -(G * 3)

    def test_scalar_not_reduced_mod_r(self):
        # Cofactor clearing relies on scalars larger than r being honoured.
        assert G * (R + 1) == G

    def test_off_curve_point_rejected(self):
        with pytest.raises(NotOnCurveError):
            Point(1, 1, TOY)

    def test_infinity_neg(self):
        inf = Point.infinity(TOY)
        assert (-inf).is_infinity


class TestGroupProperties:
    @settings(max_examples=30)
    @given(scalars, scalars)
    def test_scalar_distributes(self, a, b):
        assert G * a + G * b == G * ((a + b) % R)

    @settings(max_examples=20)
    @given(scalars, scalars)
    def test_addition_commutative(self, a, b):
        assert G * a + G * b == G * b + G * a

    @settings(max_examples=20)
    @given(scalars)
    def test_serialize_roundtrip(self, a):
        point = G * a
        assert Point.from_bytes(point.to_bytes(), TOY) == point


class TestSerialization:
    def test_infinity_roundtrip(self):
        inf = Point.infinity(TOY)
        data = inf.to_bytes()
        assert data[0] == 0x00
        assert Point.from_bytes(data, TOY).is_infinity

    def test_fixed_width(self):
        assert len(G.to_bytes()) == 1 + 2 * TOY.q_bytes

    def test_bad_length_rejected(self):
        with pytest.raises(SerializationError):
            Point.from_bytes(b"\x04" + b"\x00" * 3, TOY)

    def test_bad_tag_rejected(self):
        data = bytearray(G.to_bytes())
        data[0] = 0x07
        with pytest.raises(SerializationError):
            Point.from_bytes(bytes(data), TOY)

    def test_tampered_point_rejected(self):
        data = bytearray(G.to_bytes())
        data[-1] ^= 1
        with pytest.raises(NotOnCurveError):
            Point.from_bytes(bytes(data), TOY)


class TestHashToPoint:
    def test_deterministic(self):
        assert hash_to_point(b"attr:alice", TOY) == hash_to_point(b"attr:alice", TOY)

    def test_distinct_labels_distinct_points(self):
        assert hash_to_point(b"a", TOY) != hash_to_point(b"b", TOY)

    def test_in_prime_order_subgroup(self):
        point = hash_to_point(b"subgroup-check", TOY)
        assert (point * R).is_infinity
        assert not point.is_infinity

    def test_many_labels_all_valid(self):
        for i in range(20):
            point = hash_to_point(f"label-{i}".encode(), TOY)
            assert point._on_curve()
            assert (point * R).is_infinity
