"""Cross-parameter-set sanity: schemes work at TEST (and PAPER, marked slow)."""

import os

import pytest

from repro.abe.hybrid import HybridCPABE
from repro.crypto.group import PairingGroup
from repro.pbe.hve import HVE


@pytest.fixture(scope="module")
def test_group():
    return PairingGroup("TEST")


class TestAtTestParams:
    def test_hve_roundtrip(self, test_group):
        hve = HVE(test_group)
        public, master = hve.setup(4)
        ciphertext = hve.encrypt(public, [1, 0, 1, 1], b"guid")
        assert hve.query(hve.gen_token(master, [1, None, 1, None]), ciphertext) == b"guid"
        assert hve.query(hve.gen_token(master, [0, None, None, None]), ciphertext) is None

    def test_cpabe_roundtrip(self, test_group):
        cpabe = HybridCPABE(test_group)
        public, master = cpabe.setup()
        key = cpabe.keygen(master, {"a", "b"})
        ciphertext = cpabe.encrypt(public, b"payload", "a and b")
        assert cpabe.decrypt(key, ciphertext) == b"payload"

    def test_pairing_bilinearity(self, test_group):
        g = test_group.generator
        e = test_group.gt_generator
        assert test_group.pair(g * 6, g * 7) == e**42


@pytest.mark.skipif(
    os.environ.get("REPRO_SLOW_TESTS") != "1",
    reason="512-bit PAPER params are slow in pure Python; set REPRO_SLOW_TESTS=1",
)
class TestAtPaperParams:
    def test_full_stack_at_paper_params(self):
        group = PairingGroup("PAPER")
        hve = HVE(group)
        public, master = hve.setup(4)
        ciphertext = hve.encrypt(public, [1, 0, 1, 1], b"guid")
        assert hve.query(hve.gen_token(master, [1, 0, None, None]), ciphertext) == b"guid"
        cpabe = HybridCPABE(group)
        cp_public, cp_master = cpabe.setup()
        key = cpabe.keygen(cp_master, {"a"})
        assert cpabe.decrypt(key, cpabe.encrypt(cp_public, b"x", "a")) == b"x"
