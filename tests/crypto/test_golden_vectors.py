"""Golden known-answer vectors for the crypto layer (TOY parameters).

``vectors/golden_toy.json`` freezes the byte-exact outputs of the Tate
pairing, HVE encrypt/token/match, and BSW07 setup/keygen under fixed
seeds.  These tests re-derive everything from the same seeds and compare
— so an optimisation (fixed-base tables, Miller precomputation, ...)
that changes any output bit fails here, not in production.

Regenerate with ``tests/crypto/vectors/make_vectors.py`` only for an
*intentional* output change.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from .golden_util import PARAM_SET, SEED, derive_vectors

VECTORS_PATH = pathlib.Path(__file__).parent / "vectors" / "golden_toy.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(VECTORS_PATH.read_text())


@pytest.fixture(scope="module")
def derived() -> dict:
    return derive_vectors()


def test_vector_file_matches_seeds(golden):
    assert golden["param_set"] == PARAM_SET
    assert golden["seed"] == SEED


def test_tate_pairing_vectors(golden, derived):
    assert derived["tate"] == golden["tate"]


def test_hve_ciphertext_bytes(golden, derived):
    assert derived["hve"]["ciphertext_hex"] == golden["hve"]["ciphertext_hex"]


def test_hve_public_key_and_tokens(golden, derived):
    assert derived["hve"]["public_key_sha256"] == golden["hve"]["public_key_sha256"]
    assert derived["hve"]["token_match_hex"] == golden["hve"]["token_match_hex"]
    assert derived["hve"]["token_miss_sha256"] == golden["hve"]["token_miss_sha256"]


def test_hve_query_outcomes(golden, derived):
    assert (
        derived["hve"]["query_match_payload_hex"]
        == golden["hve"]["query_match_payload_hex"]
    )
    assert golden["hve"]["query_miss_is_none"] is True
    assert derived["hve"]["query_miss_is_none"] is True


def test_bsw07_keygen_vectors(golden, derived):
    assert derived["bsw07"] == golden["bsw07"]
