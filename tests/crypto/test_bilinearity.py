"""Bilinearity of the modified Tate pairing: ê(aP, bQ) == ê(P, Q)^(ab).

The property every scheme in the repo rests on, exercised on random
scalars at TOY parameters and across the precomputed evaluation path.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.group import PairingGroup
from repro.crypto.pairing import tate_pairing

SEED = 0xB111


@pytest.fixture(scope="module")
def group() -> PairingGroup:
    return PairingGroup("TOY")


@pytest.fixture(scope="module")
def rng() -> random.Random:
    return random.Random(SEED)


def test_bilinear_in_both_arguments(group, rng):
    g = group.generator
    base = group.pair(g, g)
    for _ in range(5):
        a = rng.randrange(1, group.order)
        b = rng.randrange(1, group.order)
        assert group.pair(g * a, g * b) == base ** (a * b % group.order)


def test_bilinear_factor_moves_between_arguments(group, rng):
    g = group.generator
    a = rng.randrange(1, group.order)
    b = rng.randrange(1, group.order)
    assert group.pair(g * a, g * b) == group.pair(g, g * (a * b % group.order))
    assert group.pair(g * a, g * b) == group.pair(g * (a * b % group.order), g)


def test_symmetry_on_g1(group, rng):
    g = group.generator
    p = g * rng.randrange(1, group.order)
    q = g * rng.randrange(1, group.order)
    assert group.pair(p, q) == group.pair(q, p)


def test_identity_absorbs(group, rng):
    g = group.generator
    p = g * rng.randrange(1, group.order)
    infinity = g * group.order
    assert infinity.is_infinity
    assert group.pair(p, infinity) == group.gt_identity()
    assert group.pair(infinity, p) == group.gt_identity()


def test_nondegenerate(group):
    assert group.pair(group.generator, group.generator) != group.gt_identity()


def test_order_r_in_gt(group, rng):
    g = group.generator
    e = tate_pairing(g * rng.randrange(1, group.order), g)
    assert e**group.order == group.gt_identity()


def test_bilinearity_holds_on_precomputed_path(group, rng):
    g = group.generator
    a = rng.randrange(1, group.order)
    b = rng.randrange(1, group.order)
    p, q = g * a, g * b
    pre = group.precompute_pairing(p)
    assert group.pair_precomputed(pre, q) == group.pair(g, g) ** (a * b % group.order)
