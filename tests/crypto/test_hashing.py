"""Hashing / KDF utility tests."""

from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import constant_time_equal, hash_bytes, hash_to_int, kdf


class TestHashBytes:
    def test_deterministic(self):
        assert hash_bytes("d", b"a", b"b") == hash_bytes("d", b"a", b"b")

    def test_domain_separation(self):
        assert hash_bytes("d1", b"a") != hash_bytes("d2", b"a")

    def test_length_prefixing_prevents_ambiguity(self):
        # ("ab", "c") must not collide with ("a", "bc")
        assert hash_bytes("d", b"ab", b"c") != hash_bytes("d", b"a", b"bc")

    def test_output_length(self):
        assert len(hash_bytes("d", b"x")) == 32


class TestHashToInt:
    def test_in_range(self):
        modulus = (1 << 61) - 1
        for i in range(50):
            assert 0 <= hash_to_int("d", modulus, str(i).encode()) < modulus

    def test_deterministic(self):
        assert hash_to_int("d", 997, b"x") == hash_to_int("d", 997, b"x")

    def test_large_modulus(self):
        modulus = (1 << 512) - 569
        value = hash_to_int("d", modulus, b"data")
        assert 0 <= value < modulus

    @settings(max_examples=30)
    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_distinct_inputs_rarely_collide(self, a, b):
        if a != b:
            # 2^-128-ish collision odds; any hit here means a real bug.
            assert hash_to_int("d", 1 << 128, a) != hash_to_int("d", 1 << 128, b)


class TestKdf:
    def test_length(self):
        for n in (16, 32, 64, 100):
            assert len(kdf(b"secret", "label", n)) == n

    def test_label_separation(self):
        assert kdf(b"secret", "enc") != kdf(b"secret", "mac")

    def test_salt_changes_output(self):
        assert kdf(b"secret", "l", salt=b"s1") != kdf(b"secret", "l", salt=b"s2")

    def test_deterministic(self):
        assert kdf(b"secret", "l", 48) == kdf(b"secret", "l", 48)

    def test_prefix_consistency(self):
        assert kdf(b"secret", "l", 64)[:32] == kdf(b"secret", "l", 32)


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abc", b"abc")

    def test_not_equal(self):
        assert not constant_time_equal(b"abc", b"abd")
        assert not constant_time_equal(b"abc", b"abcd")
