"""Validation of precomputed Type-A parameter sets and the generator."""

import pytest

from repro.crypto.params import (
    PAPER,
    PARAM_SETS,
    TEST,
    TOY,
    TypeAParams,
    generate_type_a_params,
    is_probable_prime,
)
from repro.errors import ParameterError


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 97, 101):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 91, 561, 1105):  # includes Carmichael numbers
            assert not is_probable_prime(n)

    def test_large_prime(self):
        assert is_probable_prime((1 << 127) - 1)  # Mersenne prime
        assert not is_probable_prime((1 << 128) - 1)


class TestPrecomputedSets:
    @pytest.mark.parametrize("params", [TOY, TEST, PAPER], ids=lambda p: p.name)
    def test_invariants(self, params):
        assert is_probable_prime(params.r)
        assert is_probable_prime(params.q)
        assert params.q == params.h * params.r - 1
        assert params.q % 4 == 3
        assert params.h % 4 == 0
        # generator lies on the curve and has exact order r
        rhs = (params.gx**3 + params.gx) % params.q
        assert (params.gy * params.gy) % params.q == rhs

    def test_expected_bit_lengths(self):
        assert TOY.r.bit_length() == 64
        assert TEST.r.bit_length() == 112
        assert PAPER.r.bit_length() == 160
        assert PAPER.q.bit_length() == 512

    def test_registry(self):
        assert set(PARAM_SETS) == {"TOY", "TEST", "PAPER"}

    def test_byte_widths(self):
        assert PAPER.q_bytes == 64
        assert PAPER.r_bytes == 20


class TestGeneration:
    def test_deterministic_with_seed(self):
        a = generate_type_a_params(40, 96, seed=7)
        b = generate_type_a_params(40, 96, seed=7)
        assert (a.r, a.q, a.h) == (b.r, b.q, b.h)

    def test_fresh_params_valid(self):
        params = generate_type_a_params(40, 96, name="tiny", seed=99)
        assert is_probable_prime(params.r)
        assert is_probable_prime(params.q)
        assert params.q % 4 == 3

    def test_rejects_too_small_gap(self):
        with pytest.raises(ParameterError):
            generate_type_a_params(40, 42)

    def test_constructor_validates(self):
        with pytest.raises(ParameterError):
            TypeAParams(name="bad", r=7, h=4, q=29, gx=0, gy=0)  # 29 != 4*7-1
        with pytest.raises(ParameterError):
            TypeAParams(name="bad", r=7, h=6, q=41, gx=0, gy=0)  # 41 % 4 == 1
