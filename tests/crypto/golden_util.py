"""Deterministic derivation shared by the golden known-answer vectors.

The vectors in ``tests/crypto/vectors/golden_toy.json`` freeze the TOY
outputs of the Tate pairing, IP08 HVE encrypt/token/match, and BSW07
setup/keygen under fixed seeds.  Determinism needs two things:

* every Zr scalar drawn through :meth:`PairingGroup.random_zr` comes from
  a seeded ``random.Random`` (the group's ``rng`` parameter), and
* the SecretBox nonces inside HVE ciphertexts come from a counter-based
  stream instead of ``secrets.token_bytes`` (the :func:`frozen_nonces`
  context manager patches it for the duration).

:func:`derive_vectors` is the single source of truth: the regen script
(``tests/crypto/vectors/make_vectors.py``) serializes its output, and
``test_golden_vectors.py`` re-runs it and compares against the committed
JSON — so any change to scalar-draw order, point arithmetic, pairing
evaluation, serialization layout, or sealing breaks the test loudly.
"""

from __future__ import annotations

import contextlib
import hashlib
import random

from repro.abe.bsw07 import CPABE
from repro.abe.serialize import (
    serialize_master_key,
    serialize_public_key,
    serialize_secret_key,
)
from repro.crypto import symmetric
from repro.crypto.group import PairingGroup
from repro.crypto.pairing import tate_pairing
from repro.pbe.hve import HVE
from repro.pbe.serialize import (
    serialize_hve_ciphertext,
    serialize_hve_public_key,
    serialize_hve_token,
)

PARAM_SET = "TOY"
SEED = 20120806  # paper year + vector freeze date

HVE_N = 8
HVE_X = [1, 0, 1, 1, 0, 0, 1, 0]
HVE_PAYLOAD = b"p3s-golden-guid!"
HVE_Y_MATCH = [1, 0, None, None, None, None, 1, None]
HVE_Y_MISS = [0, 0, None, None, None, None, 1, None]

BSW07_ATTRIBUTES = {"org:acme", "role:analyst", "clearance:2"}


@contextlib.contextmanager
def frozen_nonces(label: bytes = b"p3s-golden-nonce"):
    """Replace SecretBox's nonce source with a deterministic counter stream."""
    real = symmetric.secrets.token_bytes
    counter = 0

    def fake(n: int) -> bytes:
        nonlocal counter
        counter += 1
        return hashlib.sha256(label + counter.to_bytes(8, "big")).digest()[:n]

    symmetric.secrets.token_bytes = fake
    try:
        yield
    finally:
        symmetric.secrets.token_bytes = real


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def derive_vectors() -> dict:
    """Recompute every golden vector from the fixed seeds."""
    data: dict = {"param_set": PARAM_SET, "seed": SEED}

    # -- Tate pairing on deterministic multiples of g ------------------------
    group = PairingGroup(PARAM_SET)
    scalar_rng = random.Random(SEED ^ 0x7A7E)
    tate_cases = []
    for _ in range(4):
        a = scalar_rng.randrange(1, group.order)
        b = scalar_rng.randrange(1, group.order)
        value = tate_pairing(group.generator * a, group.generator * b)
        tate_cases.append(
            {"a": str(a), "b": str(b), "gt": group.serialize_gt(value).hex()}
        )
    data["tate"] = tate_cases

    # -- HVE: setup → encrypt → tokens → query -------------------------------
    hve_group = PairingGroup(PARAM_SET, rng=random.Random(SEED ^ 0x48E5))
    with frozen_nonces():
        hve = HVE(hve_group)
        public, master = hve.setup(HVE_N)
        ciphertext = hve.encrypt(public, HVE_X, HVE_PAYLOAD)
        token_match = hve.gen_token(master, HVE_Y_MATCH)
        token_miss = hve.gen_token(master, HVE_Y_MISS)
    matched = hve.query(token_match, ciphertext)
    missed = hve.query(token_miss, ciphertext)
    data["hve"] = {
        "n": HVE_N,
        "x": HVE_X,
        "public_key_sha256": _sha256(serialize_hve_public_key(hve_group, public)),
        "ciphertext_hex": serialize_hve_ciphertext(hve_group, ciphertext).hex(),
        "token_match_hex": serialize_hve_token(hve_group, token_match).hex(),
        "token_miss_sha256": _sha256(serialize_hve_token(hve_group, token_miss)),
        "query_match_payload_hex": matched.hex() if matched is not None else None,
        "query_miss_is_none": missed is None,
    }

    # -- BSW07: setup → keygen -----------------------------------------------
    abe_group = PairingGroup(PARAM_SET, rng=random.Random(SEED ^ 0xB59))
    cpabe = CPABE(abe_group)
    abe_public, abe_master = cpabe.setup()
    key = cpabe.keygen(abe_master, BSW07_ATTRIBUTES)
    data["bsw07"] = {
        "attributes": sorted(BSW07_ATTRIBUTES),
        "public_key_sha256": _sha256(serialize_public_key(abe_group, abe_public)),
        "master_key_sha256": _sha256(serialize_master_key(abe_group, abe_master)),
        "secret_key_sha256": _sha256(serialize_secret_key(abe_group, key)),
    }
    return data
