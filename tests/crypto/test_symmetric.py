"""ChaCha20 RFC 7539 vectors and SecretBox AEAD behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.symmetric import NONCE_LEN, OVERHEAD, SecretBox, chacha20_xor
from repro.errors import IntegrityError, ParameterError


class TestChaCha20:
    def test_rfc7539_keystream_vector(self):
        # RFC 7539 §2.4.2 test vector: key 00..1f, nonce 000000000000004a00000000,
        # counter 1, plaintext "Ladies and Gentlemen..."
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        expected = bytes.fromhex(
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b357"
            "1639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e"
            "52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42"
            "874d"
        )
        assert chacha20_xor(key, nonce, plaintext, initial_counter=1) == expected

    def test_xor_is_involution(self):
        key = b"k" * 32
        nonce = b"n" * NONCE_LEN
        data = b"some payload bytes" * 10
        assert chacha20_xor(key, nonce, chacha20_xor(key, nonce, data)) == data

    def test_empty_message(self):
        assert chacha20_xor(b"k" * 32, b"n" * NONCE_LEN, b"") == b""

    def test_bad_key_length(self):
        with pytest.raises(ParameterError):
            chacha20_xor(b"short", b"n" * NONCE_LEN, b"data")

    def test_bad_nonce_length(self):
        with pytest.raises(ParameterError):
            chacha20_xor(b"k" * 32, b"n" * 5, b"data")


class TestSecretBox:
    def setup_method(self):
        self.box = SecretBox(SecretBox.generate_key())

    def test_roundtrip(self):
        assert self.box.open(self.box.seal(b"hello")) == b"hello"

    def test_overhead_constant(self):
        for size in (0, 1, 100, 4096):
            sealed = self.box.seal(b"x" * size)
            assert len(sealed) == size + OVERHEAD

    def test_nonce_freshness(self):
        assert self.box.seal(b"same") != self.box.seal(b"same")

    def test_tampering_detected(self):
        sealed = bytearray(self.box.seal(b"payload"))
        sealed[NONCE_LEN] ^= 0x01
        with pytest.raises(IntegrityError):
            self.box.open(bytes(sealed))

    def test_truncation_detected(self):
        sealed = self.box.seal(b"payload")
        with pytest.raises(IntegrityError):
            self.box.open(sealed[:-1])

    def test_too_short_ciphertext(self):
        with pytest.raises(IntegrityError):
            self.box.open(b"short")

    def test_wrong_key_fails(self):
        other = SecretBox(SecretBox.generate_key())
        with pytest.raises(IntegrityError):
            other.open(self.box.seal(b"payload"))

    def test_associated_data_bound(self):
        sealed = self.box.seal(b"payload", associated_data=b"guid-1")
        assert self.box.open(sealed, associated_data=b"guid-1") == b"payload"
        with pytest.raises(IntegrityError):
            self.box.open(sealed, associated_data=b"guid-2")

    def test_bad_key_length(self):
        with pytest.raises(ParameterError):
            SecretBox(b"short")

    @settings(max_examples=25)
    @given(st.binary(max_size=512))
    def test_roundtrip_property(self, data):
        assert self.box.open(self.box.seal(data)) == data
