"""ECIES-style PKE and Schnorr signature / certificate tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.group import PairingGroup
from repro.crypto.pke import PKEKeyPair, PKEPublicKey, pke_overhead
from repro.crypto.signing import Certificate, Signature, SigningKeyPair
from repro.errors import CertificateError, DecryptionError, IntegrityError, SerializationError

GROUP = PairingGroup("TOY")


class TestPKE:
    def setup_method(self):
        self.keys = PKEKeyPair(GROUP)

    def test_roundtrip(self):
        message = b"(K_s, subscriber cert, predicate)"
        assert self.keys.decrypt(self.keys.public.encrypt(message)) == message

    def test_ciphertexts_randomized(self):
        assert self.keys.public.encrypt(b"m") != self.keys.public.encrypt(b"m")

    def test_overhead(self):
        sealed = self.keys.public.encrypt(b"x" * 100)
        assert len(sealed) == 100 + pke_overhead(GROUP)

    def test_wrong_key_fails(self):
        other = PKEKeyPair(GROUP)
        with pytest.raises(IntegrityError):
            other.decrypt(self.keys.public.encrypt(b"m"))

    def test_short_ciphertext_rejected(self):
        with pytest.raises(SerializationError):
            self.keys.decrypt(b"tiny")

    def test_corrupt_ephemeral_point_rejected(self):
        sealed = bytearray(self.keys.public.encrypt(b"m"))
        sealed[5] ^= 0xFF
        with pytest.raises(DecryptionError):
            self.keys.decrypt(bytes(sealed))

    def test_public_key_roundtrip(self):
        data = self.keys.public.to_bytes()
        restored = PKEPublicKey.from_bytes(data, GROUP)
        assert self.keys.decrypt(restored.encrypt(b"via restored key")) == b"via restored key"

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=128))
    def test_roundtrip_property(self, message):
        assert self.keys.decrypt(self.keys.public.encrypt(message)) == message


class TestSchnorr:
    def setup_method(self):
        self.signer = SigningKeyPair(GROUP)

    def test_sign_verify(self):
        sig = self.signer.sign(b"message")
        assert self.signer.verify_key.verify(b"message", sig)

    def test_wrong_message_rejected(self):
        sig = self.signer.sign(b"message")
        assert not self.signer.verify_key.verify(b"other", sig)

    def test_wrong_key_rejected(self):
        sig = self.signer.sign(b"message")
        other = SigningKeyPair(GROUP)
        assert not other.verify_key.verify(b"message", sig)

    def test_signature_serialization(self):
        sig = self.signer.sign(b"m")
        data = sig.to_bytes(GROUP.zr_bytes)
        assert Signature.from_bytes(data, GROUP.zr_bytes) == sig

    def test_bad_signature_length(self):
        with pytest.raises(SerializationError):
            Signature.from_bytes(b"\x00" * 3, GROUP.zr_bytes)


class TestCertificate:
    def setup_method(self):
        self.ara = SigningKeyPair(GROUP)

    def test_issue_and_validate(self):
        cert = Certificate.issue(self.ara, "alice", "subscriber")
        cert.validate(self.ara.verify_key, "subscriber")

    def test_role_mismatch(self):
        cert = Certificate.issue(self.ara, "alice", "publisher")
        with pytest.raises(CertificateError):
            cert.validate(self.ara.verify_key, "subscriber")

    def test_expiry(self):
        cert = Certificate.issue(self.ara, "alice", "subscriber", not_after=10.0)
        cert.validate(self.ara.verify_key, "subscriber", now=9.9)
        with pytest.raises(CertificateError):
            cert.validate(self.ara.verify_key, "subscriber", now=10.1)

    def test_forged_signature_rejected(self):
        forger = SigningKeyPair(GROUP)
        cert = Certificate.issue(forger, "mallory", "subscriber")
        with pytest.raises(CertificateError):
            cert.validate(self.ara.verify_key, "subscriber")

    def test_serialization_roundtrip(self):
        cert = Certificate.issue(self.ara, "alice", "subscriber", not_after=77.0)
        restored = Certificate.from_bytes(cert.to_bytes(GROUP.zr_bytes), GROUP.zr_bytes)
        assert restored == cert
        restored.validate(self.ara.verify_key, "subscriber", now=0.0)

    def test_malformed_bytes(self):
        with pytest.raises(SerializationError):
            Certificate.from_bytes(b"\x00", GROUP.zr_bytes)

    def test_tampered_subject_rejected(self):
        cert = Certificate.issue(self.ara, "alice", "subscriber")
        tampered = Certificate("bob", cert.role, cert.not_after, cert.signature)
        with pytest.raises(CertificateError):
            tampered.validate(self.ara.verify_key, "subscriber")
