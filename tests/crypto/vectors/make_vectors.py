"""Regenerate the golden known-answer vectors.

Run from the repo root after an *intentional* crypto-layer change::

    PYTHONPATH=src:tests python tests/crypto/vectors/make_vectors.py

and commit the resulting ``golden_toy.json`` together with an explanation
of why the outputs were expected to move.  Any unintentional diff here is
a correctness regression, not a formatting problem.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[3] / "src"))

from crypto.golden_util import derive_vectors  # noqa: E402


def main() -> None:
    target = pathlib.Path(__file__).with_name("golden_toy.json")
    target.write_text(json.dumps(derive_vectors(), indent=2) + "\n")
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
