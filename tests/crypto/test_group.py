"""PairingGroup facade tests."""

import pytest

from repro.crypto.group import PairingGroup
from repro.crypto.params import TOY
from repro.errors import ParameterError


class TestPairingGroup:
    def setup_method(self):
        self.group = PairingGroup("TOY")

    def test_named_and_explicit_params_agree(self):
        assert PairingGroup(TOY).params is TOY

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError):
            PairingGroup("NOPE")

    def test_order(self):
        assert self.group.order == TOY.r

    def test_gt_generator_cached_and_nontrivial(self):
        e1 = self.group.gt_generator
        e2 = self.group.gt_generator
        assert e1 is e2
        assert not e1.is_one()
        assert (e1**self.group.order).is_one()

    def test_random_zr_in_range(self):
        for _ in range(20):
            value = self.group.random_zr()
            assert 1 <= value < self.group.order
        assert any(self.group.random_zr(nonzero=False) >= 0 for _ in range(5))

    def test_random_g1_in_subgroup(self):
        point = self.group.random_g1()
        assert (point * self.group.order).is_infinity

    def test_random_gt_in_subgroup(self):
        element = self.group.random_gt()
        assert (element**self.group.order).is_one()

    def test_pair_matches_multi_pair(self):
        p, q = self.group.random_g1(), self.group.random_g1()
        assert self.group.pair(p, q) == self.group.multi_pair([(p, q)])

    def test_hash_to_zr_stable(self):
        a = self.group.hash_to_zr("d", b"x")
        assert a == self.group.hash_to_zr("d", b"x")
        assert a != self.group.hash_to_zr("d", b"y")
        assert a != self.group.hash_to_zr("e", b"x")

    def test_hash_to_g1_str_and_bytes(self):
        assert self.group.hash_to_g1("attr") == self.group.hash_to_g1(b"attr")

    def test_g1_serialization_roundtrip(self):
        point = self.group.random_g1()
        data = self.group.serialize_g1(point)
        assert len(data) == self.group.g1_bytes
        assert self.group.deserialize_g1(data) == point

    def test_gt_serialization_roundtrip(self):
        element = self.group.random_gt()
        data = self.group.serialize_gt(element)
        assert len(data) == self.group.gt_bytes
        assert self.group.deserialize_gt(data) == element

    def test_gt_bad_length(self):
        with pytest.raises(ParameterError):
            self.group.deserialize_gt(b"\x00" * 3)

    def test_gt_to_key_deterministic(self):
        element = self.group.random_gt()
        assert self.group.gt_to_key(element) == self.group.gt_to_key(element)
        assert len(self.group.gt_to_key(element)) == 32

    def test_gt_identity(self):
        assert self.group.gt_identity().is_one()
