"""Bilinearity, non-degeneracy, and multi-pairing correctness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.curve import Point, hash_to_point
from repro.crypto.pairing import miller_loop, multi_pairing, tate_pairing
from repro.crypto.params import TEST, TOY
from repro.errors import ParameterError

G = Point.generator(TOY)
R = TOY.r
E = tate_pairing(G, G)

scalars = st.integers(min_value=1, max_value=R - 1)


class TestTatePairing:
    def test_non_degenerate(self):
        assert not E.is_one()

    def test_order_r(self):
        assert (E**R).is_one()

    def test_bilinear_left(self):
        a = 123456789
        assert tate_pairing(G * a, G) == E**a

    def test_bilinear_right(self):
        b = 987654321
        assert tate_pairing(G, G * b) == E**b

    def test_symmetric(self):
        p, q = G * 17, G * 91
        assert tate_pairing(p, q) == tate_pairing(q, p)

    def test_infinity_maps_to_identity(self):
        inf = Point.infinity(TOY)
        assert tate_pairing(inf, G).is_one()
        assert tate_pairing(G, inf).is_one()

    def test_edge_scalar_r_minus_one(self):
        # exercises the final-add vertical line (T = −P) inside Miller's loop
        assert tate_pairing(G * (R - 1), G) == E ** (R - 1)

    def test_hashed_points_pair(self):
        h1 = hash_to_point(b"x", TOY)
        h2 = hash_to_point(b"y", TOY)
        assert not tate_pairing(h1, h2).is_one()

    def test_miller_loop_rejects_infinity(self):
        with pytest.raises(ParameterError):
            miller_loop(Point.infinity(TOY), G)

    @settings(max_examples=15, deadline=None)
    @given(scalars, scalars)
    def test_bilinearity_property(self, a, b):
        assert tate_pairing(G * a, G * b) == E ** ((a * b) % R)


class TestMultiPairing:
    def test_empty_product_is_identity(self):
        assert multi_pairing([], TOY).is_one()

    def test_single_pair_matches_tate(self):
        p, q = G * 7, G * 11
        assert multi_pairing([(p, q)], TOY) == tate_pairing(p, q)

    def test_product_of_three(self):
        pairs = [(G * 2, G * 3), (G * 5, G * 7), (G * 11, G * 13)]
        expected = E ** ((2 * 3 + 5 * 7 + 11 * 13) % R)
        assert multi_pairing(pairs, TOY) == expected

    def test_infinity_pairs_skipped(self):
        inf = Point.infinity(TOY)
        pairs = [(G * 2, G * 3), (inf, G), (G, inf)]
        assert multi_pairing(pairs, TOY) == E**6

    def test_edge_r_minus_one_in_product(self):
        pairs = [(G * (R - 1), G), (G, G)]
        assert multi_pairing(pairs, TOY) == E ** ((R - 1 + 1) % R)  # identity
        assert multi_pairing(pairs, TOY).is_one()

    def test_mismatched_params_rejected(self):
        other = Point.generator(TEST)
        with pytest.raises(ParameterError):
            multi_pairing([(G, other)], TOY)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(scalars, scalars), min_size=1, max_size=4))
    def test_matches_naive_product(self, scalar_pairs):
        pairs = [(G * a, G * b) for a, b in scalar_pairs]
        exponent = sum(a * b for a, b in scalar_pairs) % R
        assert multi_pairing(pairs, TOY) == E**exponent
