"""Baseline centralized pub-sub system tests."""

import pytest

from repro.baseline import BaselineSystem
from repro.pbe import ANY, Interest


def make_loaded_system(num_subscribers=4):
    system = BaselineSystem()
    subscribers = [system.add_subscriber(f"s{i}") for i in range(num_subscribers)]
    return system, subscribers


class TestMatchingAndDelivery:
    def test_matching_subscriber_receives(self):
        system, (s0, *_) = make_loaded_system()
        s0.subscribe(Interest({"topic": "m&a"}))
        system.run()
        publisher = system.add_publisher("p")
        pid = publisher.publish({"topic": "m&a"}, b"payload")
        system.run()
        deliveries = system.deliveries_for(pid)
        assert len(deliveries) == 1
        assert deliveries[0].payload == b"payload"

    def test_non_matching_gets_nothing(self):
        system, (s0, s1, *_) = make_loaded_system()
        s0.subscribe(Interest({"topic": "m&a"}))
        s1.subscribe(Interest({"topic": "earnings"}))
        system.run()
        publisher = system.add_publisher("p")
        pid = publisher.publish({"topic": "m&a"}, b"x")
        system.run()
        assert len(system.deliveries_for(pid)) == 1
        assert s1.deliveries == []

    def test_wildcards(self):
        system, (s0, *_) = make_loaded_system()
        s0.subscribe(Interest({"topic": ANY, "region": "us"}))
        system.run()
        publisher = system.add_publisher("p")
        pid = publisher.publish({"topic": "anything", "region": "us"}, b"x")
        system.run()
        assert len(system.deliveries_for(pid)) == 1

    def test_broker_only_sends_to_matchers(self):
        """Key contrast with P3S: the baseline broker does NOT broadcast."""
        system, subscribers = make_loaded_system(num_subscribers=10)
        for i, sub in enumerate(subscribers):
            sub.subscribe(Interest({"topic": "hot" if i < 3 else "cold"}))
        system.run()
        publisher = system.add_publisher("p")
        pid = publisher.publish({"topic": "hot"}, b"x")
        system.run()
        assert len(system.deliveries_for(pid)) == 3
        assert system.broker.delivered_count == 3

    def test_multiple_publications(self):
        system, (s0, *_) = make_loaded_system()
        s0.subscribe(Interest({"topic": "a"}))
        system.run()
        publisher = system.add_publisher("p")
        ids = [publisher.publish({"topic": "a"}, f"m{i}".encode()) for i in range(5)]
        system.run()
        for pid in ids:
            assert len(system.deliveries_for(pid)) == 1
        assert [d.payload for d in s0.deliveries] == [b"m0", b"m1", b"m2", b"m3", b"m4"]


class TestTimingModel:
    def test_latency_shape_small_payload(self):
        """t^b = t1 + t2 + t3: two ~45 ms hops plus matching dominate."""
        system, (s0, *_) = make_loaded_system(num_subscribers=1)
        s0.subscribe(Interest({"topic": "a"}))
        system.run()
        publisher = system.add_publisher("p")
        start = system.sim.now
        publisher.publish({"topic": "a"}, b"tiny")
        system.run()
        latency = s0.deliveries[0].delivered_at - start
        assert 0.090 < latency < 0.12

    def test_latency_grows_with_payload(self):
        def measure(size):
            system = BaselineSystem()
            sub = system.add_subscriber("s")
            sub.subscribe(Interest({"topic": "a"}))
            system.run()
            publisher = system.add_publisher("p")
            start = system.sim.now
            publisher.publish({"topic": "a"}, b"x" * size)
            system.run()
            return sub.deliveries[0].delivered_at - start

        small, large = measure(1_000), measure(1_000_000)
        # 1 MB at 10 Mbps adds ~0.8 s serialization per hop
        assert large > small + 1.0

    def test_match_time_scales_with_subscriptions(self):
        system, subscribers = make_loaded_system(num_subscribers=50)
        for sub in subscribers:
            sub.subscribe(Interest({"topic": "nope"}))
        subscribers[0].subscribe(Interest({"topic": "a"}))
        system.run()
        publisher = system.add_publisher("p")
        start = system.sim.now
        publisher.publish({"topic": "a"}, b"x")
        system.run()
        latency = subscribers[0].deliveries[0].delivered_at - start
        # 51 subscriptions × 0.05 ms ≈ 2.6 ms of matching on the broker
        assert latency > 0.090 + 0.0025
