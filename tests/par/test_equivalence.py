"""Bit-identity of every fast path against its naive counterpart.

The PR-2 performance work (fixed-base comb tables, Miller-loop
precomputation, delegated parallel matching) is only admissible because
each fast path produces *exactly* the bytes of the slow one.  This module
is that contract:

* comb-table scalar multiplication vs reference double-and-add, including
  ``k = 0``, ``k < 0``, ``k ≥ r`` and ``k`` beyond the table width;
* precomputed Miller evaluation vs the plain Miller loop, pre- and
  post-final-exponentiation;
* the HVE precomputed query path vs the naive multi-pairing path;
* a delegated-matching deployment vs the baseline broadcast deployment —
  byte-identical delivery sets.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import P3SConfig
from repro.core.system import P3SSystem
from repro.crypto.curve import Point, fixed_base_table
from repro.crypto.group import PairingGroup
from repro.crypto.pairing import (
    final_exponentiation,
    miller_eval,
    miller_loop,
    multi_pairing,
    multi_pairing_precomputed,
    precompute_miller,
    tate_pairing,
    tate_pairing_precomputed,
)
from repro.pbe.hve import HVE
from repro.pbe.schema import Interest

SEED = 0x0EC4


@pytest.fixture(scope="module")
def group() -> PairingGroup:
    return PairingGroup("TOY")


@pytest.fixture(scope="module")
def rng() -> random.Random:
    return random.Random(SEED)


def reference_mul(point: Point, k: int) -> Point:
    """Plain double-and-add, independent of every production fast path."""
    if k < 0:
        return reference_mul(-point, -k)
    result = Point.infinity(point.params)
    addend = point
    while k:
        if k & 1:
            result = result + addend
        addend = addend + addend
        k >>= 1
    return result


# -- fixed-base comb tables ----------------------------------------------------


def _scalar_cases(group, rng) -> list[int]:
    r = group.order
    return [
        0,
        1,
        2,
        -1,
        -rng.randrange(2, r),
        r - 1,
        r,  # multiplies to infinity
        r + 1,
        2 * r + 3,  # above the order, still inside the table width
        *(rng.randrange(1, r) for _ in range(8)),
    ]


def test_fixed_base_table_matches_reference(group, rng):
    table = fixed_base_table(group.generator)
    for k in _scalar_cases(group, rng):
        expected = reference_mul(group.generator, k)
        assert (group.generator * k).to_bytes() == expected.to_bytes()
        if 0 <= k < (1 << table.max_bits):
            assert table.mul(k).to_bytes() == expected.to_bytes()


def test_fixed_base_on_non_generator_base(group, rng):
    base = group.generator * rng.randrange(2, group.order)
    table = fixed_base_table(base)
    for k in _scalar_cases(group, rng):
        expected = reference_mul(base, k)
        assert (base * k).to_bytes() == expected.to_bytes()
        if 0 <= k < (1 << table.max_bits):
            assert table.mul(k).to_bytes() == expected.to_bytes()


def test_scalar_beyond_table_width_falls_back(group, rng):
    table = fixed_base_table(group.generator)
    k = 1 << (table.max_bits + 8)  # wider than the comb table covers
    assert (group.generator * k).to_bytes() == reference_mul(
        group.generator, k
    ).to_bytes()


# -- Miller-loop precomputation ------------------------------------------------


def test_miller_eval_matches_miller_loop(group, rng):
    g = group.generator
    for _ in range(4):
        p = g * rng.randrange(1, group.order)
        q = g * rng.randrange(1, group.order)
        pre = precompute_miller(p)
        assert miller_eval(pre, q) == miller_loop(p, q)
        assert final_exponentiation(miller_eval(pre, q), group.params) == tate_pairing(
            p, q
        )


def test_tate_pairing_precomputed_bit_identical(group, rng):
    g = group.generator
    p = g * rng.randrange(1, group.order)
    q = g * rng.randrange(1, group.order)
    pre = precompute_miller(p)
    assert group.serialize_gt(tate_pairing_precomputed(pre, q)) == group.serialize_gt(
        tate_pairing(p, q)
    )


def test_multi_pairing_precomputed_bit_identical(group, rng):
    g = group.generator
    pairs = [
        (g * rng.randrange(1, group.order), g * rng.randrange(1, group.order))
        for _ in range(5)
    ]
    # include an infinity entry: both paths must apply the same skip rule
    pairs.append((g * group.order, g * rng.randrange(1, group.order)))
    naive = multi_pairing(pairs, group.params)
    entries = [
        (None if p.is_infinity else precompute_miller(p), q) for p, q in pairs
    ]
    precomputed = multi_pairing_precomputed(entries, group.params)
    assert group.serialize_gt(precomputed) == group.serialize_gt(naive)


# -- HVE precomputed query path ------------------------------------------------


def test_hve_precompute_query_equivalent(group):
    hve_rng = random.Random(SEED ^ 1)
    seeded = PairingGroup("TOY", rng=hve_rng)
    naive_hve = HVE(seeded, precompute=False)
    public, master = naive_hve.setup(6)
    ct = naive_hve.encrypt(public, [1, 0, 1, 0, 1, 1], b"guid-equivalence")
    tokens = [
        naive_hve.gen_token(master, [1, 0, None, None, None, None]),
        naive_hve.gen_token(master, [None, None, 1, 0, None, 1]),
        naive_hve.gen_token(master, [0, 0, None, None, None, None]),
        naive_hve.gen_token(master, [None, 1, None, None, None, None]),
    ]
    fast_hve = HVE(seeded, precompute=True)
    for token in tokens:
        assert fast_hve.query(token, ct) == naive_hve.query(token, ct)


# -- delegated vs broadcast deployments ----------------------------------------


def _run_deployment(delegated: bool):
    system = P3SSystem(P3SConfig(delegated_matching=delegated))
    names_interests = [
        ("alice", Interest({"attr00": "v01"})),
        ("bobby", Interest({"attr00": "v02"})),
        ("carol", Interest({"attr01": "v01", "attr02": "v03"})),
    ]
    for name, interest in names_interests:
        subscriber = system.add_subscriber(name, attributes={"org:acme"})
        system.subscribe(subscriber, interest)
    system.run()
    publisher = system.add_publisher("pub")
    base = {f"attr{i:02d}": "v00" for i in range(10)}
    publisher.publish({**base, "attr00": "v01"}, b"payload-one", policy="org:acme")
    publisher.publish(
        {**base, "attr01": "v01", "attr02": "v03"}, b"payload-two", policy="org:acme"
    )
    publisher.publish({**base, "attr00": "v03"}, b"payload-none", policy="org:acme")
    system.run()
    return {
        name: sorted(
            (delivery.publication_id, delivery.guid, delivery.payload)
            for delivery in subscriber.stats.deliveries
        )
        for name, subscriber in system.subscribers.items()
    }


def test_delegated_matching_delivery_sets_identical():
    broadcast = _run_deployment(delegated=False)
    delegated = _run_deployment(delegated=True)
    # GUIDs are random per run; compare per-subscriber payload multisets and
    # that exactly the same subscribers received exactly the same counts
    assert {
        name: [payload for _, _, payload in rows] for name, rows in broadcast.items()
    } == {
        name: [payload for _, _, payload in rows] for name, rows in delegated.items()
    }
    assert delegated["alice"] and delegated["carol"]
    assert not delegated["bobby"]
