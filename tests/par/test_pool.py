"""MatchPool: serial/parallel equivalence, ordering, lifecycle, metrics.

The parallel jobs are real process-pool dispatches; on a single-core
machine they still exercise chunking, reassembly and determinism.  The
parallel cases are skipped in the CI serial-only job
(``P3S_MATCH_WORKERS=1``), which pins the whole suite to the in-process
path.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.crypto.group import PairingGroup
from repro.obs import Observability
from repro.par import MatchPool, resolve_workers
from repro.pbe.hve import HVE
from repro.pbe.serialize import serialize_hve_ciphertext, serialize_hve_token

SERIAL_ONLY = os.environ.get("P3S_MATCH_WORKERS") == "1"
parallel_test = pytest.mark.skipif(
    SERIAL_ONLY, reason="serial-only job (P3S_MATCH_WORKERS=1)"
)


@pytest.fixture(scope="module")
def fixture_data():
    group = PairingGroup("TOY", rng=random.Random(0x9001))
    hve = HVE(group)
    public, master = hve.setup(6)
    x = [1, 0, 1, 0, 0, 1]
    ct = hve.encrypt(public, x, b"pool-guid-000001")
    interests = [
        [1, 0, None, None, None, None],  # match
        [0, 0, None, None, None, None],  # miss
        [None, None, 1, 0, None, 1],  # match
        [None, 1, None, None, None, None],  # miss
        [1, None, 1, None, None, None],  # match
        [1, 1, 1, 1, 1, 1],  # miss
        [None, None, None, None, 0, 1],  # match
    ]
    tokens = [
        serialize_hve_token(group, hve.gen_token(master, y)) for y in interests
    ]
    return group, serialize_hve_ciphertext(group, ct), tokens


EXPECTED_MATCH_INDICES = [0, 2, 4, 6]


def test_serial_match_results(fixture_data):
    group, ct_bytes, tokens = fixture_data
    with MatchPool(group, workers=0) as pool:
        assert not pool.parallel
        results = pool.match(ct_bytes, tokens)
    assert len(results) == len(tokens)
    assert [i for i, r in enumerate(results) if r is not None] == EXPECTED_MATCH_INDICES
    assert all(r == b"pool-guid-000001" for r in results if r is not None)


def test_empty_token_list(fixture_data):
    group, ct_bytes, _ = fixture_data
    with MatchPool(group, workers=0) as pool:
        assert pool.match(ct_bytes, []) == []


@parallel_test
def test_parallel_identical_and_identically_ordered(fixture_data):
    group, ct_bytes, tokens = fixture_data
    with MatchPool(group, workers=0) as serial:
        expected = serial.match(ct_bytes, tokens)
    for workers in (2, 3):
        with MatchPool(group, workers=workers) as pool:
            assert pool.parallel
            assert pool.match(ct_bytes, tokens) == expected


@parallel_test
def test_parallel_chunk_size_one(fixture_data):
    group, ct_bytes, tokens = fixture_data
    with MatchPool(group, workers=2, chunk_size=1) as pool:
        results = pool.match(ct_bytes, tokens)
    assert [
        i for i, r in enumerate(results) if r is not None
    ] == EXPECTED_MATCH_INDICES


@parallel_test
def test_pool_reuse_across_publications(fixture_data):
    group, ct_bytes, tokens = fixture_data
    with MatchPool(group, workers=2) as pool:
        first = pool.match(ct_bytes, tokens)
        second = pool.match(ct_bytes, tokens)  # warm worker caches
    assert first == second


def test_match_indices(fixture_data):
    group, ct_bytes, tokens = fixture_data
    with MatchPool(group, workers=0) as pool:
        assert pool.match_indices(ct_bytes, tokens) == EXPECTED_MATCH_INDICES


def test_resolve_workers_env(monkeypatch):
    monkeypatch.delenv("P3S_MATCH_WORKERS", raising=False)
    assert resolve_workers(None) == 0
    assert resolve_workers(4) == 4
    assert resolve_workers(-2) == 0
    monkeypatch.setenv("P3S_MATCH_WORKERS", "3")
    assert resolve_workers(None) == 3
    monkeypatch.setenv("P3S_MATCH_WORKERS", "garbage")
    assert resolve_workers(None) == 0


def test_metrics_recorded(fixture_data):
    group, ct_bytes, tokens = fixture_data
    obs = Observability()
    with obs.installed():
        with MatchPool(group, workers=0) as pool:
            pool.match(ct_bytes, tokens)
    metrics = obs.metrics
    assert metrics.counter_total("op.par.match_batch") == 1
    assert metrics.counter_total("op.par.match") == len(tokens)
    assert metrics.histogram("par.match_wall_s") is not None
