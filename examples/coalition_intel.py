#!/usr/bin/env python3
"""Coalition intelligence sharing — the paper's military scenario (§1).

"Intelligence analysts in a coalition environment may be interested in
receiving updates on information that they have agreed to share, but the
knowledge that country A is interested in topic B may compromise country
A's strategy."

Demonstrates three P3S capabilities on a coalition feed:

1. interest privacy across coalition partners,
2. releasability policies via CP-ABE (REL USA/GBR vs coalition-wide),
3. publisher-intent deletion: a time-sensitive item expires at the RS
   and late fetches fail (§4.3 Deletion).

Run:  python examples/coalition_intel.py
"""

from repro.core import P3SConfig, P3SSystem
from repro.pbe import ANY, AttributeSpec, Interest, MetadataSchema


def main() -> None:
    schema = MetadataSchema(
        [
            AttributeSpec("region", ("north", "south", "east", "west")),
            AttributeSpec("domain", ("sigint", "humint", "imagery", "cyber")),
        ]
    )
    # strict deletion: T_G = 0 ("strict interpretation of deleting based
    # on publisher's intent"), GC sweeps every 0.2 s
    system = P3SSystem(P3SConfig(schema=schema, t_g=0.0, rs_gc_interval_s=0.2))

    analysts = {
        "usa-analyst": ({"country:usa"}, Interest({"region": "east", "domain": "sigint"})),
        "gbr-analyst": ({"country:gbr"}, Interest({"region": "east", "domain": ANY})),
        "fra-analyst": ({"country:fra"}, Interest({"domain": "cyber"})),
    }
    for name, (attributes, interest) in analysts.items():
        subscriber = system.add_subscriber(name, attributes=attributes)
        system.subscribe(subscriber, interest)
    system.run()

    fusion_cell = system.add_publisher("fusion-cell")
    system.run()

    # Item 1: REL USA/GBR only — France's cyber analyst must not read it
    # even if the interest matched.
    rel_two_eyes = fusion_cell.publish(
        {"region": "east", "domain": "sigint"},
        b"INTERCEPT: eastern comms net re-keyed",
        policy="country:usa or country:gbr",
        ttl_s=3600.0,
    )
    # Item 2: coalition-wide cyber alert.
    coalition_wide = fusion_cell.publish(
        {"region": "west", "domain": "cyber"},
        b"ALERT: wiper campaign against logistics",
        policy="country:usa or country:gbr or country:fra",
        ttl_s=3600.0,
    )
    system.run()

    print("=== Deliveries ===")
    for name in analysts:
        payloads = [d.payload.decode() for d in system.subscribers[name].stats.deliveries]
        print(f"{name:12s} → {payloads}")
    assert len(system.deliveries_for(rel_two_eyes)) == 2  # usa + gbr
    assert len(system.deliveries_for(coalition_wide)) == 1  # fra

    print("\n=== Interest privacy across partners ===")
    print("PBE-TS saw predicates (unlinkable to countries):")
    for _, predicate in system.pbe_ts.observed_predicates:
        print(f"   {predicate}")
    assert set(system.pbe_ts.observed_sources) == {"anon"}
    print("No coalition partner can tell that USA watches eastern SIGINT.")

    # === Deletion based on publisher intent ===
    print("\n=== Time-sensitive item with TTL = 2 s ===")
    flash = fusion_cell.publish(
        {"region": "east", "domain": "imagery"},
        b"FLASH: convoy at grid 31U",
        policy="country:usa or country:gbr",
        ttl_s=2.0,
    )
    system.run()
    print(f"t={system.now:6.2f}s  RS holds flash item: {system.rs.holds(flash.guid)}")
    system.run(until=system.now + 5.0)
    print(f"t={system.now:6.2f}s  RS holds flash item: {system.rs.holds(flash.guid)} "
          f"(garbage-collected {system.rs.expired_count} item(s))")
    assert not system.rs.holds(flash.guid)

    # A late subscriber whose interest would have matched cannot fetch it.
    late = system.add_subscriber("late-analyst", attributes={"country:usa"})
    system.subscribe(late, Interest({"domain": "imagery"}))
    system.run()
    print("late-analyst subscribed after expiry → "
          f"deliveries: {len(late.stats.deliveries)} (item is gone for good)")


if __name__ == "__main__":
    main()
