#!/usr/bin/env python3
"""Private multiparty chat over P3S — a §8 "innovative use".

"We are also exploring innovative uses of the basic privacy-preserving
pub-sub middleware such as private multiparty chat..."

Each chat room is a value of the ``room`` metadata attribute; membership
is a CP-ABE attribute.  The infrastructure relays every message but:

* the DS/RS cannot read messages or room names (PBE + CP-ABE),
* non-members who somehow learned a GUID still cannot decrypt (CP-ABE),
* nobody — including the token server — can tell who is in which room.

This example also demonstrates the *embedded token source* configuration
(paper §8): chat clients mint their PBE tokens locally, so even the
plaintext room subscription never leaves the client.

Run:  python examples/private_chat.py
"""

from repro.core import P3SConfig, P3SSystem
from repro.pbe import AttributeSpec, Interest, MetadataSchema


def main() -> None:
    schema = MetadataSchema(
        [
            AttributeSpec("room", ("deal-team", "war-room", "watercooler", "ops")),
            AttributeSpec("kind", ("chat", "presence")),
        ]
    )
    system = P3SSystem(P3SConfig(schema=schema))

    # Chat members: room membership is both an interest (PBE) and an
    # access attribute (CP-ABE).  Tokens are minted locally (§8).
    members = {
        "ann": "deal-team",
        "raj": "deal-team",
        "eve": "watercooler",  # eve is NOT on the deal team
    }
    for user, room in members.items():
        subscriber = system.add_subscriber(
            user, attributes={f"member:{room}"}, embedded_token_source=True
        )
        system.subscribe(subscriber, Interest({"room": room, "kind": "chat"}))
    system.run()

    # Everyone also publishes through their own publisher endpoint.
    senders = {user: system.add_publisher(f"{user}-out") for user in members}
    system.run()

    def say(user: str, room: str, text: str):
        return senders[user].publish(
            {"room": room, "kind": "chat"},
            f"{user}: {text}".encode(),
            policy=f"member:{room}",
            ttl_s=600.0,
        )

    say("ann", "deal-team", "term sheet v3 is up")
    say("raj", "deal-team", "redlines by tonight")
    say("eve", "watercooler", "coffee machine is fixed!")
    system.run()

    print("=== Chat transcripts ===")
    for user in members:
        lines = [d.payload.decode() for d in system.subscribers[user].stats.deliveries]
        print(f"{user:4s} ({members[user]:11s}) sees: {lines}")
    # eve saw every encrypted frame but never the deal-team messages
    eve = system.subscribers["eve"]
    assert all(b"term sheet" not in d.payload for d in eve.stats.deliveries)
    assert eve.stats.metadata_seen == 3

    print("\n=== What the infrastructure knows ===")
    print(f"PBE-TS predicates observed: {system.pbe_ts.observed_predicates} "
          "(embedded token sources → nothing)")
    assert system.pbe_ts.observed_predicates == []
    print(f"DS relayed {sum(system.ds.publications_by_publisher.values())} messages "
          "without seeing rooms or text")
    print(f"RS stores {system.rs.item_count} sealed messages it cannot read")


if __name__ == "__main__":
    main()
