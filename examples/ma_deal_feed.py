#!/usr/bin/env python3
"""M&A deal feed — the paper's commercial motivating scenario (§1).

"Parties pursuing a merger and acquisition (M&A) deal may be interested
in receiving updates on various topics, but the knowledge that party X is
interested in topic Y may tip the hand of X. ... the broker or other
parties who are not interested in 'Lehman Brothers' should not receive
updated information about Lehman Brothers."

This example runs a deal-news feed with three competing investment firms
subscribed to different target companies, then *audits every component*
to show that no party — broker, repository, token server, eavesdropper,
or rival firm — learned who is interested in what.

Run:  python examples/ma_deal_feed.py
"""

from repro.core import P3SConfig, P3SSystem
from repro.pbe import ANY, AttributeSpec, Interest, MetadataSchema

COMPANIES = ("lehman", "acme", "globex", "initech")


def main() -> None:
    schema = MetadataSchema(
        [
            AttributeSpec("company", COMPANIES),
            AttributeSpec("event", ("rumor", "filing", "board-vote", "close")),
        ]
    )
    system = P3SSystem(P3SConfig(schema=schema))

    # Three rival firms; each quietly watches a different target.
    # All are accredited deal participants (CP-ABE attribute "accredited").
    watchlist = {"firm-alpha": "lehman", "firm-beta": "acme", "firm-gamma": "lehman"}
    for firm, target in watchlist.items():
        subscriber = system.add_subscriber(firm, attributes={"accredited"})
        system.subscribe(subscriber, Interest({"company": target, "event": ANY}))
    system.run()

    # A newswire publishes deal events; "need to know" = accredited only.
    newswire = system.add_publisher("newswire")
    system.run()
    events = [
        ({"company": "lehman", "event": "rumor"}, b"LEH: acquirer circling at $12/share"),
        ({"company": "acme", "event": "filing"}, b"ACME: S-4 filed, stock-for-stock"),
        ({"company": "globex", "event": "close"}, b"GBX: deal closed at $4.1B"),
        ({"company": "lehman", "event": "filing"}, b"LEH: 13-D shows 8% stake"),
    ]
    records = [
        newswire.publish(metadata, payload, policy="accredited", ttl_s=3600.0)
        for metadata, payload in events
    ]
    system.run()

    print("=== Deliveries (need-to-know respected) ===")
    for firm in watchlist:
        subscriber = system.subscribers[firm]
        headlines = [d.payload.decode().split(":")[0] for d in subscriber.stats.deliveries]
        print(f"{firm:12s} watching {watchlist[firm]:8s} → received {headlines}")
    assert [d.payload for d in system.subscribers["firm-beta"].stats.deliveries] == [
        b"ACME: S-4 filed, stock-for-stock"
    ]

    print("\n=== Privacy audit ===")
    # The broker (DS) fan-outs ciphertext to everyone — it cannot tell who
    # cares about Lehman; it only counts frames and sizes.
    print(f"DS observed: {dict(system.ds.publications_by_publisher)} publications, "
          f"{len(system.ds.observed_sizes)} ciphertext frames (sizes only)")
    # The token server saw three predicates — but from 'anon', unlinkable
    # to firms.
    print(f"PBE-TS observed predicates: {[p for _, p in system.pbe_ts.observed_predicates]}")
    print(f"PBE-TS observed requesters: {sorted(set(system.pbe_ts.observed_sources))}")
    assert set(system.pbe_ts.observed_sources) == {"anon"}
    # The repository served payloads to anonymous requesters; the Globex
    # item was never requested (nobody watched Globex) — and the RS can
    # see that, but not what the item was about.
    lehman_fetches = sum(system.rs.request_count(r.guid) for r in (records[0], records[3]))
    print(f"RS: lehman items fetched {lehman_fetches}× (by whom: unknown), "
          f"globex item fetched {system.rs.request_count(records[2].guid)}×")
    # Rival firms received every encrypted broadcast but matched only
    # their own targets — and learned nothing from the misses.
    beta = system.subscribers["firm-beta"]
    print(f"firm-beta saw {beta.stats.metadata_seen} encrypted broadcasts, "
          f"matched {beta.stats.matches}, learned nothing from the other "
          f"{beta.stats.non_matches}")


if __name__ == "__main__":
    main()
