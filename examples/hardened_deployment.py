#!/usr/bin/env python3
"""A hardened P3S deployment — the paper's mitigations, switched on.

§6.1 and §8 identify weaknesses of the basic design and sketch fixes;
this example runs a deployment with all of them enabled and demonstrates
each one working:

1. **Time-stamped tokens** (§6.1 mitigation): the metadata space carries a
   rotating ``epoch`` attribute; tokens pin to the epoch of issue and
   expire when it rotates — bounding both token accumulation and the
   damage of a leaked token.
2. **Subscription control** (§8 shortcoming): the PBE-TS enforces a
   policy — predicates must constrain at least one attribute beyond the
   epoch, and each certificate gets a token quota.
3. **Crash recovery** (§6.1): mid-run the RS crashes and restarts; the
   encrypted store survives and service resumes.

Run:  python examples/hardened_deployment.py
"""

from repro.core import P3SConfig, P3SSystem, SubscriptionPolicy
from repro.errors import TokenRequestError
from repro.pbe import AttributeSpec, Interest, MetadataSchema
from repro.privacy import epoch_of, with_epoch_attribute

EPOCH_LENGTH_S = 30.0
NUM_EPOCHS = 4


def main() -> None:
    base_schema = MetadataSchema(
        [AttributeSpec("topic", ("alerts", "reports", "telemetry", "audit"))]
    )
    schema = with_epoch_attribute(base_schema, num_epochs=NUM_EPOCHS)
    policy = SubscriptionPolicy(min_constrained_attributes=2, max_tokens_per_subject=4)
    system = P3SSystem(P3SConfig(schema=schema, subscription_policy=policy))

    def current_epoch() -> str:
        return epoch_of(system.now, EPOCH_LENGTH_S, NUM_EPOCHS)

    # --- 1+2: epoch-pinned, policy-checked subscription -------------------
    alice = system.add_subscriber("alice", attributes={"ops"})
    system.subscribe(alice, Interest({"topic": "alerts", "epoch": current_epoch()}))
    system.run()
    print(f"alice holds {len(alice.tokens)} token pinned to epoch {current_epoch()!r}")

    # an overly broad predicate (epoch only) is refused by the PBE-TS
    try:
        system.subscribe(alice, Interest({"epoch": current_epoch()}))
        system.run()
        raise SystemExit("policy should have refused the broad predicate")
    except TokenRequestError as exc:
        print(f"PBE-TS refused broad predicate: {exc}")

    publisher = system.add_publisher("sensors")
    system.run()

    record = publisher.publish(
        {"topic": "alerts", "epoch": current_epoch()},
        b"ALERT: epoch-stamped event",
        policy="ops",
    )
    system.run()
    print(f"in-epoch publication delivered to {len(system.deliveries_for(record))} subscriber(s)")

    # --- rotate the epoch: the old token dies ------------------------------
    system.run(until=EPOCH_LENGTH_S + 1.0)
    stale = publisher.publish(
        {"topic": "alerts", "epoch": current_epoch()},  # now e1
        b"ALERT: next-epoch event",
        policy="ops",
    )
    system.run()
    print(
        f"after rotation to {current_epoch()!r}: old token matched "
        f"{len(system.deliveries_for(stale))} (revoked); alice re-subscribes"
    )
    assert system.deliveries_for(stale) == []
    system.subscribe(alice, Interest({"topic": "alerts", "epoch": current_epoch()}))
    system.run()

    # --- 3: RS crash + recovery -------------------------------------------
    system.rs.crash()
    print("RS crashed ...")
    system.rs.restart()
    print(f"RS restarted; disk store intact ({system.rs.item_count} items)")
    fresh = publisher.publish(
        {"topic": "alerts", "epoch": current_epoch()},
        b"ALERT: service resumed",
        policy="ops",
    )
    system.run()
    assert [d.payload for d in system.deliveries_for(fresh)] == [b"ALERT: service resumed"]
    print("post-recovery publication delivered — hardened deployment works end to end")


if __name__ == "__main__":
    main()
