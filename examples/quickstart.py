#!/usr/bin/env python3
"""Quickstart: one publisher, two subscribers, one private publication.

Demonstrates the whole P3S pipeline in ~40 lines of user code:
registration with the ARA, token-based subscription, PBE-matched
dissemination, anonymous retrieval, and CP-ABE access control.

Run:  python examples/quickstart.py
"""

from repro.core import P3SConfig, P3SSystem
from repro.obs import Observability
from repro.pbe import ANY, AttributeSpec, Interest, MetadataSchema


def main() -> None:
    # 1. The metadata space — fixed and known to every participant.
    schema = MetadataSchema(
        [
            AttributeSpec("topic", ("sports", "finance", "weather", "politics")),
            AttributeSpec("priority", ("routine", "urgent")),
        ]
    )
    obs = Observability()  # optional: trace every hop + count crypto ops
    system = P3SSystem(P3SConfig(schema=schema, obs=obs))

    # 2. Subscribers register with the ARA (getting CP-ABE keys for their
    #    attributes) and obtain PBE tokens for their interests.
    alice = system.add_subscriber("alice", attributes={"org:acme"})
    bob = system.add_subscriber("bob", attributes={"org:acme"})
    system.subscribe(alice, Interest({"topic": "finance", "priority": ANY}))
    system.subscribe(bob, Interest({"topic": "weather"}))
    system.run()
    print(f"alice holds {len(alice.tokens)} PBE token(s); bob holds {len(bob.tokens)}")

    # 3. A publisher publishes one item: metadata is PBE-encrypted, the
    #    payload is CP-ABE-encrypted under an access policy.
    carol = system.add_publisher("carol")
    system.run()
    record = carol.publish(
        metadata={"topic": "finance", "priority": "urgent"},
        payload=b"ACME Q3 earnings leak imminent",
        policy="org:acme",
        ttl_s=3600.0,
    )
    system.run()

    # 4. Only alice's interest matched; only she retrieved and decrypted.
    for name, subscriber in system.subscribers.items():
        for delivery in subscriber.stats.deliveries:
            print(f"{name} received: {delivery.payload.decode()} "
                  f"(end-to-end {delivery.delivered_at - record.submitted_at:.3f}s simulated)")
        if not subscriber.stats.deliveries:
            print(f"{name} received nothing "
                  f"(saw {subscriber.stats.metadata_seen} encrypted broadcast(s))")

    # 5. What the infrastructure learned:
    print(f"DS saw {system.ds.publications_by_publisher['carol']} publication(s) from carol "
          f"— sizes only, no metadata, no content")
    print(f"PBE-TS saw predicates {[p for _, p in system.pbe_ts.observed_predicates]} "
          f"from sources {sorted(set(system.pbe_ts.observed_sources))} (anonymized)")
    print(f"RS stored {system.rs.stored_count} encrypted payload(s), "
          f"served {system.rs.request_count(record.guid)} anonymous request(s)")

    # 6. The observability subsystem recorded the whole causal story:
    #    one span tree per root operation, plus crypto-op counters.
    print()
    print(obs.summary())
    obs.uninstall()


if __name__ == "__main__":
    main()
