"""The precomputation layer: one façade over both crypto caches.

Two independent precomputations make the P3S hot paths fast; the
mechanics live next to the arithmetic they accelerate, and this module is
the policy/observation surface over both:

* **Fixed-base comb tables** (:mod:`repro.crypto.curve`) — the group
  generator ``g`` and the HVE/CP-ABE public-key bases are multiplied by
  fresh scalars on every setup, encrypt and token-gen call.  Tables are
  keyed by base, auto-promoted after a base's second large scalar
  multiplication, and LRU-bounded.  ~6x per scalar multiplication at TOY
  parameters.

* **Miller-loop line precomputation** (:mod:`repro.crypto.pairing`) — a
  pairing argument reused across many pairings (an HVE subscription token
  matched against a stream of ciphertexts) pays its line-function setup
  — all the per-step modular inversions — once.  ~10x per token×
  ciphertext evaluation at TOY parameters; see
  ``benchmarks/bench_match_fanout.py``.

Both caches are process-global (workers of a :class:`repro.par.MatchPool`
each warm their own copy) and both paths are bit-identical to the naive
ones — enforced by ``tests/par/test_equivalence.py`` and the golden
vectors in ``tests/crypto/vectors/``.

Environment:

* ``P3S_PRECOMPUTE=0`` disables the fixed-base fast path at import time
  (A/B benchmarking; :func:`set_enabled` flips it at runtime).
"""

from __future__ import annotations

from .curve import (
    FixedBaseTable,
    Point,
    clear_fixed_base_cache,
    fixed_base_cache_info,
    fixed_base_table,
    set_fixed_base_enabled,
)
from .pairing import MillerPrecomputed, precompute_miller

__all__ = [
    "FixedBaseTable",
    "MillerPrecomputed",
    "fixed_base_table",
    "precompute_miller",
    "warm_fixed_base",
    "warm_generator",
    "set_enabled",
    "clear_caches",
    "cache_info",
]


def warm_fixed_base(points) -> int:
    """Eagerly build comb tables for every finite point in ``points``.

    Returns the number of tables now live for them.  Idempotent — already
    warmed bases are a dictionary hit.
    """
    count = 0
    for point in points:
        if isinstance(point, Point) and not point.is_infinity:
            fixed_base_table(point)
            count += 1
    return count


def warm_generator(group) -> None:
    """Warm the fixed-base table for ``group``'s generator.

    Token-gen-heavy services (the PBE-TS) call this at construction so
    even their first request takes the fast path.
    """
    fixed_base_table(group.generator)


def set_enabled(enabled: bool) -> None:
    """Toggle the fixed-base fast path process-wide."""
    set_fixed_base_enabled(enabled)


def clear_caches() -> None:
    """Drop every precomputation cache (test isolation)."""
    clear_fixed_base_cache()


def cache_info() -> dict[str, int]:
    """Fixed-base cache statistics (tables, builds, hits, tracked bases)."""
    return fixed_base_cache_info()
