"""Hashing utilities: domain-separated hashes, HKDF-style key derivation.

All hashing in the reproduction goes through these helpers so that every
use is domain-separated (no cross-protocol collisions) and so sizes/cost
accounting stays in one place.
"""

from __future__ import annotations

import hashlib
import hmac

__all__ = ["hash_bytes", "hash_to_int", "kdf", "constant_time_equal"]


def hash_bytes(domain: str, *parts: bytes) -> bytes:
    """SHA-256 over length-prefixed parts under a domain-separation label."""
    h = hashlib.sha256()
    h.update(b"repro:" + domain.encode("utf-8") + b"\x00")
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()


def hash_to_int(domain: str, modulus: int, *parts: bytes) -> int:
    """Hash to an integer in ``[0, modulus)`` with negligible bias.

    Expands with counter-mode SHA-256 to at least 128 bits beyond the
    modulus size before reducing.
    """
    need_bits = modulus.bit_length() + 128
    blocks = (need_bits + 255) // 256
    data = b"".join(
        hash_bytes(domain, counter.to_bytes(4, "big"), *parts) for counter in range(blocks)
    )
    return int.from_bytes(data, "big") % modulus


def kdf(secret: bytes, label: str, length: int = 32, salt: bytes = b"") -> bytes:
    """HKDF-style extract-and-expand keyed on HMAC-SHA256."""
    prk = hmac.new(salt or b"\x00" * 32, secret, hashlib.sha256).digest()
    output = b""
    block = b""
    counter = 1
    info = b"repro:kdf:" + label.encode("utf-8")
    while len(output) < length:
        block = hmac.new(prk, block + info + bytes([counter]), hashlib.sha256).digest()
        output += block
        counter += 1
    return output[:length]


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Constant-time byte-string comparison (MAC verification)."""
    return hmac.compare_digest(a, b)
