"""Finite-field arithmetic for the pairing substrate.

Two fields are needed by the Type-A (supersingular, embedding degree 2)
pairing used throughout this reproduction:

* the prime field ``F_q`` — represented directly as Python ints reduced
  modulo ``q`` (Python's native bignums are the fastest arbitrary-precision
  integers available to us), and
* the quadratic extension ``F_q² = F_q[i] / (i² + 1)`` — valid because the
  Type-A prime satisfies ``q ≡ 3 (mod 4)``, so ``−1`` is a non-residue.

:class:`Fq2` is a small immutable value class.  The pairing hot loop uses
its methods directly; they are written to minimise the number of modular
multiplications (Karatsuba-style 3-mult product, 2-mult squaring).
"""

from __future__ import annotations

from ..errors import ParameterError
from ..obs.profile import record_op

__all__ = ["Fq2", "fq_inv", "fq_sqrt", "fq_is_square"]


def fq_inv(a: int, q: int) -> int:
    """Return the inverse of ``a`` modulo the prime ``q``.

    Raises :class:`ZeroDivisionError` when ``a ≡ 0 (mod q)``, matching the
    behaviour of :func:`pow` with exponent ``-1``.
    """
    return pow(a, -1, q)


def fq_is_square(a: int, q: int) -> bool:
    """Euler-criterion quadratic-residue test in ``F_q`` (0 counts as square)."""
    a %= q
    if a == 0:
        return True
    return pow(a, (q - 1) // 2, q) == 1


def fq_sqrt(a: int, q: int) -> int:
    """Return a square root of ``a`` in ``F_q`` for ``q ≡ 3 (mod 4)``.

    The caller is expected to have verified that ``a`` is a quadratic
    residue (see :func:`fq_is_square`); a :class:`ParameterError` is raised
    otherwise so silent corruption cannot propagate into point decoding.
    """
    if q % 4 != 3:
        raise ParameterError(f"fq_sqrt requires q ≡ 3 (mod 4), got q % 4 == {q % 4}")
    root = pow(a, (q + 1) // 4, q)
    if (root * root) % q != a % q:
        raise ParameterError("fq_sqrt called on a non-residue")
    return root


class Fq2:
    """An element ``a + b·i`` of ``F_q² = F_q[i]/(i²+1)``.

    Instances are immutable; arithmetic returns new objects.  ``q`` is
    carried on the element — profiling showed the attribute lookup is noise
    next to the bignum multiplies, and it keeps the API self-contained.
    """

    __slots__ = ("a", "b", "q")

    def __init__(self, a: int, b: int, q: int):
        self.a = a % q
        self.b = b % q
        self.q = q

    # -- constructors ------------------------------------------------------

    @classmethod
    def one(cls, q: int) -> "Fq2":
        return cls(1, 0, q)

    @classmethod
    def zero(cls, q: int) -> "Fq2":
        return cls(0, 0, q)

    # -- predicates --------------------------------------------------------

    def is_one(self) -> bool:
        return self.a == 1 and self.b == 0

    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fq2):
            return NotImplemented
        return self.a == other.a and self.b == other.b and self.q == other.q

    def __hash__(self) -> int:
        return hash((self.a, self.b, self.q))

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Fq2") -> "Fq2":
        q = self.q
        return Fq2(self.a + other.a, self.b + other.b, q)

    def __sub__(self, other: "Fq2") -> "Fq2":
        q = self.q
        return Fq2(self.a - other.a, self.b - other.b, q)

    def __neg__(self) -> "Fq2":
        return Fq2(-self.a, -self.b, self.q)

    def __mul__(self, other: "Fq2") -> "Fq2":
        # (a + bi)(c + di) = (ac − bd) + ((a+b)(c+d) − ac − bd)·i
        q = self.q
        ac = self.a * other.a
        bd = self.b * other.b
        cross = (self.a + self.b) * (other.a + other.b) - ac - bd
        return Fq2(ac - bd, cross, q)

    def square(self) -> "Fq2":
        # (a + bi)² = (a+b)(a−b) + 2ab·i  — two multiplications.
        q = self.q
        a, b = self.a, self.b
        return Fq2((a + b) * (a - b), 2 * a * b, q)

    def conjugate(self) -> "Fq2":
        return Fq2(self.a, -self.b, self.q)

    def inverse(self) -> "Fq2":
        # 1/(a + bi) = (a − bi) / (a² + b²)
        q = self.q
        norm = (self.a * self.a + self.b * self.b) % q
        if norm == 0:
            raise ZeroDivisionError("inverse of zero in F_q2")
        inv_norm = pow(norm, -1, q)
        return Fq2(self.a * inv_norm, -self.b * inv_norm, q)

    def __pow__(self, exponent: int) -> "Fq2":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        record_op("gt_exp")
        result = Fq2.one(self.q)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    # -- misc ----------------------------------------------------------------

    def to_bytes(self, byte_len: int) -> bytes:
        """Fixed-width big-endian encoding ``a || b`` (each ``byte_len`` bytes)."""
        return self.a.to_bytes(byte_len, "big") + self.b.to_bytes(byte_len, "big")

    @classmethod
    def from_bytes(cls, data: bytes, q: int) -> "Fq2":
        half = len(data) // 2
        return cls(int.from_bytes(data[:half], "big"), int.from_bytes(data[half:], "big"), q)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Fq2({self.a:#x}, {self.b:#x})"
