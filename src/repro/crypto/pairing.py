"""Modified Tate pairing on Type-A curves (Miller's algorithm).

For the supersingular curve ``E : y² = x³ + x / F_q`` with ``q ≡ 3 (mod 4)``
the distortion map ``ψ(x, y) = (−x, i·y)`` sends ``E(F_q)`` into
``E(F_q²) \\ E(F_q)``, giving the *symmetric* ("Type-1") pairing

    ê(P, Q) = f_{r,P}(ψ(Q)) ^ ((q² − 1) / r),   ê : G1 × G1 → GT ⊂ F_q².

Two standard optimisations for even embedding degree are used:

* **Denominator elimination** — vertical-line values lie in the subfield
  ``F_q`` and are annihilated by the final exponentiation (which contains
  the factor ``q − 1``), so Miller's loop skips them entirely.
* **Cheap line evaluation** — a line through points of ``E(F_q)`` with
  slope ``λ``, evaluated at ``ψ(Q) = (−x_Q, i·y_Q)``, equals
  ``(λ·(x_Q + x_T) − y_T) + i·y_Q`` — its real part needs only ``F_q``
  arithmetic and its imaginary part is constant across the whole loop.

:func:`multi_pairing` computes ``Π ê(P_j, Q_j)`` sharing the accumulator
squaring and the final exponentiation across all pairs — the dominant cost
of HVE matching, where products of 2·(non-wildcard positions) pairings are
evaluated (see DESIGN.md §5 for the ablation bench).
"""

from __future__ import annotations

from ..errors import ParameterError
from ..obs.profile import record_op
from .curve import Point
from .field import Fq2
from .params import TypeAParams

__all__ = [
    "tate_pairing",
    "multi_pairing",
    "final_exponentiation",
    "miller_loop",
    "MillerPrecomputed",
    "precompute_miller",
    "miller_eval",
    "tate_pairing_precomputed",
    "multi_pairing_precomputed",
]


def _line_real(xt: int, yt: int, lam: int, xq: int, q: int) -> int:
    """Real part of the line through T (slope lam) evaluated at ψ(Q)."""
    return (lam * (xq + xt) - yt) % q


def miller_loop(p: Point, q_point: Point) -> Fq2:
    """Evaluate ``f_{r,P}(ψ(Q))`` without the final exponentiation.

    Both inputs must be finite points of ``E(F_q)``.  The result is only
    meaningful after :func:`final_exponentiation`.
    """
    params = p.params
    if p.is_infinity or q_point.is_infinity:
        raise ParameterError("miller_loop requires finite points")
    q = params.q
    r = params.r
    xq, yq = q_point.x, q_point.y

    f_a, f_b = 1, 0  # accumulator in F_q2, kept as raw ints for speed
    xt, yt = p.x, p.y  # running point T
    t_inf = False  # T hits infinity only at the final add (T = −P), if ever

    for bit in bin(r)[3:]:  # MSB-first, skipping the leading 1
        # f <- f^2 (complex squaring: (a+b)(a-b), 2ab); the tangent at
        # infinity contributes nothing, so skip the line once T = O.
        sq_a = (f_a + f_b) * (f_a - f_b) % q
        sq_b = 2 * f_a * f_b % q
        f_a, f_b = sq_a, sq_b
        if not t_inf:
            # f <- f * l_{T,T}(ψQ);  T <- 2T
            lam = (3 * xt * xt + 1) * pow(2 * yt, -1, q) % q
            line_a = _line_real(xt, yt, lam, xq, q)
            new_a = (f_a * line_a - f_b * yq) % q
            f_b = (f_a * yq + f_b * line_a) % q
            f_a = new_a
            x3 = (lam * lam - 2 * xt) % q
            yt = (lam * (xt - x3) - yt) % q
            xt = x3
        if bit == "1" and not t_inf:
            # f <- f * l_{T,P}(ψQ);  T <- T + P
            if xt == p.x:
                if (yt + p.y) % q == 0:
                    # T = −P: vertical line, eliminated by the final
                    # exponentiation; T becomes the point at infinity.
                    t_inf = True
                    continue
                lam = (3 * xt * xt + 1) * pow(2 * yt, -1, q) % q
            else:
                lam = (p.y - yt) * pow(p.x - xt, -1, q) % q
            line_a = _line_real(xt, yt, lam, xq, q)
            new_a = (f_a * line_a - f_b * yq) % q
            f_b = (f_a * yq + f_b * line_a) % q
            f_a = new_a
            x3 = (lam * lam - xt - p.x) % q
            yt = (lam * (xt - x3) - yt) % q
            xt = x3

    return Fq2(f_a, f_b, q)


def final_exponentiation(f: Fq2, params: TypeAParams) -> Fq2:
    """Raise the Miller value to ``(q² − 1)/r``.

    Split as ``(q − 1) · (q + 1)/r``; the first factor is the cheap
    Frobenius step ``f̄ / f`` (conjugation is ``f^q`` in ``F_q²``).
    """
    record_op("final_exp")
    easy = f.conjugate() * f.inverse()
    return easy ** ((params.q + 1) // params.r)


def tate_pairing(p: Point, q_point: Point) -> Fq2:
    """The modified Tate pairing ``ê(P, Q)`` for ``P, Q ∈ G1``.

    Returns the identity of GT when either argument is the point at
    infinity (the bilinear extension to the full group).
    """
    params = p.params
    if p.is_infinity or q_point.is_infinity:
        return Fq2.one(params.q)
    record_op("pairing")
    return final_exponentiation(miller_loop(p, q_point), params)


class MillerPrecomputed:
    """Precomputed line functions of ``f_{r,P}`` for a fixed first argument.

    Per Miller-loop bit this stores the ``(λ, x_T, y_T)`` triple of the
    doubling line and, on set bits, of the addition line (``None`` once
    ``T`` reaches infinity).  Every per-step modular *inversion* of the
    plain loop — the dominant cost, ~35 multiplications' worth in CPython
    — is paid once here; evaluating the pairing against any second
    argument then needs only multiplications.

    This is the classic "fixed-argument pairing" optimisation (Scott,
    "Computing the Tate pairing", CT-RSA'05 §5): an HVE subscription token
    reused against N ciphertexts pays its line-function setup once.
    """

    __slots__ = ("params", "steps")

    def __init__(self, params: TypeAParams, steps: list[tuple[tuple[int, int, int] | None, tuple[int, int, int] | None]]):
        self.params = params
        self.steps = steps


def precompute_miller(p: Point) -> MillerPrecomputed:
    """Walk Miller's loop for ``P`` once, recording every line coefficient."""
    params = p.params
    if p.is_infinity:
        raise ParameterError("precompute_miller requires a finite point")
    record_op("pairing.precompute")
    q = params.q
    xt, yt = p.x, p.y
    t_inf = False
    steps: list[tuple[tuple[int, int, int] | None, tuple[int, int, int] | None]] = []
    for bit in bin(params.r)[3:]:
        dbl: tuple[int, int, int] | None = None
        add: tuple[int, int, int] | None = None
        if not t_inf:
            lam = (3 * xt * xt + 1) * pow(2 * yt, -1, q) % q
            dbl = (lam, xt, yt)
            x3 = (lam * lam - 2 * xt) % q
            yt = (lam * (xt - x3) - yt) % q
            xt = x3
        if bit == "1" and not t_inf:
            if xt == p.x and (yt + p.y) % q == 0:
                # T = −P: vertical line, denominator-eliminated; the pair
                # contributes nothing from here on.
                t_inf = True
            else:
                if xt == p.x:
                    lam = (3 * xt * xt + 1) * pow(2 * yt, -1, q) % q
                else:
                    lam = (p.y - yt) * pow(p.x - xt, -1, q) % q
                add = (lam, xt, yt)
                x3 = (lam * lam - xt - p.x) % q
                yt = (lam * (xt - x3) - yt) % q
                xt = x3
        steps.append((dbl, add))
    return MillerPrecomputed(params, steps)


def miller_eval(pre: MillerPrecomputed, q_point: Point) -> Fq2:
    """``f_{r,P}(ψ(Q))`` from precomputed lines — identical to
    :func:`miller_loop` of the original point, with no inversions."""
    if q_point.is_infinity:
        raise ParameterError("miller_eval requires a finite point")
    q = pre.params.q
    xq, yq = q_point.x, q_point.y
    f_a, f_b = 1, 0
    for dbl, add in pre.steps:
        sq_a = (f_a + f_b) * (f_a - f_b) % q
        sq_b = 2 * f_a * f_b % q
        f_a, f_b = sq_a, sq_b
        if dbl is not None:
            lam, xt, yt = dbl
            line_a = (lam * (xq + xt) - yt) % q
            new_a = (f_a * line_a - f_b * yq) % q
            f_b = (f_a * yq + f_b * line_a) % q
            f_a = new_a
        if add is not None:
            lam, xt, yt = add
            line_a = (lam * (xq + xt) - yt) % q
            new_a = (f_a * line_a - f_b * yq) % q
            f_b = (f_a * yq + f_b * line_a) % q
            f_a = new_a
    return Fq2(f_a, f_b, q)


def tate_pairing_precomputed(pre: MillerPrecomputed, q_point: Point) -> Fq2:
    """``ê(P, Q)`` with ``P``'s Miller lines precomputed.

    Bit-identical to ``tate_pairing(P, Q)`` — same Miller value, same
    final exponentiation.
    """
    if q_point.is_infinity:
        return Fq2.one(pre.params.q)
    record_op("pairing")
    return final_exponentiation(miller_eval(pre, q_point), pre.params)


def multi_pairing_precomputed(
    entries: list[tuple[MillerPrecomputed | None, Point]], params: TypeAParams
) -> Fq2:
    """``Π_j ê(P_j, Q_j)`` where every ``P_j`` carries precomputed lines.

    The accumulator squaring and the final exponentiation are shared
    exactly as in :func:`multi_pairing`; a ``None`` precomputation (the
    point at infinity) or an infinite ``Q_j`` contributes the identity,
    mirroring :func:`multi_pairing`'s skip rule.  Because the pairing is
    symmetric (all arguments live in the cyclic group G1), the product
    equals ``multi_pairing`` on the argument-swapped pairs bit for bit.
    """
    q = params.q
    live: list[tuple[list, int, int]] = []  # (steps, xq, yq)
    for pre, q_point in entries:
        if pre is None or q_point.is_infinity:
            continue
        if pre.params.q != q or q_point.params.q != q:
            raise ParameterError("multi_pairing_precomputed arguments use mismatched parameters")
        live.append((pre.steps, q_point.x, q_point.y))
    if not live:
        return Fq2.one(q)
    record_op("pairing", len(live))
    record_op("multi_pairing")
    record_op("multi_pairing.precomputed")

    f_a, f_b = 1, 0
    num_bits = len(bin(params.r)) - 3
    for i in range(num_bits):
        sq_a = (f_a + f_b) * (f_a - f_b) % q
        sq_b = 2 * f_a * f_b % q
        f_a, f_b = sq_a, sq_b
        for steps, xq, yq in live:
            dbl, add = steps[i]
            if dbl is not None:
                lam, xt, yt = dbl
                line_a = (lam * (xq + xt) - yt) % q
                new_a = (f_a * line_a - f_b * yq) % q
                f_b = (f_a * yq + f_b * line_a) % q
                f_a = new_a
            if add is not None:
                lam, xt, yt = add
                line_a = (lam * (xq + xt) - yt) % q
                new_a = (f_a * line_a - f_b * yq) % q
                f_b = (f_a * yq + f_b * line_a) % q
                f_a = new_a

    return final_exponentiation(Fq2(f_a, f_b, q), params)


def multi_pairing(pairs: list[tuple[Point, Point]], params: TypeAParams) -> Fq2:
    """Compute ``Π_j ê(P_j, Q_j)`` with shared squaring and one final exp.

    Identity: ``Π_j f_j² · l_j = (Π_j f_j)² · Π_j l_j``, so a single
    ``F_q²`` accumulator serves every pair; per Miller step we pay one
    squaring plus one line-multiplication per pair, and the expensive
    final exponentiation once in total.
    """
    # [xt, yt, xp, yp, xq, yq, t_inf] per pair; t_inf flags T = O (only
    # reachable at the final add step, where the vertical line is
    # denominator-eliminated).
    live: list[list[int]] = []
    q = params.q
    for p, qp in pairs:
        if p.params.q != q or qp.params.q != q:
            raise ParameterError("multi_pairing arguments use mismatched parameters")
        if p.is_infinity or qp.is_infinity:
            continue  # contributes the identity
        live.append([p.x, p.y, p.x, p.y, qp.x, qp.y, 0])
    if not live:
        return Fq2.one(q)
    record_op("pairing", len(live))
    record_op("multi_pairing")

    f_a, f_b = 1, 0
    for bit in bin(params.r)[3:]:
        sq_a = (f_a + f_b) * (f_a - f_b) % q
        sq_b = 2 * f_a * f_b % q
        f_a, f_b = sq_a, sq_b
        for state in live:
            if state[6]:
                continue
            xt, yt, xp, yp, xq, yq, _ = state
            lam = (3 * xt * xt + 1) * pow(2 * yt, -1, q) % q
            line_a = (lam * (xq + xt) - yt) % q
            new_a = (f_a * line_a - f_b * yq) % q
            f_b = (f_a * yq + f_b * line_a) % q
            f_a = new_a
            x3 = (lam * lam - 2 * xt) % q
            state[1] = (lam * (xt - x3) - yt) % q
            state[0] = x3
        if bit == "1":
            for state in live:
                if state[6]:
                    continue
                xt, yt, xp, yp, xq, yq, _ = state
                if xt == xp:
                    if (yt + yp) % q == 0:
                        state[6] = 1  # T = −P: vertical line, eliminated
                        continue
                    lam = (3 * xt * xt + 1) * pow(2 * yt, -1, q) % q
                else:
                    lam = (yp - yt) * pow(xp - xt, -1, q) % q
                line_a = (lam * (xq + xt) - yt) % q
                new_a = (f_a * line_a - f_b * yq) % q
                f_b = (f_a * yq + f_b * line_a) % q
                f_a = new_a
                x3 = (lam * lam - xt - xp) % q
                state[1] = (lam * (xt - x3) - yt) % q
                state[0] = x3

    return final_exponentiation(Fq2(f_a, f_b, q), params)
