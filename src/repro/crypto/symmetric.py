"""Symmetric authenticated encryption: ChaCha20 + HMAC-SHA256 (EtM).

The paper's prototype rides on JSSE/AES for its symmetric needs (TLS
links, the K_s super-encryption of PBE tokens and retrieved payloads, and
the DEM half of hybrid CP-ABE).  AES is unavailable offline, so this
module provides RFC 7539 ChaCha20 in pure Python plus an
encrypt-then-MAC :class:`SecretBox` with the same interface shape and the
same constant ciphertext expansion (nonce + tag), which is all the
performance models care about.
"""

from __future__ import annotations

import hmac
import hashlib
import secrets
import struct

from ..errors import IntegrityError, ParameterError
from .hashing import kdf

__all__ = ["chacha20_xor", "SecretBox", "NONCE_LEN", "TAG_LEN", "OVERHEAD"]

NONCE_LEN = 12
TAG_LEN = 32
OVERHEAD = NONCE_LEN + TAG_LEN

_MASK = 0xFFFFFFFF


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK
    state[d] ^= state[a]
    state[d] = ((state[d] << 16) | (state[d] >> 16)) & _MASK
    state[c] = (state[c] + state[d]) & _MASK
    state[b] ^= state[c]
    state[b] = ((state[b] << 12) | (state[b] >> 20)) & _MASK
    state[a] = (state[a] + state[b]) & _MASK
    state[d] ^= state[a]
    state[d] = ((state[d] << 8) | (state[d] >> 24)) & _MASK
    state[c] = (state[c] + state[d]) & _MASK
    state[b] ^= state[c]
    state[b] = ((state[b] << 7) | (state[b] >> 25)) & _MASK


def _chacha20_block(key_words: tuple[int, ...], counter: int, nonce_words: tuple[int, ...]) -> bytes:
    state = [
        0x61707865, 0x3320646E, 0x79622D32, 0x6B206574,
        *key_words,
        counter, *nonce_words,
    ]
    working = list(state)
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    return struct.pack("<16I", *((w + s) & _MASK for w, s in zip(working, state)))


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, initial_counter: int = 1) -> bytes:
    """XOR ``data`` with the ChaCha20 keystream (encryption == decryption)."""
    if len(key) != 32:
        raise ParameterError("ChaCha20 key must be 32 bytes")
    if len(nonce) != NONCE_LEN:
        raise ParameterError("ChaCha20 nonce must be 12 bytes")
    key_words = struct.unpack("<8I", key)
    nonce_words = struct.unpack("<3I", nonce)
    out = bytearray(len(data))
    for block_index in range((len(data) + 63) // 64):
        keystream = _chacha20_block(key_words, initial_counter + block_index, nonce_words)
        start = block_index * 64
        chunk = data[start : start + 64]
        out[start : start + len(chunk)] = bytes(x ^ y for x, y in zip(chunk, keystream))
    return bytes(out)


class SecretBox:
    """Authenticated symmetric encryption (encrypt-then-MAC).

    Wire format: ``nonce (12) || ciphertext || tag (32)``.  Independent
    encryption and MAC keys are derived from the box key with the KDF, so
    a single 32-byte secret is safe to use for both purposes.
    """

    def __init__(self, key: bytes):
        if len(key) != 32:
            raise ParameterError("SecretBox key must be 32 bytes")
        self._enc_key = kdf(key, "secretbox-enc")
        self._mac_key = kdf(key, "secretbox-mac")

    @classmethod
    def generate_key(cls) -> bytes:
        return secrets.token_bytes(32)

    def seal(self, plaintext: bytes, associated_data: bytes = b"") -> bytes:
        nonce = secrets.token_bytes(NONCE_LEN)
        ciphertext = chacha20_xor(self._enc_key, nonce, plaintext)
        tag = self._tag(nonce, ciphertext, associated_data)
        return nonce + ciphertext + tag

    def open(self, boxed: bytes, associated_data: bytes = b"") -> bytes:
        if len(boxed) < OVERHEAD:
            raise IntegrityError("ciphertext too short")
        nonce = boxed[:NONCE_LEN]
        ciphertext = boxed[NONCE_LEN:-TAG_LEN]
        tag = boxed[-TAG_LEN:]
        expected = self._tag(nonce, ciphertext, associated_data)
        if not hmac.compare_digest(tag, expected):
            raise IntegrityError("MAC verification failed")
        return chacha20_xor(self._enc_key, nonce, ciphertext)

    def _tag(self, nonce: bytes, ciphertext: bytes, associated_data: bytes) -> bytes:
        mac = hmac.new(self._mac_key, digestmod=hashlib.sha256)
        mac.update(len(associated_data).to_bytes(8, "big"))
        mac.update(associated_data)
        mac.update(nonce)
        mac.update(ciphertext)
        return mac.digest()
