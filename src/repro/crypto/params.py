"""Type-A pairing parameters: generation and precomputed sets.

A Type-A curve (the family used by PBC/jPBC, and therefore by both crypto
libraries the P3S paper builds on) is the supersingular curve

    E : y² = x³ + x   over F_q,   q ≡ 3 (mod 4),

which has exactly ``q + 1`` points over ``F_q`` and embedding degree 2.
Parameters are a prime group order ``r`` and a prime ``q = h·r − 1`` for a
cofactor ``h ≡ 0 (mod 4)`` (which forces ``q ≡ 3 (mod 4)``).  ``G1`` is the
order-``r`` subgroup of ``E(F_q)`` and ``GT`` the order-``r`` subgroup of
``F_q²``.

Three precomputed sets are shipped (see DESIGN.md §6):

* ``TOY``    — fast unit tests and examples,
* ``TEST``   — integration tests,
* ``PAPER``  — 160-bit ``r`` / 512-bit ``q``, the strength class the paper's
  prototype used (its CP-ABE security parameter is k = 384..512 bits).

:func:`generate_type_a_params` reproduces how the precomputed sets were
found, so nothing here is magic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ParameterError

__all__ = [
    "TypeAParams",
    "generate_type_a_params",
    "is_probable_prime",
    "TOY",
    "TEST",
    "PAPER",
    "PARAM_SETS",
]

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller-Rabin primality test with ``rounds`` random bases."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    rng = random.Random(0xC0FFEE ^ n)  # deterministic bases: reproducible checks
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class TypeAParams:
    """Parameters of one Type-A pairing group.

    Attributes:
        name: human-readable label (``"TOY"``, ``"PAPER"``, ...).
        r: prime order of G1 and GT.
        h: cofactor, ``q = h·r − 1``; multiplying a random curve point by
           ``h`` lands in G1.
        q: field prime, ``q ≡ 3 (mod 4)``.
        gx, gy: affine coordinates of the fixed G1 generator.
    """

    name: str
    r: int
    h: int
    q: int
    gx: int
    gy: int

    def __post_init__(self) -> None:
        if self.q != self.h * self.r - 1:
            raise ParameterError("q must equal h*r - 1")
        if self.q % 4 != 3:
            raise ParameterError("q must be ≡ 3 (mod 4)")

    @property
    def q_bytes(self) -> int:
        """Width of one F_q element in bytes (used by all serializers)."""
        return (self.q.bit_length() + 7) // 8

    @property
    def r_bytes(self) -> int:
        return (self.r.bit_length() + 7) // 8

    def describe(self) -> str:
        return (
            f"TypeA[{self.name}] |r|={self.r.bit_length()} bits, "
            f"|q|={self.q.bit_length()} bits, h={self.h.bit_length()}-bit cofactor"
        )


def _find_generator(q: int, r: int, h: int, seed: int = 1) -> tuple[int, int]:
    """Deterministically find a generator of the order-``r`` subgroup.

    Walks x-coordinates from ``seed``, lifts to a curve point, multiplies by
    the cofactor, and returns the first point of exact order ``r``.  Uses
    only integer arithmetic to avoid importing :mod:`.curve` (which imports
    this module).
    """
    x = seed
    while True:
        rhs = (x * x * x + x) % q
        if pow(rhs, (q - 1) // 2, q) == 1 or rhs == 0:
            y = pow(rhs, (q + 1) // 4, q)
            if (y * y) % q == rhs:
                point = _scalar_mul_affine(x, y, h, q)
                if point is not None:
                    px, py = point
                    if _scalar_mul_affine(px, py, r, q) is None:
                        return px, py
        x += 1


def _scalar_mul_affine(x: int, y: int, k: int, q: int) -> tuple[int, int] | None:
    """Minimal affine double-and-add on y² = x³ + x; None is infinity."""
    result: tuple[int, int] | None = None
    addend: tuple[int, int] | None = (x, y)
    while k:
        if k & 1:
            result = _point_add_affine(result, addend, q)
        addend = _point_add_affine(addend, addend, q)
        k >>= 1
    return result


def _point_add_affine(
    p1: tuple[int, int] | None, p2: tuple[int, int] | None, q: int
) -> tuple[int, int] | None:
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1 = p1
    x2, y2 = p2
    if x1 == x2:
        if (y1 + y2) % q == 0:
            return None
        lam = (3 * x1 * x1 + 1) * pow(2 * y1, -1, q) % q
    else:
        lam = (y2 - y1) * pow(x2 - x1, -1, q) % q
    x3 = (lam * lam - x1 - x2) % q
    y3 = (lam * (x1 - x3) - y1) % q
    return x3, y3


def generate_type_a_params(
    r_bits: int, q_bits: int, name: str = "custom", seed: int | None = None
) -> TypeAParams:
    """Generate a fresh Type-A parameter set.

    Picks a random ``r_bits``-bit prime ``r`` and scans cofactors
    ``h ≡ 0 (mod 4)`` of about ``q_bits − r_bits`` bits until
    ``q = h·r − 1`` is prime.  With ``seed`` set the search is
    deterministic (used to produce the precomputed sets below).
    """
    if q_bits <= r_bits + 3:
        raise ParameterError("q_bits must exceed r_bits by at least 4 (cofactor of 4)")
    rng = random.Random(seed)
    while True:
        r = rng.getrandbits(r_bits) | (1 << (r_bits - 1)) | 1
        if not is_probable_prime(r):
            continue
        h0 = rng.getrandbits(q_bits - r_bits)
        h0 = (h0 | (1 << (q_bits - r_bits - 1))) & ~0b11  # top bit set, multiple of 4
        for delta in range(0, 1 << 16, 4):
            h = h0 + delta
            q = h * r - 1
            if q.bit_length() != q_bits:
                continue
            if q % 4 == 3 and is_probable_prime(q):
                gx, gy = _find_generator(q, r, h)
                return TypeAParams(name=name, r=r, h=h, q=q, gx=gx, gy=gy)


# ---------------------------------------------------------------------------
# Precomputed sets — produced by generate_type_a_params(..., seed=...); see
# tests/crypto/test_params.py which re-validates every invariant.
# ---------------------------------------------------------------------------

def _make(name: str, r_bits: int, q_bits: int, seed: int) -> TypeAParams:
    params = generate_type_a_params(r_bits, q_bits, name=name, seed=seed)
    return params


# Generating at import time keeps the constants honest and costs little:
# the deterministic seeds below were chosen once; Miller-Rabin on the three
# sets takes a few milliseconds.
TOY = _make("TOY", r_bits=64, q_bits=160, seed=2012)
TEST = _make("TEST", r_bits=112, q_bits=256, seed=2012)
PAPER = _make("PAPER", r_bits=160, q_bits=512, seed=2012)

PARAM_SETS = {"TOY": TOY, "TEST": TEST, "PAPER": PAPER}
