"""A charm-crypto-style ``PairingGroup`` facade.

Both P3S crypto schemes (BSW07 CP-ABE and IP08 HVE) are written against
this facade rather than raw curve/pairing functions, mirroring how the
paper's prototype is written against jPBC/PBC.  It bundles:

* the chosen :class:`~repro.crypto.params.TypeAParams` set,
* sampling of uniform Zr scalars, G1 points, and GT elements,
* hashing into Zr and G1,
* the pairing and the shared-final-exponentiation multi-pairing,
* fixed-width serialization for every element type (the source of all
  byte-size accounting used by the performance models).
"""

from __future__ import annotations

import secrets

from ..errors import ParameterError
from .curve import Point, fixed_base_table, hash_to_point
from .field import Fq2
from .hashing import hash_bytes, hash_to_int
from .pairing import (
    MillerPrecomputed,
    multi_pairing,
    multi_pairing_precomputed,
    precompute_miller,
    tate_pairing,
    tate_pairing_precomputed,
)
from .params import PARAM_SETS, TypeAParams

__all__ = ["PairingGroup"]


class PairingGroup:
    """One symmetric (Type-1) pairing group ``ê : G1 × G1 → GT``.

    Args:
        params: a :class:`TypeAParams` instance or the name of a
            precomputed set (``"TOY"``, ``"TEST"``, ``"PAPER"``).
        rng: an optional :class:`random.Random`-like source for scalar
            sampling.  ``None`` (the default, and the only safe choice
            outside tests) uses :mod:`secrets`; tests pass a seeded
            instance to freeze key material for the golden known-answer
            vectors in ``tests/crypto/vectors/``.

    Construction warms the process-wide fixed-base comb table for the
    generator (shared across every group instance on the same parameter
    set), so ``g · k`` — the most frequent group operation — is always on
    the fast path.
    """

    def __init__(self, params: TypeAParams | str = "TOY", rng=None):
        if isinstance(params, str):
            try:
                params = PARAM_SETS[params]
            except KeyError:
                raise ParameterError(
                    f"unknown parameter set {params!r}; choose from {sorted(PARAM_SETS)}"
                ) from None
        self.params = params
        self.generator = Point.generator(params)
        self._rng = rng
        self._gt_generator: Fq2 | None = None
        fixed_base_table(self.generator)

    # -- basic accessors -----------------------------------------------------

    @property
    def order(self) -> int:
        """Prime order ``r`` of G1 and GT."""
        return self.params.r

    @property
    def gt_generator(self) -> Fq2:
        """``ê(g, g)`` — computed once and cached."""
        if self._gt_generator is None:
            self._gt_generator = tate_pairing(self.generator, self.generator)
        return self._gt_generator

    def gt_identity(self) -> Fq2:
        return Fq2.one(self.params.q)

    # -- sampling ---------------------------------------------------------------

    def random_zr(self, nonzero: bool = True) -> int:
        """Uniform scalar in ``[0, r)`` (``[1, r)`` when ``nonzero``)."""
        low = 1 if nonzero else 0
        while True:
            if self._rng is not None:
                value = self._rng.randrange(self.params.r)
            else:
                value = secrets.randbelow(self.params.r)
            if value >= low:
                return value

    def random_g1(self) -> Point:
        return self.generator * self.random_zr()

    def random_gt(self) -> Fq2:
        return self.gt_generator ** self.random_zr()

    # -- hashing -------------------------------------------------------------------

    def hash_to_zr(self, domain: str, *parts: bytes) -> int:
        return hash_to_int(domain, self.params.r, *parts)

    def hash_to_g1(self, label: str | bytes) -> Point:
        if isinstance(label, str):
            label = label.encode("utf-8")
        return hash_to_point(label, self.params)

    # -- pairing ----------------------------------------------------------------------

    def pair(self, p: Point, q: Point) -> Fq2:
        return tate_pairing(p, q)

    def multi_pair(self, pairs: list[tuple[Point, Point]]) -> Fq2:
        return multi_pairing(pairs, self.params)

    def precompute_pairing(self, point: Point) -> MillerPrecomputed | None:
        """Precompute ``point``'s Miller lines for fixed-argument pairings.

        Returns ``None`` for the point at infinity (its pairings are the
        identity — :meth:`multi_pair_precomputed` skips such entries, the
        same rule :func:`~repro.crypto.pairing.multi_pairing` applies).
        """
        if point.is_infinity:
            return None
        return precompute_miller(point)

    def pair_precomputed(self, pre: MillerPrecomputed | None, q_point: Point) -> Fq2:
        if pre is None or q_point.is_infinity:
            return Fq2.one(self.params.q)
        return tate_pairing_precomputed(pre, q_point)

    def multi_pair_precomputed(
        self, entries: list[tuple[MillerPrecomputed | None, Point]]
    ) -> Fq2:
        """``Π ê(P_j, Q_j)`` with every ``P_j`` precomputed — bit-identical
        to :meth:`multi_pair` on the argument-swapped pairs (the pairing
        is symmetric on G1)."""
        return multi_pairing_precomputed(entries, self.params)

    # -- serialization ------------------------------------------------------------------

    @property
    def g1_bytes(self) -> int:
        """Serialized size of a G1 element (uncompressed)."""
        return 1 + 2 * self.params.q_bytes

    @property
    def g1_bytes_compressed(self) -> int:
        """Serialized size of a compressed G1 element."""
        return 1 + self.params.q_bytes

    @property
    def gt_bytes(self) -> int:
        """Serialized size of a GT element."""
        return 2 * self.params.q_bytes

    @property
    def zr_bytes(self) -> int:
        return self.params.r_bytes

    def serialize_g1(self, point: Point) -> bytes:
        return point.to_bytes()

    def deserialize_g1(self, data: bytes) -> Point:
        return Point.from_bytes(data, self.params)

    def serialize_g1_compressed(self, point: Point) -> bytes:
        return point.to_bytes_compressed()

    def deserialize_g1_compressed(self, data: bytes) -> Point:
        return Point.from_bytes_compressed(data, self.params)

    def serialize_gt(self, element: Fq2) -> bytes:
        return element.to_bytes(self.params.q_bytes)

    def deserialize_gt(self, data: bytes) -> Fq2:
        if len(data) != self.gt_bytes:
            raise ParameterError(f"GT encoding must be {self.gt_bytes} bytes, got {len(data)}")
        return Fq2.from_bytes(data, self.params.q)

    def gt_to_key(self, element: Fq2, label: str = "gt-kem") -> bytes:
        """Derive a 32-byte symmetric key from a GT element (KEM step)."""
        return hash_bytes(label, self.serialize_gt(element))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PairingGroup({self.params.describe()})"
