"""Schnorr signatures over G1, plus the participant certificates the ARA issues.

The paper's ARA acts as a certification authority: it hands each
subscriber "a certificate that indicates the participant is a subscriber"
(§4.3), which the PBE-TS later validates before minting tokens.  This
module provides the signature scheme and a small certificate structure
(subject, role, validity window) signed by the ARA.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..errors import CertificateError, SerializationError
from .curve import Point
from .group import PairingGroup

__all__ = ["SigningKeyPair", "VerifyKey", "Signature", "Certificate"]


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature ``(c, s)``."""

    challenge: int
    response: int

    def to_bytes(self, zr_bytes: int) -> bytes:
        return self.challenge.to_bytes(zr_bytes, "big") + self.response.to_bytes(zr_bytes, "big")

    @classmethod
    def from_bytes(cls, data: bytes, zr_bytes: int) -> "Signature":
        if len(data) != 2 * zr_bytes:
            raise SerializationError("bad signature length")
        return cls(
            int.from_bytes(data[:zr_bytes], "big"),
            int.from_bytes(data[zr_bytes:], "big"),
        )


@dataclass(frozen=True)
class VerifyKey:
    """Schnorr verification key ``vk = sk·g``."""

    group: PairingGroup
    point: Point

    def verify(self, message: bytes, signature: Signature) -> bool:
        group = self.group
        # R' = s·g + c·vk ;  valid iff H(R' || vk || m) == c
        commitment = group.generator * signature.response + self.point * signature.challenge
        expected = group.hash_to_zr(
            "schnorr",
            group.serialize_g1(commitment),
            group.serialize_g1(self.point),
            message,
        )
        return expected == signature.challenge

    def to_bytes(self) -> bytes:
        return self.group.serialize_g1(self.point)


class SigningKeyPair:
    """Schnorr signing key; ``sign`` produces ``(c, s)`` with ``s = k − c·sk``."""

    def __init__(self, group: PairingGroup, secret: int | None = None):
        self.group = group
        self._secret = secret if secret is not None else group.random_zr()
        self.verify_key = VerifyKey(group, group.generator * self._secret)

    def sign(self, message: bytes) -> Signature:
        group = self.group
        nonce = group.random_zr()
        commitment = group.generator * nonce
        challenge = group.hash_to_zr(
            "schnorr",
            group.serialize_g1(commitment),
            group.serialize_g1(self.verify_key.point),
            message,
        )
        response = (nonce - challenge * self._secret) % group.order
        return Signature(challenge, response)


@dataclass(frozen=True)
class Certificate:
    """An ARA-issued participant certificate.

    ``role`` is ``"subscriber"`` or ``"publisher"`` (paper §4.3: the
    PBE-TS checks the subscriber certificate before returning a token).
    ``not_after`` is simulation time; ``None`` disables expiry.
    """

    subject: str
    role: str
    not_after: float | None
    signature: Signature

    @staticmethod
    def _payload(subject: str, role: str, not_after: float | None) -> bytes:
        return json.dumps(
            {"subject": subject, "role": role, "not_after": not_after},
            sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def issue(
        cls,
        signer: SigningKeyPair,
        subject: str,
        role: str,
        not_after: float | None = None,
    ) -> "Certificate":
        payload = cls._payload(subject, role, not_after)
        return cls(subject, role, not_after, signer.sign(payload))

    def validate(self, verify_key: VerifyKey, expected_role: str, now: float = 0.0) -> None:
        """Raise :class:`CertificateError` unless the certificate is valid."""
        if self.role != expected_role:
            raise CertificateError(f"certificate role {self.role!r} != {expected_role!r}")
        if self.not_after is not None and now > self.not_after:
            raise CertificateError(f"certificate for {self.subject!r} expired")
        payload = self._payload(self.subject, self.role, self.not_after)
        if not verify_key.verify(payload, self.signature):
            raise CertificateError("certificate signature invalid")

    def to_bytes(self, zr_bytes: int) -> bytes:
        body = self._payload(self.subject, self.role, self.not_after)
        return len(body).to_bytes(4, "big") + body + self.signature.to_bytes(zr_bytes)

    @classmethod
    def from_bytes(cls, data: bytes, zr_bytes: int) -> "Certificate":
        if len(data) < 4:
            raise SerializationError("certificate too short")
        body_len = int.from_bytes(data[:4], "big")
        body = data[4 : 4 + body_len]
        sig = Signature.from_bytes(data[4 + body_len :], zr_bytes)
        try:
            fields = json.loads(body.decode("utf-8"))
            return cls(fields["subject"], fields["role"], fields["not_after"], sig)
        except (ValueError, KeyError) as exc:
            raise SerializationError(f"malformed certificate body: {exc}") from exc
