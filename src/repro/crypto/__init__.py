"""Cryptographic substrate: pairing groups, AEAD, PKE, signatures.

Everything the P3S schemes need, implemented from scratch:

* :class:`~repro.crypto.group.PairingGroup` — Type-A symmetric pairing
  (supersingular curve, modified Tate pairing) with three parameter sets.
* :class:`~repro.crypto.symmetric.SecretBox` — ChaCha20 + HMAC-SHA256 AEAD.
* :class:`~repro.crypto.pke.PKEKeyPair` — ECIES-style public-key encryption.
* :class:`~repro.crypto.signing.SigningKeyPair` / ``Certificate`` — Schnorr
  signatures and ARA-issued participant certificates.
"""

from .field import Fq2
from .curve import Point, hash_to_point
from .group import PairingGroup
from .pairing import multi_pairing, tate_pairing
from .params import PAPER, PARAM_SETS, TEST, TOY, TypeAParams, generate_type_a_params
from .pke import PKEKeyPair, PKEPublicKey
from .signing import Certificate, Signature, SigningKeyPair, VerifyKey
from .symmetric import SecretBox, chacha20_xor
from .hashing import hash_bytes, hash_to_int, kdf

__all__ = [
    "Fq2",
    "Point",
    "hash_to_point",
    "PairingGroup",
    "multi_pairing",
    "tate_pairing",
    "TypeAParams",
    "generate_type_a_params",
    "TOY",
    "TEST",
    "PAPER",
    "PARAM_SETS",
    "PKEKeyPair",
    "PKEPublicKey",
    "SigningKeyPair",
    "VerifyKey",
    "Signature",
    "Certificate",
    "SecretBox",
    "chacha20_xor",
    "hash_bytes",
    "hash_to_int",
    "kdf",
]
