"""Point arithmetic on the Type-A supersingular curve ``y² = x³ + x``.

Points live in ``E(F_q)``; the pairing module applies the distortion map
``ψ(x, y) = (−x, i·y)`` implicitly, so this module never needs points with
``F_q²`` coordinates.  Affine coordinates are used throughout: CPython's
``pow(x, -1, q)`` makes the per-addition modular inverse cheap relative to
the bignum multiplies, and affine formulas keep the Miller loop simple.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict

from ..errors import NotOnCurveError, SerializationError
from ..obs.profile import record_op
from .field import fq_is_square, fq_sqrt
from .params import TypeAParams

__all__ = [
    "Point",
    "hash_to_point",
    "FixedBaseTable",
    "fixed_base_table",
    "set_fixed_base_enabled",
    "clear_fixed_base_cache",
    "fixed_base_cache_info",
]

# ---------------------------------------------------------------------------
# Fixed-base precomputation (comb method).
#
# The hot bases of this codebase — the group generator ``g`` and the HVE /
# CP-ABE public-key points — are multiplied by fresh scalars on every
# setup, encrypt and token-gen call.  A comb table for base ``B`` stores
# ``d · 16^j · B`` for every window digit ``d``, reducing a ``b``-bit
# scalar multiplication from ~``1.5·b`` group operations to ``b/4``
# additions (no doublings at all).
#
# Tables are promoted automatically: a base pays for its table only after
# ``_FB_PROMOTE_AFTER`` large scalar multiplications, so one-shot points
# (hash-to-point candidates, ephemeral keys) never trigger a build.  Both
# the table cache and the use-count map are LRU-bounded.  Results are
# bit-identical to the naive ladder — the group law is deterministic and
# both paths compute the same multiple.
# ---------------------------------------------------------------------------

_FB_WINDOW = 4
_FB_PROMOTE_AFTER = 2  # big muls a base must perform before a table is built
_FB_MAX_TABLES = 128
_FB_MAX_COUNTS = 4096

_fb_enabled = os.environ.get("P3S_PRECOMPUTE", "1") != "0"
_fb_tables: "OrderedDict[tuple[int, int, int], FixedBaseTable]" = OrderedDict()
_fb_counts: "OrderedDict[tuple[int, int, int], int]" = OrderedDict()
_fb_builds = 0
_fb_hits = 0


def set_fixed_base_enabled(enabled: bool) -> None:
    """Toggle the fixed-base fast path (used by A/B benchmarks and tests)."""
    global _fb_enabled
    _fb_enabled = enabled


def clear_fixed_base_cache() -> None:
    """Drop all tables and promotion counters (test isolation)."""
    global _fb_builds, _fb_hits
    _fb_tables.clear()
    _fb_counts.clear()
    _fb_builds = 0
    _fb_hits = 0


def fixed_base_cache_info() -> dict[str, int]:
    """Cache statistics: tables built/live, hits since the last clear."""
    return {
        "tables": len(_fb_tables),
        "builds": _fb_builds,
        "hits": _fb_hits,
        "tracked_bases": len(_fb_counts),
    }


class FixedBaseTable:
    """Comb precomputation for one base point.

    ``rows[j][d-1] = d · 2^(window·j) · B`` for digits ``d ∈ [1, 2^w)``;
    :meth:`mul` then needs only one table lookup and addition per window
    of the scalar.  Supports scalars up to ``max_bits`` bits (larger ones
    fall back to the generic ladder in :meth:`Point.__mul__`).
    """

    __slots__ = ("base", "window", "max_bits", "rows")

    def __init__(self, base: "Point", max_bits: int, window: int = _FB_WINDOW):
        if base.is_infinity:
            raise ValueError("cannot build a fixed-base table for the point at infinity")
        self.base = base
        self.window = window
        self.max_bits = max_bits
        num_rows = -(-max_bits // window)  # ceil
        rows: list[list[Point]] = []
        current = base
        for _ in range(num_rows):
            row = [current]
            for _ in range(2, 1 << window):
                row.append(row[-1] + current)
            rows.append(row)
            current = row[-1] + current  # 2^window · current
        self.rows = rows

    def mul(self, k: int) -> "Point":
        """``k · B`` by table lookups; ``k`` must be in ``[0, 2^max_bits)``."""
        result = Point.infinity(self.base.params)
        mask = (1 << self.window) - 1
        rows = self.rows
        j = 0
        while k:
            digit = k & mask
            if digit:
                result = result + rows[j][digit - 1]
            k >>= self.window
            j += 1
        return result


def fixed_base_table(point: "Point", max_bits: int | None = None) -> FixedBaseTable:
    """Get-or-build the comb table for ``point`` (explicit warm-up API).

    Services with known-hot bases (the PBE-TS, publishers) call this once
    so even their first request takes the fast path.
    """
    global _fb_builds
    key = (point.x, point.y, point.params.q)
    table = _fb_tables.get(key)
    if table is None:
        if max_bits is None:
            max_bits = point.params.r.bit_length() + _FB_WINDOW
        table = FixedBaseTable(point, max_bits)
        _fb_tables[key] = table
        _fb_counts.pop(key, None)
        _fb_builds += 1
        record_op("g1_exp.fb_build")
        while len(_fb_tables) > _FB_MAX_TABLES:
            _fb_tables.popitem(last=False)
    else:
        _fb_tables.move_to_end(key)
    return table


def _fb_lookup(point: "Point", bits: int) -> FixedBaseTable | None:
    """Fast-path check inside ``Point.__mul__``: table hit, or count a use."""
    key = (point.x, point.y, point.params.q)
    table = _fb_tables.get(key)
    if table is not None:
        _fb_tables.move_to_end(key)
        return table
    if bits > 32:
        count = _fb_counts.get(key, 0) + 1
        if count > _FB_PROMOTE_AFTER:
            return fixed_base_table(point)
        _fb_counts[key] = count
        _fb_counts.move_to_end(key)
        while len(_fb_counts) > _FB_MAX_COUNTS:
            _fb_counts.popitem(last=False)
    return None


class Point:
    """An affine point on ``y² = x³ + x`` over ``F_q``, or the point at infinity.

    Immutable.  The point at infinity is represented by
    ``x is None and y is None`` and constructed via :meth:`infinity`.
    """

    __slots__ = ("x", "y", "params")

    def __init__(self, x: int | None, y: int | None, params: TypeAParams, *, check: bool = True):
        self.params = params
        if x is None or y is None:
            self.x = None
            self.y = None
            return
        q = params.q
        self.x = x % q
        self.y = y % q
        if check and not self._on_curve():
            raise NotOnCurveError(f"({x:#x}, {y:#x}) is not on y^2 = x^3 + x")

    # -- constructors --------------------------------------------------------

    @classmethod
    def infinity(cls, params: TypeAParams) -> "Point":
        return cls(None, None, params)

    @classmethod
    def generator(cls, params: TypeAParams) -> "Point":
        return cls(params.gx, params.gy, params, check=False)

    # -- predicates ------------------------------------------------------------

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def _on_curve(self) -> bool:
        q = self.params.q
        return (self.y * self.y - (self.x * self.x * self.x + self.x)) % q == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.x == other.x and self.y == other.y and self.params.q == other.params.q

    def __hash__(self) -> int:
        return hash((self.x, self.y, self.params.q))

    # -- group law ---------------------------------------------------------------

    def __neg__(self) -> "Point":
        if self.is_infinity:
            return self
        return Point(self.x, -self.y, self.params, check=False)

    def __add__(self, other: "Point") -> "Point":
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        q = self.params.q
        x1, y1, x2, y2 = self.x, self.y, other.x, other.y
        if x1 == x2:
            if (y1 + y2) % q == 0:
                return Point.infinity(self.params)
            lam = (3 * x1 * x1 + 1) * pow(2 * y1, -1, q) % q
        else:
            lam = (y2 - y1) * pow(x2 - x1, -1, q) % q
        x3 = (lam * lam - x1 - x2) % q
        y3 = (lam * (x1 - x3) - y1) % q
        return Point(x3, y3, self.params, check=False)

    def double(self) -> "Point":
        return self + self

    def __mul__(self, k: int) -> "Point":
        """Scalar multiplication ``k·P``.

        ``k`` is used as given — it is *not* reduced modulo ``r``, because
        cofactor clearing multiplies points that are not yet in the
        order-``r`` subgroup.  Large scalars go through the windowed
        ladder (fewer additions); small ones use plain double-and-add.
        """
        if k < 0:
            return (-self) * (-k)
        if k == 0 or self.is_infinity:
            return Point.infinity(self.params)
        record_op("g1_exp")
        bits = k.bit_length()
        if _fb_enabled:
            table = _fb_lookup(self, bits)
            if table is not None and bits <= table.max_bits:
                global _fb_hits
                _fb_hits += 1
                record_op("g1_exp.fixed_base")
                return table.mul(k)
        if bits > 32:
            return self.scalar_mul_windowed(k)
        result = Point.infinity(self.params)
        addend = self
        while k:
            if k & 1:
                result = result + addend
            k >>= 1
            if k:
                addend = addend + addend
        return result

    __rmul__ = __mul__

    def scalar_mul_windowed(self, k: int, window_bits: int = 4) -> "Point":
        """Fixed-window scalar multiplication.

        Precomputes ``2^w − 1`` multiples, then needs one addition per
        ``w`` doublings — roughly a quarter of the additions of plain
        double-and-add for 160-bit scalars at ``w = 4``.
        """
        if k < 0:
            return (-self).scalar_mul_windowed(-k, window_bits)
        if k == 0 or self.is_infinity:
            return Point.infinity(self.params)
        table = [Point.infinity(self.params), self]
        for _ in range(2, 1 << window_bits):
            table.append(table[-1] + self)
        result = Point.infinity(self.params)
        mask = (1 << window_bits) - 1
        digits = []
        while k:
            digits.append(k & mask)
            k >>= window_bits
        for digit in reversed(digits):
            for _ in range(window_bits):
                result = result + result
            if digit:
                result = result + table[digit]
        return result

    # -- serialization -------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Uncompressed fixed-width encoding: tag byte then ``x || y``.

        Tag ``0x00`` marks infinity (coordinates zeroed), ``0x04`` a finite
        point — mirroring SEC1 framing so sizes are realistic.
        """
        width = self.params.q_bytes
        if self.is_infinity:
            return b"\x00" + b"\x00" * (2 * width)
        return b"\x04" + self.x.to_bytes(width, "big") + self.y.to_bytes(width, "big")

    @classmethod
    def from_bytes(cls, data: bytes, params: TypeAParams) -> "Point":
        width = params.q_bytes
        if len(data) != 1 + 2 * width:
            raise SerializationError(f"point encoding must be {1 + 2 * width} bytes, got {len(data)}")
        tag = data[0]
        if tag == 0x00:
            return cls.infinity(params)
        if tag != 0x04:
            raise SerializationError(f"unknown point tag {tag:#x}")
        x = int.from_bytes(data[1 : 1 + width], "big")
        y = int.from_bytes(data[1 + width :], "big")
        return cls(x, y, params)  # membership check on by default

    def to_bytes_compressed(self) -> bytes:
        """SEC1-style compressed encoding: tag (parity of y) then ``x``.

        Halves every ciphertext's group-element footprint — this is the
        encoding behind the paper's ``c_A = 2Vk + m`` size estimate.
        Decompression costs one square root (cheap: ``q ≡ 3 (mod 4)``).
        """
        width = self.params.q_bytes
        if self.is_infinity:
            return b"\x00" + b"\x00" * width
        tag = 0x03 if self.y & 1 else 0x02
        return bytes([tag]) + self.x.to_bytes(width, "big")

    @classmethod
    def from_bytes_compressed(cls, data: bytes, params: TypeAParams) -> "Point":
        width = params.q_bytes
        if len(data) != 1 + width:
            raise SerializationError(
                f"compressed point encoding must be {1 + width} bytes, got {len(data)}"
            )
        tag = data[0]
        if tag == 0x00:
            return cls.infinity(params)
        if tag not in (0x02, 0x03):
            raise SerializationError(f"unknown compressed point tag {tag:#x}")
        x = int.from_bytes(data[1:], "big")
        q = params.q
        rhs = (x * x * x + x) % q
        if not fq_is_square(rhs, q):
            raise NotOnCurveError(f"x = {x:#x} is not on the curve")
        y = fq_sqrt(rhs, q)
        if (y & 1) != (tag == 0x03):
            y = q - y
        return cls(x, y, params, check=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_infinity:
            return "Point(infinity)"
        return f"Point({self.x:#x}, {self.y:#x})"


def hash_to_point(label: bytes, params: TypeAParams) -> Point:
    """Hash an arbitrary byte string into G1 (try-and-increment + cofactor).

    Counter-mode SHA-256 produces candidate x-coordinates until one lies on
    the curve; the lifted point is multiplied by the cofactor ``h`` to land
    in the order-``r`` subgroup.  The even/odd bit of the digest picks the
    y-root so the map is not biased toward one half-plane.
    """
    q = params.q
    counter = 0
    while True:
        digest = hashlib.sha256(b"repro:h2p:" + counter.to_bytes(4, "big") + label).digest()
        # Widen past q's size with a second block so the candidate is ~uniform.
        digest2 = hashlib.sha256(b"repro:h2p2:" + counter.to_bytes(4, "big") + label).digest()
        x = int.from_bytes(digest + digest2, "big") % q
        rhs = (x * x * x + x) % q
        if rhs != 0 and fq_is_square(rhs, q):
            y = fq_sqrt(rhs, q)
            if digest[0] & 1:
                y = q - y
            point = Point(x, y, params, check=False) * params.h
            if not point.is_infinity:
                return point
        counter += 1
