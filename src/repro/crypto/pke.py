"""Public-key encryption (ECIES-style KEM-DEM over G1).

P3S uses server public keys in two protocol steps (paper §4.3):

* the subscriber encrypts ``(K_s, certificate, predicate)`` to the
  **PBE-TS** public key when requesting a token, and
* the subscriber encrypts ``(K_s, GUID)`` to the **RS** public key when
  retrieving a payload.

The paper's prototype would use the servers' TLS/RSA certificates; we
provide the equivalent over the pairing group's G1 so no extra number
theory is needed: an ephemeral Diffie-Hellman KEM plus the
:class:`~repro.crypto.symmetric.SecretBox` DEM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DecryptionError, SerializationError
from .curve import Point
from .group import PairingGroup
from .hashing import kdf
from .symmetric import OVERHEAD, SecretBox

__all__ = ["PKEKeyPair", "PKEPublicKey", "pke_overhead"]


@dataclass(frozen=True)
class PKEPublicKey:
    """An encryption-only public key ``pk = sk·g``."""

    group: PairingGroup
    point: Point

    def encrypt(self, plaintext: bytes) -> bytes:
        """ECIES encrypt: ``eph·g || SecretBox_{KDF(eph·pk)}(plaintext)``."""
        eph = self.group.random_zr()
        ephemeral_public = self.group.generator * eph
        shared = self.point * eph
        key = kdf(self.group.serialize_g1(shared), "pke-dem")
        box = SecretBox(key)
        return self.group.serialize_g1(ephemeral_public) + box.seal(plaintext)

    def to_bytes(self) -> bytes:
        return self.group.serialize_g1(self.point)

    @classmethod
    def from_bytes(cls, data: bytes, group: PairingGroup) -> "PKEPublicKey":
        return cls(group, group.deserialize_g1(data))


class PKEKeyPair:
    """Key pair for the ECIES-style scheme; holds the secret scalar."""

    def __init__(self, group: PairingGroup, secret: int | None = None):
        self.group = group
        self._secret = secret if secret is not None else group.random_zr()
        self.public = PKEPublicKey(group, group.generator * self._secret)

    def decrypt(self, ciphertext: bytes) -> bytes:
        point_len = self.group.g1_bytes
        if len(ciphertext) < point_len + OVERHEAD:
            raise SerializationError("PKE ciphertext too short")
        try:
            ephemeral_public = self.group.deserialize_g1(ciphertext[:point_len])
        except Exception as exc:
            raise DecryptionError(f"bad ephemeral point: {exc}") from exc
        shared = ephemeral_public * self._secret
        key = kdf(self.group.serialize_g1(shared), "pke-dem")
        return SecretBox(key).open(ciphertext[point_len:])


def pke_overhead(group: PairingGroup) -> int:
    """Ciphertext expansion in bytes (ephemeral point + DEM overhead)."""
    return group.g1_bytes + OVERHEAD
