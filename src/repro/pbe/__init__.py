"""Predicate-Based Encryption: IP08 HVE plus the P3S metadata-space mapping.

Public API::

    from repro.pbe import HVE, MetadataSchema, AttributeSpec, Interest, ANY

    schema = MetadataSchema([
        AttributeSpec("topic", ("m&a", "earnings", "litigation", "markets")),
        AttributeSpec("region", ("us", "eu", "apac", "latam")),
    ])
    hve = HVE(group)
    public, master = hve.setup(schema.vector_length)

    x = schema.encode_metadata({"topic": "m&a", "region": "us"})
    ct = hve.encrypt(public, x, guid)

    y = schema.encode_interest(Interest({"topic": "m&a"}))   # region: ANY
    token = hve.gen_token(master, y)
    assert hve.query(token, ct) == guid
"""

from .encoding import bits_needed, decode_value, encode_value, wildcard_bits
from .hve import HVE, HVECiphertext, HVEMasterKey, HVEPublicKey, HVEToken, WILDCARD
from .schema import ANY, AttributeSpec, Interest, MetadataSchema
from .serialize import (
    deserialize_hve_ciphertext,
    deserialize_hve_master_key,
    deserialize_hve_public_key,
    deserialize_hve_token,
    hve_ciphertext_size,
    hve_token_size,
    serialize_hve_ciphertext,
    serialize_hve_master_key,
    serialize_hve_public_key,
    serialize_hve_token,
)

__all__ = [
    "HVE",
    "HVECiphertext",
    "HVEMasterKey",
    "HVEPublicKey",
    "HVEToken",
    "WILDCARD",
    "ANY",
    "AttributeSpec",
    "Interest",
    "MetadataSchema",
    "bits_needed",
    "encode_value",
    "decode_value",
    "wildcard_bits",
    "serialize_hve_ciphertext",
    "deserialize_hve_ciphertext",
    "serialize_hve_token",
    "deserialize_hve_token",
    "serialize_hve_public_key",
    "deserialize_hve_public_key",
    "serialize_hve_master_key",
    "deserialize_hve_master_key",
    "hve_ciphertext_size",
    "hve_token_size",
]
