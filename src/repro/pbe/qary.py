"""q-ary HVE: one vector position per attribute, symbols instead of bits.

The paper (§3.1) adopts the *binary*-alphabet HVE of [7] and encodes each
attribute over ``log₂|domain|`` bit positions; it notes that the
composite-order construction of Boneh-Waters [6] "supports large
alphabets" directly.  This module provides that large-alphabet trade-off
in prime-order groups by the natural generalization of IP08: per position
``i`` and symbol ``s`` the setup draws a generator pair
``(T[i][s], V[i][s])``; encryption picks the pair for the published
symbol; tokens invert the pair for the subscribed symbol.

Trade-off versus the binary scheme (measured in
``benchmarks/bench_ablation_qary.py``):

* vector length drops from ``Σ log₂|domain_i|`` to ``N`` (one per
  attribute) → **fewer pairings per match** and smaller ciphertexts;
* the public key grows from ``O(Σ log₂|domain_i|)`` to ``O(Σ |domain_i|)``
  group elements;
* wildcards still span exactly one position, so token sizes shrink too.

Matching semantics are identical: equality per non-wildcard position.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.curve import Point
from ..crypto.group import PairingGroup
from ..crypto.hashing import kdf
from ..crypto.symmetric import SecretBox
from ..errors import DecryptionError, ParameterError
from .schema import ANY, Interest, MetadataSchema

__all__ = ["QaryHVE", "QaryPublicKey", "QaryMasterKey", "QaryToken", "QaryCiphertext"]


@dataclass(frozen=True)
class QaryPublicKey:
    alphabet_sizes: tuple[int, ...]
    y_gt: object  # ê(g,g)^{y₀}
    t: tuple[tuple[Point, ...], ...]  # t[i][s]
    v: tuple[tuple[Point, ...], ...]

    @property
    def n(self) -> int:
        return len(self.alphabet_sizes)


@dataclass(frozen=True)
class QaryMasterKey:
    alphabet_sizes: tuple[int, ...]
    y0: int
    t: tuple[tuple[int, ...], ...]
    v: tuple[tuple[int, ...], ...]

    @property
    def n(self) -> int:
        return len(self.alphabet_sizes)


@dataclass(frozen=True)
class QaryToken:
    n: int
    positions: tuple[int, ...]
    components: tuple[tuple[Point, Point], ...]


@dataclass(frozen=True)
class QaryCiphertext:
    n: int
    x_components: tuple[Point, ...]
    w_components: tuple[Point, ...]
    sealed: bytes


class QaryHVE:
    """The large-alphabet HVE over a :class:`PairingGroup`."""

    def __init__(self, group: PairingGroup):
        self.group = group

    # -- Setup -------------------------------------------------------------

    def setup(self, alphabet_sizes: list[int]) -> tuple[QaryPublicKey, QaryMasterKey]:
        if not alphabet_sizes or any(size < 2 for size in alphabet_sizes):
            raise ParameterError("each position needs an alphabet of at least 2 symbols")
        group = self.group
        g = group.generator
        y0 = group.random_zr()
        t_secret = tuple(
            tuple(group.random_zr() for _ in range(size)) for size in alphabet_sizes
        )
        v_secret = tuple(
            tuple(group.random_zr() for _ in range(size)) for size in alphabet_sizes
        )
        public = QaryPublicKey(
            alphabet_sizes=tuple(alphabet_sizes),
            y_gt=group.gt_generator**y0,
            t=tuple(tuple(g * e for e in row) for row in t_secret),
            v=tuple(tuple(g * e for e in row) for row in v_secret),
        )
        return public, QaryMasterKey(tuple(alphabet_sizes), y0, t_secret, v_secret)

    @classmethod
    def sizes_for_schema(cls, schema: MetadataSchema) -> list[int]:
        """One position per attribute, alphabet = the value domain."""
        return [len(spec.values) for spec in schema.attributes]

    # -- Encrypt -------------------------------------------------------------

    def encrypt(self, public: QaryPublicKey, symbols: list[int], payload: bytes) -> QaryCiphertext:
        self._check_symbols(public.alphabet_sizes, symbols)
        group = self.group
        order = group.order
        s = group.random_zr()
        x_components: list[Point] = []
        w_components: list[Point] = []
        for i, symbol in enumerate(symbols):
            s_i = group.random_zr(nonzero=False)
            x_components.append(public.t[i][symbol] * ((s - s_i) % order))
            w_components.append(public.v[i][symbol] * s_i)
        key = kdf(group.serialize_gt(public.y_gt**s), "qary-hve-kem")
        sealed = SecretBox(key).seal(payload)
        return QaryCiphertext(
            n=public.n,
            x_components=tuple(x_components),
            w_components=tuple(w_components),
            sealed=sealed,
        )

    def encrypt_metadata(
        self, public: QaryPublicKey, schema: MetadataSchema, metadata: dict[str, str], payload: bytes
    ) -> QaryCiphertext:
        symbols = [
            spec.index_of(metadata[spec.name]) if spec.name in metadata else self._missing(spec)
            for spec in schema.attributes
        ]
        return self.encrypt(public, symbols, payload)

    @staticmethod
    def _missing(spec):
        from ..errors import SchemaError

        raise SchemaError(f"metadata missing attribute {spec.name!r}")

    # -- GenToken ----------------------------------------------------------------

    def gen_token(self, master: QaryMasterKey, symbols: list[int | None]) -> QaryToken:
        if len(symbols) != master.n:
            raise ParameterError(f"interest length {len(symbols)} != n={master.n}")
        positions = tuple(i for i, symbol in enumerate(symbols) if symbol is not None)
        if not positions:
            raise ParameterError("all-wildcard interests are not supported")
        group = self.group
        order = group.order
        for i in positions:
            if not 0 <= symbols[i] < master.alphabet_sizes[i]:
                raise ParameterError(f"symbol at position {i} outside alphabet")
        shares = [group.random_zr(nonzero=False) for _ in positions[:-1]]
        shares.append((master.y0 - sum(shares)) % order)
        g = group.generator
        components = []
        for i, a_i in zip(positions, shares):
            symbol = symbols[i]
            components.append(
                (
                    g * (a_i * pow(master.t[i][symbol], -1, order) % order),
                    g * (a_i * pow(master.v[i][symbol], -1, order) % order),
                )
            )
        return QaryToken(n=master.n, positions=positions, components=tuple(components))

    def token_for_interest(
        self, master: QaryMasterKey, schema: MetadataSchema, interest: Interest
    ) -> QaryToken:
        symbols: list[int | None] = []
        for spec in schema.attributes:
            wanted = interest.constraints.get(spec.name, ANY)
            symbols.append(None if wanted is ANY else spec.index_of(wanted))
        return self.gen_token(master, symbols)

    # -- Query -----------------------------------------------------------------------

    def query(self, token: QaryToken, ciphertext: QaryCiphertext) -> bytes | None:
        if token.n != ciphertext.n:
            raise ParameterError("token and ciphertext lengths differ")
        pairs = []
        for i, (y_i, l_i) in zip(token.positions, token.components):
            pairs.append((ciphertext.x_components[i], y_i))
            pairs.append((ciphertext.w_components[i], l_i))
        z = self.group.multi_pair(pairs)
        key = kdf(self.group.serialize_gt(z), "qary-hve-kem")
        try:
            return SecretBox(key).open(ciphertext.sealed)
        except DecryptionError:
            return None

    def matches(self, token: QaryToken, ciphertext: QaryCiphertext) -> bool:
        return self.query(token, ciphertext) is not None

    # -- internals -----------------------------------------------------------------------

    @staticmethod
    def _check_symbols(alphabet_sizes: tuple[int, ...], symbols: list[int]) -> None:
        if len(symbols) != len(alphabet_sizes):
            raise ParameterError(
                f"symbol vector length {len(symbols)} != n={len(alphabet_sizes)}"
            )
        for i, (symbol, size) in enumerate(zip(symbols, alphabet_sizes)):
            if not isinstance(symbol, int) or not 0 <= symbol < size:
                raise ParameterError(f"symbol at position {i} outside alphabet [0, {size})")
