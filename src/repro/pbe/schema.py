"""Metadata space, published metadata, and subscriber interests.

The P3S functional model (paper §2): matching uses "metadata associated
with published items, described as attribute-value pairs chosen from a
fixed, predefined space of attributes and their values (metadata space)";
"subscriber interest is expressed as a conjunctive predicate over the
attribute-value pairs", with ``*`` wildcards allowed per attribute.

:class:`MetadataSchema` is the machine-readable description of that space
(it is what the ARA hands to publishers and subscribers at registration —
"the PBE metadata format, i.e. field/value information", §4.3).  It maps:

* full metadata dicts → HVE attribute vectors ``x ∈ {0,1}^n``,
* :class:`Interest` predicates → HVE interest vectors ``y ∈ {0,1,*}^n``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import SchemaError
from .encoding import bits_needed, encode_value, wildcard_bits

__all__ = ["ANY", "AttributeSpec", "MetadataSchema", "Interest"]


class _Any:
    """Sentinel for a wildcard value in an interest predicate."""

    _instance: "_Any | None" = None

    def __new__(cls) -> "_Any":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"


ANY = _Any()


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute of the metadata space: a name and its value domain."""

    name: str
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.values) < 2:
            raise SchemaError(f"attribute {self.name!r} needs at least 2 values")
        if len(set(self.values)) != len(self.values):
            raise SchemaError(f"attribute {self.name!r} has duplicate values")

    @property
    def bits(self) -> int:
        return bits_needed(len(self.values))

    def index_of(self, value: str) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise SchemaError(
                f"value {value!r} not in domain of attribute {self.name!r}: {self.values}"
            ) from None


@dataclass(frozen=True)
class Interest:
    """A conjunctive predicate over the metadata space.

    Maps attribute name → required value, or :data:`ANY` for a wildcard.
    Attributes omitted from ``constraints`` default to :data:`ANY`.
    """

    constraints: dict[str, object] = field(default_factory=dict)

    def is_all_wildcard(self) -> bool:
        return all(value is ANY for value in self.constraints.values()) or not self.constraints

    def matches(self, metadata: dict[str, str]) -> bool:
        """Plaintext evaluation (the baseline broker and tests use this)."""
        for name, wanted in self.constraints.items():
            if wanted is ANY:
                continue
            if metadata.get(name) != wanted:
                return False
        return True

    def describe(self) -> str:
        if not self.constraints:
            return "<match-all>"
        parts = [
            f"{name}={'*' if value is ANY else value}"
            for name, value in sorted(self.constraints.items())
        ]
        return " AND ".join(parts)

    def to_json(self) -> str:
        """Wire form for token requests ('*' stands for :data:`ANY`)."""
        return json.dumps(
            {name: ("*" if value is ANY else value) for name, value in self.constraints.items()},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Interest":
        try:
            raw = json.loads(text)
        except ValueError as exc:
            raise SchemaError(f"malformed interest JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise SchemaError("interest JSON must be an object")
        return cls({name: (ANY if value == "*" else value) for name, value in raw.items()})


class MetadataSchema:
    """An ordered, fixed metadata space.

    Args:
        attributes: the attribute specs, in canonical order (the order
            defines bit positions in the HVE vectors and must be shared by
            all participants — the ARA distributes it).
    """

    def __init__(self, attributes: list[AttributeSpec]):
        if not attributes:
            raise SchemaError("metadata schema needs at least one attribute")
        names = [spec.name for spec in attributes]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate attribute names in schema")
        self.attributes = tuple(attributes)
        self._by_name = {spec.name: spec for spec in attributes}

    # -- shape ---------------------------------------------------------------

    @property
    def vector_length(self) -> int:
        """Total HVE vector length n = Σ bits(attribute)."""
        return sum(spec.bits for spec in self.attributes)

    def attribute(self, name: str) -> AttributeSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    # -- encoding ----------------------------------------------------------------

    def encode_metadata(self, metadata: dict[str, str]) -> list[int]:
        """Full metadata → attribute vector ``x ∈ {0,1}^n``.

        Every schema attribute must be present: published items carry a
        complete description (the paper's model has the publisher choose
        values from the fixed space for each attribute).
        """
        unknown = set(metadata) - set(self._by_name)
        if unknown:
            raise SchemaError(f"metadata has attributes outside the schema: {sorted(unknown)}")
        bits: list[int] = []
        for spec in self.attributes:
            if spec.name not in metadata:
                raise SchemaError(f"metadata missing attribute {spec.name!r}")
            bits.extend(encode_value(spec.index_of(metadata[spec.name]), len(spec.values)))
        return bits

    def encode_interest(self, interest: Interest) -> list[int | None]:
        """Interest → interest vector ``y ∈ {0,1,*}^n`` (None = wildcard)."""
        unknown = set(interest.constraints) - set(self._by_name)
        if unknown:
            raise SchemaError(f"interest has attributes outside the schema: {sorted(unknown)}")
        if interest.is_all_wildcard():
            raise SchemaError(
                "all-wildcard interests are rejected (paper §2: honest clients "
                "do not subscribe with wildcards for all attributes)"
            )
        bits: list[int | None] = []
        for spec in self.attributes:
            wanted = interest.constraints.get(spec.name, ANY)
            if wanted is ANY:
                bits.extend(wildcard_bits(len(spec.values)))
            else:
                bits.extend(encode_value(spec.index_of(wanted), len(spec.values)))
        return bits

    # -- (de)serialization — the ARA ships the schema to clients -----------------

    def to_json(self) -> str:
        return json.dumps(
            [{"name": spec.name, "values": list(spec.values)} for spec in self.attributes]
        )

    @classmethod
    def from_json(cls, text: str) -> "MetadataSchema":
        try:
            raw = json.loads(text)
            specs = [AttributeSpec(entry["name"], tuple(entry["values"])) for entry in raw]
        except (ValueError, KeyError, TypeError) as exc:
            raise SchemaError(f"malformed schema JSON: {exc}") from exc
        return cls(specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetadataSchema):
            return NotImplemented
        return self.attributes == other.attributes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetadataSchema({[spec.name for spec in self.attributes]}, n={self.vector_length})"
