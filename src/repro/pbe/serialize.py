"""Serialization for HVE tokens and ciphertexts (byte-accurate sizes)."""

from __future__ import annotations

import struct

from ..crypto.group import PairingGroup
from ..errors import SerializationError
from .hve import HVECiphertext, HVEMasterKey, HVEPublicKey, HVEToken

__all__ = [
    "serialize_hve_ciphertext",
    "deserialize_hve_ciphertext",
    "serialize_hve_token",
    "deserialize_hve_token",
    "serialize_hve_public_key",
    "deserialize_hve_public_key",
    "serialize_hve_master_key",
    "deserialize_hve_master_key",
    "hve_ciphertext_size",
    "hve_token_size",
]


def serialize_hve_ciphertext(
    group: PairingGroup, ciphertext: HVECiphertext, compressed: bool = False
) -> bytes:
    """Wire form; ``compressed`` halves the per-point footprint at the cost
    of one square root per point on deserialization (see the size/speed
    ablation in ``benchmarks/bench_ablation_compression.py``)."""
    encode = group.serialize_g1_compressed if compressed else group.serialize_g1
    flags = 1 if compressed else 0
    parts = [struct.pack(">BII", flags, ciphertext.n, len(ciphertext.sealed))]
    for point in ciphertext.x_components:
        parts.append(encode(point))
    for point in ciphertext.w_components:
        parts.append(encode(point))
    parts.append(ciphertext.sealed)
    return b"".join(parts)


def deserialize_hve_ciphertext(group: PairingGroup, data: bytes) -> HVECiphertext:
    if len(data) < 9:
        raise SerializationError("HVE ciphertext too short")
    flags, n, sealed_len = struct.unpack_from(">BII", data, 0)
    if flags not in (0, 1):
        raise SerializationError(f"unknown HVE ciphertext flags {flags:#x}")
    compressed = flags == 1
    point_len = group.g1_bytes_compressed if compressed else group.g1_bytes
    decode = group.deserialize_g1_compressed if compressed else group.deserialize_g1
    expected = 9 + 2 * n * point_len + sealed_len
    if len(data) != expected:
        raise SerializationError(f"HVE ciphertext must be {expected} bytes, got {len(data)}")
    offset = 9
    x_components = []
    for _ in range(n):
        x_components.append(decode(data[offset : offset + point_len]))
        offset += point_len
    w_components = []
    for _ in range(n):
        w_components.append(decode(data[offset : offset + point_len]))
        offset += point_len
    return HVECiphertext(
        n=n,
        x_components=tuple(x_components),
        w_components=tuple(w_components),
        sealed=data[offset:],
    )


def serialize_hve_token(group: PairingGroup, token: HVEToken) -> bytes:
    parts = [struct.pack(">II", token.n, len(token.positions))]
    for position in token.positions:
        parts.append(struct.pack(">I", position))
    for first, second in token.components:
        parts.append(group.serialize_g1(first))
        parts.append(group.serialize_g1(second))
    return b"".join(parts)


def deserialize_hve_token(group: PairingGroup, data: bytes) -> HVEToken:
    if len(data) < 8:
        raise SerializationError("HVE token too short")
    n, count = struct.unpack_from(">II", data, 0)
    point_len = group.g1_bytes
    expected = 8 + 4 * count + 2 * count * point_len
    if len(data) != expected:
        raise SerializationError(f"HVE token must be {expected} bytes, got {len(data)}")
    offset = 8
    positions = []
    for _ in range(count):
        (position,) = struct.unpack_from(">I", data, offset)
        positions.append(position)
        offset += 4
    components = []
    for _ in range(count):
        first = group.deserialize_g1(data[offset : offset + point_len])
        offset += point_len
        second = group.deserialize_g1(data[offset : offset + point_len])
        offset += point_len
        components.append((first, second))
    return HVEToken(n=n, positions=tuple(positions), components=tuple(components))


def hve_ciphertext_size(
    group: PairingGroup, n: int, payload_len: int, compressed: bool = False
) -> int:
    """Exact wire size: header + 2n G1 elements + AEAD-sealed payload.

    At PAPER parameters with the paper's 40-bit metadata spec this is the
    "~10KB encrypted metadata" that dominates P3S dissemination cost.
    """
    from ..crypto.symmetric import OVERHEAD

    point_len = group.g1_bytes_compressed if compressed else group.g1_bytes
    return 9 + 2 * n * point_len + payload_len + OVERHEAD


def hve_token_size(group: PairingGroup, num_positions: int) -> int:
    return 8 + 4 * num_positions + 2 * num_positions * group.g1_bytes


def serialize_hve_public_key(group: PairingGroup, public: HVEPublicKey) -> bytes:
    """The PBE public parameters the ARA ships to publishers (Fig. 2)."""
    parts = [struct.pack(">I", public.n), group.serialize_gt(public.y_gt)]
    for family in (public.t, public.v, public.r, public.m):
        for point in family:
            parts.append(group.serialize_g1(point))
    return b"".join(parts)


def deserialize_hve_public_key(group: PairingGroup, data: bytes) -> HVEPublicKey:
    if len(data) < 4:
        raise SerializationError("HVE public key too short")
    (n,) = struct.unpack_from(">I", data, 0)
    point_len = group.g1_bytes
    expected = 4 + group.gt_bytes + 4 * n * point_len
    if len(data) != expected:
        raise SerializationError(f"HVE public key must be {expected} bytes, got {len(data)}")
    offset = 4
    y_gt = group.deserialize_gt(data[offset : offset + group.gt_bytes])
    offset += group.gt_bytes
    families = []
    for _ in range(4):
        points = []
        for _ in range(n):
            points.append(group.deserialize_g1(data[offset : offset + point_len]))
            offset += point_len
        families.append(tuple(points))
    return HVEPublicKey(n=n, y_gt=y_gt, t=families[0], v=families[1], r=families[2], m=families[3])


def serialize_hve_master_key(group: PairingGroup, master: HVEMasterKey) -> bytes:
    """The PBE master secret (ARA → PBE-TS provisioning)."""
    width = group.zr_bytes
    parts = [struct.pack(">I", master.n), master.y0.to_bytes(width, "big")]
    for family in (master.t, master.v, master.r, master.m):
        for value in family:
            parts.append(value.to_bytes(width, "big"))
    return b"".join(parts)


def deserialize_hve_master_key(group: PairingGroup, data: bytes) -> HVEMasterKey:
    if len(data) < 4:
        raise SerializationError("HVE master key too short")
    (n,) = struct.unpack_from(">I", data, 0)
    width = group.zr_bytes
    expected = 4 + width * (1 + 4 * n)
    if len(data) != expected:
        raise SerializationError(f"HVE master key must be {expected} bytes, got {len(data)}")
    offset = 4
    y0 = int.from_bytes(data[offset : offset + width], "big")
    offset += width
    families = []
    for _ in range(4):
        values = []
        for _ in range(n):
            values.append(int.from_bytes(data[offset : offset + width], "big"))
            offset += width
        families.append(tuple(values))
    return HVEMasterKey(n=n, y0=y0, t=families[0], v=families[1], r=families[2], m=families[3])
