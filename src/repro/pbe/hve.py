"""Hidden-Vector Encryption over prime-order groups (Iovino-Persiano '08).

This is P3S's predicate-based encryption (paper §3.1 and [7, 10]): the
publisher encrypts under an *attribute vector* ``x ∈ {0,1}^n``; the
subscriber holds a *token* for an *interest vector* ``y ∈ {0,1,*}^n``;
querying the ciphertext with the token recovers the message iff
``match(x, y) = 1`` (equality on every non-wildcard position).

Construction (notation follows [7]):

* ``Setup(n)`` — master secret ``y₀`` and, per position ``i``, secrets
  ``t_i, v_i, r_i, m_i``; public key ``Y = ê(g,g)^{y₀}`` and
  ``T_i = g^{t_i}, V_i = g^{v_i}, R_i = g^{r_i}, M_i = g^{m_i}``.
* ``Encrypt(x)`` — pick ``s`` and per-position ``s_i``; for bit 1 emit
  ``X_i = T_i^{s−s_i}, W_i = V_i^{s_i}``; for bit 0 emit
  ``X_i = R_i^{s−s_i}, W_i = M_i^{s_i}``.
* ``GenToken(y)`` — additively share ``y₀ = Σ a_i`` over the non-wildcard
  positions ``S``; for ``y_i = 1`` emit ``Y_i = g^{a_i/t_i}, L_i = g^{a_i/v_i}``,
  for ``y_i = 0`` emit ``Y_i = g^{a_i/r_i}, L_i = g^{a_i/m_i}``.
* ``Query`` — ``Z = Π_{i∈S} ê(X_i, Y_i)·ê(W_i, L_i)``; on a match every
  factor is ``ê(g,g)^{a_i·s}`` so ``Z = Y^s``; any mismatched position
  contributes a random-looking factor.

**Message transport.** [7] is a predicate encryption; P3S uses it to carry
a GUID.  We make the match test decisive by using ``Y^s`` as a KEM: the
payload rides in an authenticated :class:`SecretBox` keyed by
``KDF(Y^s)``, so ``Query`` either returns the exact payload or ``None``
(MAC failure ⇒ no match).  This mirrors how any deployment would carry
bytes and adds only constant overhead.

Security properties (paper §3.1): semantic security and collusion
resistance hold for [7]'s construction; **token security does not** — a
party holding a token that can also encrypt chosen metadata can probe the
interest vector (see :mod:`repro.privacy.analysis`, which implements
exactly that attack).

The per-token freshness of the additive shares ``a_i`` provides collusion
resistance: components from different tokens use incompatible sharings of
``y₀``, so mixing them yields garbage.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass

from ..crypto.curve import Point
from ..crypto.group import PairingGroup
from ..crypto.hashing import kdf
from ..crypto.symmetric import SecretBox
from ..errors import DecryptionError, ParameterError
from ..obs.profile import instrument, record_op

__all__ = ["HVE", "HVEPublicKey", "HVEMasterKey", "HVEToken", "HVECiphertext", "WILDCARD"]

WILDCARD = None  # interest-vector positions use None for '*'


@dataclass(frozen=True)
class HVEPublicKey:
    """Public parameters for vector length ``n``."""

    n: int
    y_gt: object  # Y = ê(g,g)^{y₀}  (Fq2)
    t: tuple[Point, ...]
    v: tuple[Point, ...]
    r: tuple[Point, ...]
    m: tuple[Point, ...]


@dataclass(frozen=True)
class HVEMasterKey:
    """Master secret — held only by the PBE Token Server."""

    n: int
    y0: int
    t: tuple[int, ...]
    v: tuple[int, ...]
    r: tuple[int, ...]
    m: tuple[int, ...]


@dataclass(frozen=True)
class HVEToken:
    """Token for one interest vector.

    ``positions`` lists the non-wildcard indices; ``components[i]`` is the
    pair ``(Y_i, L_i)`` for ``positions[i]``.  The interest vector itself
    is *not* stored — tokens do not reveal it directly (though see the
    token-security caveat in the module docstring).
    """

    n: int
    positions: tuple[int, ...]
    components: tuple[tuple[Point, Point], ...]


@dataclass(frozen=True)
class HVECiphertext:
    """Encryption of a byte payload under attribute vector ``x``."""

    n: int
    x_components: tuple[Point, ...]  # X_i
    w_components: tuple[Point, ...]  # W_i
    sealed: bytes  # SecretBox_{KDF(Y^s)}(payload)


class HVE:
    """The IP08 scheme over a :class:`PairingGroup`.

    Args:
        group: the pairing group.
        precompute: evaluate ``Query`` through per-token Miller-line
            precomputation (``None`` reads ``P3S_HVE_PRECOMPUTE``,
            default on).  A token's line functions are computed on its
            first query and cached, so a subscription matched against a
            stream of ciphertexts pays the setup once; results are
            bit-identical to the naive multi-pairing (enforced by
            ``tests/par/test_equivalence.py``).
        match_cache_size: entries in the (token, ciphertext) → result
            memo.  ``Query`` is deterministic, so a repeated evaluation —
            the ``matches()``-then-``query()`` pattern of the delegated
            matcher, or a re-broadcast ciphertext — early-exits with no
            pairings at all.  ``0`` disables the memo.
    """

    _TOKEN_CACHE_SIZE = 128

    def __init__(
        self,
        group: PairingGroup,
        precompute: bool | None = None,
        match_cache_size: int = 256,
    ):
        self.group = group
        if precompute is None:
            precompute = os.environ.get("P3S_HVE_PRECOMPUTE", "1") != "0"
        self.precompute = precompute
        self._token_pre: OrderedDict[HVEToken, list] = OrderedDict()
        self._match_cache_size = match_cache_size
        self._match_memo: OrderedDict[tuple[HVEToken, HVECiphertext], bytes | None] = (
            OrderedDict()
        )

    def clear_caches(self) -> None:
        """Drop the token-precomputation and match memo caches."""
        self._token_pre.clear()
        self._match_memo.clear()

    def clear_match_memo(self) -> None:
        """Drop only the (token, ciphertext) result memo.

        Token precomputations survive — this is how benchmarks measure
        the warm per-evaluation cost without memo hits short-circuiting
        repeated identical queries."""
        self._match_memo.clear()

    # -- Setup ------------------------------------------------------------

    def setup(self, n: int) -> tuple[HVEPublicKey, HVEMasterKey]:
        if n < 1:
            raise ParameterError("vector length must be >= 1")
        group = self.group
        y0 = group.random_zr()
        t = tuple(group.random_zr() for _ in range(n))
        v = tuple(group.random_zr() for _ in range(n))
        r = tuple(group.random_zr() for _ in range(n))
        m = tuple(group.random_zr() for _ in range(n))
        g = group.generator
        public = HVEPublicKey(
            n=n,
            y_gt=group.gt_generator**y0,
            t=tuple(g * e for e in t),
            v=tuple(g * e for e in v),
            r=tuple(g * e for e in r),
            m=tuple(g * e for e in m),
        )
        return public, HVEMasterKey(n=n, y0=y0, t=t, v=v, r=r, m=m)

    # -- Encrypt -------------------------------------------------------------

    @instrument("hve.encrypt")
    def encrypt(self, public: HVEPublicKey, x: list[int], payload: bytes) -> HVECiphertext:
        """Encrypt ``payload`` under attribute vector ``x ∈ {0,1}^n``."""
        self._check_attribute_vector(public.n, x)
        group = self.group
        order = group.order
        s = group.random_zr()
        x_components: list[Point] = []
        w_components: list[Point] = []
        for i, bit in enumerate(x):
            s_i = group.random_zr(nonzero=False)
            if bit == 1:
                x_components.append(public.t[i] * ((s - s_i) % order))
                w_components.append(public.v[i] * s_i)
            else:
                x_components.append(public.r[i] * ((s - s_i) % order))
                w_components.append(public.m[i] * s_i)
        key = kdf(group.serialize_gt(public.y_gt**s), "hve-kem")
        sealed = SecretBox(key).seal(payload)
        return HVECiphertext(
            n=public.n,
            x_components=tuple(x_components),
            w_components=tuple(w_components),
            sealed=sealed,
        )

    # -- GenToken ----------------------------------------------------------------

    @instrument("hve.token_gen")
    def gen_token(self, master: HVEMasterKey, y: list[int | None]) -> HVEToken:
        """Token for interest vector ``y ∈ {0,1,*}^n`` (``None`` = wildcard).

        At least one position must be non-wildcard (the all-wildcard token
        would trivially decrypt everything; the paper assumes honest
        clients never subscribe to everything, and the scheme cannot share
        ``y₀`` over zero positions).
        """
        if len(y) != master.n:
            raise ParameterError(f"interest vector length {len(y)} != n={master.n}")
        positions = tuple(i for i, value in enumerate(y) if value is not None)
        if not positions:
            raise ParameterError("all-wildcard interest vectors are not supported")
        for i in positions:
            if y[i] not in (0, 1):
                raise ParameterError(f"interest position {i} must be 0, 1 or wildcard")
        group = self.group
        order = group.order
        # additive sharing of y₀ over the non-wildcard positions
        shares = [group.random_zr(nonzero=False) for _ in positions[:-1]]
        shares.append((master.y0 - sum(shares)) % order)
        g = group.generator
        components: list[tuple[Point, Point]] = []
        for i, a_i in zip(positions, shares):
            if y[i] == 1:
                first = g * (a_i * pow(master.t[i], -1, order) % order)
                second = g * (a_i * pow(master.v[i], -1, order) % order)
            else:
                first = g * (a_i * pow(master.r[i], -1, order) % order)
                second = g * (a_i * pow(master.m[i], -1, order) % order)
            components.append((first, second))
        return HVEToken(n=master.n, positions=positions, components=tuple(components))

    # -- Query ----------------------------------------------------------------------

    @instrument("hve.match")
    def query(self, token: HVEToken, ciphertext: HVECiphertext) -> bytes | None:
        """Return the payload iff the token's predicate matches, else ``None``.

        The pairing product is evaluated with a shared final
        exponentiation (:meth:`PairingGroup.multi_pair`) — the ablation
        bench ``bench_ablation_multipairing`` quantifies the saving — and,
        when :attr:`precompute` is on, with the token's cached Miller
        lines (one-time setup, ~10x cheaper per ciphertext after).

        ``Query`` is deterministic, so the result is memoised: evaluating
        the same (token, ciphertext) pair again — the ``matches()`` probe
        the delegated matcher runs before the subscriber's own ``query()``,
        or a re-broadcast ciphertext — early-exits without re-running a
        single pairing.  IP08 itself cannot short-circuit *within* one
        evaluation: every non-wildcard position's factors are needed
        before the product is distinguishable from random, which is
        exactly the attribute-hiding property.
        """
        memo_key = None
        if self._match_cache_size:
            memo_key = (token, ciphertext)
            memo = self._match_memo
            if memo_key in memo:
                memo.move_to_end(memo_key)
                record_op("hve.match_memo_hit")
                return memo[memo_key]
        candidate_key = self._query_key(token, ciphertext)
        try:
            payload = SecretBox(candidate_key).open(ciphertext.sealed)
        except DecryptionError:
            payload = None
        if memo_key is not None:
            self._match_memo[memo_key] = payload
            while len(self._match_memo) > self._match_cache_size:
                self._match_memo.popitem(last=False)
        if payload is None:
            return None
        record_op("hve.match_hit")
        return payload

    def matches(self, token: HVEToken, ciphertext: HVECiphertext) -> bool:
        """Predicate-only form of :meth:`query` (shares its memo, so a
        ``matches`` probe followed by ``query`` costs one evaluation)."""
        return self.query(token, ciphertext) is not None

    # -- internals ---------------------------------------------------------------------

    def _token_precomputation(self, token: HVEToken) -> list:
        """Per-component Miller lines for ``token``, cached LRU."""
        cache = self._token_pre
        entry = cache.get(token)
        if entry is not None:
            cache.move_to_end(token)
            return entry
        group = self.group
        entry = [
            (group.precompute_pairing(y_i), group.precompute_pairing(l_i))
            for y_i, l_i in token.components
        ]
        cache[token] = entry
        while len(cache) > self._TOKEN_CACHE_SIZE:
            cache.popitem(last=False)
        return entry

    def _query_key(self, token: HVEToken, ciphertext: HVECiphertext) -> bytes:
        if token.n != ciphertext.n:
            raise ParameterError("token and ciphertext vector lengths differ")
        if self.precompute:
            # ê is symmetric on G1, so pair (token, ciphertext) with the
            # token's precomputed lines as the Miller argument — same GT
            # element, bit for bit, as the naive orientation below.
            entries = []
            for i, (pre_y, pre_l) in zip(
                token.positions, self._token_precomputation(token)
            ):
                entries.append((pre_y, ciphertext.x_components[i]))
                entries.append((pre_l, ciphertext.w_components[i]))
            z = self.group.multi_pair_precomputed(entries)
        else:
            pairs: list[tuple[Point, Point]] = []
            for i, (y_i, l_i) in zip(token.positions, token.components):
                pairs.append((ciphertext.x_components[i], y_i))
                pairs.append((ciphertext.w_components[i], l_i))
            z = self.group.multi_pair(pairs)
        return kdf(self.group.serialize_gt(z), "hve-kem")

    @staticmethod
    def _check_attribute_vector(n: int, x: list[int]) -> None:
        if len(x) != n:
            raise ParameterError(f"attribute vector length {len(x)} != n={n}")
        for i, bit in enumerate(x):
            if bit not in (0, 1):
                raise ParameterError(f"attribute position {i} must be 0 or 1 (got {bit!r})")
