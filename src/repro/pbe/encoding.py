"""Bit-level encoding of attribute values for the binary HVE alphabet.

The HVE construction P3S adopts restricts the alphabet to ``{0, 1}``
(paper §3.1).  To support "a metadata space of N attributes, each of which
may take one of 8 values, we construct the 3N-bit vector x where the first
3 bits encode the 1st attribute" — and "a wildcard spans all bits that
represent the attribute".  This module provides exactly that mapping,
generalised to any per-attribute domain size.
"""

from __future__ import annotations

from ..errors import SchemaError

__all__ = ["bits_needed", "encode_value", "decode_value", "wildcard_bits"]


def bits_needed(domain_size: int) -> int:
    """Bits required to encode an index in ``[0, domain_size)``."""
    if domain_size < 2:
        raise SchemaError("attribute domains need at least 2 values")
    return (domain_size - 1).bit_length()


def encode_value(index: int, domain_size: int) -> list[int]:
    """Fixed-width big-endian bit encoding of a value index."""
    width = bits_needed(domain_size)
    if not 0 <= index < domain_size:
        raise SchemaError(f"value index {index} out of range [0, {domain_size})")
    return [(index >> (width - 1 - position)) & 1 for position in range(width)]


def decode_value(bits: list[int], domain_size: int) -> int:
    width = bits_needed(domain_size)
    if len(bits) != width:
        raise SchemaError(f"expected {width} bits, got {len(bits)}")
    index = 0
    for bit in bits:
        index = (index << 1) | bit
    if index >= domain_size:
        raise SchemaError(f"decoded index {index} outside domain of size {domain_size}")
    return index


def wildcard_bits(domain_size: int) -> list[None]:
    """A wildcard "spans all bits that represent the attribute" (§3.1)."""
    return [None] * bits_needed(domain_size)
