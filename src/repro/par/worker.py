"""Worker-side evaluation for :class:`repro.par.MatchPool`.

Every function here is module-level so it pickles by reference into
:mod:`multiprocessing` workers.  A worker holds one process-global
:class:`_WorkerState` — the pairing group, an :class:`~repro.pbe.hve.HVE`
instance (whose per-token Miller-precomputation cache persists across
chunks, so a subscription token matched against a stream of publications
pays its line-function setup once per worker), and a digest-keyed
deserialization cache for token bytes.

The serial fallback in :mod:`repro.par.pool` drives the *same* state
class in-process, so parallel and serial paths share one code path for
the actual crypto — result equivalence is structural, not accidental.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict

from ..crypto.group import PairingGroup
from ..crypto.params import TypeAParams
from ..pbe.hve import HVE, HVEToken
from ..pbe.serialize import deserialize_hve_ciphertext, deserialize_hve_token

__all__ = ["params_to_wire", "init_worker", "match_chunk", "WorkerState"]

_TOKEN_CACHE_SIZE = 512


def params_to_wire(params: TypeAParams) -> tuple:
    """A picklable description of a parameter set (survives spawn starts,
    where workers cannot inherit live objects)."""
    return (params.name, params.r, params.h, params.q, params.gx, params.gy)


def _params_from_wire(wire: tuple) -> TypeAParams:
    name, r, h, q, gx, gy = wire
    return TypeAParams(name=name, r=r, h=h, q=q, gx=gx, gy=gy)


class WorkerState:
    """Per-process crypto state: group, HVE, token-deserialization cache."""

    def __init__(self, params_wire: tuple):
        self.group = PairingGroup(_params_from_wire(params_wire))
        self.hve = HVE(self.group)
        self._tokens: OrderedDict[bytes, HVEToken] = OrderedDict()

    def token(self, token_bytes: bytes) -> HVEToken:
        digest = hashlib.sha256(token_bytes).digest()
        cached = self._tokens.get(digest)
        if cached is not None:
            self._tokens.move_to_end(digest)
            return cached
        token = deserialize_hve_token(self.group, token_bytes)
        self._tokens[digest] = token
        while len(self._tokens) > _TOKEN_CACHE_SIZE:
            self._tokens.popitem(last=False)
        return token

    def match_chunk(
        self, ciphertext_bytes: bytes, indexed_tokens: list[tuple[int, bytes]]
    ) -> tuple[list[tuple[int, bytes | None]], float]:
        """Evaluate one chunk; returns indexed results plus busy seconds."""
        started = time.perf_counter()
        ciphertext = deserialize_hve_ciphertext(self.group, ciphertext_bytes)
        results = [
            (index, self.hve.query(self.token(token_bytes), ciphertext))
            for index, token_bytes in indexed_tokens
        ]
        return results, time.perf_counter() - started


_state: WorkerState | None = None


def init_worker(params_wire: tuple, warm_job=None) -> None:
    """Pool initializer: build the process-global :class:`WorkerState`.

    ``warm_job`` — an optional ``(ciphertext_bytes, [(index, token_bytes),
    ...])`` chunk evaluated immediately, so *every* worker enters service
    with its token deserialization and Miller-precomputation caches hot
    (``pool.map`` has no worker↔chunk affinity, so lazy warming would
    leave each worker paying cold setup for tokens it first sees
    mid-stream)."""
    global _state
    _state = WorkerState(params_wire)
    if warm_job is not None:
        ciphertext_bytes, indexed_tokens = warm_job
        _state.match_chunk(ciphertext_bytes, indexed_tokens)


def match_chunk(job: tuple[bytes, list[tuple[int, bytes]]]):
    """Pool task: ``(ciphertext_bytes, [(index, token_bytes), ...])``."""
    assert _state is not None, "worker used before init_worker ran"
    ciphertext_bytes, indexed_tokens = job
    return _state.match_chunk(ciphertext_bytes, indexed_tokens)
