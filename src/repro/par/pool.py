"""``MatchPool`` — fan one publication out across subscriber tokens.

The DS's matching workload is embarrassingly parallel: one HVE ciphertext
evaluated against T independent subscription tokens.  ``MatchPool`` runs
that product either

* **serially** (``workers <= 1``, the default): in-process, through the
  exact same :class:`repro.par.worker.WorkerState` code path the pool
  workers use, or
* **in a process pool** (``workers >= 2``): tokens are chunked, chunks
  are mapped across workers, and results are reassembled by token index —
  so the result list is deterministic and identical to the serial one
  regardless of worker count or scheduling.  ``tests/par/test_pool.py``
  enforces this.

Worker processes are long-lived (created once, reused across
publications) and each holds its own precomputation caches — an HVE
token's Miller-loop setup is paid once per worker, then amortized over
the publication stream.  The ``fork`` start method is preferred (cheap,
inherits warmed parent caches); ``spawn`` works too because workers
rebuild state from a picklable parameter tuple.

Pool size resolution: explicit ``workers`` argument, else the
``P3S_MATCH_WORKERS`` environment variable, else serial.  Metrics go
through the process-global :mod:`repro.obs` hooks:

======================  =====================================================
``par.match``           counter — one per (token, ciphertext) evaluation
``par.match_batch``     counter — one per :meth:`MatchPool.match` call
``par.chunk``           counter — chunks dispatched to the pool
``par.match_wall_s``    observation — wall time of one batch
``par.match_busy_s``    observation — summed worker busy time of one batch
======================  =====================================================
"""

from __future__ import annotations

import multiprocessing
import os
import time

from ..crypto.group import PairingGroup
from ..obs.profile import observe, record_op
from . import worker as worker_mod

__all__ = ["MatchPool", "resolve_workers"]


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: argument → ``P3S_MATCH_WORKERS`` → 0 (serial)."""
    if workers is None:
        raw = os.environ.get("P3S_MATCH_WORKERS", "").strip()
        try:
            workers = int(raw) if raw else 0
        except ValueError:
            workers = 0
    return max(0, workers)


class MatchPool:
    """Evaluate HVE queries for many tokens against one ciphertext.

    Args:
        group: the :class:`PairingGroup` tokens/ciphertexts live in.
        workers: pool size; ``None`` defers to ``P3S_MATCH_WORKERS``;
            values ``<= 1`` select the serial in-process path.
        chunk_size: tokens per pool task; ``None`` balances chunks so
            every worker gets at most two.
    """

    def __init__(
        self,
        group: PairingGroup,
        workers: int | None = None,
        chunk_size: int | None = None,
        warm: tuple[bytes, list[bytes]] | None = None,
    ):
        self.group = group
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        # (ciphertext_bytes, token_bytes_list) evaluated by every worker at
        # startup, so the whole pool enters service with hot caches
        self.warm = warm
        self._pool = None
        self._serial_state: worker_mod.WorkerState | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def parallel(self) -> bool:
        return self.workers >= 2

    def start(self) -> "MatchPool":
        """Create (and for serial mode, warm) the execution backend.

        Lazy — :meth:`match` calls this on first use; calling it eagerly
        moves worker startup out of the latency-critical first match.
        """
        warm_job = None
        if self.warm is not None:
            ciphertext_bytes, token_bytes_list = self.warm
            warm_job = (ciphertext_bytes, list(enumerate(token_bytes_list)))
        if self.parallel:
            if self._pool is None:
                wire = worker_mod.params_to_wire(self.group.params)
                ctx = self._context()
                if ctx.get_start_method() == "fork":
                    # Build (and warm) the worker state in the parent, then
                    # fork: every child inherits the hot caches through
                    # copy-on-write, and the warm-up is synchronous — no
                    # worker starts cold or mid-warm-up.
                    worker_mod.init_worker(wire, warm_job)
                    self._pool = ctx.Pool(processes=self.workers)
                else:
                    self._pool = ctx.Pool(
                        processes=self.workers,
                        initializer=worker_mod.init_worker,
                        initargs=(wire, warm_job),
                    )
        elif self._serial_state is None:
            self._serial_state = worker_mod.WorkerState(
                worker_mod.params_to_wire(self.group.params)
            )
            if warm_job is not None:
                self._serial_state.match_chunk(*warm_job)
        return self

    @staticmethod
    def _context():
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._serial_state = None

    def __enter__(self) -> "MatchPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- matching ------------------------------------------------------------

    def match(
        self, ciphertext_bytes: bytes, token_bytes_list: list[bytes]
    ) -> list[bytes | None]:
        """Query every token against the ciphertext.

        Returns one entry per token, in token order: the decrypted payload
        on a predicate match, ``None`` otherwise.  Serial and parallel
        executions return identical lists.
        """
        self.start()
        started = time.perf_counter()
        indexed = list(enumerate(token_bytes_list))
        if not indexed:
            return []
        if self.parallel:
            results, busy = self._match_parallel(ciphertext_bytes, indexed)
        else:
            chunk_results, busy = self._serial_state.match_chunk(
                ciphertext_bytes, indexed
            )
            results = [payload for _, payload in chunk_results]
        record_op("par.match_batch")
        record_op("par.match", len(indexed))
        observe("par.match_wall_s", time.perf_counter() - started)
        observe("par.match_busy_s", busy)
        return results

    def match_indices(
        self, ciphertext_bytes: bytes, token_bytes_list: list[bytes]
    ) -> list[int]:
        """Indices of matching tokens, ascending."""
        results = self.match(ciphertext_bytes, token_bytes_list)
        return [i for i, payload in enumerate(results) if payload is not None]

    def _match_parallel(
        self, ciphertext_bytes: bytes, indexed: list[tuple[int, bytes]]
    ) -> tuple[list[bytes | None], float]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(indexed) // (2 * self.workers)))
        chunks = [indexed[i : i + size] for i in range(0, len(indexed), size)]
        record_op("par.chunk", len(chunks))
        jobs = [(ciphertext_bytes, chunk) for chunk in chunks]
        ordered: list[bytes | None] = [None] * len(indexed)
        busy = 0.0
        for chunk_results, chunk_busy in self._pool.map(worker_mod.match_chunk, jobs):
            busy += chunk_busy
            for index, payload in chunk_results:
                ordered[index] = payload
        return ordered, busy
