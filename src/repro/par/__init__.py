"""repro.par — parallel publication/token matching.

:class:`MatchPool` fans one publication's HVE ciphertext out across many
subscriber tokens, over a process pool (``workers >= 2``) or a serial
in-process fallback — both produce identical, index-ordered results.
The DS uses it for delegated matching (see :mod:`repro.core.ds`); pool
size is wired through :class:`repro.core.config.P3SConfig` or the
``P3S_MATCH_WORKERS`` environment variable.
"""

from .pool import MatchPool, resolve_workers

__all__ = ["MatchPool", "resolve_workers"]
