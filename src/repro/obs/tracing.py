"""Structured spans over simulated time, linked into causal trees.

A :class:`Span` records one named unit of work: which component performed
it, when it started and ended on the *simulated* clock, how much
*wall-clock* time the real computation underneath took, its parent span,
and free-form attributes.  Spans reference their parent by id, so one
publication's journey — ``publish → ds.fan_out → subscriber.match →
subscriber.retrieve → deliver`` — forms a single tree even though the
hops run as separate simulator processes.

Context propagation follows the OpenTelemetry shape scaled down to the
simulator: a :class:`SpanContext` (trace id + span id) rides in the
``headers`` dict that every :class:`~repro.net.network.Message`,
JMS frame and RPC request already carries (:data:`CONTEXT_HEADER`).
The receiving component extracts it and parents its own span there.
Like ``publication_id``, the context is simulation-only metadata: it is
not accounted in wire sizes and carries nothing an eavesdropper could
use (the privacy analysis never reads it).

Two usage patterns, matching the two shapes of work in the simulator:

* **synchronous blocks** (real crypto between simulator yields) use the
  stack-scoped context manager :meth:`Tracer.span` — nested spans parent
  automatically and per-op counters attribute to the innermost span's
  component.  Such a block must not contain simulator yields.
* **process-long spans** (covering ``yield sim.timeout(...)``) use
  explicit :meth:`Tracer.start_span` / :meth:`Span.end`, because the
  stack cannot track generator interleavings.  :meth:`Tracer.attach`
  temporarily pushes such a span around a synchronous block so crypto
  counters inside still attribute correctly.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .ring import FlightRecorder
from .sampling import TraceSampler

__all__ = ["Span", "SpanContext", "Tracer", "TraceSampler", "CONTEXT_HEADER"]

# Header key under which a SpanContext rides in message/frame headers.
CONTEXT_HEADER = "obs-ctx"

# Unsampled traces buffered per tracer awaiting a possible tail
# promotion; evicting the oldest whole trace keeps this memory-flat.
DEFAULT_PENDING_TRACE_CAPACITY = 256

# Span ``status`` values that mean the hop succeeded.  The tail rule
# promotes on any *other* status (miss, refused, malformed, ...) — the
# protocol stamps successes routinely, and keeping every
# ``status="delivered"`` trace would nullify sampling.
OK_STATUSES = frozenset({"ok", "delivered", "hit"})


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span: enough to parent a child.

    Inside the simulator the context object itself rides in header
    dicts; on the live TCP substrate it must survive byte serialization,
    so :meth:`to_wire`/:meth:`from_wire` give it a JSON-safe form that
    :mod:`repro.live.wire` embeds in the frame header.  ``sampled``
    carries the tail-sampler's head decision downstream
    (:mod:`repro.obs.sampling`): a receiving tracer honours it instead
    of re-deciding, so a kept trace is complete across processes.
    """

    trace_id: int
    span_id: int
    sampled: bool = True

    def to_wire(self) -> list[int]:
        """JSON-serializable form for the live frame header."""
        return [self.trace_id, self.span_id, 1 if self.sampled else 0]

    @classmethod
    def from_wire(cls, value: object) -> "SpanContext | None":
        """Rebuild a context from its wire form; ``None`` if malformed.

        Accepts both the historical 2-element ``[trace_id, span_id]``
        form (pre-sampling peers: implicitly sampled) and the 3-element
        form carrying the sampling decision.
        """
        if (
            isinstance(value, (list, tuple))
            and len(value) in (2, 3)
            and all(isinstance(item, int) for item in value)
        ):
            sampled = bool(value[2]) if len(value) == 3 else True
            return cls(value[0], value[1], sampled)
        return None


@dataclass
class Span:
    """One timed, attributed unit of work inside a trace."""

    span_id: int
    trace_id: int
    parent_id: int | None
    name: str
    component: str
    start: float  # simulated seconds
    end: float | None = None  # simulated seconds; None while open
    wall_start: float = 0.0
    wall_end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    sampled: bool = True

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id, self.sampled)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated duration (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def wall_duration(self) -> float:
        """Wall-clock seconds spent inside the span (real compute)."""
        return 0.0 if self.wall_end is None else self.wall_end - self.wall_start

    def set(self, **attrs: Any) -> "Span":
        self.attributes.update(attrs)
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (used by the JSONL exporter)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "component": self.component,
            "start_s": self.start,
            "end_s": self.end,
            "wall_s": round(self.wall_duration, 9),
            "attributes": dict(self.attributes),
        }


def _parent_context(parent: "Span | SpanContext | None") -> SpanContext | None:
    if parent is None:
        return None
    if isinstance(parent, Span):
        return parent.context
    return parent


class Tracer:
    """Span factory, store, and (synchronous) active-span stack.

    ``clock`` supplies simulated time; the orchestrator binds it to
    ``sim.now`` when the observability instance is installed.

    Span storage is a :class:`~repro.obs.ring.FlightRecorder`:
    ``capacity=None`` (default) keeps the historical unbounded-list
    behaviour; a live service passes a bound so a week of traffic stays
    memory-flat, with evictions counted in :attr:`dropped_spans`.
    Spans whose wall-clock duration reaches ``slow_span_threshold_s``
    additionally land in the bounded :attr:`slow_spans` log.

    ``sampler`` (a :class:`~repro.obs.sampling.TraceSampler`) enables
    tail-based sampling: locally rooted traces get a deterministic head
    decision, remote parents' decisions are honoured, and unsampled
    spans are buffered instead of recorded — promoted wholesale into the
    recorder if any span of the trace ends slow, with an ``error``
    attribute, or with a ``status`` outside :data:`OK_STATUSES`.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        capacity: int | None = None,
        slow_span_threshold_s: float | None = None,
        slow_log_capacity: int = 32,
        sampler: TraceSampler | None = None,
        pending_trace_capacity: int = DEFAULT_PENDING_TRACE_CAPACITY,
    ):
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self.spans: FlightRecorder = FlightRecorder(capacity, on_evict=self._forget)
        self.slow_span_threshold_s = slow_span_threshold_s
        self.slow_spans: deque[Span] = deque(maxlen=slow_log_capacity)
        self.sampler = sampler
        self.pending_trace_capacity = pending_trace_capacity
        # unsampled traces awaiting a possible tail promotion, oldest first
        self._pending: OrderedDict[int, list[Span]] = OrderedDict()
        # trace ids already promoted: later spans record directly
        self._promoted: OrderedDict[int, None] = OrderedDict()
        self._by_id: dict[int, Span] = {}
        self._stack: list[Span] = []
        self._next_span_id = 1
        self._next_trace_id = 1

    @property
    def dropped_spans(self) -> int:
        """Spans evicted from the flight recorder (never silent)."""
        return self.spans.dropped

    def _forget(self, span: Span) -> None:
        """Eviction hook: keep the id index in step with the ring."""
        self._by_id.pop(span.span_id, None)

    # -- creation ------------------------------------------------------------

    def start_span(
        self,
        name: str,
        component: str,
        parent: Span | SpanContext | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; explicit spans are NOT pushed on the active stack.

        With no ``parent``, the current stack top (if any) is used;
        otherwise a new trace is started.
        """
        context = _parent_context(parent)
        if context is None and self._stack:
            context = self._stack[-1].context
        if context is None:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
            sampled = self.sampler is None or self.sampler.keep(trace_id)
        else:
            trace_id = context.trace_id
            parent_id = context.span_id
            # honour the propagated/parent decision — never re-decide,
            # so a kept trace is complete across processes
            sampled = context.sampled
        span = Span(
            span_id=self._next_span_id,
            trace_id=trace_id,
            parent_id=parent_id,
            name=name,
            component=component,
            start=self.clock(),
            wall_start=time.perf_counter(),
            attributes=dict(attrs),
            sampled=sampled,
        )
        self._next_span_id += 1
        if sampled or trace_id in self._promoted:
            self.spans.append(span)
            self._by_id[span.span_id] = span
        else:
            self._buffer_pending(span)
        return span

    def end_span(self, span: Span, **attrs: Any) -> Span:
        if attrs:
            span.attributes.update(attrs)
        if not span.finished:
            span.end = self.clock()
            span.wall_end = time.perf_counter()
            if (
                self.slow_span_threshold_s is not None
                and span.wall_duration >= self.slow_span_threshold_s
            ):
                self.slow_spans.append(span)
            if (
                not span.sampled
                and span.trace_id not in self._promoted
                and self._should_promote(span)
            ):
                self._promote(span.trace_id, ensure=span)
        return span

    # -- tail sampling ---------------------------------------------------------

    def _buffer_pending(self, span: Span) -> None:
        """Hold an unsampled span for a possible tail promotion."""
        trace = self._pending.setdefault(span.trace_id, [])
        trace.append(span)
        self._pending.move_to_end(span.trace_id)
        while len(self._pending) > self.pending_trace_capacity:
            self._pending.popitem(last=False)
            if self.sampler is not None:
                self.sampler.evicted_traces += 1

    def _should_promote(self, span: Span) -> bool:
        """Tail rule: errors and failure statuses always; slow if bounded."""
        if "error" in span.attributes:
            return True
        status = span.attributes.get("status")
        if status is not None and status not in OK_STATUSES:
            return True
        threshold = self.slow_span_threshold_s
        return threshold is not None and span.wall_duration >= threshold

    def _promote(self, trace_id: int, ensure: Span | None = None) -> None:
        """Move a buffered trace into the recorder; later spans follow."""
        for buffered in self._pending.pop(trace_id, []):
            self.spans.append(buffered)
            self._by_id[buffered.span_id] = buffered
        if ensure is not None and ensure.span_id not in self._by_id:
            # the triggering span outlived its buffered trace (evicted)
            self.spans.append(ensure)
            self._by_id[ensure.span_id] = ensure
        self._promoted[trace_id] = None
        while len(self._promoted) > 4 * self.pending_trace_capacity:
            self._promoted.popitem(last=False)
        if self.sampler is not None:
            self.sampler.promoted_traces += 1

    def drain_finished(self) -> list[Span]:
        """Destructive scrape: remove and return every finished span.

        The telemetry plane's KIND_SPANS RPC calls this — repeated polls
        see each span exactly once, and the recorder never regrows past
        its capacity between polls.
        """
        drained = self.spans.drain()
        for span in drained:
            self._by_id.pop(span.span_id, None)
        return drained

    # -- scoped (stack-managed) use -------------------------------------------

    def span(
        self,
        name: str,
        component: str,
        parent: Span | SpanContext | None = None,
        **attrs: Any,
    ) -> "_ScopedSpan":
        """Context manager: start, push, pop, end.  Synchronous blocks only
        (no simulator yields inside — generator interleaving would corrupt
        the stack)."""
        return _ScopedSpan(self, name, component, parent, attrs)

    def attach(self, span: Span | None) -> "_AttachedSpan":
        """Push an existing (process-long) span around a synchronous block
        without ending it on exit, so nested spans and per-op counters
        attribute to it."""
        return _AttachedSpan(self, span)

    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def current_component(self) -> str | None:
        return self._stack[-1].component if self._stack else None

    # -- queries ----------------------------------------------------------------

    def roots(self) -> list[Span]:
        return [span for span in self.spans if span.parent_id is None]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]

    def trace(self, trace_id: int) -> list[Span]:
        return [span for span in self.spans if span.trace_id == trace_id]

    def walk(self, span: Span, depth: int = 0) -> Iterator[tuple[Span, int]]:
        """Depth-first (span, depth) pairs over one subtree, in start order."""
        yield span, depth
        for child in self.children_of(span):
            yield from self.walk(child, depth + 1)

    def clear(self) -> None:
        self.spans.clear()
        self.slow_spans.clear()
        self._by_id.clear()
        self._stack.clear()
        self._pending.clear()
        self._promoted.clear()

    # -- propagation ---------------------------------------------------------------

    @staticmethod
    def inject(headers: dict[str, Any], span: Span | None) -> dict[str, Any]:
        """Stamp ``span``'s context into a headers dict (in place)."""
        if span is not None:
            headers[CONTEXT_HEADER] = span.context
        return headers

    @staticmethod
    def extract(headers: dict[str, Any] | None) -> SpanContext | None:
        """Recover a context from headers; accepts both the in-process
        object form and the live substrate's decoded wire form."""
        if not headers:
            return None
        context = headers.get(CONTEXT_HEADER)
        if isinstance(context, SpanContext):
            return context
        return SpanContext.from_wire(context)


class _ScopedSpan:
    """``with tracer.span(...) as span:`` — stack-managed synchronous span."""

    __slots__ = ("_tracer", "_args", "_span")

    def __init__(self, tracer: Tracer, name, component, parent, attrs):
        self._tracer = tracer
        self._args = (name, component, parent, attrs)
        self._span: Span | None = None

    def __enter__(self) -> Span:
        name, component, parent, attrs = self._args
        self._span = self._tracer.start_span(name, component, parent, **attrs)
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._stack.pop()
        if exc_type is not None:
            self._span.set(error=repr(exc))
        self._tracer.end_span(self._span)
        return False


class _AttachedSpan:
    """``with tracer.attach(span):`` — temporary stack push, no end on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: Tracer, span: Span | None):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span | None:
        if self._span is not None:
            self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._span is not None:
            self._tracer._stack.pop()
        return False
