"""Process-wide registry of labelled counters and histograms.

Everything the instrumentation hooks record lands here: crypto-op
counters (pairings evaluated, G1/GT exponentiations, HVE match
attempts/hits, CP-ABE decrypts), per-hop byte counters, egress queue
waits, inbox depths.  The registry is deliberately simple — a dict of
:class:`Counter` and :class:`Histogram` keyed by (name, sorted labels) —
because a simulation run produces at most tens of thousands of samples.

Naming conventions used by the built-in hooks:

=======================  =========================  =======================
metric                   kind / labels              incremented by
=======================  =========================  =======================
``op.<op>``              counter, ``component``     ``record_op`` / ``@instrument``
``op.<op>.wall_s``       histogram, ``component``   ``@instrument`` (real compute)
``net.bytes``            counter, ``src``, ``dst``  :meth:`Network.transmit`
``net.messages``         counter, ``src``, ``dst``  :meth:`Network.transmit`
``net.egress_wait_s``    histogram, ``host``        sender-side queueing delay
``net.inbox_depth``      histogram, ``host``        receiver queue depth at deliver
=======================  =========================  =======================

Crypto op names: ``pairing``, ``multi_pairing``, ``final_exp``,
``g1_exp``, ``gt_exp``, ``hve.encrypt``, ``hve.token_gen``,
``hve.match`` / ``hve.match_hit`` / ``hve.match_memo_hit``,
``abe.encrypt``, ``abe.decrypt``, ``abe.keygen``.

Precomputation and parallel-matching ops (PR 2):

* ``g1_exp.fixed_base`` — scalar-muls served from a comb table,
  ``g1_exp.fb_build`` — comb tables built;
* ``pairing.precompute`` — Miller-loop line precomputations,
  ``multi_pairing.precomputed`` — multi-pairings on the precomputed path;
* ``par.match`` / ``par.match_batch`` / ``par.chunk`` — MatchPool
  evaluations, batches, and dispatched chunks, with ``par.match_wall_s``
  and ``par.match_busy_s`` histograms;
* ``ds.token_reg`` / ``ds.token_unreg`` / ``ds.delegated_match`` /
  ``ds.fanout_skipped`` — delegated-matching traffic at the DS.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Counter", "Histogram", "MetricsRegistry"]

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing labelled count."""

    name: str
    labels: _LabelKey
    value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


# Exemplars retained per histogram series: the largest-valued
# observations with an attached trace id, so an alerting quantile links
# straight to an offending trace.
MAX_EXEMPLARS = 8


@dataclass
class Histogram:
    """All observed values for one (name, labels) series.

    Raw values are kept (simulation scale makes this cheap) so any
    percentile can be computed exactly with the same nearest-rank rule as
    :class:`repro.core.metrics.LatencyStats`.

    ``exemplars`` holds up to :data:`MAX_EXEMPLARS` ``(value, trace_id)``
    pairs — the worst observations seen, each pointing at the trace that
    produced it.  The OpenMetrics exposition attaches the top exemplar
    to the highest quantile line.
    """

    name: str
    labels: _LabelKey
    values: list[float] = field(default_factory=list)
    exemplars: list[tuple[float, int]] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(value)

    def add_exemplar(self, value: float, trace_id: int) -> None:
        """Remember ``value`` came from ``trace_id`` (keeps the worst)."""
        self.exemplars.append((float(value), int(trace_id)))
        self.exemplars.sort(key=lambda pair: (-pair[0], pair[1]))
        del self.exemplars[MAX_EXEMPLARS:]

    @property
    def top_exemplar(self) -> tuple[float, int] | None:
        """The largest-valued exemplar, or ``None``."""
        return self.exemplars[0] if self.exemplars else None

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, fraction: float) -> float:
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]


class MetricsRegistry:
    """All counters and histograms of one observability instance."""

    def __init__(self):
        self.counters: dict[tuple[str, _LabelKey], Counter] = {}
        self.histograms: dict[tuple[str, _LabelKey], Histogram] = {}

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels: object) -> None:
        key = (name, _label_key(labels))
        counter = self.counters.get(key)
        if counter is None:
            counter = self.counters[key] = Counter(name, key[1])
        counter.value += amount

    def observe(self, name: str, value: float, **labels: object) -> None:
        key = (name, _label_key(labels))
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram(name, key[1])
        histogram.values.append(value)

    def observe_exemplar(
        self, name: str, value: float, trace_id: int, **labels: object
    ) -> None:
        """Observe ``value`` and attach ``trace_id`` as its exemplar."""
        key = (name, _label_key(labels))
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram(name, key[1])
        histogram.values.append(value)
        histogram.add_exemplar(value, trace_id)

    # -- queries ---------------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        """One series' count (0 when never incremented)."""
        counter = self.counters.get((name, _label_key(labels)))
        return 0 if counter is None else counter.value

    def counter_total(self, name: str) -> float:
        """Sum over every label combination of ``name``."""
        return sum(c.value for (n, _), c in self.counters.items() if n == name)

    def counter_names(self) -> list[str]:
        """Distinct counter names, sorted."""
        return sorted({name for name, _ in self.counters})

    def counters_by_label(self, name: str, label: str) -> dict[str, float]:
        """``name`` totals grouped by one label's value (e.g. per component)."""
        result: dict[str, float] = {}
        for (n, label_key), counter in self.counters.items():
            if n != name:
                continue
            value = dict(label_key).get(label, "")
            result[value] = result.get(value, 0) + counter.value
        return result

    def histogram(self, name: str, **labels: object) -> Histogram | None:
        return self.histograms.get((name, _label_key(labels)))

    @property
    def empty(self) -> bool:
        return not self.counters and not self.histograms

    def clear(self) -> None:
        self.counters.clear()
        self.histograms.clear()

    # -- snapshots (the telemetry plane's JSON view) ----------------------------

    def counter_series(
        self, where: "Callable[[str, dict[str, str]], bool] | None" = None
    ) -> list[dict[str, object]]:
        """Every counter as ``{"name", "labels", "value"}``, stable order.

        ``where(name, labels)`` filters — e.g. a live service exporting
        only the series attributed to its own component.
        """
        out: list[dict[str, object]] = []
        for (name, label_key), counter in sorted(self.counters.items()):
            labels = dict(label_key)
            if where is not None and not where(name, labels):
                continue
            out.append({"name": name, "labels": labels, "value": counter.value})
        return out

    def histogram_series(
        self,
        where: "Callable[[str, dict[str, str]], bool] | None" = None,
        max_values: int | None = None,
    ) -> list[dict[str, object]]:
        """Every histogram as ``{"name", "labels", "values"}``.

        ``max_values`` caps each series to its most recent samples so a
        telemetry response stays bounded no matter how long the service
        has been up; the full count/sum survive in ``count``/``sum``.
        """
        out: list[dict[str, object]] = []
        for (name, label_key), histogram in sorted(self.histograms.items()):
            labels = dict(label_key)
            if where is not None and not where(name, labels):
                continue
            values = histogram.values
            if max_values is not None and len(values) > max_values:
                values = values[-max_values:]
            entry: dict[str, object] = {
                "name": name,
                "labels": labels,
                "values": list(values),
                "count": histogram.count,
                "sum": histogram.total,
            }
            if histogram.exemplars:
                entry["exemplars"] = [list(pair) for pair in histogram.exemplars]
            out.append(entry)
        return out

    # -- export ------------------------------------------------------------------

    def rows(self) -> list[dict[str, object]]:
        """Flat export rows, counters first, stable order."""
        out: list[dict[str, object]] = []
        for (name, label_key), counter in sorted(self.counters.items()):
            out.append(
                {
                    "kind": "counter",
                    "name": name,
                    "labels": ";".join(f"{k}={v}" for k, v in label_key),
                    "count": counter.value,
                    "sum": counter.value,
                    "mean": "",
                    "p95": "",
                    "max": "",
                }
            )
        for (name, label_key), histogram in sorted(self.histograms.items()):
            out.append(
                {
                    "kind": "histogram",
                    "name": name,
                    "labels": ";".join(f"{k}={v}" for k, v in label_key),
                    "count": histogram.count,
                    "sum": histogram.total,
                    "mean": histogram.mean,
                    "p95": histogram.percentile(0.95),
                    "max": histogram.maximum,
                }
            )
        return out

    def to_csv(self) -> str:
        buffer = io.StringIO()
        columns = ["kind", "name", "labels", "count", "sum", "mean", "p95", "max"]
        buffer.write(",".join(columns) + "\n")
        for row in self.rows():
            buffer.write(",".join(_format_cell(row[c]) for c in columns) + "\n")
        return buffer.getvalue()


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.9g}"
    return str(value)
