"""Declarative SLOs, error budgets, and multi-window burn-rate alerting.

This is the judgement layer of the observability plane: raw telemetry
(spans, counters, latencies) goes in, *"are we meeting our promises,
and how fast are we burning the error budget if not"* comes out.

The design follows the SRE-workbook multi-window multi-burn-rate
pattern:

* An :class:`SloSpec` states an **objective** — the target fraction of
  good events (e.g. 0.95 of deliveries within the latency threshold).
  The **error budget** is the complement (``1 - objective``): the
  fraction of events allowed to be bad before the promise is broken.
* The **burn rate** over a window is ``bad_fraction / budget`` — burn 1
  means the budget is being consumed exactly as fast as it accrues;
  burn 14.4 exhausts a 30-day budget in ~2 days.
* An **alert rule** (:class:`BurnRateWindow`) fires only when the burn
  rate exceeds its factor on *both* a short and a long window.  The
  long window keeps a brief blip from paging; the short window makes
  the alert *clear* quickly once the system recovers (the long window
  alone would stay red long after the incident).

Two window sets ship with the engine:

* :data:`DEFAULT_WINDOWS` — the classic production ladder
  (5m/1h ×14.4 page, 30m/6h ×6 page, 6h/3d ×1 ticket) for live
  deployments on wall-clock time;
* :data:`CHAOS_WINDOWS` — the same shape compressed to simulated
  seconds so a 2.5 s chaos run exercises the full fire→clear cycle
  deterministically (:mod:`repro.chaos` closes the loop by asserting
  injected faults make exactly the mapped alerts fire and clear).

The engine is substrate-free and deterministic: events carry explicit
timestamps (simulated or wall-clock — the engine never reads a clock),
and evaluation at a given ``now`` is a pure function of the recorded
events.  ``repro slo report`` and the chaos alerting invariants both
lean on that determinism.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import MetricsRegistry

__all__ = [
    "BurnRateWindow",
    "SloSpec",
    "Alert",
    "SloEngine",
    "DEFAULT_WINDOWS",
    "CHAOS_WINDOWS",
    "default_slos",
    "chaos_slos",
    "SLO_GAUGE_METRICS",
]

_LabelsKey = tuple[tuple[str, str], ...]

# slo.* series that are point-in-time values, not monotone counters —
# exposition and the live telemetry plane type these as gauges.
SLO_GAUGE_METRICS = frozenset(
    {
        "slo.error_budget_remaining",
        "slo.burn_rate",
        "slo.alert_active",
        "slo.objective",
    }
)


def _fmt_duration(seconds: float) -> str:
    """``300 -> "5m"``, ``259200 -> "3d"``, ``0.25 -> "0.25s"``."""
    for unit_s, suffix in ((86400, "d"), (3600, "h"), (60, "m")):
        if seconds >= unit_s and seconds % unit_s == 0:
            return f"{int(seconds // unit_s)}{suffix}"
    return f"{seconds:g}s"


@dataclass(frozen=True)
class BurnRateWindow:
    """One multi-window burn-rate alert rule.

    Fires when the burn rate is at least ``factor`` over *both* the
    short and the long window; clears as soon as either side recovers.
    ``severity`` is ``"page"`` (wake a human) or ``"ticket"`` (file a
    bug); the engine carries it through to the alert objects and the
    ``slo.alert_active`` series.
    """

    short_s: float
    long_s: float
    factor: float
    severity: str = "page"

    @property
    def label(self) -> str:
        """Display/series label, e.g. ``"5m/1h"``."""
        return f"{_fmt_duration(self.short_s)}/{_fmt_duration(self.long_s)}"


# Production ladder (SRE workbook, ch. 5): fast-burn pages, slow-burn
# ticket.  Factors assume a ~30d budget period.
DEFAULT_WINDOWS: tuple[BurnRateWindow, ...] = (
    BurnRateWindow(short_s=300, long_s=3600, factor=14.4, severity="page"),
    BurnRateWindow(short_s=1800, long_s=21600, factor=6.0, severity="page"),
    BurnRateWindow(short_s=21600, long_s=259200, factor=1.0, severity="ticket"),
)

# The same ladder compressed to chaos-run timescales (simulated
# seconds).  Factor 1.0: with a 0.95 objective a single bad event in a
# short window of ≤ 20 events reaches burn ≥ 1, so every material
# injected fault fires its mapped alert within one traffic window.
CHAOS_WINDOWS: tuple[BurnRateWindow, ...] = (
    BurnRateWindow(short_s=0.25, long_s=1.0, factor=1.0, severity="page"),
    BurnRateWindow(short_s=0.75, long_s=2.5, factor=1.0, severity="ticket"),
)


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective: what fraction of events must be good.

    ``threshold_s`` makes the SLO value-based: events recorded with a
    ``value`` are good iff the value is at or below the threshold (used
    by the latency and store-recovery SLOs); events recorded with an
    explicit ``good`` flag bypass it.
    """

    name: str
    description: str
    objective: float
    windows: tuple[BurnRateWindow, ...] = DEFAULT_WINDOWS
    threshold_s: float | None = None
    unit: str = "events"

    @property
    def budget(self) -> float:
        """The error budget: allowed bad fraction."""
        return 1.0 - self.objective


def default_slos(
    latency_threshold_s: float = 1.0,
    recovery_threshold_s: float = 2.0,
    windows: tuple[BurnRateWindow, ...] = DEFAULT_WINDOWS,
) -> tuple[SloSpec, ...]:
    """The live-deployment SLO set (wall-clock windows)."""
    return (
        SloSpec(
            name="delivery_latency",
            description=(
                f"publish→deliver latency ≤ {latency_threshold_s:g}s "
                "end to end (reassembled traces)"
            ),
            objective=0.95,
            windows=windows,
            threshold_s=latency_threshold_s,
            unit="deliveries",
        ),
        SloSpec(
            name="publish_ack",
            description="deliveries pushed by the DS acknowledged by subscribers",
            objective=0.95,
            windows=windows,
            unit="deliveries",
        ),
        SloSpec(
            name="store_recovery",
            description=(
                f"per-shard store recovery (WAL replay) ≤ {recovery_threshold_s:g}s"
            ),
            objective=0.9,
            windows=windows,
            threshold_s=recovery_threshold_s,
            unit="recoveries",
        ),
    )


def chaos_slos(
    latency_threshold_s: float,
    windows: tuple[BurnRateWindow, ...] = CHAOS_WINDOWS,
) -> tuple[SloSpec, ...]:
    """The chaos-run SLO set (simulated-time windows, oracle-backed).

    Only deterministic signals appear here — the chaos report must stay
    bit-identical across replays, so anything driven by wall-clock time
    (store recovery duration) is excluded.
    """
    return (
        SloSpec(
            name="delivery_latency",
            description=(
                f"publish→deliver latency ≤ {latency_threshold_s:g}s simulated"
            ),
            objective=0.95,
            windows=windows,
            threshold_s=latency_threshold_s,
            unit="deliveries",
        ),
        SloSpec(
            name="delivery_integrity",
            description="deliveries arriving exactly once (no duplicate suppressed)",
            objective=0.95,
            windows=windows,
            unit="deliveries",
        ),
        SloSpec(
            name="delivery_completeness",
            description="oracle-expected deliveries observed by quiescence",
            objective=0.95,
            windows=windows,
            unit="deliveries",
        ),
    )


@dataclass
class Alert:
    """One fire→clear episode of a burn-rate rule."""

    slo: str
    severity: str
    window: str
    labels: _LabelsKey
    fired_at: float
    cleared_at: float | None = None

    @property
    def active(self) -> bool:
        return self.cleared_at is None

    def to_dict(self) -> dict:
        return {
            "slo": self.slo,
            "severity": self.severity,
            "window": self.window,
            "labels": dict(self.labels),
            "fired_at": self.fired_at,
            "cleared_at": self.cleared_at,
        }


@dataclass
class _Event:
    at: float
    good: bool
    value: float | None = None
    trace_id: int | None = None


class SloEngine:
    """Event intake, sliding-window burn rates, and alert state.

    Feed events with :meth:`record` (each stamped with an explicit
    time), then call :meth:`evaluate` at whatever cadence the substrate
    affords — every scrape in live mode, fixed simulated-time ticks in
    chaos mode.  Evaluation is pure in the recorded events, so replaying
    the same events at the same ticks reproduces the same alert history
    bit for bit.
    """

    def __init__(self, specs: tuple[SloSpec, ...] | list[SloSpec] | None = None):
        self.specs: dict[str, SloSpec] = {
            spec.name: spec for spec in (specs if specs is not None else default_slos())
        }
        # (slo, labels) -> time-ordered events
        self._events: dict[tuple[str, _LabelsKey], list[_Event]] = {}
        self._unsorted: set[tuple[str, _LabelsKey]] = set()
        self.alerts: list[Alert] = []
        self._active: dict[tuple[str, _LabelsKey, str], Alert] = {}
        self.last_evaluated_at: float | None = None
        # live-ingest cursors (consumed trace ids / counter baselines)
        self._seen_latency_traces: set[int] = set()
        self._service_cursors: dict[str, dict[str, float]] = {}

    # -- intake -----------------------------------------------------------------

    def record(
        self,
        slo: str,
        good: bool | None = None,
        at: float = 0.0,
        value: float | None = None,
        trace_id: int | None = None,
        **labels: object,
    ) -> bool:
        """Record one event; returns whether it counted as good.

        Value-based SLOs (``threshold_s`` set) derive goodness from
        ``value``; an explicit ``good`` always wins.
        """
        spec = self.specs[slo]
        if good is None:
            if value is None or spec.threshold_s is None:
                raise ValueError(
                    f"SLO {slo!r} needs either good= or (value= with a threshold)"
                )
            good = value <= spec.threshold_s
        key = (slo, _labels_key(labels))
        events = self._events.setdefault(key, [])
        if events and at < events[-1].at:
            self._unsorted.add(key)
        events.append(_Event(at=at, good=good, value=value, trace_id=trace_id))
        return good

    def _sorted_events(self, key: tuple[str, _LabelsKey]) -> list[_Event]:
        events = self._events.get(key, [])
        if key in self._unsorted:
            events.sort(key=lambda e: e.at)
            self._unsorted.discard(key)
        return events

    # -- queries ----------------------------------------------------------------

    def counts(self, slo: str) -> tuple[int, int]:
        """Lifetime ``(good, bad)`` totals across all label sets."""
        good = bad = 0
        for (name, _), events in self._events.items():
            if name != slo:
                continue
            for event in events:
                if event.good:
                    good += 1
                else:
                    bad += 1
        return good, bad

    def _window_counts(
        self, key: tuple[str, _LabelsKey], start: float, end: float
    ) -> tuple[int, int]:
        good = bad = 0
        for event in self._sorted_events(key):
            if start < event.at <= end:
                if event.good:
                    good += 1
                else:
                    bad += 1
        return good, bad

    @staticmethod
    def _burn(spec: SloSpec, good: int, bad: int) -> float:
        total = good + bad
        if total == 0:
            return 0.0
        if spec.budget <= 0.0:
            return float("inf") if bad else 0.0
        return (bad / total) / spec.budget

    def burn_rate(
        self, slo: str, window_s: float, now: float, **labels: object
    ) -> float:
        """``bad_fraction / budget`` over ``(now - window_s, now]``.

        An empty window burns nothing (a quiet service is a healthy
        service — absence of traffic must not page).
        """
        good, bad = self._window_counts(
            (slo, _labels_key(labels)), now - window_s, now
        )
        return self._burn(self.specs[slo], good, bad)

    def burn_rate_across(self, slo: str, window_s: float, now: float) -> float:
        """Burn over the window, aggregated across all label groups."""
        good = bad = 0
        for name, labels in list(self._events):
            if name != slo:
                continue
            group_good, group_bad = self._window_counts(
                (name, labels), now - window_s, now
            )
            good += group_good
            bad += group_bad
        return self._burn(self.specs[slo], good, bad)

    def error_budget_remaining(self, slo: str) -> float:
        """Lifetime budget left: 1 at no bad events, 0 at the objective
        boundary, negative once the promise is broken."""
        spec = self.specs[slo]
        good, bad = self.counts(slo)
        total = good + bad
        if total == 0:
            return 1.0
        if spec.budget <= 0.0:
            return 1.0 if bad == 0 else 0.0
        return 1.0 - (bad / total) / spec.budget

    def active_alerts(self) -> list[Alert]:
        return [alert for alert in self.alerts if alert.active]

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, now: float) -> list[Alert]:
        """Advance alert state to ``now``; returns newly fired alerts.

        A rule is active when burn ≥ factor on both its windows; the
        transition into that state fires an :class:`Alert`, the
        transition out stamps ``cleared_at``.  Call with monotonically
        non-decreasing ``now`` — the engine does not rewind.
        """
        fired: list[Alert] = []
        groups = {key for key in self._events}
        # groups that stopped producing events must still clear their
        # alerts, so also visit every group with an active alert
        groups.update((slo, labels) for (slo, labels, _) in self._active)
        for slo, labels in sorted(groups):
            spec = self.specs.get(slo)
            if spec is None:
                continue
            for window in spec.windows:
                short_burn = self.burn_rate(slo, window.short_s, now, **dict(labels))
                long_burn = self.burn_rate(slo, window.long_s, now, **dict(labels))
                is_burning = short_burn >= window.factor and long_burn >= window.factor
                key = (slo, labels, window.label)
                current = self._active.get(key)
                if is_burning and current is None:
                    alert = Alert(
                        slo=slo,
                        severity=window.severity,
                        window=window.label,
                        labels=labels,
                        fired_at=now,
                    )
                    self._active[key] = alert
                    self.alerts.append(alert)
                    fired.append(alert)
                elif not is_burning and current is not None:
                    current.cleared_at = now
                    del self._active[key]
        self.last_evaluated_at = now
        return fired

    # -- live ingest ------------------------------------------------------------

    def ingest(self, aggregator, now: float) -> int:
        """Feed events from a :class:`~repro.obs.aggregate.TelemetryAggregator`.

        Incremental: cursors track consumed trace ids and counter
        baselines so repeated polls never double-count.  Returns the
        number of events recorded this call.

        Signals consumed (only for SLOs present in ``specs``):

        * ``delivery_latency`` — newly completed publish→deliver traces
          (value = latency, exemplar = trace id);
        * ``publish_ack`` — per-service ``ds.delivered``/``ds.acked``
          deltas (good = acked; bad = pushed but still unacked one full
          poll interval later);
        * ``store_recovery`` — per-service ``store.recovery_s`` gauge,
          once per observed recovery (per-shard ``service`` label).
        """
        recorded = 0
        if "delivery_latency" in self.specs and hasattr(
            aggregator, "publish_deliver_trace_latencies"
        ):
            for trace_id, latency in sorted(
                aggregator.publish_deliver_trace_latencies().items()
            ):
                if trace_id in self._seen_latency_traces:
                    continue
                self._seen_latency_traces.add(trace_id)
                self.record(
                    "delivery_latency", at=now, value=latency, trace_id=trace_id
                )
                recorded += 1
        for service in aggregator.services():
            cursors = self._service_cursors.setdefault(service, {})
            if "publish_ack" in self.specs:
                delivered = aggregator.service_counter_total(service, "ds.delivered")
                acked = aggregator.service_counter_total(service, "ds.acked")
                # credit completions eagerly; debit a delivery only once
                # it has stayed unacked across a full poll interval — a
                # snapshot catching an ack mid-flight must not burn
                # budget (an eventually-acked straggler is recorded
                # once bad while outstanding, then credited good)
                completed = int(min(acked, delivered))
                new_good = completed - int(cursors.get("pa.good", 0))
                if new_good > 0:
                    cursors["pa.good"] = completed
                    for _ in range(new_good):
                        self.record("publish_ack", good=True, at=now, service=service)
                    recorded += new_good
                stale = int(
                    cursors.get("ds.delivered", 0)
                    - completed
                    - cursors.get("pa.bad", 0)
                )
                if stale > 0:
                    cursors["pa.bad"] = cursors.get("pa.bad", 0) + stale
                    for _ in range(stale):
                        self.record("publish_ack", good=False, at=now, service=service)
                    recorded += stale
                cursors["ds.delivered"] = delivered
            if "store_recovery" in self.specs:
                duration = aggregator.service_counter_total(service, "store.recovery_s")
                if duration and cursors.get("store.recovery_s") != duration:
                    cursors["store.recovery_s"] = duration
                    self.record(
                        "store_recovery", at=now, value=duration, service=service
                    )
                    recorded += 1
        return recorded

    # -- export -----------------------------------------------------------------

    def registry(self, now: float | None = None) -> MetricsRegistry:
        """The ``slo_*`` series as a fresh :class:`MetricsRegistry`.

        Rendered through :func:`~repro.obs.exposition.to_openmetrics`
        (pass :data:`SLO_GAUGE_METRICS` as ``gauge_names``) this is the
        alerting surface a Prometheus stack would scrape.  ``now``
        defaults to the last evaluation time.
        """
        if now is None:
            now = self.last_evaluated_at if self.last_evaluated_at is not None else 0.0
        registry = MetricsRegistry()
        for name, spec in sorted(self.specs.items()):
            registry.inc("slo.objective", spec.objective, slo=name)
            registry.inc(
                "slo.error_budget_remaining",
                self.error_budget_remaining(name),
                slo=name,
            )
        for (name, labels), events in sorted(self._events.items()):
            label_dict = dict(labels)
            spec = self.specs[name]
            good = sum(1 for e in events if e.good)
            registry.inc("slo.good", good, slo=name, **label_dict)
            registry.inc("slo.bad", len(events) - good, slo=name, **label_dict)
            for window in spec.windows:
                registry.inc(
                    "slo.burn_rate",
                    self.burn_rate(name, window.long_s, now, **label_dict),
                    slo=name,
                    window=window.label,
                    severity=window.severity,
                    **label_dict,
                )
            for event in events:
                if event.value is None:
                    continue
                if event.trace_id is not None:
                    registry.observe_exemplar(
                        "slo.latency_s",
                        event.value,
                        event.trace_id,
                        slo=name,
                        **label_dict,
                    )
                else:
                    registry.observe("slo.latency_s", event.value, slo=name, **label_dict)
        active = self.active_alerts()
        for name in sorted(self.specs):
            for severity in ("page", "ticket"):
                registry.inc(
                    "slo.alert_active",
                    sum(1 for a in active if a.slo == name and a.severity == severity),
                    slo=name,
                    severity=severity,
                )
        return registry

    def report(self, now: float | None = None) -> dict:
        """The ``repro slo report --json`` document."""
        if now is None:
            now = self.last_evaluated_at if self.last_evaluated_at is not None else 0.0
        slos: dict[str, dict] = {}
        for name, spec in sorted(self.specs.items()):
            good, bad = self.counts(name)
            burn_rates: dict[str, dict] = {}
            for window in spec.windows:
                burn_rates[window.label] = {
                    "severity": window.severity,
                    "factor": window.factor,
                    "short_burn": round(
                        self.burn_rate_across(name, window.short_s, now), 6
                    ),
                    "long_burn": round(
                        self.burn_rate_across(name, window.long_s, now), 6
                    ),
                }
            slos[name] = {
                "description": spec.description,
                "objective": spec.objective,
                "threshold_s": spec.threshold_s,
                "unit": spec.unit,
                "good": good,
                "bad": bad,
                "error_budget_remaining": round(self.error_budget_remaining(name), 6),
                "burn_rates": burn_rates,
                "active_alerts": sum(1 for a in self.active_alerts() if a.slo == name),
            }
        return {
            "evaluated_at": now,
            "slos": slos,
            "alerts": [alert.to_dict() for alert in self.alerts],
            "active_alerts": [alert.to_dict() for alert in self.active_alerts()],
        }


def _labels_key(labels: dict[str, object]) -> _LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))
