"""Prometheus/OpenMetrics text exposition for a :class:`MetricsRegistry`.

The live telemetry plane renders every scrape twice: structured JSON for
the aggregator, and the OpenMetrics text format for anything that speaks
Prometheus.  This module owns the text side:

* :func:`to_openmetrics` — render a registry (counters become
  ``<name>_total`` counter families, histograms become summary families
  with ``quantile`` labels plus ``_count``/``_sum``), with dots in
  metric names mapped to underscores, label values escaped per the spec,
  and a terminating ``# EOF``;
* :func:`parse_openmetrics` — a small, strict parser used by tests (and
  handy for ad-hoc tooling) to prove the exposition round-trips: every
  rendered sample must come back with the same name, labels, and value,
  and :meth:`Exposition.render` re-emits the parsed document
  byte-identically (exposition → parse → re-expose is the identity).

Histogram series carrying exemplars (:class:`~repro.obs.metrics.Histogram`
``(value, trace_id)`` pairs) render their worst exemplar on the highest
quantile line as an OpenMetrics exemplar annotation —
``… 0.91 # {trace_id="17"} 0.91`` — which is how an SLO alert links
directly to the offending trace.

Only the subset of OpenMetrics this repo emits is supported — counter,
gauge, and summary families with float values.  That is deliberate: the
parser is a verification tool, not a scraping client.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .metrics import MetricsRegistry

__all__ = [
    "to_openmetrics",
    "parse_openmetrics",
    "Exposition",
    "sanitize_metric_name",
]

DEFAULT_NAMESPACE = "p3s"
SUMMARY_QUANTILES = (0.5, 0.9, 0.95, 0.99)

_VALID_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*?)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+#\s+\{(?P<exemplar_labels>[^}]*)\}\s+(?P<exemplar_value>[^\s]+))?"
    r"\s*$"
)
_LABEL_PAIR = re.compile(r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)')


def sanitize_metric_name(name: str, namespace: str = DEFAULT_NAMESPACE) -> str:
    """Map a repo metric name (``op.hve.match``) to a legal exposition
    name (``p3s_op_hve_match``)."""
    flat = _INVALID_CHARS.sub("_", name)
    if not flat or not _VALID_NAME.match(flat):
        flat = "_" + flat
    return f"{namespace}_{flat}" if namespace else flat


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # Integral values render without a fraction regardless of int/float
    # representation, so exposition → parse → re-expose is the identity.
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def to_openmetrics(
    registry: MetricsRegistry,
    gauge_names: frozenset[str] | set[str] = frozenset(),
    namespace: str = DEFAULT_NAMESPACE,
    extra_labels: dict[str, str] | None = None,
) -> str:
    """Render ``registry`` in OpenMetrics text format.

    Counter names in ``gauge_names`` are typed ``gauge`` (point-in-time
    values like open-connection counts); everything else is a monotone
    ``counter`` and gets the spec's ``_total`` sample suffix.
    Histograms render as ``summary`` families with exact nearest-rank
    quantiles (raw values are retained at this scale, so no buckets are
    needed).  ``extra_labels`` is stamped onto every sample — the
    aggregator uses it for the per-service label.
    """
    stamp = dict(extra_labels or {})
    lines: list[str] = []

    by_counter: dict[str, list] = {}
    for (name, label_key), counter in sorted(registry.counters.items()):
        by_counter.setdefault(name, []).append((label_key, counter.value))
    for name, series in by_counter.items():
        flat = sanitize_metric_name(name, namespace)
        kind = "gauge" if name in gauge_names else "counter"
        lines.append(f"# TYPE {flat} {kind}")
        sample_name = flat if kind == "gauge" else flat + "_total"
        for label_key, value in series:
            labels = {**dict(label_key), **stamp}
            lines.append(f"{sample_name}{_format_labels(labels)} {_format_value(value)}")

    by_histogram: dict[str, list] = {}
    for (name, label_key), histogram in sorted(registry.histograms.items()):
        by_histogram.setdefault(name, []).append((label_key, histogram))
    for name, series in by_histogram.items():
        flat = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {flat} summary")
        for label_key, histogram in series:
            labels = {**dict(label_key), **stamp}
            top = getattr(histogram, "top_exemplar", None)
            for index, quantile in enumerate(SUMMARY_QUANTILES):
                q_labels = {**labels, "quantile": f"{quantile:g}"}
                line = (
                    f"{flat}{_format_labels(q_labels)} "
                    f"{_format_value(histogram.percentile(quantile))}"
                )
                # the worst exemplar annotates the highest quantile:
                # an alerting p99 links straight to its worst trace
                if top is not None and index == len(SUMMARY_QUANTILES) - 1:
                    value, trace_id = top
                    line += f' # {{trace_id="{trace_id}"}} {_format_value(value)}'
                lines.append(line)
            lines.append(f"{flat}_count{_format_labels(labels)} {_format_value(float(histogram.count))}")
            lines.append(f"{flat}_sum{_format_labels(labels)} {_format_value(histogram.total)}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_LabelsKey = tuple[tuple[str, str], ...]


@dataclass
class Exposition:
    """A parsed exposition: sample values, family types, exemplars.

    ``samples`` and ``types`` preserve document order (insertion-ordered
    dicts), which is what lets :meth:`render` re-emit the exposition
    byte-identically — the round-trip proof the tests lean on.
    """

    types: dict[str, str] = field(default_factory=dict)
    samples: dict[tuple[str, _LabelsKey], float] = field(default_factory=dict)
    # sample key -> (exemplar labels, exemplar value)
    exemplars: dict[tuple[str, _LabelsKey], tuple[_LabelsKey, float]] = field(
        default_factory=dict
    )

    def value(self, name: str, **labels: str) -> float:
        """One sample's value; raises ``KeyError`` when absent."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.samples[key]

    def exemplar(self, name: str, **labels: str) -> tuple[_LabelsKey, float] | None:
        """One sample's exemplar annotation, or ``None``."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.exemplars.get(key)

    def sample_names(self) -> list[str]:
        return sorted({name for name, _ in self.samples})

    def total(self, name: str) -> float:
        """Sum of every sample of ``name`` across label sets."""
        return sum(v for (n, _), v in self.samples.items() if n == name)

    def _family_of(self, sample_name: str) -> str | None:
        """The family a sample belongs to (for TYPE-line placement)."""
        if sample_name in self.types:
            return sample_name
        for suffix in ("_total", "_count", "_sum"):
            if sample_name.endswith(suffix):
                family = sample_name[: -len(suffix)]
                if family in self.types:
                    return family
        return None

    def render(self) -> str:
        """Re-emit the exposition text, byte-identical to its source.

        Emits each family's ``# TYPE`` line immediately before its first
        sample, samples in parsed order, exemplar annotations included —
        the same layout :func:`to_openmetrics` produces, so
        ``render(parse_openmetrics(text)) == text`` for any text this
        module generated.
        """
        lines: list[str] = []
        emitted: set[str] = set()
        for (name, labels_key), value in self.samples.items():
            family = self._family_of(name)
            if family is not None and family not in emitted:
                lines.append(f"# TYPE {family} {self.types[family]}")
                emitted.add(family)
            line = f"{name}{_format_labels(dict(labels_key))} {_format_value(value)}"
            annotation = self.exemplars.get((name, labels_key))
            if annotation is not None:
                exemplar_labels, exemplar_value = annotation
                line += (
                    f" # {_format_labels(dict(exemplar_labels)) or '{}'}"
                    f" {_format_value(exemplar_value)}"
                )
            lines.append(line)
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


def _parse_labels(raw: str) -> _LabelsKey:
    labels: list[tuple[str, str]] = []
    position = 0
    while position < len(raw):
        match = _LABEL_PAIR.match(raw, position)
        if match is None:
            raise ValueError(f"malformed label block at {raw[position:]!r}")
        labels.append((match.group("key"), _unescape_label_value(match.group("value"))))
        position = match.end()
    return tuple(sorted(labels))


def parse_openmetrics(text: str) -> Exposition:
    """Parse an exposition produced by :func:`to_openmetrics`.

    Strict about what it accepts (one metric per line, ``# TYPE``
    comments, a final ``# EOF``) so tests catch format drift.
    """
    exposition = Exposition()
    saw_eof = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"line {line_number}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) == 4 and parts[1] == "TYPE":
                exposition.types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample {line!r}")
        labels = _parse_labels(match.group("labels") or "")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(f"line {line_number}: bad value {match.group('value')!r}") from exc
        key = (match.group("name"), labels)
        exposition.samples[key] = value
        if match.group("exemplar_value") is not None:
            try:
                exemplar_value = float(match.group("exemplar_value"))
            except ValueError as exc:
                raise ValueError(
                    f"line {line_number}: bad exemplar value "
                    f"{match.group('exemplar_value')!r}"
                ) from exc
            exposition.exemplars[key] = (
                _parse_labels(match.group("exemplar_labels") or ""),
                exemplar_value,
            )
    if not saw_eof:
        raise ValueError("exposition missing terminating # EOF")
    return exposition
