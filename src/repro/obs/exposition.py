"""Prometheus/OpenMetrics text exposition for a :class:`MetricsRegistry`.

The live telemetry plane renders every scrape twice: structured JSON for
the aggregator, and the OpenMetrics text format for anything that speaks
Prometheus.  This module owns the text side:

* :func:`to_openmetrics` — render a registry (counters become
  ``<name>_total`` counter families, histograms become summary families
  with ``quantile`` labels plus ``_count``/``_sum``), with dots in
  metric names mapped to underscores, label values escaped per the spec,
  and a terminating ``# EOF``;
* :func:`parse_openmetrics` — a small, strict parser used by tests (and
  handy for ad-hoc tooling) to prove the exposition round-trips: every
  rendered sample must come back with the same name, labels, and value.

Only the subset of OpenMetrics this repo emits is supported — counter,
gauge, and summary families with float values.  That is deliberate: the
parser is a verification tool, not a scraping client.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .metrics import MetricsRegistry

__all__ = [
    "to_openmetrics",
    "parse_openmetrics",
    "Exposition",
    "sanitize_metric_name",
]

DEFAULT_NAMESPACE = "p3s"
SUMMARY_QUANTILES = (0.5, 0.9, 0.95, 0.99)

_VALID_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR = re.compile(r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)')


def sanitize_metric_name(name: str, namespace: str = DEFAULT_NAMESPACE) -> str:
    """Map a repo metric name (``op.hve.match``) to a legal exposition
    name (``p3s_op_hve_match``)."""
    flat = _INVALID_CHARS.sub("_", name)
    if not flat or not _VALID_NAME.match(flat):
        flat = "_" + flat
    return f"{namespace}_{flat}" if namespace else flat


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def to_openmetrics(
    registry: MetricsRegistry,
    gauge_names: frozenset[str] | set[str] = frozenset(),
    namespace: str = DEFAULT_NAMESPACE,
    extra_labels: dict[str, str] | None = None,
) -> str:
    """Render ``registry`` in OpenMetrics text format.

    Counter names in ``gauge_names`` are typed ``gauge`` (point-in-time
    values like open-connection counts); everything else is a monotone
    ``counter`` and gets the spec's ``_total`` sample suffix.
    Histograms render as ``summary`` families with exact nearest-rank
    quantiles (raw values are retained at this scale, so no buckets are
    needed).  ``extra_labels`` is stamped onto every sample — the
    aggregator uses it for the per-service label.
    """
    stamp = dict(extra_labels or {})
    lines: list[str] = []

    by_counter: dict[str, list] = {}
    for (name, label_key), counter in sorted(registry.counters.items()):
        by_counter.setdefault(name, []).append((label_key, counter.value))
    for name, series in by_counter.items():
        flat = sanitize_metric_name(name, namespace)
        kind = "gauge" if name in gauge_names else "counter"
        lines.append(f"# TYPE {flat} {kind}")
        sample_name = flat if kind == "gauge" else flat + "_total"
        for label_key, value in series:
            labels = {**dict(label_key), **stamp}
            lines.append(f"{sample_name}{_format_labels(labels)} {_format_value(value)}")

    by_histogram: dict[str, list] = {}
    for (name, label_key), histogram in sorted(registry.histograms.items()):
        by_histogram.setdefault(name, []).append((label_key, histogram))
    for name, series in by_histogram.items():
        flat = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {flat} summary")
        for label_key, histogram in series:
            labels = {**dict(label_key), **stamp}
            for quantile in SUMMARY_QUANTILES:
                q_labels = {**labels, "quantile": f"{quantile:g}"}
                lines.append(
                    f"{flat}{_format_labels(q_labels)} "
                    f"{_format_value(histogram.percentile(quantile))}"
                )
            lines.append(f"{flat}_count{_format_labels(labels)} {_format_value(float(histogram.count))}")
            lines.append(f"{flat}_sum{_format_labels(labels)} {_format_value(histogram.total)}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_LabelsKey = tuple[tuple[str, str], ...]


@dataclass
class Exposition:
    """A parsed exposition: sample values plus family types."""

    types: dict[str, str] = field(default_factory=dict)
    samples: dict[tuple[str, _LabelsKey], float] = field(default_factory=dict)

    def value(self, name: str, **labels: str) -> float:
        """One sample's value; raises ``KeyError`` when absent."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.samples[key]

    def sample_names(self) -> list[str]:
        return sorted({name for name, _ in self.samples})

    def total(self, name: str) -> float:
        """Sum of every sample of ``name`` across label sets."""
        return sum(v for (n, _), v in self.samples.items() if n == name)


def _parse_labels(raw: str) -> _LabelsKey:
    labels: list[tuple[str, str]] = []
    position = 0
    while position < len(raw):
        match = _LABEL_PAIR.match(raw, position)
        if match is None:
            raise ValueError(f"malformed label block at {raw[position:]!r}")
        labels.append((match.group("key"), _unescape_label_value(match.group("value"))))
        position = match.end()
    return tuple(sorted(labels))


def parse_openmetrics(text: str) -> Exposition:
    """Parse an exposition produced by :func:`to_openmetrics`.

    Strict about what it accepts (one metric per line, ``# TYPE``
    comments, a final ``# EOF``) so tests catch format drift.
    """
    exposition = Exposition()
    saw_eof = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"line {line_number}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) == 4 and parts[1] == "TYPE":
                exposition.types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample {line!r}")
        labels = _parse_labels(match.group("labels") or "")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(f"line {line_number}: bad value {match.group('value')!r}") from exc
        exposition.samples[(match.group("name"), labels)] = value
    if not saw_eof:
        raise ValueError("exposition missing terminating # EOF")
    return exposition
