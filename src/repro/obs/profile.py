"""Instrumentation hooks and the global observability on/off switch.

Every hook in the codebase — crypto-op counters in
:mod:`repro.crypto.pairing`, the ``@instrument`` decorators on the HVE
and CP-ABE schemes, span creation in the component loops, the per-hop
byte counters in :mod:`repro.net.network` — funnels through this module.
The contract the hot paths rely on:

**When no observability instance is active, every hook is a no-op whose
cost is one module-global load and one comparison.**  The global
``_active`` is ``None`` by default; :meth:`Observability.install` flips
it.  This is how the ``obs=None`` default keeps a 50-publication run
within noise of the uninstrumented seed.

The active instance is process-global (not per-system) because the
crypto layer has no handle on a system object — a pairing evaluated deep
inside :func:`repro.crypto.pairing.multi_pairing` can only reach a
global to count itself.  Attribution to the *component* that triggered
it comes from the tracer's synchronous active-span stack (see
:mod:`repro.obs.tracing`).
"""

from __future__ import annotations

import functools
import time
from typing import TYPE_CHECKING, Any, Callable

from .tracing import Span, SpanContext, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .observability import Observability

__all__ = [
    "activate",
    "deactivate",
    "active",
    "active_profiler",
    "record_op",
    "observe",
    "instrument",
    "start_span",
    "end_span",
    "span",
    "attach",
    "annotate",
    "inject",
    "extract",
    "current_component",
]

UNATTRIBUTED = "unattributed"

_active: "Observability | None" = None


def activate(obs: "Observability") -> None:
    """Make ``obs`` the process-wide sink for every hook."""
    global _active
    _active = obs


def deactivate(obs: "Observability | None" = None) -> None:
    """Disable all hooks (if ``obs`` is given, only when it is the active one)."""
    global _active
    if obs is None or _active is obs:
        _active = None


def active() -> "Observability | None":
    return _active


# -- metric hooks -------------------------------------------------------------


def record_op(op: str, count: int = 1) -> None:
    """Count one (or ``count``) crypto/protocol operations.

    The op is attributed to the component of the innermost active span
    (:data:`UNATTRIBUTED` when called outside any span scope).  When the
    active instance carries a profile sampler, the op is also offered to
    it — the deterministic sampler turns every ``every``-th op into a
    profile sample.
    """
    obs = _active
    if obs is None:
        return
    component = obs.tracer.current_component() or UNATTRIBUTED
    obs.metrics.inc("op." + op, count, component=component)
    profiler = obs.profiler
    if profiler is not None:
        profiler.on_op(op, count)


def active_profiler():
    """The active instance's profile sampler, or ``None``."""
    obs = _active
    return None if obs is None else obs.profiler


def observe(name: str, value: float, **labels: object) -> None:
    """Record one histogram sample (no-op when disabled)."""
    obs = _active
    if obs is None:
        return
    obs.metrics.observe(name, value, **labels)


def instrument(op: str, component: str | None = None) -> Callable:
    """Decorator: count calls to the wrapped function and time them.

    Records ``op.<op>`` (counter) and ``op.<op>.wall_s`` (wall-clock
    histogram), attributed to ``component`` or the innermost active
    span's component.  Disabled cost: one global check per call.
    """

    def decorate(fn: Callable) -> Callable:
        metric = "op." + op
        wall_metric = metric + ".wall_s"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            obs = _active
            if obs is None:
                return fn(*args, **kwargs)
            who = component or obs.tracer.current_component() or UNATTRIBUTED
            started = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                obs.metrics.inc(metric, 1, component=who)
                obs.metrics.observe(wall_metric, time.perf_counter() - started, component=who)
                profiler = obs.profiler
                if profiler is not None:
                    profiler.on_op(op, 1)

        return wrapper

    return decorate


# -- span hooks (null-safe facade over the active tracer) ----------------------


class _NullContext:
    """Shared no-op context manager yielding ``None``."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL = _NullContext()


def start_span(
    name: str,
    component: str,
    parent: Span | SpanContext | None = None,
    **attrs: Any,
) -> Span | None:
    """Open an explicit (process-long) span; ``None`` when disabled."""
    obs = _active
    if obs is None:
        return None
    return obs.tracer.start_span(name, component, parent, **attrs)


def end_span(span_obj: Span | None, **attrs: Any) -> None:
    obs = _active
    if obs is None or span_obj is None:
        return
    obs.tracer.end_span(span_obj, **attrs)


def span(
    name: str,
    component: str,
    parent: Span | SpanContext | None = None,
    **attrs: Any,
):
    """Scoped synchronous span (see :meth:`Tracer.span`); no-op when disabled."""
    obs = _active
    if obs is None:
        return _NULL
    return obs.tracer.span(name, component, parent, **attrs)


def attach(span_obj: Span | None):
    """Push an existing span for the duration of a synchronous block."""
    obs = _active
    if obs is None or span_obj is None:
        return _NULL
    return obs.tracer.attach(span_obj)


def annotate(span_obj: Span | None, **attrs: Any) -> None:
    if span_obj is not None:
        span_obj.attributes.update(attrs)


def inject(headers: dict[str, Any], span_obj: Span | None) -> dict[str, Any]:
    """Stamp span context into ``headers`` (returns them for chaining)."""
    if _active is not None and span_obj is not None:
        Tracer.inject(headers, span_obj)
    return headers


def extract(headers: dict[str, Any] | None) -> SpanContext | None:
    if _active is None:
        return None
    return Tracer.extract(headers)


def current_component() -> str | None:
    obs = _active
    return None if obs is None else obs.tracer.current_component()
