"""Merge per-service telemetry snapshots into one deployment-wide view.

A live P3S deployment is four services (and any number of clients), each
exporting its own health document, metric series, and drained spans over
the telemetry RPCs (:mod:`repro.live.telemetry`).  The
:class:`TelemetryAggregator` is the substrate-free half of that plane:
it accepts plain snapshot dicts — whatever JSON came off the wire — and
maintains

* a **merged metrics registry**: every service's counters and histograms
  under a ``service`` label, rebuilt from the latest snapshot per
  service so repeated polls replace rather than double-count;
* a **reassembled span store**: spans from every scrape deduplicated by
  ``(trace_id, span_id)``, from which cross-socket publish→deliver trees
  are put back together and end-to-end latencies computed;
* a **merged profile**: the latest profile snapshot per *origin* token
  (a sampler instance's identity), so a single-process deployment whose
  four service endpoints all export the same process-wide sampler folds
  to one copy of each stack while four real processes sum — the
  hot-frames panel of ``repro live top`` and ``repro prof top`` read
  this;
* the **health table** behind ``repro live status`` / ``repro live top``.

Nothing here imports asyncio or sockets — the aggregator is equally
happy fed by the live telemetry client, by a test constructing snapshot
dicts by hand, or by an offline tool replaying scraped JSON.
"""

from __future__ import annotations

from collections import OrderedDict

from .export import format_op_summary
from .metrics import Histogram, MetricsRegistry

__all__ = ["TelemetryAggregator", "DEFAULT_SPAN_TABLE_CAPACITY"]

SERVICE_LABEL = "service"

# Span-dedup table bound: a `live top` left running for a week must not
# grow without limit, so the table is an LRU over span identity — the
# oldest-touched entries are evicted first and the eviction count is
# exported (truncation is never silent).
DEFAULT_SPAN_TABLE_CAPACITY = 8192


class TelemetryAggregator:
    """Deployment-wide merge of per-service telemetry snapshots."""

    def __init__(
        self,
        latency_window: int = 256,
        span_table_capacity: int | None = DEFAULT_SPAN_TABLE_CAPACITY,
    ):
        self.latency_window = latency_window
        self.span_table_capacity = span_table_capacity
        self._health: dict[str, dict] = {}
        self._metrics: dict[str, dict] = {}
        # profile-origin token -> (reporting services, latest profile dict);
        # replacement per origin is the (service, stack) dedup the live
        # tests pin: re-polling or multi-endpoint export never double-counts
        self._profiles: dict[str, tuple[set[str], dict]] = {}
        # (trace_id, span_id) -> span dict; finished spans win over open
        # ones; LRU-ordered so the bound evicts the least recently seen
        self._spans: OrderedDict[tuple[int, int], dict] = OrderedDict()
        self.total_dropped_spans = 0
        self.span_evictions = 0

    # -- feeding ---------------------------------------------------------------

    def update_health(self, service: str, health: dict) -> None:
        """Record ``service``'s latest health document (replaces prior)."""
        self._health[service] = dict(health)

    def update_metrics(self, service: str, snapshot: dict) -> None:
        """Record ``service``'s latest metrics snapshot (replaces prior).

        Snapshots carry point-in-time totals, so merging is
        *replacement*, never accumulation — polling twice must not
        double a counter.
        """
        self._metrics[service] = snapshot

    def add_spans(self, service: str, spans: list[dict], dropped: int | None = None) -> None:
        """Fold drained spans in, deduplicating across services.

        In a single-process deployment every service drains the same
        process-global flight recorder, so the same span can arrive via
        two services' scrapes — ``(trace_id, span_id)`` identity keeps
        exactly one copy.  ``dropped`` is the recorder's cumulative
        eviction count at scrape time (max-merged per call, since drains
        are destructive but the drop counter is monotone).
        """
        for span in spans:
            key = (span.get("trace_id"), span.get("span_id"))
            existing = self._spans.get(key)
            if existing is None or (existing.get("end_s") is None and span.get("end_s") is not None):
                self._spans[key] = span
            self._spans.move_to_end(key)
        if self.span_table_capacity is not None:
            while len(self._spans) > self.span_table_capacity:
                self._spans.popitem(last=False)
                self.span_evictions += 1
        if dropped:
            self.total_dropped_spans += dropped

    def add_profile(self, service: str, profile: dict) -> None:
        """Record ``service``'s latest profile snapshot.

        Profiles are cumulative and keyed by their sampler's ``origin``
        token: a later snapshot from the same origin *replaces* the
        earlier one (same semantics as metrics), and two services
        exporting the same process-wide sampler collapse to one entry —
        dedup by (origin, stack).  Distinct origins (real multi-process
        deployments) merge additively in :meth:`merged_profile`.
        """
        origin = profile.get("origin", service)
        services, _ = self._profiles.get(origin, (set(), None))
        services.add(service)
        self._profiles[origin] = (services, dict(profile))

    # -- health ----------------------------------------------------------------

    def services(self) -> list[str]:
        return sorted(set(self._health) | set(self._metrics))

    def health(self, service: str) -> dict:
        return self._health.get(service, {"service": service, "alive": False, "ready": False})

    @property
    def all_alive(self) -> bool:
        return bool(self._health) and all(h.get("alive") for h in self._health.values())

    @property
    def all_ready(self) -> bool:
        return bool(self._health) and all(h.get("ready") for h in self._health.values())

    def health_rows(self) -> list[list[str]]:
        """``[service, alive, ready, failing checks]`` rows for display."""
        rows: list[list[str]] = []
        for service in self.services():
            health = self.health(service)
            failing = sorted(
                name for name, ok in health.get("checks", {}).items() if not ok
            )
            rows.append(
                [
                    service,
                    "yes" if health.get("alive") else "NO",
                    "yes" if health.get("ready") else "NO",
                    ", ".join(failing) if failing else "-",
                ]
            )
        return rows

    # -- metrics ---------------------------------------------------------------

    def merged_registry(self) -> MetricsRegistry:
        """One registry holding every service's series under a
        ``service`` label, built from the latest snapshot per service."""
        merged = MetricsRegistry()
        for service, snapshot in sorted(self._metrics.items()):
            for entry in snapshot.get("counters", []):
                labels = {**entry.get("labels", {}), SERVICE_LABEL: service}
                merged.inc(entry["name"], entry.get("value", 0), **labels)
            for entry in snapshot.get("histograms", []):
                labels = {**entry.get("labels", {}), SERVICE_LABEL: service}
                for value in entry.get("values", []):
                    merged.observe(entry["name"], value, **labels)
        return merged

    def counter_total(self, name: str) -> float:
        """Deployment-wide total of one counter name."""
        return self.merged_registry().counter_total(name)

    def service_counter_total(self, service: str, name: str) -> float:
        """One service's total of one counter name (all label sets)."""
        snapshot = self._metrics.get(service, {})
        return sum(
            entry.get("value", 0)
            for entry in snapshot.get("counters", [])
            if entry["name"] == name
        )

    def op_table(self) -> str:
        """Per-service crypto/protocol op counts, as a console table."""
        merged = self.merged_registry()
        # format_op_summary columns by "component"; in the aggregated view
        # the column identity is the reporting service
        view = MetricsRegistry()
        for (name, label_key), counter in merged.counters.items():
            if not name.startswith("op."):
                continue
            service = dict(label_key).get(SERVICE_LABEL, "")
            view.inc(name, counter.value, component=service)
        return format_op_summary(view)

    # -- profiles ---------------------------------------------------------------

    def merged_profile(self):
        """One deployment-wide :class:`~repro.obs.prof.model.Profile`.

        Sums the latest snapshot of every distinct origin; snapshots
        sharing an origin were already collapsed by
        :meth:`add_profile`.  Empty profile when nothing was exported.
        """
        from .prof.model import Profile  # lazy: prof pulls in the crypto stack

        merged = Profile(mode="wall", origin="merged")
        modes: set[str] = set()
        for origin, (services, snapshot) in sorted(self._profiles.items()):
            part = Profile.from_dict(snapshot)
            modes.add(part.mode)
            merged.merge(part)
            merged.meta[f"origin:{origin}"] = ",".join(sorted(services))
        if len(modes) == 1:
            merged.mode = modes.pop()
        return merged

    def profile_origins(self) -> dict[str, list[str]]:
        """Which services reported each profile origin (dedup evidence)."""
        return {
            origin: sorted(services)
            for origin, (services, _) in sorted(self._profiles.items())
        }

    def hot_frames(self, limit: int = 10) -> list[tuple[str, float, float]]:
        """Top frames by self weight: ``(frame, self, fraction)`` rows.

        Weighted by wall seconds for wall profiles, sample counts for
        deterministic ones — whatever the merged mode implies.
        """
        profile = self.merged_profile()
        if not profile.samples:
            return []
        weight_key = "wall_s" if profile.mode == "wall" else "count"
        total = profile.total(weight_key) or 1.0
        ranked = sorted(
            profile.self_times(weight_key).items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [(frame, value, value / total) for frame, value in ranked[:limit]]

    # -- span reassembly ---------------------------------------------------------

    def spans(self) -> list[dict]:
        """Every accumulated span, ordered by start time."""
        return sorted(self._spans.values(), key=lambda s: (s.get("start_s") or 0.0))

    def trace_ids(self) -> list[int]:
        return sorted({key[0] for key in self._spans})

    def trace(self, trace_id: int) -> list[dict]:
        return [span for (t, _), span in sorted(self._spans.items()) if t == trace_id]

    def publish_deliver_trace_latencies(self) -> dict[int, float]:
        """End-to-end publish→deliver seconds keyed by trace id.

        A trace contributes once per completed delivery tree: latency is
        the latest ``deliver`` span end minus the ``publish`` root start,
        both on the exporting process's telemetry clock.  Traces still
        missing either side (payload in flight, span not yet drained)
        are skipped — they complete on a later poll.  The trace-id
        keying is what lets the SLO engine ingest incrementally and
        attach exemplars.
        """
        publishes: dict[int, float] = {}
        deliver_ends: dict[int, float] = {}
        for (trace_id, _), span in self._spans.items():
            if span.get("name") == "publish":
                publishes[trace_id] = span.get("start_s", 0.0)
            elif span.get("name") == "deliver" and span.get("end_s") is not None:
                deliver_ends[trace_id] = max(
                    deliver_ends.get(trace_id, float("-inf")), span["end_s"]
                )
        return {
            trace_id: deliver_ends[trace_id] - start
            for trace_id, start in sorted(publishes.items())
            if trace_id in deliver_ends
        }

    def publish_deliver_latencies(self) -> list[float]:
        """Latency values in trace order, windowed to ``latency_window``."""
        latencies = list(self.publish_deliver_trace_latencies().values())
        return latencies[-self.latency_window :]

    def latency_summary(self) -> dict[str, float]:
        """Rolling p50/p95/count over the reassembled latencies."""
        histogram = Histogram("publish_deliver_s", ())
        for value in self.publish_deliver_latencies():
            histogram.observe(value)
        return {
            "count": histogram.count,
            "p50_s": histogram.percentile(0.5),
            "p95_s": histogram.percentile(0.95),
            "max_s": histogram.maximum,
        }

    # -- export ------------------------------------------------------------------

    def service_observability(self, service: str) -> dict:
        """One service's span-pipeline health: drops, slow spans, sampler.

        Read from the service's latest metrics snapshot, so it reflects
        what that process reported — not what this aggregator retained.
        The ``sampler`` block only appears when the service runs a
        tail sampler (``obs.sampler.*`` counters present).
        """
        names = {
            entry["name"]
            for entry in self._metrics.get(service, {}).get("counters", [])
        }
        block: dict[str, object] = {
            "dropped_spans": self.service_counter_total(service, "obs.dropped_spans"),
            "slow_spans": self.service_counter_total(service, "obs.slow_spans"),
        }
        if "obs.sampler.keep_rate" in names:
            block["sampler"] = {
                "keep_rate": self.service_counter_total(service, "obs.sampler.keep_rate"),
                "kept_traces": self.service_counter_total(service, "obs.sampler.kept_traces"),
                "dropped_traces": self.service_counter_total(
                    service, "obs.sampler.dropped_traces"
                ),
                "promoted_traces": self.service_counter_total(
                    service, "obs.sampler.promoted_traces"
                ),
                "evicted_traces": self.service_counter_total(
                    service, "obs.sampler.evicted_traces"
                ),
            }
        return block

    def to_json(self) -> dict:
        """The ``repro live status --json`` document."""
        merged = self.merged_registry()
        return {
            "services": {service: self.health(service) for service in self.services()},
            "all_alive": self.all_alive,
            "all_ready": self.all_ready,
            "counters": merged.rows(),
            "ops": {
                name: {
                    service: self.service_counter_total(service, name)
                    for service in sorted(self._metrics)
                    if self.service_counter_total(service, name)
                }
                for name in merged.counter_names()
                if name.startswith("op.")
            },
            "latency": self.latency_summary(),
            "dropped_spans": self.total_dropped_spans,
            "span_count": len(self._spans),
            "span_evictions": self.span_evictions,
            "profile": {
                "origins": self.profile_origins(),
                "hot_frames": [
                    {"frame": frame, "self": value, "fraction": fraction}
                    for frame, value, fraction in self.hot_frames()
                ],
            },
            "observability": {
                service: self.service_observability(service)
                for service in sorted(self._metrics)
            },
        }
