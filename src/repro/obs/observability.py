"""The :class:`Observability` bundle: one tracer + one metrics registry.

This is the object experiments hold.  Pass it to a deployment via
``P3SConfig(obs=...)`` (or ``BaselineSystem(obs=...)``); the system binds
the tracer's clock to its simulator and installs the instance as the
process-wide hook sink (:mod:`repro.obs.profile`).  When no instance is
installed every hook in the codebase is a no-op.

Typical use::

    from repro.obs import Observability

    obs = Observability()
    system = P3SSystem(P3SConfig(obs=obs))
    ...publish, run...
    print(obs.format_tree())        # causal span tree per publication
    print(obs.format_ops())         # per-component crypto-op counts
    obs.write_spans("trace.jsonl")  # offline analysis
    obs.write_metrics("metrics.csv")

Only one instance is active at a time (the crypto layer counts into a
process global); installing a second instance supersedes the first.
``uninstall()`` — also invoked by ``with obs.installed():`` — restores
the no-op state.
"""

from __future__ import annotations

import contextlib
from typing import Callable

from . import profile
from .export import (
    format_op_summary,
    format_span_tree,
    spans_to_jsonl,
    write_metrics_csv,
    write_spans_jsonl,
)
from .metrics import MetricsRegistry
from .sampling import TraceSampler
from .tracing import Tracer

__all__ = ["Observability"]


class Observability:
    """Tracing + metrics for one (or several comparable) simulation runs.

    ``span_capacity`` bounds span storage with the flight-recorder ring
    (see :mod:`repro.obs.ring`) — mandatory hygiene for long-running
    live services, left unbounded by default so experiment runs keep
    every span.  ``slow_span_threshold_s`` logs spans whose wall-clock
    time reaches the threshold into ``tracer.slow_spans``.  ``sampler``
    (a :class:`~repro.obs.sampling.TraceSampler`) enables deterministic
    tail-based trace sampling; ``None`` keeps every trace.

    ``profiler`` attaches a profile sampler
    (:class:`~repro.obs.prof.sampler.StackSampler` or
    :class:`~repro.obs.prof.sampler.DeterministicSampler`): while this
    instance is the active hook sink, every counted op is also offered
    to ``profiler.on_op`` and the live telemetry plane exposes
    ``profiler.profile()`` over the ``KIND_PROFILE`` RPC.  ``None`` (the
    default) keeps profiling off — op hooks pay one extra attribute
    load only when an instance is installed at all.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        span_capacity: int | None = None,
        slow_span_threshold_s: float | None = None,
        sampler: TraceSampler | None = None,
        profiler: object | None = None,
    ):
        self.tracer = Tracer(
            clock,
            capacity=span_capacity,
            slow_span_threshold_s=slow_span_threshold_s,
            sampler=sampler,
        )
        self.metrics = MetricsRegistry()
        self.profiler = profiler

    @property
    def sampler(self) -> TraceSampler | None:
        return self.tracer.sampler

    # -- lifecycle -----------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point span timestamps at a simulator's clock (``lambda: sim.now``)."""
        self.tracer.clock = clock

    def install(self) -> "Observability":
        """Become the process-wide hook sink; returns self for chaining."""
        profile.activate(self)
        return self

    def uninstall(self) -> None:
        """Stop receiving hook data (only if currently installed)."""
        profile.deactivate(self)

    @property
    def active(self) -> bool:
        return profile.active() is self

    @contextlib.contextmanager
    def installed(self):
        """Scoped installation: ``with obs.installed(): ...``."""
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

    def reset(self) -> None:
        """Drop all recorded spans and metrics (keeps the clock binding)."""
        self.tracer.clear()
        self.metrics.clear()

    # -- export conveniences ----------------------------------------------------

    def spans_jsonl(self) -> str:
        return spans_to_jsonl(self.tracer.spans)

    def write_spans(self, path: str) -> None:
        write_spans_jsonl(path, self.tracer.spans)

    def metrics_csv(self) -> str:
        return self.metrics.to_csv()

    def write_metrics(self, path: str) -> None:
        write_metrics_csv(path, self.metrics)

    def format_tree(self, max_traces: int | None = None) -> str:
        return format_span_tree(self.tracer, max_traces=max_traces)

    def format_ops(self) -> str:
        return format_op_summary(self.metrics)

    def summary(self, max_traces: int | None = 5) -> str:
        """Console report: span trees plus the crypto-op breakdown."""
        return (
            self.format_tree(max_traces=max_traces)
            + "\n\noperation counts by component:\n"
            + self.format_ops()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Observability(spans={len(self.tracer.spans)}, "
            f"counters={len(self.metrics.counters)}, active={self.active})"
        )
