"""repro.obs — tracing, metrics, and crypto-profiling observability.

The measurement surface for every optimization claim in this repo: where
does a publication's time go (HVE match at the subscriber? pairing
evaluations? DS egress serialization?) and how many of each crypto
operation ran, attributed to the component that ran them.

Pieces:

* :mod:`~repro.obs.tracing` — structured spans over simulated time with
  context propagation across network messages (one causal tree per
  publication: ``publish → ds.fan_out → subscriber.match →
  subscriber.retrieve → deliver``);
* :mod:`~repro.obs.metrics` — labelled counters and histograms
  (pairings, exponentiations, HVE matches, bytes per hop, queue depths);
* :mod:`~repro.obs.profile` — the hooks installed into hot paths, and
  the global on/off switch that makes everything a no-op when disabled;
* :mod:`~repro.obs.export` — JSONL spans, CSV metrics, console trees;
* :mod:`~repro.obs.ring` — the bounded flight recorder behind a live
  service's span storage (memory-flat for week-long processes);
* :mod:`~repro.obs.exposition` — Prometheus/OpenMetrics text rendering
  and the strict round-trip parser;
* :mod:`~repro.obs.aggregate` — :class:`TelemetryAggregator`, merging
  per-service scrapes into one deployment-wide registry and reassembling
  cross-socket publish→deliver span trees;
* :mod:`~repro.obs.sampling` — :class:`TraceSampler`, deterministic
  seedable tail-based trace sampling (head decision propagated in the
  context header, slow/error traces always promoted);
* :mod:`~repro.obs.slo` — :class:`SloEngine`, declarative SLOs with
  error-budget accounting and multi-window multi-burn-rate alerting;
* :mod:`~repro.obs.prof` — continuous profiling: span-attributed stack
  samplers (wall-clock and deterministic op-count modes), collapsed
  stack / speedscope export, self-time diffs, and the crypto cost
  ledger.  Imported on demand (``from repro.obs.prof import ...``), not
  re-exported here — the ledger pulls in the crypto stack, which itself
  imports this package's hooks;
* :mod:`~repro.obs.observability` — the :class:`Observability` bundle
  experiments pass via ``P3SConfig(obs=...)``.
"""

from .aggregate import TelemetryAggregator
from .export import (
    format_op_summary,
    format_span_tree,
    spans_to_jsonl,
    write_metrics_csv,
    write_spans_jsonl,
)
from .exposition import Exposition, parse_openmetrics, sanitize_metric_name, to_openmetrics
from .metrics import Counter, Histogram, MetricsRegistry
from .observability import Observability
from .profile import active, active_profiler, instrument, record_op
from .ring import DEFAULT_FLIGHT_RECORDER_CAPACITY, FlightRecorder
from .sampling import TraceSampler
from .slo import (
    CHAOS_WINDOWS,
    DEFAULT_WINDOWS,
    SLO_GAUGE_METRICS,
    Alert,
    BurnRateWindow,
    SloEngine,
    SloSpec,
    chaos_slos,
    default_slos,
)
from .tracing import CONTEXT_HEADER, Span, SpanContext, Tracer

__all__ = [
    "Observability",
    "TraceSampler",
    "SloEngine",
    "SloSpec",
    "BurnRateWindow",
    "Alert",
    "DEFAULT_WINDOWS",
    "CHAOS_WINDOWS",
    "SLO_GAUGE_METRICS",
    "default_slos",
    "chaos_slos",
    "Tracer",
    "Span",
    "SpanContext",
    "CONTEXT_HEADER",
    "MetricsRegistry",
    "Counter",
    "Histogram",
    "FlightRecorder",
    "DEFAULT_FLIGHT_RECORDER_CAPACITY",
    "TelemetryAggregator",
    "Exposition",
    "to_openmetrics",
    "parse_openmetrics",
    "sanitize_metric_name",
    "record_op",
    "instrument",
    "active",
    "active_profiler",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "write_metrics_csv",
    "format_span_tree",
    "format_op_summary",
]
