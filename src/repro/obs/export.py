"""Exporters: JSONL span dumps, CSV metric dumps, console span trees.

Three consumers, three formats:

* ``spans_to_jsonl`` — one JSON object per span, offline tooling's view
  (load with ``[json.loads(l) for l in open(p)]``);
* ``MetricsRegistry.to_csv`` (re-exported helpers here) — flat counter /
  histogram rows for spreadsheets;
* ``format_span_tree`` / ``format_op_summary`` — the human view: a
  flame-style indented tree per trace with simulated durations, plus a
  per-component crypto-op breakdown table.
"""

from __future__ import annotations

import json
from typing import Iterable

from .metrics import MetricsRegistry
from .tracing import Span, Tracer

__all__ = [
    "spans_to_jsonl",
    "write_spans_jsonl",
    "write_metrics_csv",
    "format_span_tree",
    "format_op_summary",
]


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One compact JSON object per line, in span start order."""
    return "".join(json.dumps(span.to_dict(), default=str) + "\n" for span in spans)


def write_spans_jsonl(path: str, spans: Iterable[Span]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spans_to_jsonl(spans))


def write_metrics_csv(path: str, registry: MetricsRegistry) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry.to_csv())


def _span_line(span: Span, depth: int, last_end: float) -> str:
    indent = "  " * depth
    marker = "" if depth == 0 else "- "
    timing = (
        f"t={span.start:.3f}s dur={span.duration:.3f}s"
        if span.finished
        else f"t={span.start:.3f}s (open)"
    )
    wall = f" wall={span.wall_duration * 1e3:.2f}ms" if span.wall_duration else ""
    attrs = ""
    interesting = {
        k: v
        for k, v in span.attributes.items()
        if k in ("publication_id", "matched", "attempts", "status", "subscribers", "error")
    }
    if interesting:
        attrs = " " + " ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
    return f"{indent}{marker}{span.name} [{span.component}] {timing}{wall}{attrs}"


def format_span_tree(tracer: Tracer, max_traces: int | None = None) -> str:
    """Indented causal tree per trace, with end-to-end trace latency.

    A trace's latency is measured root start → latest finished descendant
    end — for a publication trace this spans submit to last delivery.
    """
    lines: list[str] = []
    roots = tracer.roots()
    if max_traces is not None:
        roots = roots[:max_traces]
    for root in roots:
        members = tracer.trace(root.trace_id)
        ends = [s.end for s in members if s.end is not None]
        latency = (max(ends) - root.start) if ends else 0.0
        lines.append(
            f"trace {root.trace_id}: {root.name} [{root.component}] "
            f"— {len(members)} span(s), {latency:.3f}s end-to-end"
        )
        for span, depth in tracer.walk(root):
            lines.append(_span_line(span, depth + 1, 0.0))
        lines.append("")
    if not lines:
        return "(no traces recorded)"
    return "\n".join(lines).rstrip("\n")


def format_op_summary(registry: MetricsRegistry) -> str:
    """Per-component operation counts: the crypto-profiling breakdown."""
    ops: dict[str, dict[str, float]] = {}
    for (name, label_key), counter in registry.counters.items():
        if not name.startswith("op.") or name.endswith(".wall_s"):
            continue
        op = name[3:]
        component = dict(label_key).get("component", "")
        ops.setdefault(op, {})[component] = (
            ops.setdefault(op, {}).get(component, 0) + counter.value
        )
    if not ops:
        return "(no operations recorded)"
    components = sorted({c for per in ops.values() for c in per})
    name_width = max(len("operation"), max(len(op) for op in ops))
    col_width = max(8, max(len(c) for c in components) + 1)
    header = "operation".ljust(name_width) + "".join(c.rjust(col_width) for c in components)
    lines = [header, "-" * len(header)]
    for op in sorted(ops):
        per = ops[op]
        cells = "".join(
            (f"{per[c]:g}" if c in per else "·").rjust(col_width) for c in components
        )
        lines.append(op.ljust(name_width) + cells)
    return "\n".join(lines)
