"""The flight recorder: a bounded ring buffer of recent spans.

A long-running live service cannot keep every span it ever produced —
the simulator's grow-forever ``Tracer.spans`` list is fine for a
50-publication experiment and a memory leak for a broker serving
traffic for days.  :class:`FlightRecorder` is the drop-in replacement:
a capacity-bounded store that keeps the most recent spans, counts what
it evicted (``dropped``), and supports a destructive **drain** — the
telemetry plane's scrape primitive, which hands finished spans to the
caller exactly once and leaves still-open spans in place so they can be
collected on a later pass.

``capacity=None`` (the default) disables bounding entirely, preserving
the historical list semantics every simulator experiment and test
relies on — including equality against plain lists.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .tracing import Span

__all__ = ["FlightRecorder", "DEFAULT_FLIGHT_RECORDER_CAPACITY"]

# What a live service keeps by default when nobody configures a bound:
# big enough for hundreds of in-flight publications, small enough that a
# week-long process stays flat.
DEFAULT_FLIGHT_RECORDER_CAPACITY = 4096


class FlightRecorder:
    """Bounded (or unbounded) span store with eviction accounting.

    List-compatible surface: ``append``, ``len``, iteration, indexing,
    ``clear`` and equality against lists — the :class:`Tracer` exposes an
    instance as its ``spans`` attribute, so everything written against
    the old list keeps working.
    """

    __slots__ = ("capacity", "dropped", "_spans", "_on_evict")

    def __init__(
        self,
        capacity: int | None = None,
        on_evict: "Callable[[Span], None] | None" = None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"flight recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._spans: "deque[Span]" = deque()
        self._on_evict = on_evict

    # -- recording -----------------------------------------------------------

    def append(self, span: "Span") -> None:
        """Record one span, evicting the oldest when at capacity."""
        if self.capacity is not None and len(self._spans) >= self.capacity:
            evicted = self._spans.popleft()
            self.dropped += 1
            if self._on_evict is not None:
                self._on_evict(evicted)
        self._spans.append(span)

    def drain(self) -> "list[Span]":
        """Remove and return every *finished* span, oldest first.

        Open spans stay in the ring (their ``end_span`` has not run yet)
        and will be drained once they finish — so a scraper polling this
        sees every span exactly once.
        """
        finished = [span for span in self._spans if span.finished]
        if finished:
            self._spans = deque(span for span in self._spans if not span.finished)
        return finished

    def snapshot(self) -> "list[Span]":
        """Non-destructive copy, oldest first."""
        return list(self._spans)

    def clear(self) -> None:
        """Drop everything (eviction hooks do not fire; count stays)."""
        self._spans.clear()

    # -- list compatibility ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def __bool__(self) -> bool:
        return bool(self._spans)

    def __iter__(self) -> "Iterator[Span]":
        return iter(self._spans)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._spans)[index]
        return self._spans[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FlightRecorder):
            return list(self._spans) == list(other._spans)
        if isinstance(other, (list, tuple)):
            return list(self._spans) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = "∞" if self.capacity is None else str(self.capacity)
        return (
            f"FlightRecorder(len={len(self._spans)}, capacity={bound}, "
            f"dropped={self.dropped})"
        )
