"""The two profile samplers: hz-driven wall clock and op-count driven.

:class:`StackSampler` is the production shape — a daemon thread wakes
``hz`` times a second, captures the Python stacks via
``sys._current_frames()``, and attributes each sample with the
component and span name of the tracer's innermost active span.  Memory
is bounded twice over: a fixed-capacity ring of raw (timestamped,
trace-linked) samples with an eviction counter, and a capped aggregate
stack table that folds further stacks into the ``<overflow>`` bucket so
total weight is preserved while cardinality stays flat.

:class:`DeterministicSampler` is the simulator shape: no threads, no
clocks.  The :func:`repro.obs.profile.record_op` /
``@instrument`` hooks call :meth:`on_op` for every counted crypto op and
every ``every``-th op takes a sample whose stack is
``(component, span, span, ..., op.<name>)``.  Because the simulator's op
sequence is a pure function of the workload seed, two runs with the same
seed produce byte-identical folded output — the replayable contract the
profile tests pin.
"""

from __future__ import annotations

import itertools
import os
import sys
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any

from .model import OVERFLOW_FRAME, Profile, Stack

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..observability import Observability

__all__ = ["StackSampler", "DeterministicSampler"]

# Stack frames deeper than this are truncated (root side kept): protects
# the table from pathological recursion blowing up stack cardinality.
MAX_STACK_DEPTH = 64

_origin_counter = itertools.count(1)


def _new_origin(kind: str) -> str:
    """A token unique to one sampler instance in one process."""
    return f"{kind}-{os.getpid()}-{next(_origin_counter)}"


class _StackTable:
    """Bounded stack → weight aggregate shared by both samplers.

    Once ``max_stacks`` distinct stacks exist, further *new* stacks fold
    into the single :data:`OVERFLOW_FRAME` bucket — aggregate weight is
    never dropped, only its resolution, and the fold is counted.
    """

    def __init__(self, max_stacks: int):
        self.max_stacks = max_stacks
        self.samples: dict[Stack, list[float]] = {}  # [count, wall_s, cpu_s]
        self.overflowed = 0

    def add(self, stack: Stack, count: int, wall_s: float, cpu_s: float) -> None:
        entry = self.samples.get(stack)
        if entry is None:
            if len(self.samples) >= self.max_stacks and stack != (OVERFLOW_FRAME,):
                self.overflowed += count
                stack = (OVERFLOW_FRAME,)
                entry = self.samples.get(stack)
            if entry is None:
                entry = self.samples[stack] = [0, 0.0, 0.0]
        entry[0] += count
        entry[1] += wall_s
        entry[2] += cpu_s

    def snapshot(self, profile: Profile) -> Profile:
        for stack, (count, wall_s, cpu_s) in self.samples.items():
            profile.add(stack, count=int(count), wall_s=wall_s, cpu_s=cpu_s)
        return profile


def _frame_stack(frame: Any) -> list[str]:
    """Root-first ``module.function`` names for one thread's stack."""
    names: list[str] = []
    while frame is not None and len(names) < MAX_STACK_DEPTH:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        names.append(f"{module}.{code.co_name}")
        frame = frame.f_back
    names.reverse()
    return names


class StackSampler:
    """Background wall+CPU sampler over ``sys._current_frames()``.

    Every tick captures the target thread stacks, prefixes the thread
    that holds the tracer's span stack with ``(component, span-name)``
    from the innermost active span (``unattributed`` outside any span),
    and charges the tick's wall/CPU deltas to the sampled stacks.

    ``ring_capacity`` bounds the raw-sample ring (oldest evicted, with a
    counter); ``max_stacks`` bounds the aggregate table (overflow folds
    to :data:`OVERFLOW_FRAME`).  ``obs`` pins which observability
    instance supplies span attribution; by default the process-global
    active one is read at every tick.
    """

    mode = "wall"

    def __init__(
        self,
        hz: float = 97.0,
        ring_capacity: int = 2048,
        max_stacks: int = 4096,
        all_threads: bool = False,
        obs: "Observability | None" = None,
        origin: str | None = None,
    ):
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.hz = hz
        self.all_threads = all_threads
        self.origin = origin or _new_origin("wall")
        self._obs = obs
        self._lock = threading.Lock()
        self._table = _StackTable(max_stacks)
        self._ring: deque[dict[str, Any]] = deque()
        self._ring_capacity = ring_capacity
        self.ring_evicted = 0
        self.ticks = 0
        self.self_s = 0.0  # sampler's own wall overhead, accounted
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._main_ident = threading.main_thread().ident

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "StackSampler":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "StackSampler":
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
            self._thread = None
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- hook surface (uniform with DeterministicSampler) -----------------------

    def on_op(self, op: str, count: int = 1) -> None:
        """Op hook: the wall sampler is time-driven, so this is a no-op."""

    # -- the sampling loop --------------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        last_wall = time.perf_counter()
        last_cpu = time.process_time()
        while not self._stop.wait(interval):
            tick_start = time.perf_counter()
            cpu_now = time.process_time()
            wall_dt = tick_start - last_wall
            cpu_dt = cpu_now - last_cpu
            last_wall, last_cpu = tick_start, cpu_now
            try:
                self._sample_once(wall_dt, cpu_dt)
            except Exception:  # pragma: no cover - never kill the host
                pass
            self.self_s += time.perf_counter() - tick_start

    def _attribution(self):
        """(stack prefix, innermost active span) for the main thread."""
        from .. import profile as hooks  # local: hooks module imports us

        obs = self._obs or hooks.active()
        span = obs.tracer.current_span() if obs is not None else None
        if span is not None:
            return (span.component, span.name), span
        return ("unattributed",), None

    def _sample_once(self, wall_dt: float, cpu_dt: float) -> None:
        frames = sys._current_frames()
        me = threading.get_ident()
        targets: list[tuple[str, int, Any]] = []
        threads = {t.ident: t.name for t in threading.enumerate()}
        for ident, frame in frames.items():
            if ident == me:
                continue
            if not self.all_threads and ident != self._main_ident:
                continue
            targets.append((threads.get(ident, f"tid-{ident}"), ident, frame))
        if not targets:
            return
        prefix, span = self._attribution()
        wall_share = wall_dt / len(targets)
        cpu_share = cpu_dt / len(targets)
        with self._lock:
            self.ticks += 1
            for name, ident, frame in targets:
                pystack = _frame_stack(frame)
                if ident == self._main_ident:
                    stack = prefix + tuple(pystack)
                else:
                    stack = (f"thread:{name}",) + tuple(pystack)
                stack = stack[:MAX_STACK_DEPTH]
                self._table.add(stack, 1, wall_share, cpu_share)
                if len(self._ring) >= self._ring_capacity:
                    self._ring.popleft()
                    self.ring_evicted += 1
                self._ring.append(
                    {
                        "wall": time.perf_counter(),
                        "thread": name,
                        "stack": stack,
                        "trace_id": span.trace_id if span is not None else None,
                        "span_id": span.span_id if span is not None else None,
                        "component": prefix[0],
                    }
                )

    # -- output ------------------------------------------------------------------

    def recent_samples(self) -> list[dict[str, Any]]:
        """The raw bounded ring, oldest first (trace-linked samples)."""
        with self._lock:
            return list(self._ring)

    def profile(self) -> Profile:
        """Snapshot the aggregate table as a :class:`Profile`."""
        with self._lock:
            return self._table.snapshot(
                Profile(
                    mode=self.mode,
                    origin=self.origin,
                    meta={
                        "hz": self.hz,
                        "ticks": self.ticks,
                        "ring_evicted": self.ring_evicted,
                        "overflowed": self._table.overflowed,
                        "self_s": round(self.self_s, 6),
                    },
                )
            )


class DeterministicSampler:
    """Op-count-triggered sampler for seed-replayable simulator profiles.

    Called (via the :mod:`repro.obs.profile` hooks) for every counted
    op; every ``every``-th op takes one sample.  The stack is built from
    the tracer's synchronous span stack — ``(component, span, span, ...,
    op.<name>)`` — so the profile folds exactly like the wall sampler's,
    but with no dependence on timers or thread scheduling: the same
    workload seed replays to byte-identical folded output.

    ``seed`` is recorded in the profile meta so a recording names the
    workload it replays; the sampler itself is seed-free (the op
    sequence carries all the determinism).
    """

    mode = "det"

    def __init__(
        self,
        every: int = 64,
        seed: int | None = None,
        max_stacks: int = 4096,
        obs: "Observability | None" = None,
        origin: str | None = None,
    ):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.seed = seed
        self.origin = origin or _new_origin("det")
        self._obs = obs
        self._table = _StackTable(max_stacks)
        self.ops_seen = 0
        self.samples_taken = 0

    # -- lifecycle (no-ops: nothing to start) -----------------------------------

    def start(self) -> "DeterministicSampler":
        return self

    def stop(self) -> "DeterministicSampler":
        return self

    @property
    def running(self) -> bool:
        return True

    def __enter__(self) -> "DeterministicSampler":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    # -- the op hook --------------------------------------------------------------

    def on_op(self, op: str, count: int = 1) -> None:
        """Advance the op counter; sample at every ``every``-th op."""
        before = self.ops_seen
        self.ops_seen = before + count
        fires = self.ops_seen // self.every - before // self.every
        if fires <= 0:
            return
        from .. import profile as hooks  # local: hooks module imports us

        obs = self._obs or hooks.active()
        if obs is not None and obs.tracer._stack:
            names = tuple(span.name for span in obs.tracer._stack)
            component = obs.tracer._stack[-1].component
        else:
            names = ()
            component = "unattributed"
        stack = ((component,) + names + ("op." + op,))[:MAX_STACK_DEPTH]
        self._table.add(stack, fires, 0.0, 0.0)
        self.samples_taken += fires

    # -- output ------------------------------------------------------------------

    def profile(self) -> Profile:
        meta: dict[str, Any] = {
            "every": self.every,
            "ops_seen": self.ops_seen,
            "overflowed": self._table.overflowed,
        }
        if self.seed is not None:
            meta["seed"] = self.seed
        return self._table.snapshot(
            Profile(mode=self.mode, origin=self.origin, meta=meta)
        )
