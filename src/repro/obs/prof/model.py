"""The :class:`Profile` value type: weighted stacks and their exports.

A profile is a map from *stack* — a root-first tuple of frame names —
to a :class:`StackWeight` (sample count, wall seconds, CPU seconds).
Stacks are component-attributed by construction: the samplers
(:mod:`repro.obs.prof.sampler`) prefix every stack with the component
and span name of the innermost active span, so folding the profile
groups time by protocol role (``ds;ds.delegated_fan_out;…`` vs
``rs;rs.retrieve;…``) rather than by Python module alone.

Export forms:

* **collapsed-stack text** (:meth:`Profile.folded`) — one
  ``frame;frame;frame weight`` line per stack, Brendan Gregg's
  flamegraph input format, sorted so equal profiles render
  byte-identically (the deterministic-replay contract);
* **speedscope JSON** (:meth:`Profile.to_speedscope`) — the
  ``type: "sampled"`` schema https://www.speedscope.app understands;
* **profile dict** (:meth:`Profile.to_dict`) — the JSON wire form the
  ``KIND_PROFILE`` telemetry RPC ships and the aggregator merges.

Merging is origin-aware: every profile carries an ``origin`` token
unique to the sampler instance that produced it, so a single-process
deployment polled via four service endpoints folds to one copy of each
stack (dedup by ``(origin, stack)``), while four real processes sum.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable

__all__ = [
    "Profile",
    "StackWeight",
    "OVERFLOW_FRAME",
    "diff_profiles",
    "format_diff",
    "format_report",
    "load_profile",
    "parse_folded",
    "parse_speedscope",
]

Stack = tuple[str, ...]

PROFILE_VERSION = 1

# Bucket stacks land in once the bounded stack table is full: aggregate
# weight is preserved (memory stays flat, truncation is never silent).
OVERFLOW_FRAME = "<overflow>"

# Weight keys a caller may fold/diff by.
WEIGHT_KEYS = ("count", "wall_s", "cpu_s")


@dataclass
class StackWeight:
    """Accumulated weight of one stack: samples, wall time, CPU time."""

    count: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0

    def add(self, count: int = 1, wall_s: float = 0.0, cpu_s: float = 0.0) -> None:
        self.count += count
        self.wall_s += wall_s
        self.cpu_s += cpu_s

    def merge(self, other: "StackWeight") -> None:
        self.add(other.count, other.wall_s, other.cpu_s)

    def get(self, key: str) -> float:
        if key not in WEIGHT_KEYS:
            raise ValueError(f"unknown weight key {key!r} (one of {WEIGHT_KEYS})")
        return getattr(self, key)

    def to_dict(self) -> dict[str, Any]:
        return {"count": self.count, "wall_s": self.wall_s, "cpu_s": self.cpu_s}


class Profile:
    """Weighted stacks from one sampler (or a merge of several).

    ``mode`` is ``"wall"`` (hz-driven :class:`StackSampler`) or
    ``"det"`` (op-count :class:`DeterministicSampler`); ``origin`` is
    the producing sampler's identity token used for merge dedup;
    ``meta`` carries sampler knobs (hz, every, seed) and counters
    (ticks, ring evictions, overflowed stacks) for the report footer.
    """

    def __init__(
        self,
        mode: str = "wall",
        origin: str = "local",
        meta: dict[str, Any] | None = None,
    ):
        self.mode = mode
        self.origin = origin
        self.meta: dict[str, Any] = dict(meta or {})
        self.samples: dict[Stack, StackWeight] = {}

    # -- building ---------------------------------------------------------------

    def add(
        self,
        stack: Iterable[str],
        count: int = 1,
        wall_s: float = 0.0,
        cpu_s: float = 0.0,
    ) -> None:
        key = tuple(stack)
        weight = self.samples.get(key)
        if weight is None:
            weight = self.samples[key] = StackWeight()
        weight.add(count, wall_s, cpu_s)

    def merge(self, other: "Profile") -> "Profile":
        """Fold ``other``'s stacks in (summing weights); returns self."""
        for stack, weight in other.samples.items():
            mine = self.samples.get(stack)
            if mine is None:
                mine = self.samples[stack] = StackWeight()
            mine.merge(weight)
        return self

    # -- queries ----------------------------------------------------------------

    @property
    def sample_count(self) -> int:
        return sum(weight.count for weight in self.samples.values())

    def total(self, weight_key: str = "count") -> float:
        return sum(weight.get(weight_key) for weight in self.samples.values())

    def self_times(self, weight_key: str = "count") -> dict[str, float]:
        """Per-frame *self* weight: samples where the frame is the leaf."""
        out: dict[str, float] = {}
        for stack, weight in self.samples.items():
            if not stack:
                continue
            leaf = stack[-1]
            out[leaf] = out.get(leaf, 0.0) + weight.get(weight_key)
        return out

    def total_times(self, weight_key: str = "count") -> dict[str, float]:
        """Per-frame *total* weight: samples where the frame appears
        anywhere on the stack (counted once per stack)."""
        out: dict[str, float] = {}
        for stack, weight in self.samples.items():
            value = weight.get(weight_key)
            for frame in set(stack):
                out[frame] = out.get(frame, 0.0) + value
        return out

    def by_component(self, weight_key: str = "count") -> dict[str, float]:
        """Weight grouped by the stack root — the attributed component."""
        out: dict[str, float] = {}
        for stack, weight in self.samples.items():
            root = stack[0] if stack else "(empty)"
            out[root] = out.get(root, 0.0) + weight.get(weight_key)
        return out

    # -- folded (collapsed-stack) text -------------------------------------------

    def folded(self, weight_key: str = "count") -> str:
        """Collapsed-stack flamegraph input, deterministically ordered.

        Weights are integers (counts directly; seconds as microseconds)
        because the flamegraph toolchain expects integral sample counts
        — and because integral text is what makes the deterministic
        mode's replay comparison *byte*-identical.
        """
        lines = []
        for stack in sorted(self.samples):
            weight = self.samples[stack].get(weight_key)
            if weight_key != "count":
                weight = round(weight * 1e6)  # µs
            value = int(weight)
            if value <= 0 and self.samples[stack].count <= 0:
                continue
            lines.append(";".join(stack) + f" {max(value, 0)}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- speedscope ----------------------------------------------------------------

    def to_speedscope(self, name: str = "p3s") -> dict[str, Any]:
        """The speedscope ``type: "sampled"`` document (JSON-ready).

        Wall mode weighs samples in seconds; deterministic mode in raw
        sample counts (unit ``none``) so the viewer shows exact op
        ticks.
        """
        weight_key = "wall_s" if self.mode == "wall" else "count"
        frame_index: dict[str, int] = {}
        frames: list[dict[str, str]] = []
        samples: list[list[int]] = []
        weights: list[float] = []
        for stack in sorted(self.samples):
            weight = self.samples[stack].get(weight_key)
            if weight <= 0:
                continue
            indexed = []
            for frame in stack:
                if frame not in frame_index:
                    frame_index[frame] = len(frames)
                    frames.append({"name": frame})
                indexed.append(frame_index[frame])
            samples.append(indexed)
            weights.append(weight)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro.obs.prof",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": f"{name} ({self.mode})",
                    "unit": "seconds" if weight_key == "wall_s" else "none",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
            # non-standard but round-trippable: keep the full weights +
            # meta so `prof diff` on two --out files loses nothing
            "x-repro-profile": self.to_dict(),
        }

    # -- dict wire form --------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": PROFILE_VERSION,
            "mode": self.mode,
            "origin": self.origin,
            "meta": dict(self.meta),
            "samples": [
                {"stack": list(stack), **weight.to_dict()}
                for stack, weight in sorted(self.samples.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Profile":
        profile = cls(
            mode=data.get("mode", "wall"),
            origin=data.get("origin", "local"),
            meta=data.get("meta"),
        )
        for entry in data.get("samples", []):
            profile.add(
                tuple(entry["stack"]),
                count=int(entry.get("count", 0)),
                wall_s=float(entry.get("wall_s", 0.0)),
                cpu_s=float(entry.get("cpu_s", 0.0)),
            )
        return profile


# -- parsers -----------------------------------------------------------------------


def parse_folded(text: str, mode: str = "det", origin: str = "folded") -> Profile:
    """Rebuild a profile from collapsed-stack text (counts only)."""
    profile = Profile(mode=mode, origin=origin)
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack_part, _, weight_part = line.rpartition(" ")
        if not stack_part or not weight_part.isdigit():
            raise ValueError(f"malformed folded line: {line!r}")
        profile.add(tuple(stack_part.split(";")), count=int(weight_part))
    return profile


def parse_speedscope(data: dict[str, Any]) -> Profile:
    """Rebuild a profile from a speedscope document.

    Prefers the embedded ``x-repro-profile`` block (lossless); falls
    back to the standard frames/samples/weights arrays for documents
    produced by other tools.
    """
    embedded = data.get("x-repro-profile")
    if isinstance(embedded, dict):
        return Profile.from_dict(embedded)
    shared_frames = [frame["name"] for frame in data.get("shared", {}).get("frames", [])]
    doc = data["profiles"][data.get("activeProfileIndex", 0)]
    if doc.get("type") != "sampled":
        raise ValueError(f"unsupported speedscope profile type {doc.get('type')!r}")
    seconds = doc.get("unit") == "seconds"
    profile = Profile(mode="wall" if seconds else "det", origin=data.get("name", "speedscope"))
    for indices, weight in zip(doc["samples"], doc["weights"]):
        stack = tuple(shared_frames[index] for index in indices)
        if seconds:
            profile.add(stack, count=1, wall_s=float(weight))
        else:
            profile.add(stack, count=int(weight))
    return profile


def load_profile(path: str) -> Profile:
    """Load a recording: speedscope JSON, profile-dict JSON, or folded text."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        data = json.loads(text)
        if "profiles" in data or "x-repro-profile" in data:
            return parse_speedscope(data)
        return Profile.from_dict(data)
    return parse_folded(text)


# -- reports and diffs ---------------------------------------------------------------


def _weight_key_for(profile: Profile) -> str:
    return "wall_s" if profile.mode == "wall" else "count"


def _format_weight(value: float, weight_key: str) -> str:
    if weight_key == "count":
        return f"{value:.0f}"
    return f"{value * 1000:.1f}ms"


def format_report(
    profile: Profile,
    limit: int = 20,
    weight_key: str | None = None,
) -> str:
    """Hot-frames table: self and total weight per frame, plus the
    component split and sampler accounting footer."""
    from ...perf.report import format_table  # local import: avoid a cycle at module load

    weight_key = weight_key or _weight_key_for(profile)
    self_times = profile.self_times(weight_key)
    total_times = profile.total_times(weight_key)
    grand_total = profile.total(weight_key) or 1.0
    rows = []
    for frame, self_value in sorted(self_times.items(), key=lambda kv: -kv[1])[:limit]:
        rows.append(
            [
                frame,
                _format_weight(self_value, weight_key),
                f"{self_value / grand_total:6.1%}",
                _format_weight(total_times.get(frame, self_value), weight_key),
            ]
        )
    unit = "samples" if weight_key == "count" else "wall"
    out = [
        format_table(
            ["frame", f"self ({unit})", "self %", f"total ({unit})"],
            rows,
            title=f"hot frames — mode {profile.mode}, "
            f"{profile.sample_count} samples, {len(profile.samples)} stacks",
        )
    ]
    split = profile.by_component(weight_key)
    if split:
        parts = ", ".join(
            f"{component}={value / grand_total:.1%}"
            for component, value in sorted(split.items(), key=lambda kv: -kv[1])
        )
        out.append(f"by component: {parts}")
    counters = {
        key: value
        for key, value in profile.meta.items()
        if key in ("ticks", "ring_evicted", "overflowed", "self_s", "ops_seen")
    }
    if counters:
        out.append(
            "sampler: "
            + ", ".join(f"{key}={value}" for key, value in sorted(counters.items()))
        )
    return "\n".join(out)


@dataclass
class FrameDelta:
    """One frame's self-weight movement between two recordings."""

    frame: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before


def diff_profiles(
    before: Profile,
    after: Profile,
    weight_key: str | None = None,
    normalize: bool = True,
) -> list[FrameDelta]:
    """Rank frames by self-time delta between two recordings.

    With ``normalize`` (the default) each profile's self weights are
    scaled to fractions of its own total first, so a longer second
    recording doesn't read as "everything regressed" — the ranking
    shows *shifts in where time goes*.  Sorted most-regressed first.
    """
    weight_key = weight_key or _weight_key_for(after)
    self_before = before.self_times(weight_key)
    self_after = after.self_times(weight_key)
    scale_before = before.total(weight_key) or 1.0 if normalize else 1.0
    scale_after = after.total(weight_key) or 1.0 if normalize else 1.0
    frames = set(self_before) | set(self_after)
    deltas = [
        FrameDelta(
            frame,
            self_before.get(frame, 0.0) / scale_before,
            self_after.get(frame, 0.0) / scale_after,
        )
        for frame in frames
    ]
    deltas.sort(key=lambda d: (-d.delta, d.frame))
    return deltas


def format_diff(
    deltas: list[FrameDelta],
    limit: int = 20,
    normalized: bool = True,
) -> str:
    from ...perf.report import format_table

    def fmt(value: float) -> str:
        return f"{value:+.2%}" if normalized else f"{value:+.1f}"

    shown = [d for d in deltas if abs(d.delta) > 1e-12][:limit]
    rows = [
        [d.frame, fmt(d.before)[1:], fmt(d.after)[1:], fmt(d.delta)]
        for d in shown
    ]
    if not rows:
        return "no self-time movement between the two recordings"
    return format_table(
        ["frame", "before", "after", "delta"],
        rows,
        title="self-time delta (most regressed first)",
    )
