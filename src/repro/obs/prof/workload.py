"""The seeded demo workload behind ``repro prof record`` and the tests.

One small, fast P3S deployment — a 4-value ``topic`` metadata space so
the HVE vectors stay short — runs ``publications`` seeded publications
end to end (publish → DS fan-out → subscriber match → RS retrieve →
decrypt) with observability on and a profile sampler attached.  Topic
choice per publication comes from ``random.Random(seed)``, so the op
sequence — and therefore the deterministic sampler's folded output — is
a pure function of ``(publications, seed, every)``.

:func:`record_demo` owns the full lifecycle: build, attach, run, detach,
snapshot.  It clears the process-global fixed-base comb cache first so
two in-process recordings replay identically (a warm cache would skip
``g1_exp.fb_build`` ops the first run paid).
"""

from __future__ import annotations

from typing import Any

from .model import Profile
from .sampler import DeterministicSampler, StackSampler

__all__ = ["record_demo", "demo_schema"]

DEFAULT_PUBLICATIONS = 50
TOPICS = ("alpha", "beta", "gamma", "delta")


def demo_schema():
    """The 2-bit-per-attribute metadata space the demo publishes into."""
    from ...pbe import AttributeSpec, MetadataSchema

    return MetadataSchema([AttributeSpec("topic", TOPICS)])


def run_demo_workload(
    publications: int = DEFAULT_PUBLICATIONS,
    seed: int = 0,
    obs: Any | None = None,
) -> dict[str, Any]:
    """Run the seeded demo deployment; returns workload stats.

    Standalone so the overhead test can run the *same* workload with and
    without a sampler attached and compare wall time.
    """
    import random

    from ...core import P3SConfig, P3SSystem
    from ...crypto.curve import clear_fixed_base_cache
    from ...pbe import Interest

    clear_fixed_base_cache()
    rng = random.Random(seed)
    config = P3SConfig(schema=demo_schema(), obs=obs)
    system = P3SSystem(config)
    try:
        alice = system.add_subscriber("alice", {"clearance"})
        system.subscribe(alice, Interest({"topic": "alpha"}))
        bob = system.add_subscriber("bob", {"clearance"})
        system.subscribe(bob, Interest({"topic": "beta"}))
        system.run()
        publisher = system.add_publisher("pub")
        system.run()
        delivered = 0
        for index in range(publications):
            topic = rng.choice(TOPICS)
            record = publisher.publish(
                {"topic": topic},
                f"payload-{index}".encode(),
                policy="clearance",
            )
            system.run()
            delivered += len(system.deliveries_for(record))
        return {
            "publications": publications,
            "seed": seed,
            "delivered": delivered,
            "simulated_s": system.now,
        }
    finally:
        system.close()
        if obs is not None:
            obs.uninstall()


def record_demo(
    publications: int = DEFAULT_PUBLICATIONS,
    seed: int = 0,
    mode: str = "det",
    every: int = 8,
    hz: float = 97.0,
) -> tuple[Profile, dict[str, Any]]:
    """Record a profile of the seeded demo; returns (profile, stats).

    ``mode="det"`` attaches the op-count :class:`DeterministicSampler`
    (replayable — the CLI default); ``mode="wall"`` attaches the
    background :class:`StackSampler` at ``hz``.
    """
    from ..observability import Observability

    obs = Observability()
    if mode == "det":
        sampler: Any = DeterministicSampler(every=every, seed=seed, obs=obs)
    elif mode == "wall":
        sampler = StackSampler(hz=hz, obs=obs)
    else:
        raise ValueError(f"unknown profile mode {mode!r} (det or wall)")
    obs.profiler = sampler
    sampler.start()
    try:
        stats = run_demo_workload(publications, seed=seed, obs=obs)
    finally:
        sampler.stop()
    profile = sampler.profile()
    profile.meta["workload"] = f"demo:{publications}p:seed{seed}"
    return profile, stats
