"""repro.obs.prof — continuous profiling: the third observability pillar.

Metrics say *how many* pairings ran and traces say *which hop* was slow;
profiles answer the remaining question — *where the cycles go inside a
span*.  Following the continuous-profiling practice of Google-Wide
Profiling scaled down to this reproduction:

* :mod:`~repro.obs.prof.model` — the :class:`Profile` value type:
  weighted call stacks with collapsed-stack ("folded") text and
  speedscope JSON export, self/total-time queries, origin-deduplicated
  merging, and self-time-delta diffs between two recordings;
* :mod:`~repro.obs.prof.sampler` — :class:`StackSampler`, the
  low-overhead background wall+CPU sampler (``sys._current_frames()``
  at a configurable hz, bounded ring, bounded stack table), every
  sample tagged with the current trace/span/component from the active
  tracer's span stack; and :class:`DeterministicSampler`, the
  op-count-triggered mode whose output is byte-identical for a pinned
  workload seed (the simulator's profile tests replay it);
* :mod:`~repro.obs.prof.ledger` — the crypto cost ledger: joins the
  ``op.*`` counters with :mod:`repro.perf.calibrate` per-op costs to
  report modeled-vs-measured self-time drift per component;
* :mod:`~repro.obs.prof.workload` — the seeded demo workload behind
  ``repro prof record`` and the profiler test battery.

The live plane exposes the active profiler over a ``KIND_PROFILE``
admin RPC on every service (:mod:`repro.live.telemetry`), the
:class:`~repro.obs.aggregate.TelemetryAggregator` merges scrapes
deduplicating by (origin, stack), and ``repro prof record|report|
diff|top`` is the offline surface.
"""

from .ledger import LedgerRow, cost_ledger, format_ledger
from .model import (
    OVERFLOW_FRAME,
    Profile,
    StackWeight,
    diff_profiles,
    format_diff,
    format_report,
    load_profile,
    parse_folded,
    parse_speedscope,
)
from .sampler import DeterministicSampler, StackSampler
from .workload import record_demo

__all__ = [
    "Profile",
    "StackWeight",
    "OVERFLOW_FRAME",
    "diff_profiles",
    "format_diff",
    "format_report",
    "load_profile",
    "parse_folded",
    "parse_speedscope",
    "StackSampler",
    "DeterministicSampler",
    "LedgerRow",
    "cost_ledger",
    "format_ledger",
    "record_demo",
]
