"""The crypto cost ledger: modeled vs measured self-time per component.

PR 1's analytic models predict where the cycles go (count × calibrated
per-op cost); the ``op.*`` counters say how many of each op actually
ran, and the ``op.<op>.wall_s`` histograms say what the instrumented
ones actually cost.  The ledger joins all three: for every (component,
op) pair it reports the op count, the *modeled* self time
(count × :class:`~repro.perf.calibrate.CalibrationResult` per-op cost)
and — where an ``@instrument`` wall histogram exists — the *measured*
self time, with the drift between them.  Sustained drift means the
calibration constants no longer describe the prototype (cache effects,
a regressed hot path, a new parameter set) and `repro perf gate`
territory begins.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import MetricsRegistry
from ...perf.calibrate import CalibrationResult

__all__ = ["LedgerRow", "cost_ledger", "format_ledger"]

# op counter name → CalibrationResult field carrying its per-op cost.
MODELED_OPS: dict[str, str] = {
    "pairing": "pairing_s",
    "hve.encrypt": "pbe_encrypt_s",
    "hve.match": "pbe_match_s",
    "hve.token_gen": "pbe_token_gen_s",
    "abe.encrypt": "cpabe_encrypt_s",
    "abe.decrypt": "cpabe_decrypt_s",
}


@dataclass
class LedgerRow:
    """One (component, op) line of the cost ledger."""

    component: str
    op: str
    count: float
    modeled_s: float
    measured_s: float | None = None  # None: op has no wall histogram

    @property
    def drift(self) -> float | None:
        """(measured − modeled) / modeled; ``None`` when unmeasurable."""
        if self.measured_s is None or self.modeled_s <= 0:
            return None
        return (self.measured_s - self.modeled_s) / self.modeled_s


def cost_ledger(
    metrics: MetricsRegistry, calibration: CalibrationResult
) -> list[LedgerRow]:
    """Join op counters with calibrated costs, per component.

    Rows are sorted by descending modeled time — the ledger reads as
    "where the model says the cycles went", with the measured column
    showing where they actually went.
    """
    rows: list[LedgerRow] = []
    for op, cost_field in MODELED_OPS.items():
        per_op_s = getattr(calibration, cost_field)
        by_component = metrics.counters_by_label("op." + op, "component")
        for component, count in by_component.items():
            if count <= 0:
                continue
            histogram = metrics.histogram(
                "op." + op + ".wall_s", component=component
            )
            rows.append(
                LedgerRow(
                    component=component or "unattributed",
                    op=op,
                    count=count,
                    modeled_s=count * per_op_s,
                    measured_s=histogram.total if histogram is not None else None,
                )
            )
    rows.sort(key=lambda row: (-row.modeled_s, row.component, row.op))
    return rows


def format_ledger(rows: list[LedgerRow]) -> str:
    from ...perf.report import format_table  # local import: avoid a cycle

    if not rows:
        return "cost ledger: no modeled ops recorded (is observability on?)"
    table_rows = []
    total_modeled = 0.0
    total_measured = 0.0
    for row in rows:
        total_modeled += row.modeled_s
        if row.measured_s is not None:
            total_measured += row.measured_s
        drift = row.drift
        table_rows.append(
            [
                row.component,
                row.op,
                f"{row.count:.0f}",
                f"{row.modeled_s * 1000:.1f}ms",
                "-" if row.measured_s is None else f"{row.measured_s * 1000:.1f}ms",
                "-" if drift is None else f"{drift:+.1%}",
            ]
        )
    out = format_table(
        ["component", "op", "count", "modeled", "measured", "drift"],
        table_rows,
        title="crypto cost ledger (modeled = count x calibrated per-op cost)",
    )
    return (
        out
        + f"\ntotals: modeled {total_modeled * 1000:.1f}ms, "
        + f"measured (instrumented ops) {total_measured * 1000:.1f}ms"
    )
