"""Deterministic, seedable tail-based trace sampling.

At cluster scale the flight recorder cannot keep every span: a DS shard
doing thousands of publications per second would evict interesting
traces to make room for boring ones.  The :class:`TraceSampler` fixes
which traces are *kept* the moment their root span opens:

* **head decision** — a trace is kept with probability ``keep_rate``,
  decided by hashing ``(seed, trace_id)``.  Two processes configured
  with the same seed make the *same* decision for the same trace id, so
  a kept trace is complete across every service that touched it — no
  child spans missing because a downstream hop re-decided.  No wall
  clock, no ambient entropy: the kept set for a pinned seed is
  bit-identical across the simulator and the live TCP substrate.
* **propagation** — the decision rides in the third element of
  :meth:`SpanContext.to_wire` (``[trace_id, span_id, sampled]``), under
  the existing :data:`~repro.obs.tracing.CONTEXT_HEADER`.  A downstream
  tracer honours the propagated bit and never re-hashes, which is what
  makes the decision stable end to end.
* **tail promotion** — spans of a discarded trace are still created
  (children need parents, latency accounting needs timestamps) but are
  buffered instead of recorded.  When any span of the trace ends slow
  (wall clock ≥ the tracer's ``slow_span_threshold_s``) or with an
  ``error``/failed ``status`` attribute, the whole buffered trace is
  *promoted* into the flight recorder — the "always keep slow/error
  traces" half of tail sampling.  The buffer is bounded
  (``pending_trace_capacity`` traces); evicted traces were unsampled
  anyway, and the eviction count is exported so truncation is never
  silent.

Accounting (surfaced by the live telemetry plane as ``obs.sampler.*``):
``kept_traces`` / ``dropped_traces`` count head decisions at the root,
``promoted_traces`` counts tail promotions, ``evicted_traces`` counts
pending-buffer evictions.
"""

from __future__ import annotations

import hashlib

__all__ = ["TraceSampler", "decision"]

# Head decisions hash 64 bits of sha256("<seed>:<trace_id>") into [0, 1).
_DECISION_BITS = 64
_DECISION_SCALE = float(2**_DECISION_BITS)


def decision(seed: int, trace_id: int, keep_rate: float) -> bool:
    """The pure head-sampling decision: keep ``trace_id`` or not.

    Exposed as a module function so tests (and offline tooling replaying
    a scrape) can recompute the kept set without a tracer.
    """
    if keep_rate >= 1.0:
        return True
    if keep_rate <= 0.0:
        return False
    digest = hashlib.sha256(f"{seed}:{trace_id}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / _DECISION_SCALE
    return fraction < keep_rate


class TraceSampler:
    """Head-sampling policy + tail-promotion accounting for one tracer.

    ``keep_rate`` is the fraction of traces kept at the head decision;
    ``seed`` makes the decision deterministic and shared across
    processes.  The tracer consults :meth:`keep` exactly once per locally
    rooted trace and honours propagated decisions for remote parents.
    """

    def __init__(self, keep_rate: float = 1.0, seed: int = 0):
        if not 0.0 <= keep_rate <= 1.0:
            raise ValueError(f"keep_rate must be in [0, 1], got {keep_rate}")
        self.keep_rate = keep_rate
        self.seed = seed
        self.kept_traces = 0
        self.dropped_traces = 0
        self.promoted_traces = 0
        self.evicted_traces = 0

    def keep(self, trace_id: int) -> bool:
        """Head decision for a locally rooted trace (counted)."""
        kept = decision(self.seed, trace_id, self.keep_rate)
        if kept:
            self.kept_traces += 1
        else:
            self.dropped_traces += 1
        return kept

    def counters(self) -> dict[str, int]:
        """The ``obs.sampler.*`` accounting block, JSON-ready."""
        return {
            "kept_traces": self.kept_traces,
            "dropped_traces": self.dropped_traces,
            "promoted_traces": self.promoted_traces,
            "evicted_traces": self.evicted_traces,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceSampler(keep_rate={self.keep_rate}, seed={self.seed}, "
            f"kept={self.kept_traces}, dropped={self.dropped_traces}, "
            f"promoted={self.promoted_traces})"
        )
