"""Client-side routing: the :class:`ClusterMap` and its lookup helpers.

The ClusterMap is the one routing artifact both substrates share.  It is
built once at deployment bring-up, attached to the ARA's
:class:`~repro.core.ara.ServiceDirectory` (``directory.cluster``), and
therefore reaches every publisher, subscriber, and DS by reference —
credentials embed the directory, so a topology change made through
:meth:`ClusterMap.add_ds` / :meth:`ClusterMap.add_rs` propagates to all
parties without re-issuing anything.

Placement policy (see ``docs/CLUSTER.md`` for the rationale):

* a **publication** belongs to the DS shard owning its GUID — GUIDs are
  uniformly random, so load balances and the assignment leaks nothing a
  single broker would not see;
* an **RS item** belongs to the first ``rs_replication`` distinct ring
  successors of its GUID — the DS writes to all of them, retrieval walks
  them in order inside the existing bounded retry loop;
* **token registrations and subscriptions** go to *every* DS shard: any
  shard may own the next publication, so each must be able to match.
  Matching compute per publication still lands on exactly one shard,
  which is what scales.

The module-level helpers (`ds_shard_for` …) degrade gracefully: with no
``cluster`` on the directory (or a single shard) they return the classic
single-node names, so every pre-cluster test and pickle keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ring import DEFAULT_VNODES, HashRing

__all__ = [
    "ClusterMap",
    "ds_shard_for",
    "ds_shards_of",
    "rs_replicas_for",
    "shard_names",
]


def shard_names(prefix: str, n: int) -> list[str]:
    """Shard naming convention: 1 shard keeps the classic bare name
    (``"ds"``/``"rs"`` — store paths, pickles, and old tests unchanged),
    K>1 shards are ``"ds0".."dsK-1"``."""
    if n <= 1:
        return [prefix]
    return [f"{prefix}{i}" for i in range(n)]


@dataclass
class ClusterMap:
    """Mutable cluster topology with cached consistent-hash rings.

    ``rs_public_keys`` carries each RS shard's PKE public key — retrieval
    requests are encrypted *to a specific replica*, so failover needs the
    key of whichever replica it talks to next.
    """

    ds_names: list[str]
    rs_names: list[str]
    rs_replication: int = 1
    vnodes: int = DEFAULT_VNODES
    rs_public_keys: dict[str, object] = field(default_factory=dict)
    _ds_ring: HashRing | None = field(default=None, repr=False, compare=False)
    _rs_ring: HashRing | None = field(default=None, repr=False, compare=False)

    @property
    def ds_ring(self) -> HashRing:
        if self._ds_ring is None:
            self._ds_ring = HashRing(self.ds_names, self.vnodes)
        return self._ds_ring

    @property
    def rs_ring(self) -> HashRing:
        if self._rs_ring is None:
            self._rs_ring = HashRing(self.rs_names, self.vnodes)
        return self._rs_ring

    # -- placement -------------------------------------------------------------

    def ds_owner(self, guid: bytes) -> str:
        return self.ds_ring.owner(guid)

    def rs_replicas(self, guid: bytes) -> tuple[str, ...]:
        return self.rs_ring.successors(guid, self.rs_replication)

    # -- topology changes (propagate by reference through the directory) -------

    def add_ds(self, name: str) -> None:
        if name not in self.ds_names:
            self.ds_names.append(name)
            self._ds_ring = None

    def remove_ds(self, name: str) -> None:
        """Route new publications away from a failed DS shard.  The last
        shard is never removed — with everything down there is nowhere
        better to route, and retries need a target."""
        if name in self.ds_names and len(self.ds_names) > 1:
            self.ds_names.remove(name)
            self._ds_ring = None

    def add_rs(self, name: str, public_key=None) -> None:
        if name not in self.rs_names:
            self.rs_names.append(name)
            self._rs_ring = None
        if public_key is not None:
            self.rs_public_keys[name] = public_key

    def remove_rs(self, name: str) -> None:
        if name in self.rs_names:
            self.rs_names.remove(name)
            self._rs_ring = None

    # -- reporting -------------------------------------------------------------

    def describe(self) -> dict:
        """JSON-friendly topology summary for `repro cluster status`."""
        return {
            "ds_shards": list(self.ds_names),
            "rs_shards": list(self.rs_names),
            "rs_replication": self.rs_replication,
            "vnodes": self.vnodes,
            "ds_keyspace_share": {
                k: round(v, 4) for k, v in self.ds_ring.keyspace_share().items()
            },
            "rs_keyspace_share": {
                k: round(v, 4) for k, v in self.rs_ring.keyspace_share().items()
            },
        }


# -- directory-aware helpers (single-node fallback built in) --------------------


def _cluster_of(directory):
    return getattr(directory, "cluster", None)


def ds_shard_for(directory, guid: bytes) -> str:
    """The DS shard that owns publication ``guid``."""
    cluster = _cluster_of(directory)
    if cluster is None or len(cluster.ds_names) <= 1:
        return directory.ds_name
    return cluster.ds_owner(guid)


def ds_shards_of(directory) -> tuple[str, ...]:
    """Every DS shard — the connect/subscribe/token-registration set."""
    cluster = _cluster_of(directory)
    if cluster is None or not cluster.ds_names:
        return (directory.ds_name,)
    return tuple(cluster.ds_names)


def rs_replicas_for(directory, guid: bytes) -> tuple[tuple[str, object], ...]:
    """The ordered ``(rs_name, rs_public_key)`` replica set for ``guid``.

    Retrieval walks this list with the existing bounded-backoff retry
    (``replicas[attempt % len(replicas)]``), so a dead or partitioned
    primary costs one retry, not the item.
    """
    cluster = _cluster_of(directory)
    if cluster is None or len(cluster.rs_names) <= 1:
        return ((directory.rs_name, directory.rs_public_key),)
    return tuple(
        (name, cluster.rs_public_keys.get(name, directory.rs_public_key))
        for name in cluster.rs_replicas(guid)
    )
