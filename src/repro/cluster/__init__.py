"""Horizontal scaling for P3S: sharded, replicated DS/RS clusters.

The paper's deployment is one process per role; this package removes
that ceiling without touching any privacy gadget, exploiting two
structural facts of the P3S design:

* **DS matching is oblivious** — a dissemination server evaluates PBE
  tokens against PBE ciphertexts and learns nothing it would not learn
  as the sole broker, so the matching hot path partitions freely;
* **RS items are GUID-addressed** — repository content is a flat
  key→ciphertext map keyed by unguessable GUIDs, the textbook input for
  consistent hashing and replication.

Modules:

========================  ====================================================
:mod:`~repro.cluster.ring`        deterministic consistent-hash ring (vnodes)
:mod:`~repro.cluster.membership`  heartbeat membership + failure detection
:mod:`~repro.cluster.router`      the :class:`ClusterMap` + client-side routing
:mod:`~repro.cluster.rebalance`   minimal-movement migration on ring change
========================  ====================================================

Both substrates consume the same :class:`~repro.cluster.router.ClusterMap`
(carried in the ARA's :class:`~repro.core.ara.ServiceDirectory`), so a
sharded simulator deployment and a sharded live deployment route
identically — see ``docs/CLUSTER.md``.
"""

from .membership import Member, MembershipTable
from .rebalance import handoff_items, moved_fraction, plan_moves
from .ring import DEFAULT_VNODES, HashRing
from .router import ClusterMap, ds_shard_for, ds_shards_of, rs_replicas_for, shard_names

__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "Member",
    "MembershipTable",
    "ClusterMap",
    "ds_shard_for",
    "ds_shards_of",
    "rs_replicas_for",
    "shard_names",
    "plan_moves",
    "moved_fraction",
    "handoff_items",
]
