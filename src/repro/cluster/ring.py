"""A deterministic consistent-hash ring with virtual nodes.

Placement must agree across *processes* (the live deployment routes from
several OS processes; the simulator and live substrates must produce the
same shard for the same GUID), so every hash here is SHA-256 — never
Python's ``hash()``, whose per-process randomization (PYTHONHASHSEED)
would scatter one key across as many owners as there are processes.

Each node contributes ``vnodes`` points on a 64-bit ring; a key belongs
to the node owning the first point at or after the key's own point
(wrapping).  Virtual nodes smooth the load: at the default 64 vnodes the
largest shard's share of the keyspace stays within a small constant
factor of the mean (property-tested in ``tests/cluster/test_ring.py``).
Replication walks the ring clockwise collecting *distinct* nodes — the
"write to N successors" set.

Rings are immutable; topology changes produce a new ring via
:meth:`HashRing.with_node` / :meth:`HashRing.without_node`, and
:mod:`repro.cluster.rebalance` diffs the two to compute the minimal key
movement.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

__all__ = ["DEFAULT_VNODES", "HashRing", "hash_key"]

DEFAULT_VNODES = 64

_RING_SPACE = 1 << 64


def _digest64(data: bytes) -> int:
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


def hash_key(key: bytes | str) -> int:
    """A key's point on the 64-bit ring (SHA-256, process-independent)."""
    if isinstance(key, str):
        key = key.encode("utf-8")
    return _digest64(b"p3s-ring-key:" + key)


def _vnode_point(node: str, index: int) -> int:
    return _digest64(f"p3s-ring-node:{node}:{index}".encode("utf-8"))


class HashRing:
    """Immutable consistent-hash ring over named nodes."""

    def __init__(self, nodes: Iterable[str], vnodes: int = DEFAULT_VNODES):
        names = list(dict.fromkeys(nodes))  # dedupe, keep caller order
        if not names:
            raise ValueError("a HashRing needs at least one node")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.nodes: tuple[str, ...] = tuple(names)
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for node in self.nodes:
            for index in range(vnodes):
                points.append((_vnode_point(node, index), node))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    # -- placement -----------------------------------------------------------

    def owner(self, key: bytes | str) -> str:
        """The node owning ``key`` (first vnode at/after the key's point)."""
        index = bisect.bisect_left(self._points, hash_key(key)) % len(self._points)
        return self._owners[index]

    def successors(self, key: bytes | str, n: int) -> tuple[str, ...]:
        """The first ``n`` *distinct* nodes clockwise from ``key``.

        This is the replica set for N-way replication: the owner plus its
        ``n - 1`` ring successors.  Capped at the node count.
        """
        if n < 1:
            raise ValueError(f"need n >= 1 replicas, got {n}")
        want = min(n, len(self.nodes))
        start = bisect.bisect_left(self._points, hash_key(key))
        out: list[str] = []
        for offset in range(len(self._points)):
            node = self._owners[(start + offset) % len(self._points)]
            if node not in out:
                out.append(node)
                if len(out) == want:
                    break
        return tuple(out)

    # -- topology changes (immutable) ---------------------------------------

    def with_node(self, node: str) -> "HashRing":
        if node in self.nodes:
            return self
        return HashRing(self.nodes + (node,), self.vnodes)

    def without_node(self, node: str) -> "HashRing":
        if node not in self.nodes:
            return self
        return HashRing(tuple(n for n in self.nodes if n != node), self.vnodes)

    # -- load accounting ------------------------------------------------------

    def keyspace_share(self) -> dict[str, float]:
        """Fraction of the 64-bit keyspace each node owns (arcs, not samples)."""
        share: dict[str, int] = {node: 0 for node in self.nodes}
        previous = self._points[-1] - _RING_SPACE  # wraparound arc
        for point, owner in zip(self._points, self._owners):
            share[owner] += point - previous
            previous = point
        return {node: arc / _RING_SPACE for node, arc in sorted(share.items())}

    def counts(self, keys: Sequence[bytes | str]) -> dict[str, int]:
        """How many of ``keys`` each node owns (empirical balance)."""
        out = {node: 0 for node in self.nodes}
        for key in keys:
            out[self.owner(key)] += 1
        return out

    # -- equality / debugging --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashRing)
            and self.nodes == other.nodes
            and self.vnodes == other.vnodes
        )

    def __hash__(self) -> int:
        return hash((self.nodes, self.vnodes))

    def __repr__(self) -> str:
        return f"HashRing(nodes={list(self.nodes)}, vnodes={self.vnodes})"
