"""Minimal-movement migration when the ring changes.

Consistent hashing's whole point: adding one shard to an *n*-shard ring
relocates ~1/(n+1) of the keyspace and nothing else.  This module makes
that concrete for P3S state:

* **RS items** move via :func:`handoff_items` — engine-backed iteration
  over every shard's :class:`~repro.core.rs.RepositoryStore`, copying
  each item to replicas that newly own it and evicting it from shards
  that no longer do.  Items are opaque ``(GUID, ciphertext, clocks)``
  tuples; the handoff never decrypts anything and learns nothing beyond
  what the RS already sees (§6.1).
* **DS registrations** move via :func:`copy_registrations` — token
  registrations and subscriptions are replicated to *every* DS shard
  (any shard may own the next publication), so a new DS shard simply
  receives a full copy from any existing shard; nothing is deleted.

:func:`plan_moves` / :func:`moved_fraction` are the audit tools: the
property tests use them to prove minimality (adding a shard to *n*
moves ≤ ~1/n of keys, with slack for vnode granularity).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import profile as obs
from .ring import HashRing

__all__ = [
    "HandoffReport",
    "copy_registrations",
    "handoff_items",
    "moved_fraction",
    "plan_moves",
]


def plan_moves(
    keys, old_ring: HashRing, new_ring: HashRing, replication: int = 1
) -> dict:
    """Keys whose replica set changes, mapped to ``(old, new)`` tuples."""
    moves = {}
    for key in keys:
        old = old_ring.successors(key, replication)
        new = new_ring.successors(key, replication)
        if old != new:
            moves[key] = (old, new)
    return moves


def moved_fraction(keys, old_ring: HashRing, new_ring: HashRing) -> float:
    """Fraction of ``keys`` whose *primary* owner changes between rings."""
    keys = list(keys)
    if not keys:
        return 0.0
    moved = sum(1 for key in keys if old_ring.owner(key) != new_ring.owner(key))
    return moved / len(keys)


@dataclass
class HandoffReport:
    """What one rebalance actually did (surfaced in `cluster status`)."""

    examined: int = 0
    copied: int = 0
    evicted: int = 0

    def as_dict(self) -> dict:
        return {
            "examined": self.examined,
            "copied": self.copied,
            "evicted": self.evicted,
        }


def handoff_items(stores: dict, ring: HashRing, replication: int = 1) -> HandoffReport:
    """Re-home every RS item onto ``ring``'s replica sets.

    ``stores`` maps shard name → :class:`~repro.core.rs.RepositoryStore`
    and must cover every node on ``ring`` (a joining shard contributes
    an empty store).  For each item held anywhere, the item is copied to
    replicas that now own it but lack it, then evicted from holders that
    no longer own it — so only the minimal key range moves, and both the
    in-memory index and the durable engine (WAL/sqlite write-through)
    are updated on both sides.

    Copy-before-evict ordering means a crash mid-handoff can leave an
    item *over*-replicated, never under-replicated.
    """
    report = HandoffReport()
    for name, store in stores.items():
        for guid in list(store.guids()):
            report.examined += 1
            replicas = ring.successors(guid, replication)
            record = store.export_item(guid)
            for target in replicas:
                target_store = stores.get(target)
                if target_store is None:
                    raise KeyError(f"ring node {target!r} has no store in handoff")
                if target != name and not target_store.contains(guid):
                    target_store.import_item(guid, *record)
                    report.copied += 1
            if name not in replicas:
                store.evict(guid)
                report.evicted += 1
    if report.copied or report.evicted:
        obs.record_op("cluster.items_copied", report.copied)
        obs.record_op("cluster.items_evicted", report.evicted)
    return report


def copy_registrations(source_ds, target_ds) -> int:
    """Replicate one DS shard's token/subscription tables onto another.

    Used when a DS shard joins: tokens and subscriptions live on every
    shard, so the joiner bootstraps from any existing shard instead of
    waiting for every subscriber to re-register.  Returns how many
    entries were copied.
    """
    copied = 0
    for client, token in list(source_ds.registered_tokens):
        if (client, token) not in target_ds.registered_tokens:
            target_ds._register_token(client, token)
            copied += 1
    for topic, clients in list(source_ds.subscriptions.items()):
        for client in list(clients):
            if client not in target_ds.subscriptions[topic]:
                # the subscriber is connected to the *cluster*; mark it
                # connected here so _subscribe (and its durable
                # write-through) accepts the copy before the client's own
                # CONNECT cast lands
                target_ds.connected_clients.add(client)
                target_ds._subscribe(client, topic)
                copied += 1
    if copied:
        obs.record_op("cluster.registrations_copied", copied)
    return copied
