"""Heartbeat membership and failure detection for shard clusters.

A :class:`MembershipTable` is the cluster's view of which shards are
alive.  Every shard (or a supervisor on its behalf) calls
:meth:`MembershipTable.heartbeat` periodically; :meth:`sweep` marks any
member silent for longer than ``failure_timeout_s`` as dead and reports
the transitions so the caller can react — shrink the routing ring,
trigger a rebalance, flip a readiness probe.

Time is always an explicit ``now`` argument, the same convention as
:class:`repro.core.rs.RepositoryStore`: the simulator passes ``sim.now``,
the live deployment passes its monotonic clock, and the semantics are
identical on both substrates.  The table itself never reads a clock and
never spawns a timer — the substrate owns the cadence (the simulator
runs daemon heartbeat processes; the live services fold heartbeats into
their existing ``_background`` loops).

State changes emit ``cluster.*`` counters through :mod:`repro.obs` so
`repro live top` and the chaos reports can see membership churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import profile as obs

__all__ = ["Member", "MembershipTable"]


@dataclass
class Member:
    """One shard's liveness record."""

    name: str
    role: str  # "ds" | "rs"
    joined_at: float
    last_heartbeat: float
    alive: bool = True
    # bookkeeping for flap diagnostics
    failures: int = 0
    recoveries: int = 0


@dataclass
class MembershipTable:
    """Heartbeat bookkeeping + timeout-based failure detection.

    ``failure_timeout_s`` should comfortably exceed the heartbeat
    interval (3–4× is conventional) so one delayed beat does not flap
    the member; the chaos partition windows are longer than that, so a
    genuinely partitioned shard *is* detected.
    """

    failure_timeout_s: float = 3.0
    members: dict[str, Member] = field(default_factory=dict)

    def join(self, name: str, role: str, now: float) -> Member:
        member = self.members.get(name)
        if member is None:
            member = Member(name=name, role=role, joined_at=now, last_heartbeat=now)
            self.members[name] = member
            obs.record_op("cluster.join")
        else:
            member.last_heartbeat = now
        return member

    def heartbeat(self, name: str, now: float) -> None:
        member = self.members.get(name)
        if member is None:
            raise KeyError(f"heartbeat from unknown member {name!r}")
        member.last_heartbeat = now
        obs.record_op("cluster.heartbeat")
        if not member.alive:
            member.alive = True
            member.recoveries += 1
            obs.record_op("cluster.member_recovered")

    def sweep(self, now: float) -> list[str]:
        """Mark silent members dead; returns the names that died *now*."""
        died: list[str] = []
        for member in self.members.values():
            if member.alive and now - member.last_heartbeat > self.failure_timeout_s:
                member.alive = False
                member.failures += 1
                died.append(member.name)
                obs.record_op("cluster.member_failed")
        return died

    # -- queries ---------------------------------------------------------------

    def is_alive(self, name: str) -> bool:
        member = self.members.get(name)
        return member is not None and member.alive

    def alive(self, role: str | None = None) -> list[str]:
        return [
            m.name
            for m in self.members.values()
            if m.alive and (role is None or m.role == role)
        ]

    def dead(self, role: str | None = None) -> list[str]:
        return [
            m.name
            for m in self.members.values()
            if not m.alive and (role is None or m.role == role)
        ]

    def snapshot(self, now: float) -> list[dict]:
        """JSON-friendly membership view for `repro cluster status`."""
        return [
            {
                "name": m.name,
                "role": m.role,
                "alive": m.alive,
                "age_s": round(now - m.joined_at, 3),
                "silence_s": round(now - m.last_heartbeat, 3),
                "failures": m.failures,
                "recoveries": m.recoveries,
            }
            for m in sorted(self.members.values(), key=lambda m: (m.role, m.name))
        ]
