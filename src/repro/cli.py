"""Command-line interface: regenerate experiments from the terminal.

::

    python -m repro table1              # Table 1 with measured constants
    python -m repro fig8                # latency figure (table + ASCII plot)
    python -m repro fig9                # throughput, f = 5%
    python -m repro fig10               # throughput, f = 50%
    python -m repro calibrate -p PAPER  # measure crypto constants
    python -m repro demo                # one publication end to end
    python -m repro attacks             # the two §6.1 token attacks, live
    python -m repro live demo           # full scenario over real TCP sockets
    python -m repro live init --state p3s.state   # provision a multi-process deployment
    python -m repro live serve-ds --state p3s.state   # one service per process
    python -m repro live run --state p3s.state        # drive clients against them
"""

from __future__ import annotations

import argparse

from .perf.calibrate import calibrate
from .perf.latency import baseline_latency, latency_ratio, p3s_latency
from .perf.params import MESSAGE_SIZES, PAPER_PARAMS
from .perf.plot import ascii_plot
from .perf.report import format_rate, format_seconds, format_size, format_table, series_table
from .perf.throughput import baseline_throughput, p3s_throughput, throughput_ratio

__all__ = ["main"]


def _cmd_table1(args) -> None:
    result = calibrate(args.params, vector_bits=40, policy_attributes=10, repetitions=1)
    rows = [
        ["P_E (PBE-encrypted metadata)", "10 KB", format_size(result.encrypted_metadata_bytes)],
        ["enc_P (PBE encrypt)", "≈30 ms", format_seconds(result.pbe_encrypt_s)],
        ["t_PBE (PBE match)", "≈38 ms", format_seconds(result.pbe_match_s)],
        ["enc_C (CP-ABE encrypt)", "≈3 ms", format_seconds(result.cpabe_encrypt_s)],
        ["dec_C (CP-ABE decrypt)", "≈12 ms", format_seconds(result.cpabe_decrypt_s)],
        ["pairing (1 op)", "—", format_seconds(result.pairing_s)],
        ["token (20 positions)", "—", format_size(result.token_bytes)],
    ]
    print(format_table(
        ["parameter", "paper", f"measured ({args.params})"],
        rows,
        title="Table 1 — measured model parameters",
    ))


def _cmd_fig8(args) -> None:
    base = [baseline_latency(m, PAPER_PARAMS).total for m in MESSAGE_SIZES]
    p3s = [p3s_latency(m, PAPER_PARAMS).total for m in MESSAGE_SIZES]
    ratio = [latency_ratio(m, PAPER_PARAMS) for m in MESSAGE_SIZES]
    print(series_table(
        MESSAGE_SIZES,
        {"baseline": base, "P3S": p3s, "ratio(b)": ratio},
        formatters={"ratio(b)": ".2f"},
        title="Fig. 8 — end-to-end latency, ℬ = 10 Mbps",
    ))
    print()
    print(ascii_plot(
        MESSAGE_SIZES,
        {"baseline": base, "P3S": p3s},
        title="Fig. 8(a)",
        y_label="latency (s), log scale",
    ))


def _cmd_fig9(args, match_fraction: float = 0.05, label: str = "Fig. 9") -> None:
    params = PAPER_PARAMS.with_(match_fraction=match_fraction)
    base = [baseline_throughput(m, params).total for m in MESSAGE_SIZES]
    p3s = [p3s_throughput(m, params).total for m in MESSAGE_SIZES]
    ratio = [throughput_ratio(m, params) for m in MESSAGE_SIZES]
    print(series_table(
        MESSAGE_SIZES,
        {"baseline": base, "P3S": p3s, "ratio(b)": ratio},
        formatters={"baseline": format_rate, "P3S": format_rate, "ratio(b)": ".3f"},
        title=f"{label} — throughput, f = {match_fraction:.0%}",
    ))
    print()
    print(ascii_plot(
        MESSAGE_SIZES,
        {"baseline": base, "P3S": p3s},
        title=f"{label}(a)",
        y_label="publications/s, log scale",
    ))


def _cmd_fig10(args) -> None:
    _cmd_fig9(args, match_fraction=0.5, label="Fig. 10")


def _cmd_calibrate(args) -> None:
    result = calibrate(
        args.params, vector_bits=args.vector_bits, policy_attributes=10, repetitions=args.reps
    )
    for field_name in (
        "pairing_s", "pbe_encrypt_s", "pbe_match_s", "pbe_token_gen_s",
        "cpabe_encrypt_s", "cpabe_decrypt_s", "pke_op_s",
    ):
        print(f"{field_name:18s} {format_seconds(getattr(result, field_name))}")
    print(f"{'P_E':18s} {format_size(result.encrypted_metadata_bytes)}")
    print(f"{'c_A overhead':18s} {format_size(result.cpabe_overhead_bytes)}")


def _cmd_demo(args) -> None:
    from .core import P3SConfig, P3SSystem
    from .pbe import ANY, AttributeSpec, Interest, MetadataSchema

    observability = None
    if args.trace or args.trace_out or args.metrics_out:
        from .obs import Observability

        observability = Observability()

    schema = MetadataSchema([
        AttributeSpec("topic", ("alpha", "beta", "gamma", "delta")),
    ])
    system = P3SSystem(P3SConfig(schema=schema, obs=observability))
    try:
        alice = system.add_subscriber("alice", {"clearance"})
        system.subscribe(alice, Interest({"topic": "alpha"}))
        system.run()
        publisher = system.add_publisher("pub")
        system.run()
        record = publisher.publish({"topic": "alpha"}, b"hello, private world", policy="clearance")
        system.run()
        (delivery,) = system.deliveries_for(record)
        print(f"delivered {delivery.payload!r} in {delivery.delivered_at - record.submitted_at:.3f}s "
              f"(simulated); PBE-TS saw sources {sorted(set(system.pbe_ts.observed_sources))}")
        if observability is not None:
            if args.trace:
                print()
                print(observability.format_tree())
                print()
                print(observability.format_ops())
            if args.trace_out:
                observability.write_spans(args.trace_out)
                print(f"wrote spans to {args.trace_out}")
            if args.metrics_out:
                observability.write_metrics(args.metrics_out)
                print(f"wrote metrics to {args.metrics_out}")
    finally:
        if observability is not None:
            observability.uninstall()


def _cmd_attacks(args) -> None:
    from .crypto import PairingGroup
    from .pbe import ANY, AttributeSpec, HVE, Interest, MetadataSchema
    from .privacy import token_accumulation_attack, token_probing_attack

    group = PairingGroup("TOY")
    schema = MetadataSchema([
        AttributeSpec("topic", ("a", "b", "c", "d")),
        AttributeSpec("prio", ("lo", "hi")),
    ])
    hve = HVE(group)
    public, master = hve.setup(schema.vector_length)

    secret = Interest({"topic": "c", "prio": ANY})
    token = hve.gen_token(master, schema.encode_interest(secret))
    recovered = token_probing_attack(hve, public, token, schema)
    print(f"token-probing attack: victim interest {secret.describe()!r} "
          f"→ recovered {recovered.describe()!r}")

    accumulated = {
        (spec.name, value): hve.gen_token(master, schema.encode_interest(Interest({spec.name: value})))
        for spec in schema.attributes for value in spec.values
    }
    metadata = {"topic": "b", "prio": "hi"}
    ciphertext = hve.encrypt(public, schema.encode_metadata(metadata), b"guid")
    print(f"token-accumulation attack: published metadata {metadata} "
          f"→ recovered {token_accumulation_attack(hve, accumulated, ciphertext, schema)}")


def _cmd_live_demo(args) -> None:
    import asyncio

    from .core.config import P3SConfig
    from .live.scenario import default_scenario, run_on_live, run_on_simulator

    scenario = default_scenario()
    passes = [("broadcast", P3SConfig())]
    if not args.skip_delegated:
        passes.append(
            ("delegated matching", P3SConfig(delegated_matching=True, match_workers=1))
        )
    for label, config in passes:
        simulated = run_on_simulator(scenario, config)
        live = asyncio.run(run_on_live(scenario, config, expected=simulated))
        print(f"--- {label} ---")
        for name in sorted(live):
            payloads = ", ".join(repr(p) for p in live[name]) or "(nothing)"
            print(f"  {name}: {payloads}")
        verdict = "MATCH" if simulated == live else "MISMATCH"
        print(f"  simulator vs live delivery sets: {verdict}")
        if simulated != live:
            raise SystemExit(1)


def _cmd_live_init(args) -> None:
    from .live.runner import init_state

    state = init_state(args.state, host=args.host, base_port=args.base_port)
    plan = ", ".join(f"{name}={port}" for name, port in state.ports.items())
    print(f"wrote deployment state to {args.state} ({plan})")


def _make_serve_cmd(role: str):
    def _cmd(args) -> None:
        import asyncio

        from .live.runner import load_state, serve_role

        try:
            asyncio.run(serve_role(role, load_state(args.state)))
        except KeyboardInterrupt:
            pass

    return _cmd


def _cmd_live_run(args) -> None:
    import asyncio

    from .live.runner import load_state, run_clients
    from .live.scenario import default_scenario

    delivered = asyncio.run(run_clients(load_state(args.state), default_scenario()))
    for name in sorted(delivered):
        payloads = ", ".join(repr(p) for p in delivered[name]) or "(nothing)"
        print(f"{name}: {payloads}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="P3S reproduction — experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="Table 1 with measured constants")
    table1.add_argument("-p", "--params", default="TOY", choices=["TOY", "TEST", "PAPER"])
    table1.set_defaults(func=_cmd_table1)

    for name, func in (("fig8", _cmd_fig8), ("fig9", _cmd_fig9), ("fig10", _cmd_fig10)):
        fig = sub.add_parser(name, help=f"regenerate {name}")
        fig.set_defaults(func=func)

    cal = sub.add_parser("calibrate", help="measure crypto constants")
    cal.add_argument("-p", "--params", default="TOY", choices=["TOY", "TEST", "PAPER"])
    cal.add_argument("--vector-bits", type=int, default=40)
    cal.add_argument("--reps", type=int, default=1)
    cal.set_defaults(func=_cmd_calibrate)

    demo = sub.add_parser("demo", help="one publication end to end")
    demo.add_argument(
        "--trace", action="store_true",
        help="print the causal span tree and crypto-op summary",
    )
    demo.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write spans as JSON lines to PATH",
    )
    demo.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the metrics registry as CSV to PATH",
    )
    demo.set_defaults(func=_cmd_demo)

    attacks = sub.add_parser("attacks", help="run the §6.1 token attacks")
    attacks.set_defaults(func=_cmd_attacks)

    live = sub.add_parser("live", help="run P3S as real TCP services")
    live_sub = live.add_subparsers(dest="live_command", required=True)

    live_demo = live_sub.add_parser(
        "demo", help="full scenario over loopback TCP, checked against the simulator"
    )
    live_demo.add_argument(
        "--skip-delegated", action="store_true",
        help="skip the delegated-matching pass (broadcast only)",
    )
    live_demo.set_defaults(func=_cmd_live_demo)

    live_init = live_sub.add_parser(
        "init", help="provision trust material for a multi-process deployment"
    )
    live_init.add_argument("--state", required=True, metavar="FILE")
    live_init.add_argument("--host", default="127.0.0.1")
    live_init.add_argument("--base-port", type=int, default=7341)
    live_init.set_defaults(func=_cmd_live_init)

    for role in ("ds", "rs", "pbe-ts", "anon"):
        serve = live_sub.add_parser(
            f"serve-{role}", help=f"serve the {role} from a state bundle"
        )
        serve.add_argument("--state", required=True, metavar="FILE")
        serve.set_defaults(func=_make_serve_cmd(role))

    live_run = live_sub.add_parser(
        "run", help="drive scenario clients against running serve-* processes"
    )
    live_run.add_argument("--state", required=True, metavar="FILE")
    live_run.set_defaults(func=_cmd_live_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0
