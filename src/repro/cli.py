"""Command-line interface: regenerate experiments from the terminal.

::

    python -m repro table1              # Table 1 with measured constants
    python -m repro fig8                # latency figure (table + ASCII plot)
    python -m repro fig9                # throughput, f = 5%
    python -m repro fig10               # throughput, f = 50%
    python -m repro calibrate -p PAPER  # measure crypto constants
    python -m repro demo                # one publication end to end
    python -m repro attacks             # the two §6.1 token attacks, live
    python -m repro live demo           # full scenario over real TCP sockets
    python -m repro live init --state p3s.state   # provision a multi-process deployment
    python -m repro live serve-ds --state p3s.state   # one service per process
    python -m repro live run --state p3s.state        # drive clients against them
    python -m repro live status --state p3s.state     # health + op totals (or in-process demo)
    python -m repro live top --state p3s.state        # refreshing per-service throughput view
    python -m repro live init --state p3s.state --data-dir ./p3s-data   # durable deployment
    python -m repro live init --state p3s.state --ds-shards 2 --rs-shards 2 --replication 2
    python -m repro live serve-ds --state p3s.state --name ds1   # serve one shard
    python -m repro cluster status --json             # sharded topology + membership
    python -m repro store inspect ./p3s-data/rs       # keyless store-file dump
    python -m repro chaos run --seed 7 --profile ci   # seeded fault-injection run
    python -m repro chaos run --seed 7 --minimize     # shrink a failing schedule
    python -m repro chaos profiles                    # list fault profiles
    python -m repro slo report --chaos-seed 7 --json  # SLO/alert report for a chaos run
    python -m repro slo report --state p3s.state      # judge a live deployment's SLOs
    python -m repro slo watch                         # refreshing burn-rate/alert view
    python -m repro prof record --out demo.prof.json  # span-attributed demo profile
    python -m repro prof report demo.prof.json        # hot-frames report
    python -m repro prof diff before.prof.json after.prof.json  # self-time deltas
    python -m repro prof top --state p3s.state        # merged live-service hot frames
    python -m repro perf gate                         # perf-regression gate
    python -m repro perf gate --smoke                 # history floor checks only
"""

from __future__ import annotations

import argparse

from .perf.calibrate import calibrate
from .perf.latency import baseline_latency, latency_ratio, p3s_latency
from .perf.params import MESSAGE_SIZES, PAPER_PARAMS
from .perf.plot import ascii_plot
from .perf.report import format_rate, format_seconds, format_size, format_table, series_table
from .perf.throughput import baseline_throughput, p3s_throughput, throughput_ratio

__all__ = ["main"]


def _cmd_table1(args) -> None:
    result = calibrate(args.params, vector_bits=40, policy_attributes=10, repetitions=1)
    rows = [
        ["P_E (PBE-encrypted metadata)", "10 KB", format_size(result.encrypted_metadata_bytes)],
        ["enc_P (PBE encrypt)", "≈30 ms", format_seconds(result.pbe_encrypt_s)],
        ["t_PBE (PBE match)", "≈38 ms", format_seconds(result.pbe_match_s)],
        ["enc_C (CP-ABE encrypt)", "≈3 ms", format_seconds(result.cpabe_encrypt_s)],
        ["dec_C (CP-ABE decrypt)", "≈12 ms", format_seconds(result.cpabe_decrypt_s)],
        ["pairing (1 op)", "—", format_seconds(result.pairing_s)],
        ["token (20 positions)", "—", format_size(result.token_bytes)],
    ]
    print(format_table(
        ["parameter", "paper", f"measured ({args.params})"],
        rows,
        title="Table 1 — measured model parameters",
    ))


def _cmd_fig8(args) -> None:
    base = [baseline_latency(m, PAPER_PARAMS).total for m in MESSAGE_SIZES]
    p3s = [p3s_latency(m, PAPER_PARAMS).total for m in MESSAGE_SIZES]
    ratio = [latency_ratio(m, PAPER_PARAMS) for m in MESSAGE_SIZES]
    print(series_table(
        MESSAGE_SIZES,
        {"baseline": base, "P3S": p3s, "ratio(b)": ratio},
        formatters={"ratio(b)": ".2f"},
        title="Fig. 8 — end-to-end latency, ℬ = 10 Mbps",
    ))
    print()
    print(ascii_plot(
        MESSAGE_SIZES,
        {"baseline": base, "P3S": p3s},
        title="Fig. 8(a)",
        y_label="latency (s), log scale",
    ))


def _cmd_fig9(args, match_fraction: float = 0.05, label: str = "Fig. 9") -> None:
    params = PAPER_PARAMS.with_(match_fraction=match_fraction)
    base = [baseline_throughput(m, params).total for m in MESSAGE_SIZES]
    p3s = [p3s_throughput(m, params).total for m in MESSAGE_SIZES]
    ratio = [throughput_ratio(m, params) for m in MESSAGE_SIZES]
    print(series_table(
        MESSAGE_SIZES,
        {"baseline": base, "P3S": p3s, "ratio(b)": ratio},
        formatters={"baseline": format_rate, "P3S": format_rate, "ratio(b)": ".3f"},
        title=f"{label} — throughput, f = {match_fraction:.0%}",
    ))
    print()
    print(ascii_plot(
        MESSAGE_SIZES,
        {"baseline": base, "P3S": p3s},
        title=f"{label}(a)",
        y_label="publications/s, log scale",
    ))


def _cmd_fig10(args) -> None:
    _cmd_fig9(args, match_fraction=0.5, label="Fig. 10")


def _cmd_calibrate(args) -> None:
    result = calibrate(
        args.params, vector_bits=args.vector_bits, policy_attributes=10, repetitions=args.reps
    )
    for field_name in (
        "pairing_s", "pbe_encrypt_s", "pbe_match_s", "pbe_token_gen_s",
        "cpabe_encrypt_s", "cpabe_decrypt_s", "pke_op_s",
    ):
        print(f"{field_name:18s} {format_seconds(getattr(result, field_name))}")
    print(f"{'P_E':18s} {format_size(result.encrypted_metadata_bytes)}")
    print(f"{'c_A overhead':18s} {format_size(result.cpabe_overhead_bytes)}")


def _cmd_demo(args) -> None:
    from .core import P3SConfig, P3SSystem
    from .pbe import ANY, AttributeSpec, Interest, MetadataSchema

    observability = None
    if args.trace or args.trace_out or args.metrics_out:
        from .obs import Observability

        observability = Observability()

    schema = MetadataSchema([
        AttributeSpec("topic", ("alpha", "beta", "gamma", "delta")),
    ])
    system = P3SSystem(P3SConfig(schema=schema, obs=observability))
    try:
        alice = system.add_subscriber("alice", {"clearance"})
        system.subscribe(alice, Interest({"topic": "alpha"}))
        system.run()
        publisher = system.add_publisher("pub")
        system.run()
        record = publisher.publish({"topic": "alpha"}, b"hello, private world", policy="clearance")
        system.run()
        (delivery,) = system.deliveries_for(record)
        print(f"delivered {delivery.payload!r} in {delivery.delivered_at - record.submitted_at:.3f}s "
              f"(simulated); PBE-TS saw sources {sorted(set(system.pbe_ts.observed_sources))}")
        if observability is not None:
            if args.trace:
                print()
                print(observability.format_tree())
                print()
                print(observability.format_ops())
            if args.trace_out:
                observability.write_spans(args.trace_out)
                print(f"wrote spans to {args.trace_out}")
            if args.metrics_out:
                observability.write_metrics(args.metrics_out)
                print(f"wrote metrics to {args.metrics_out}")
    finally:
        if observability is not None:
            observability.uninstall()


def _cmd_attacks(args) -> None:
    from .crypto import PairingGroup
    from .pbe import ANY, AttributeSpec, HVE, Interest, MetadataSchema
    from .privacy import token_accumulation_attack, token_probing_attack

    group = PairingGroup("TOY")
    schema = MetadataSchema([
        AttributeSpec("topic", ("a", "b", "c", "d")),
        AttributeSpec("prio", ("lo", "hi")),
    ])
    hve = HVE(group)
    public, master = hve.setup(schema.vector_length)

    secret = Interest({"topic": "c", "prio": ANY})
    token = hve.gen_token(master, schema.encode_interest(secret))
    recovered = token_probing_attack(hve, public, token, schema)
    print(f"token-probing attack: victim interest {secret.describe()!r} "
          f"→ recovered {recovered.describe()!r}")

    accumulated = {
        (spec.name, value): hve.gen_token(master, schema.encode_interest(Interest({spec.name: value})))
        for spec in schema.attributes for value in spec.values
    }
    metadata = {"topic": "b", "prio": "hi"}
    ciphertext = hve.encrypt(public, schema.encode_metadata(metadata), b"guid")
    print(f"token-accumulation attack: published metadata {metadata} "
          f"→ recovered {token_accumulation_attack(hve, accumulated, ciphertext, schema)}")


def _cmd_live_demo(args) -> None:
    import asyncio

    from .core.config import P3SConfig
    from .live.scenario import default_scenario, run_on_live, run_on_simulator

    scenario = default_scenario()
    passes = [("broadcast", P3SConfig())]
    if not args.skip_delegated:
        passes.append(
            ("delegated matching", P3SConfig(delegated_matching=True, match_workers=1))
        )
    for label, config in passes:
        simulated = run_on_simulator(scenario, config)
        live = asyncio.run(run_on_live(scenario, config, expected=simulated))
        print(f"--- {label} ---")
        for name in sorted(live):
            payloads = ", ".join(repr(p) for p in live[name]) or "(nothing)"
            print(f"  {name}: {payloads}")
        verdict = "MATCH" if simulated == live else "MISMATCH"
        print(f"  simulator vs live delivery sets: {verdict}")
        if simulated != live:
            raise SystemExit(1)


def _cmd_live_init(args) -> None:
    from .core.config import P3SConfig
    from .live.runner import init_state

    config = P3SConfig(
        ds_shards=args.ds_shards,
        rs_shards=args.rs_shards,
        rs_replication=args.replication,
    )
    if args.store_backend:
        config = config.with_(store_backend=args.store_backend)
    state = init_state(
        args.state,
        host=args.host,
        base_port=args.base_port,
        config=config,
        data_dir=args.data_dir,
    )
    plan = ", ".join(f"{name}={port}" for name, port in state.ports.items())
    print(f"wrote deployment state to {args.state} ({plan})")
    if state.cluster is not None:
        print(
            f"sharded topology: {len(state.cluster.ds_names)} DS x "
            f"{len(state.cluster.rs_names)} RS, "
            f"replication {state.cluster.rs_replication}"
        )
    if state.data_dir is not None:
        print(
            f"durable stores ({state.config.store_backend}) under {state.data_dir}"
        )


def _cmd_store_inspect(args) -> None:
    import json

    from .store import format_inspection, inspect_store

    report = inspect_store(args.path)
    if args.json:
        print(json.dumps(report, indent=2, default=str))
    else:
        print(format_inspection(report))


def _write_profile(profile, out: str, force: bool) -> None:
    """Write a profile as speedscope JSON (or ``.folded`` text by suffix).

    Refuses to clobber an existing recording unless ``--force`` — a
    before/after diff workflow lives or dies on not losing the "before".
    """
    import json
    import os

    if os.path.exists(out) and not force:
        raise SystemExit(f"refusing to overwrite {out} (pass --force)")
    if out.endswith(".folded"):
        with open(out, "w") as handle:
            handle.write(profile.folded())
        return
    with open(out, "w") as handle:
        json.dump(profile.to_speedscope(name=os.path.basename(out)), handle, indent=2)
        handle.write("\n")


def _cmd_prof_record(args) -> None:
    from .obs.prof import format_report, record_demo

    profile, stats = record_demo(
        publications=args.publications,
        seed=args.seed,
        mode=args.mode,
        every=args.every,
        hz=args.hz,
    )
    if args.out:
        _write_profile(profile, args.out, args.force)
        print(
            f"recorded {args.mode} profile of {stats['publications']} publications "
            f"(seed {stats['seed']}, {stats['delivered']} delivered) -> {args.out}"
        )
    print(format_report(profile, limit=args.limit))


def _cmd_prof_report(args) -> None:
    from .obs.prof import format_report, load_profile

    print(format_report(load_profile(args.profile), limit=args.limit))


def _cmd_prof_diff(args) -> None:
    from .obs.prof import diff_profiles, format_diff, load_profile

    before = load_profile(args.before)
    after = load_profile(args.after)
    deltas = diff_profiles(before, after, normalize=not args.absolute)
    print(format_diff(deltas, limit=args.limit, normalized=not args.absolute))


def _cmd_prof_ledger(args) -> None:
    from .obs.observability import Observability
    from .obs.prof import cost_ledger, format_ledger
    from .obs.prof.workload import run_demo_workload

    obs = Observability()
    stats = run_demo_workload(args.publications, seed=args.seed, obs=obs)
    calibration = calibrate(
        args.params, vector_bits=8, policy_attributes=4, repetitions=1
    )
    rows = cost_ledger(obs.metrics, calibration)
    print(
        f"demo workload: {stats['publications']} publications (seed "
        f"{stats['seed']}), {stats['delivered']} delivered; calibration "
        f"{args.params}"
    )
    print(format_ledger(rows))


async def _prof_top(args) -> None:
    from .obs.aggregate import TelemetryAggregator
    from .obs.prof import format_report

    client, services, close = await _open_telemetry_session(args, "prof")
    aggregator = TelemetryAggregator()
    try:
        if not args.state:
            import asyncio

            # in-process deployment: let the background publisher give the
            # samplers something to see before the one-shot scrape
            await asyncio.sleep(args.warmup)
        await client.scrape(aggregator)
    finally:
        await close()
    origins = aggregator.profile_origins()
    if not origins:
        raise SystemExit(
            "no profiles scraped — are the services running with P3S_PROFILE=off?"
        )
    merged = aggregator.merged_profile()
    print(
        "profiles from: "
        + ", ".join(
            f"{origin} ({'+'.join(sorted(names))})" for origin, names in sorted(origins.items())
        )
    )
    print(format_report(merged, limit=args.limit))
    if args.out:
        _write_profile(merged, args.out, args.force)
        print(f"merged profile -> {args.out}")


def _cmd_prof_top(args) -> None:
    import asyncio

    try:
        asyncio.run(_prof_top(args))
    except KeyboardInterrupt:
        pass


def _cmd_perf_gate(args) -> None:
    from .perf.gate import format_gate, run_gate

    report = run_gate(
        root=args.root,
        smoke=args.smoke,
        only=args.only or None,
    )
    print(format_gate(report))
    if not report.passed:
        raise SystemExit(1)


def _make_serve_cmd(role: str):
    def _cmd(args) -> None:
        import asyncio

        from .live.runner import load_state, serve_role

        # sharded bundles name their services ds0/ds1/rs0/…; --name picks
        # which shard this process serves (default: the classic name)
        name = getattr(args, "name", None) or role
        try:
            asyncio.run(serve_role(name, load_state(args.state)))
        except KeyboardInterrupt:
            pass

    return _cmd


def _cmd_live_run(args) -> None:
    import asyncio

    from .live.runner import load_state, run_clients
    from .live.scenario import default_scenario

    delivered = asyncio.run(run_clients(load_state(args.state), default_scenario()))
    for name in sorted(delivered):
        payloads = ", ".join(repr(p) for p in delivered[name]) or "(nothing)"
        print(f"{name}: {payloads}")


def _demo_metadata(**overrides: str) -> dict[str, str]:
    base = {f"attr{i:02d}": "v00" for i in range(10)}
    base.update(overrides)
    return base


async def _scrape_deployment_state(state, services):
    """One telemetry sweep against an already-running multi-process deployment."""
    from .live.telemetry import TelemetryClient

    client = TelemetryClient(state.endpoint("telemetry"), services)
    try:
        return await client.scrape()
    finally:
        await client.close()


async def _scrape_demo_deployment(config, scenario, expected):
    """Stand up an in-process deployment, run ``scenario``, scrape, tear down."""
    import asyncio

    from .live.deployment import LiveDeployment

    deployment = LiveDeployment(config)
    await deployment.start()
    try:
        for spec in scenario.subscribers:
            subscriber = await deployment.add_subscriber(spec.name, set(spec.attributes))
            for interest in spec.interests:
                await subscriber.subscribe(interest)
        publisher = await deployment.add_publisher(scenario.publisher_name)
        for publication in scenario.publications:
            await publisher.publish(
                publication.metadata_dict,
                publication.payload,
                policy=publication.policy,
                ttl_s=publication.ttl_s,
            )
        await asyncio.gather(
            *(
                deployment.subscribers[name].wait_for_deliveries(len(payloads), 60.0)
                for name, payloads in expected.items()
                if payloads
            )
        )
        await asyncio.sleep(0.2)  # let acks, stores, and span ends settle
        return await deployment.scrape()
    finally:
        await deployment.close()


def _print_status(aggregator, engine=None) -> None:
    latency = aggregator.latency_summary()
    print(format_table(
        ["service", "alive", "ready", "failing checks"],
        aggregator.health_rows(),
        title="live deployment health",
    ))
    ops = aggregator.op_table()
    if ops.strip():
        print()
        print("operation counts by service:")
        print(ops)
    print()
    if latency["count"]:
        print(
            f"publish→deliver latency over {latency['count']} deliveries: "
            f"p50 {latency['p50_s'] * 1000:.1f} ms, p95 {latency['p95_s'] * 1000:.1f} ms, "
            f"max {latency['max_s'] * 1000:.1f} ms"
        )
    print(
        f"spans aggregated: {len(aggregator.spans())}, "
        f"dropped by flight recorders: {aggregator.total_dropped_spans}"
    )
    if engine is not None:
        active = engine.active_alerts()
        if active:
            print("SLO alerts: " + ", ".join(
                f"{alert.slo}[{alert.severity} {alert.window}]" for alert in active
            ))
        else:
            print("SLO alerts: none")


def _cmd_live_status(args) -> None:
    import asyncio
    import json

    if args.state:
        from .live.runner import load_state, service_roles

        state = load_state(args.state)
        aggregator = asyncio.run(
            _scrape_deployment_state(state, service_roles(state))
        )
    else:
        # no running deployment to poll: stand one up in-process, run the
        # demo scenario through it, and report on that
        from .core.config import P3SConfig
        from .live.scenario import default_scenario, run_on_simulator
        from .obs import Observability
        from .obs.ring import DEFAULT_FLIGHT_RECORDER_CAPACITY

        scenario = default_scenario()
        expected = run_on_simulator(scenario, P3SConfig())
        obs = Observability(span_capacity=DEFAULT_FLIGHT_RECORDER_CAPACITY)
        config = P3SConfig(obs=obs)
        try:
            aggregator = asyncio.run(_scrape_demo_deployment(config, scenario, expected))
        finally:
            obs.uninstall()
    # judge the scrape against the stock wall-clock SLOs so alert state
    # rides along in every output form (table footer, JSON, slo_* series)
    from .obs.slo import SLO_GAUGE_METRICS, SloEngine, default_slos

    engine = SloEngine(default_slos(latency_threshold_s=2.5))
    engine.ingest(aggregator, now=0.0)
    engine.evaluate(0.0)
    if args.metrics_out:
        from .live.telemetry import GAUGE_METRICS
        from .obs import to_openmetrics

        base = to_openmetrics(aggregator.merged_registry(), gauge_names=GAUGE_METRICS)
        slo_text = to_openmetrics(engine.registry(), gauge_names=SLO_GAUGE_METRICS)
        with open(args.metrics_out, "w") as handle:
            # one exposition: splice the slo_* families before the EOF
            handle.write(base[: -len("# EOF\n")] + slo_text)
    if args.json:
        document = aggregator.to_json()
        document["slo"] = engine.report()
        print(json.dumps(document, indent=2, default=str))
    else:
        _print_status(aggregator, engine)
    if not aggregator.all_ready:
        raise SystemExit(1)


async def _open_telemetry_session(args, purpose: str):
    """``(client, services, close)`` for a telemetry-consuming command.

    With ``--state`` this connects to a running multi-process
    deployment; without, it stands up a self-driving in-process
    deployment with a background publisher so the view has live traffic
    to show.  ``close`` is an async callable tearing down whatever was
    created.
    """
    import asyncio
    import contextlib
    import os

    from .live.telemetry import TelemetryClient

    if args.state:
        from .live.runner import load_state, service_roles

        state = load_state(args.state)
        services = list(service_roles(state))
        client = TelemetryClient(state.endpoint(purpose), services)

        async def close() -> None:
            await client.close()

        return client, services, close

    from .core.config import P3SConfig
    from .live.deployment import LiveDeployment
    from .obs import Observability
    from .obs.ring import DEFAULT_FLIGHT_RECORDER_CAPACITY
    from .pbe.schema import Interest

    obs = Observability(span_capacity=DEFAULT_FLIGHT_RECORDER_CAPACITY)
    profiler = None
    if os.environ.get("P3S_PROFILE", "wall") != "off":
        # same default-on profiling as serve_role, so the in-process view
        # has hot frames to show
        from .obs.prof import StackSampler

        profiler = obs.profiler = StackSampler(
            hz=float(os.environ.get("P3S_PROFILE_HZ", "19")),
            obs=obs,
            origin="inproc-wall",
        )
        profiler.start()
    deployment = LiveDeployment(P3SConfig(obs=obs))
    await deployment.start()
    subscriber = await deployment.add_subscriber("alice", {"org:acme"})
    await subscriber.subscribe(Interest({"attr00": "v01"}))
    publisher = await deployment.add_publisher("pub")
    stop = asyncio.Event()

    async def _drive() -> None:
        tick = 0
        while not stop.is_set():
            await publisher.publish(
                _demo_metadata(attr00="v01"),
                f"tick {tick}".encode(),
                policy="org:acme",
            )
            tick += 1
            await asyncio.sleep(0.05)

    driver = asyncio.ensure_future(_drive())
    client = deployment.telemetry_client(purpose)

    async def close() -> None:
        stop.set()
        driver.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await driver
        await client.close()
        await deployment.close()
        if profiler is not None:
            profiler.stop()
        if deployment.obs is not None:
            deployment.obs.uninstall()

    return client, list(deployment.service_names), close


async def _live_top(args) -> None:
    import asyncio
    import time as wall

    from .obs.aggregate import TelemetryAggregator
    from .obs.slo import SloEngine, default_slos

    client, services, close = await _open_telemetry_session(args, "top")
    aggregator = TelemetryAggregator(latency_window=args.window)
    engine = SloEngine(default_slos())
    started = wall.monotonic()
    previous: dict[str, float] = {}
    previous_at: float | None = None
    try:
        for iteration in range(args.iterations):
            if iteration:
                await asyncio.sleep(args.interval)
            await client.scrape(aggregator)
            now = wall.monotonic()
            run_t = now - started
            engine.ingest(aggregator, now=run_t)
            engine.evaluate(run_t)
            active = engine.active_alerts()
            elapsed = (now - previous_at) if previous_at is not None else None
            rows = []
            for service in services:
                health = aggregator.health(service)
                frames = aggregator.service_counter_total(service, "live.net.rx_frames")
                rate = (
                    (frames - previous.get(service, 0.0)) / elapsed
                    if elapsed
                    else 0.0
                )
                previous[service] = frames
                service_alerts = sum(
                    1 for alert in active
                    if dict(alert.labels).get("service") == service
                )
                rows.append([
                    service,
                    "yes" if health.get("ready") else "NO",
                    f"{rate:7.1f}",
                    f"{aggregator.service_counter_total(service, 'live.rpc.open_connections'):.0f}",
                    f"{aggregator.service_counter_total(service, 'live.rpc.in_flight_calls'):.0f}",
                    f"{aggregator.service_counter_total(service, 'live.rpc.pending_high_water'):.0f}",
                    f"{aggregator.service_counter_total(service, 'live.rpc.reconnects'):.0f}",
                    format_size(aggregator.service_counter_total(service, "live.net.tx_bytes")),
                    format_size(aggregator.service_counter_total(service, "live.net.rx_bytes")),
                    str(service_alerts) if service_alerts else "-",
                ])
            previous_at = now
            latency = aggregator.latency_summary()
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(format_table(
                ["service", "ready", "rx fr/s", "conns", "inflight", "pend hw",
                 "reconn", "tx", "rx", "alerts"],
                rows,
                title=f"repro live top — sweep {iteration + 1}/{args.iterations}",
            ))
            if latency["count"]:
                print(
                    f"publish→deliver: p50 {latency['p50_s'] * 1000:.1f} ms, "
                    f"p95 {latency['p95_s'] * 1000:.1f} ms over {latency['count']} "
                    f"deliveries (window {args.window})"
                )
            print(
                f"spans: {len(aggregator.spans())} aggregated, "
                f"{aggregator.total_dropped_spans} dropped"
            )
            hot = aggregator.hot_frames(limit=args.hot_frames)
            if hot:
                print(
                    "hot frames: "
                    + ", ".join(
                        f"{frame} {fraction:.0%}" for frame, _self, fraction in hot
                    )
                )
            if active:
                print("SLO alerts: " + ", ".join(
                    f"{alert.slo}[{alert.severity} {alert.window}]"
                    + (f" {dict(alert.labels).get('service')}"
                       if dict(alert.labels).get("service") else "")
                    for alert in active
                ))
            else:
                print("SLO alerts: none")
    finally:
        await close()


def _cmd_live_top(args) -> None:
    import asyncio

    try:
        asyncio.run(_live_top(args))
    except KeyboardInterrupt:
        pass


def _cmd_cluster_status(args) -> None:
    import json

    if args.state:
        # topology from a provisioned multi-process bundle (no I/O to the
        # services — this reads the signed registration material)
        from .live.runner import load_state, service_roles

        state = load_state(args.state)
        status = {
            "sharded": state.cluster is not None,
            "roles": list(service_roles(state)),
            "ports": dict(state.ports),
        }
        if state.cluster is not None:
            status["cluster"] = state.cluster.describe()
    else:
        # no bundle: stand up an in-process *simulated* sharded system,
        # run the demo scenario through it, and report live counters —
        # membership, per-shard items/publications, keyspace shares
        from .core import P3SConfig, P3SSystem
        from .pbe import Interest

        config = P3SConfig(
            ds_shards=args.ds_shards,
            rs_shards=args.rs_shards,
            rs_replication=args.replication,
        )
        system = P3SSystem(config)
        try:
            alice = system.add_subscriber("alice", {"clearance"})
            system.subscribe(alice, Interest({"attr00": "v01"}))
            system.run()
            publisher = system.add_publisher("pub")
            system.run()
            for tick in range(args.publications):
                publisher.publish(
                    _demo_metadata(attr00="v01"),
                    f"cluster demo {tick}".encode(),
                    policy="clearance",
                )
            system.run()
            status = system.cluster_status()
        finally:
            system.close()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True, default=str))
        return
    print(f"sharded: {status.get('sharded')}")
    for key in ("ds_shards", "rs_shards", "roles"):
        if key in status:
            print(f"{key}: {', '.join(status[key])}")
    if "membership" in status:
        rows = [
            [m["name"], m["role"], "yes" if m["alive"] else "NO",
             str(m["failures"]), str(m["recoveries"])]
            for m in status["membership"]
        ]
        print(format_table(
            ["member", "role", "alive", "failures", "recoveries"],
            rows, title="cluster membership",
        ))
    for key in ("rs_items", "ds_publications"):
        if key in status:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(status[key].items()))
            print(f"{key}: {parts}")
    cluster = status.get("cluster")
    if cluster:
        print(f"replication: {cluster['rs_replication']}, vnodes: {cluster['vnodes']}")
        for ring in ("ds_keyspace_share", "rs_keyspace_share"):
            if ring in cluster:
                parts = ", ".join(
                    f"{k}={v:.2%}" for k, v in sorted(cluster[ring].items())
                )
                print(f"{ring}: {parts}")


def _cmd_chaos_run(args) -> None:
    from .chaos import FaultSchedule, minimize, run_chaos

    schedule = None
    if args.schedule:
        with open(args.schedule) as handle:
            schedule = FaultSchedule.from_json(handle.read())
    report = run_chaos(args.seed, args.profile, schedule=schedule)
    rows = [
        [result.family, result.name, "pass" if result.passed else "FAIL",
         result.detail if not result.passed else ""]
        for result in report.invariants
    ]
    print(format_table(
        ["family", "invariant", "verdict", "detail"],
        rows,
        title=f"chaos run — seed {args.seed}, profile {report.profile}",
    ))
    applied = sum(entry["count"] for entry in report.applied_faults)
    print(f"\nfaults scheduled: {len(report.schedule['faults'])}, "
          f"frames faulted: {applied}")
    for entry in report.applied_faults:
        print(f"  fault #{entry['fault']}: {entry['kind']} "
              f"{entry['src']}->{entry['dst']} x{entry['count']}")
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report.to_json() + "\n")
        print(f"wrote report to {args.report}")
    if report.passed:
        print("\nall invariants hold")
        return
    print(f"\n{len(report.failures())} invariant(s) violated")
    if args.minimize:
        minimal, minimal_report = minimize(args.seed, args.profile, schedule=schedule)
        print(f"minimized schedule: {len(minimal.faults)} fault(s) suffice to reproduce")
        print(minimal.to_json())
        if args.min_out:
            with open(args.min_out, "w") as handle:
                handle.write(minimal.to_json() + "\n")
            print(f"wrote minimized schedule to {args.min_out}")
    raise SystemExit(1)


def _cmd_chaos_profiles(args) -> None:
    from .chaos import PROFILES

    rows = [
        [p.name, str(p.n_faults), ",".join(p.kinds),
         f"{p.subscribers}x{p.publications}", "yes" if p.durable else "no",
         f"{p.ds_shards}DSx{p.rs_shards}RS r{p.rs_replication}"]
        for p in PROFILES.values()
    ]
    print(format_table(
        ["profile", "faults", "kinds", "subs x pubs", "durable", "topology"],
        rows,
        title="chaos fault profiles",
    ))


def _print_slo_report(report: dict) -> None:
    rows = []
    for name, entry in report["slos"].items():
        worst_burn = max(
            (rates["long_burn"] for rates in entry["burn_rates"].values()),
            default=0.0,
        )
        rows.append([
            name,
            f"{entry['objective']:.2f}",
            str(entry["good"]),
            str(entry["bad"]),
            f"{entry['error_budget_remaining']:.3f}",
            f"{worst_burn:.2f}",
            str(entry["active_alerts"]) if entry["active_alerts"] else "-",
        ])
    print(format_table(
        ["slo", "objective", "good", "bad", "budget left", "worst burn", "active"],
        rows,
        title=f"SLO report — evaluated at t={report['evaluated_at']:.2f}s",
    ))
    alerts = report.get("alerts", [])
    if not alerts:
        print("\nno burn-rate alerts fired")
        return
    print()
    print(format_table(
        ["slo", "severity", "window", "fired at", "cleared at"],
        [
            [
                alert["slo"], alert["severity"], alert["window"],
                f"{alert['fired_at']:.2f}",
                f"{alert['cleared_at']:.2f}"
                if alert["cleared_at"] is not None else "ACTIVE",
            ]
            for alert in alerts
        ],
        title="burn-rate alerts (fire→clear episodes)",
    ))


def _slo_report_doc(args) -> dict:
    """Build the SLO report document from whichever source was selected."""
    import json

    if args.chaos_report:
        with open(args.chaos_report) as handle:
            data = json.load(handle)
        doc = data.get("slo")
        if doc is None:
            raise SystemExit(
                f"{args.chaos_report} has no 'slo' section — rerun the chaos "
                "run with an alerting profile (e.g. --profile ci)"
            )
        return doc
    if args.chaos_seed is not None:
        from .chaos import FaultSchedule, run_chaos

        schedule = None
        if args.no_faults:
            schedule = FaultSchedule(seed=args.chaos_seed, profile=args.profile)
        report = run_chaos(args.chaos_seed, args.profile, schedule=schedule)
        if report.slo is None:
            raise SystemExit(
                f"profile {args.profile!r} does not enable alerting — "
                "use --profile ci"
            )
        return report.slo

    # live mode: one telemetry sweep (running deployment or in-process
    # demo), judged by the wall-clock SLO set
    import asyncio

    from .obs.slo import SloEngine, default_slos

    if args.state:
        from .live.runner import load_state, service_roles

        state = load_state(args.state)
        aggregator = asyncio.run(
            _scrape_deployment_state(state, service_roles(state))
        )
    else:
        from .core.config import P3SConfig
        from .live.scenario import default_scenario, run_on_simulator
        from .obs import Observability
        from .obs.ring import DEFAULT_FLIGHT_RECORDER_CAPACITY

        scenario = default_scenario()
        expected = run_on_simulator(scenario, P3SConfig())
        obs = Observability(span_capacity=DEFAULT_FLIGHT_RECORDER_CAPACITY)
        config = P3SConfig(obs=obs)
        try:
            aggregator = asyncio.run(
                _scrape_demo_deployment(config, scenario, expected)
            )
        finally:
            obs.uninstall()
    engine = SloEngine(default_slos(latency_threshold_s=args.latency_slo))
    engine.ingest(aggregator, now=0.0)
    engine.evaluate(0.0)
    return engine.report()


def _cmd_slo_report(args) -> None:
    import json

    doc = _slo_report_doc(args)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        _print_slo_report(doc)
    # CI gates: --expect-alert / --expect-clean turn the report into a
    # pass/fail check (see .github/workflows/ci.yml, job test-slo)
    fired = {alert["slo"] for alert in doc.get("alerts", [])}
    failures = []
    for slo in args.expect_alert:
        if slo not in fired:
            failures.append(f"expected an alert for SLO {slo!r}; none fired")
    if args.expect_clean and fired:
        failures.append(f"expected a clean run; alerts fired for {sorted(fired)}")
    if failures:
        for failure in failures:
            print(f"GATE FAIL: {failure}")
        raise SystemExit(1)
    if args.expect_alert or args.expect_clean:
        print("gate ok")


async def _slo_watch(args) -> None:
    import asyncio
    import time as wall

    from .obs.aggregate import TelemetryAggregator
    from .obs.slo import SloEngine, default_slos

    client, services, close = await _open_telemetry_session(args, "slo")
    aggregator = TelemetryAggregator()
    engine = SloEngine(default_slos(latency_threshold_s=args.latency_slo))
    started = wall.monotonic()
    try:
        for iteration in range(args.iterations):
            if iteration:
                await asyncio.sleep(args.interval)
            await client.scrape(aggregator)
            run_t = wall.monotonic() - started
            engine.ingest(aggregator, now=run_t)
            engine.evaluate(run_t)
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            report = engine.report(run_t)
            rows = []
            for name, entry in report["slos"].items():
                fast = next(iter(entry["burn_rates"].values()))
                rows.append([
                    name,
                    f"{entry['objective']:.2f}",
                    f"{entry['good']}/{entry['bad']}",
                    f"{entry['error_budget_remaining']:.3f}",
                    f"{fast['short_burn']:.2f}",
                    f"{fast['long_burn']:.2f}",
                    str(entry["active_alerts"]) if entry["active_alerts"] else "-",
                ])
            print(format_table(
                ["slo", "obj", "good/bad", "budget left",
                 "fast short", "fast long", "active"],
                rows,
                title=(
                    f"repro slo watch — sweep {iteration + 1}/{args.iterations}, "
                    f"t={run_t:.1f}s"
                ),
            ))
            active = engine.active_alerts()
            if active:
                for alert in active:
                    labels = dict(alert.labels)
                    where = f" ({labels['service']})" if "service" in labels else ""
                    print(
                        f"ALERT {alert.severity}: {alert.slo}{where} "
                        f"window {alert.window}, firing since t={alert.fired_at:.1f}s"
                    )
            else:
                print("no active alerts")
    finally:
        await close()


def _cmd_slo_watch(args) -> None:
    import asyncio

    try:
        asyncio.run(_slo_watch(args))
    except KeyboardInterrupt:
        pass


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="P3S reproduction — experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="Table 1 with measured constants")
    table1.add_argument("-p", "--params", default="TOY", choices=["TOY", "TEST", "PAPER"])
    table1.set_defaults(func=_cmd_table1)

    for name, func in (("fig8", _cmd_fig8), ("fig9", _cmd_fig9), ("fig10", _cmd_fig10)):
        fig = sub.add_parser(name, help=f"regenerate {name}")
        fig.set_defaults(func=func)

    cal = sub.add_parser("calibrate", help="measure crypto constants")
    cal.add_argument("-p", "--params", default="TOY", choices=["TOY", "TEST", "PAPER"])
    cal.add_argument("--vector-bits", type=int, default=40)
    cal.add_argument("--reps", type=int, default=1)
    cal.set_defaults(func=_cmd_calibrate)

    demo = sub.add_parser("demo", help="one publication end to end")
    demo.add_argument(
        "--trace", action="store_true",
        help="print the causal span tree and crypto-op summary",
    )
    demo.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write spans as JSON lines to PATH",
    )
    demo.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the metrics registry as CSV to PATH",
    )
    demo.set_defaults(func=_cmd_demo)

    attacks = sub.add_parser("attacks", help="run the §6.1 token attacks")
    attacks.set_defaults(func=_cmd_attacks)

    live = sub.add_parser("live", help="run P3S as real TCP services")
    live_sub = live.add_subparsers(dest="live_command", required=True)

    live_demo = live_sub.add_parser(
        "demo", help="full scenario over loopback TCP, checked against the simulator"
    )
    live_demo.add_argument(
        "--skip-delegated", action="store_true",
        help="skip the delegated-matching pass (broadcast only)",
    )
    live_demo.set_defaults(func=_cmd_live_demo)

    live_init = live_sub.add_parser(
        "init", help="provision trust material for a multi-process deployment"
    )
    live_init.add_argument("--state", required=True, metavar="FILE")
    live_init.add_argument("--host", default="127.0.0.1")
    live_init.add_argument("--base-port", type=int, default=7341)
    live_init.add_argument(
        "--data-dir", metavar="DIR", default=None,
        help="enable durable persistence: RS/DS state under DIR/<role> "
             "(default backend: wal)",
    )
    live_init.add_argument(
        "--store-backend", choices=["wal", "sqlite"], default=None,
        help="storage backend when --data-dir is given (default wal)",
    )
    live_init.add_argument(
        "--ds-shards", type=int, default=1, metavar="N",
        help="DS shard count (>1 provisions ds0..dsN-1; see docs/CLUSTER.md)",
    )
    live_init.add_argument(
        "--rs-shards", type=int, default=1, metavar="N",
        help="RS shard count (>1 provisions rs0..rsN-1)",
    )
    live_init.add_argument(
        "--replication", type=int, default=1, metavar="R",
        help="RS items are written to R ring-successor shards (capped at "
             "--rs-shards)",
    )
    live_init.set_defaults(func=_cmd_live_init)

    for role in ("ds", "rs", "pbe-ts", "anon"):
        serve = live_sub.add_parser(
            f"serve-{role}", help=f"serve the {role} from a state bundle"
        )
        serve.add_argument("--state", required=True, metavar="FILE")
        if role in ("ds", "rs"):
            serve.add_argument(
                "--name", default=None, metavar="SHARD",
                help=f"shard to serve from a sharded bundle (e.g. {role}0); "
                     f"default: {role}",
            )
        serve.set_defaults(func=_make_serve_cmd(role))

    live_run = live_sub.add_parser(
        "run", help="drive scenario clients against running serve-* processes"
    )
    live_run.add_argument("--state", required=True, metavar="FILE")
    live_run.set_defaults(func=_cmd_live_run)

    live_status = live_sub.add_parser(
        "status", help="one-shot deployment health + aggregated op totals"
    )
    live_status.add_argument(
        "--state", metavar="FILE", default=None,
        help="poll a running multi-process deployment; omit to stand up an "
             "in-process demo deployment and report on it",
    )
    live_status.add_argument(
        "--json", action="store_true", help="emit the full aggregate as JSON"
    )
    live_status.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the merged registry as OpenMetrics text to PATH",
    )
    live_status.set_defaults(func=_cmd_live_status)

    live_top = live_sub.add_parser(
        "top", help="refreshing per-service throughput / queue / latency view"
    )
    live_top.add_argument(
        "--state", metavar="FILE", default=None,
        help="poll a running multi-process deployment; omit for a "
             "self-driving in-process deployment",
    )
    live_top.add_argument("--interval", type=float, default=1.0, metavar="SECONDS")
    live_top.add_argument("--iterations", type=int, default=5, metavar="N")
    live_top.add_argument(
        "--window", type=int, default=256,
        help="rolling publish→deliver latency window (deliveries)",
    )
    live_top.add_argument(
        "--no-clear", action="store_true",
        help="append sweeps instead of clearing the screen (for logs/CI)",
    )
    live_top.add_argument(
        "--hot-frames", type=int, default=5, metavar="N",
        help="profiler hot frames shown per sweep (0 disables the panel)",
    )
    live_top.set_defaults(func=_cmd_live_top)

    cluster = sub.add_parser(
        "cluster", help="sharded-topology tools (see docs/CLUSTER.md)"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)
    cluster_status = cluster_sub.add_parser(
        "status",
        help="topology + membership report: from a live state bundle "
             "(--state), or by running a demo workload through an "
             "in-process sharded simulation",
    )
    cluster_status.add_argument(
        "--state", metavar="FILE", default=None,
        help="read topology from a `live init` bundle instead of simulating",
    )
    cluster_status.add_argument("--ds-shards", type=int, default=2, metavar="N")
    cluster_status.add_argument("--rs-shards", type=int, default=2, metavar="N")
    cluster_status.add_argument("--replication", type=int, default=2, metavar="R")
    cluster_status.add_argument(
        "--publications", type=int, default=6, metavar="N",
        help="demo publications to route through the simulated cluster",
    )
    cluster_status.add_argument("--json", action="store_true", help="emit JSON")
    cluster_status.set_defaults(func=_cmd_cluster_status)

    chaos = sub.add_parser("chaos", help="seeded fault injection + invariant checks")
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_sub.add_parser(
        "run",
        help="one seeded chaos run: derive workload + fault schedule from the "
             "seed, execute with injection, check the invariant catalogue",
    )
    chaos_run.add_argument("--seed", type=int, required=True)
    chaos_run.add_argument(
        "--profile", default="default",
        help="fault profile (see 'chaos profiles'; default: default)",
    )
    chaos_run.add_argument(
        "--schedule", metavar="FILE", default=None,
        help="replay a serialized schedule instead of generating one",
    )
    chaos_run.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the full JSON run report to PATH",
    )
    chaos_run.add_argument(
        "--minimize", action="store_true",
        help="on failure, greedily shrink the schedule to a 1-minimal "
             "failing fault set",
    )
    chaos_run.add_argument(
        "--min-out", metavar="PATH", default=None,
        help="write the minimized schedule JSON to PATH (with --minimize)",
    )
    chaos_run.set_defaults(func=_cmd_chaos_run)
    chaos_profiles = chaos_sub.add_parser("profiles", help="list fault profiles")
    chaos_profiles.set_defaults(func=_cmd_chaos_profiles)

    slo = sub.add_parser(
        "slo", help="service-level objectives: budgets, burn rates, alerts"
    )
    slo_sub = slo.add_subparsers(dest="slo_command", required=True)
    slo_report = slo_sub.add_parser(
        "report",
        help="one-shot SLO report: from a fresh chaos run (--chaos-seed), a "
             "saved chaos report (--chaos-report), a running deployment "
             "(--state), or an in-process demo deployment (no flags)",
    )
    slo_report.add_argument(
        "--state", metavar="FILE", default=None,
        help="judge a running multi-process deployment's telemetry",
    )
    slo_report.add_argument(
        "--chaos-report", metavar="FILE", default=None,
        help="read the 'slo' section of a saved chaos run report",
    )
    slo_report.add_argument(
        "--chaos-seed", type=int, default=None, metavar="N",
        help="run one seeded chaos run and report its SLO timeline",
    )
    slo_report.add_argument(
        "--profile", default="ci",
        help="chaos profile for --chaos-seed (must enable alerting; default: ci)",
    )
    slo_report.add_argument(
        "--no-faults", action="store_true",
        help="with --chaos-seed: run with an empty fault schedule "
             "(fault-free baseline for --expect-clean)",
    )
    slo_report.add_argument(
        "--latency-slo", type=float, default=2.5, metavar="SECONDS",
        help="delivery-latency threshold for live/demo mode (default: 2.5 — "
             "headroom for the real TOY-parameter crypto on a shared box)",
    )
    slo_report.add_argument("--json", action="store_true", help="emit JSON")
    slo_report.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the JSON report to PATH (CI artifact)",
    )
    slo_report.add_argument(
        "--expect-alert", action="append", default=[], metavar="SLO",
        help="exit 1 unless an alert fired for SLO (repeatable; CI gate)",
    )
    slo_report.add_argument(
        "--expect-clean", action="store_true",
        help="exit 1 if any alert fired (CI gate for fault-free runs)",
    )
    slo_report.set_defaults(func=_cmd_slo_report)
    slo_watch = slo_sub.add_parser(
        "watch", help="refreshing burn-rate / active-alert view"
    )
    slo_watch.add_argument(
        "--state", metavar="FILE", default=None,
        help="poll a running multi-process deployment; omit for a "
             "self-driving in-process deployment",
    )
    slo_watch.add_argument("--interval", type=float, default=1.0, metavar="SECONDS")
    slo_watch.add_argument("--iterations", type=int, default=5, metavar="N")
    slo_watch.add_argument(
        "--latency-slo", type=float, default=2.5, metavar="SECONDS",
        help="delivery-latency threshold (default: 2.5)",
    )
    slo_watch.add_argument(
        "--no-clear", action="store_true",
        help="append sweeps instead of clearing the screen (for logs/CI)",
    )
    slo_watch.set_defaults(func=_cmd_slo_watch)

    store = sub.add_parser("store", help="inspect repro.store files")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_inspect = store_sub.add_parser(
        "inspect",
        help="dump record counts, live/tombstone ratio, and last committed "
             "LSN of a store directory or sqlite file (no key needed)",
    )
    store_inspect.add_argument("path", help="WAL store directory or sqlite database file")
    store_inspect.add_argument("--json", action="store_true", help="emit JSON")
    store_inspect.set_defaults(func=_cmd_store_inspect)

    prof = sub.add_parser(
        "prof", help="continuous profiling (see docs/OBSERVABILITY.md)"
    )
    prof_sub = prof.add_subparsers(dest="prof_command", required=True)

    prof_record = prof_sub.add_parser(
        "record",
        help="profile the seeded demo workload and write a speedscope "
             "(or .folded) recording",
    )
    prof_record.add_argument(
        "--mode", choices=("det", "wall"), default="det",
        help="det: deterministic op-count sampling (seed-replayable); "
             "wall: background stack sampler (default: det)",
    )
    prof_record.add_argument("--publications", type=int, default=50, metavar="N")
    prof_record.add_argument("--seed", type=int, default=0)
    prof_record.add_argument(
        "--every", type=int, default=8, metavar="OPS",
        help="det mode: one sample per OPS instrumented crypto ops",
    )
    prof_record.add_argument(
        "--hz", type=float, default=97.0,
        help="wall mode: sampling frequency",
    )
    prof_record.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the recording (speedscope JSON, or collapsed-stack "
             "text when FILE ends in .folded)",
    )
    prof_record.add_argument(
        "--force", action="store_true",
        help="overwrite an existing --out file",
    )
    prof_record.add_argument("--limit", type=int, default=15, metavar="N")
    prof_record.set_defaults(func=_cmd_prof_record)

    prof_report = prof_sub.add_parser(
        "report", help="hot-frames report of a recorded profile"
    )
    prof_report.add_argument("profile", help="speedscope JSON or .folded recording")
    prof_report.add_argument("--limit", type=int, default=20, metavar="N")
    prof_report.set_defaults(func=_cmd_prof_report)

    prof_diff = prof_sub.add_parser(
        "diff", help="rank self-time deltas between two recordings"
    )
    prof_diff.add_argument("before", help="baseline recording")
    prof_diff.add_argument("after", help="candidate recording")
    prof_diff.add_argument(
        "--absolute", action="store_true",
        help="raw weight deltas instead of per-profile-normalized shares",
    )
    prof_diff.add_argument("--limit", type=int, default=20, metavar="N")
    prof_diff.set_defaults(func=_cmd_prof_diff)

    prof_ledger = prof_sub.add_parser(
        "ledger",
        help="crypto cost ledger: modeled (count x calibrated cost) vs "
             "measured self time per component",
    )
    prof_ledger.add_argument("--publications", type=int, default=20, metavar="N")
    prof_ledger.add_argument("--seed", type=int, default=0)
    prof_ledger.add_argument(
        "-p", "--params", default="TOY",
        help="calibration parameter set (default: TOY)",
    )
    prof_ledger.set_defaults(func=_cmd_prof_ledger)

    prof_top = prof_sub.add_parser(
        "top",
        help="scrape live services' profiles (KIND_PROFILE), merge, and "
             "report hot frames",
    )
    prof_top.add_argument(
        "--state", metavar="FILE", default=None,
        help="scrape a running multi-process deployment; omit for a "
             "self-driving in-process deployment",
    )
    prof_top.add_argument(
        "--warmup", type=float, default=1.5, metavar="SECONDS",
        help="in-process mode: traffic time before the scrape",
    )
    prof_top.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the merged profile (speedscope JSON / .folded)",
    )
    prof_top.add_argument("--force", action="store_true", help="overwrite --out")
    prof_top.add_argument("--limit", type=int, default=20, metavar="N")
    prof_top.set_defaults(func=_cmd_prof_top)

    perf = sub.add_parser(
        "perf", help="performance trajectory tools (see docs/PERFORMANCE.md)"
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    perf_gate = perf_sub.add_parser(
        "gate",
        help="judge the committed BENCH_*.json history (smoke) and "
             "re-measure machine-independent ratios against it (fresh); "
             "non-zero exit on regression",
    )
    perf_gate.add_argument(
        "--root", default=".", metavar="DIR",
        help="directory holding the BENCH_*.json history (default: .)",
    )
    perf_gate.add_argument(
        "--smoke", action="store_true",
        help="history floor/ceiling checks only — no fresh measurements",
    )
    perf_gate.add_argument(
        "--only", action="append", metavar="PROBE",
        help="run only the named fresh probe(s): match, obs, prof",
    )
    perf_gate.set_defaults(func=_cmd_perf_gate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
