"""P3S: A Privacy Preserving Publish-Subscribe Middleware — full reproduction.

Reproduces Pal, Lauer, Khoury, Hoff & Loyall (MIDDLEWARE 2012) from
scratch in pure Python: the pairing-based crypto substrate (Type-A Tate
pairing, BSW07 CP-ABE, IP08 HVE), a discrete-event network and mini-JMS
broker, the four P3S third parties (ARA, DS, RS, PBE-TS) plus clients,
the plaintext baseline, the paper's "gadget" privacy-analysis framework,
and the analytic latency/throughput models behind Figures 8-10.

Top-level subpackages:

* :mod:`repro.crypto`   — pairing group, AEAD, PKE, signatures
* :mod:`repro.abe`      — CP-ABE (payload confidentiality)
* :mod:`repro.pbe`      — predicate-based encryption / HVE (interest privacy)
* :mod:`repro.net`      — discrete-event simulator and network
* :mod:`repro.mq`       — mini-JMS topic broker (ActiveMQ stand-in)
* :mod:`repro.core`     — the P3S middleware itself
* :mod:`repro.baseline` — the non-private centralized pub-sub baseline
* :mod:`repro.privacy`  — gadget graphs and privacy analysis
* :mod:`repro.perf`     — performance models and calibration
"""

__version__ = "1.0.0"
