"""Deterministic fault injection for the storage engines.

Crash recovery is only trustworthy if it is *testable*: every claim in
``docs/PERSISTENCE.md`` ("a SIGKILL at any point loses at most the
un-fsynced suffix") maps to a named crash point here, and the battery in
``tests/store/test_crash_recovery.py`` fires each one, restarts, and
asserts the recovered state equals the pre-crash committed state.

A :class:`FaultPlan` is armed with a crash point name and a hit count;
the engine calls :meth:`FaultPlan.fire` at each instrumented point, and
on the matching hit a :class:`SimulatedCrash` propagates out of the
write path — the in-process stand-in for ``kill -9`` between two
syscalls.  ``partial=`` additionally asks the engine to write only a
prefix of the frame before dying, which is how a torn tail is
manufactured on purpose.

Crash points instrumented in :class:`~repro.store.wal.WalEngine`:

==========================  ====================================================
``append.before_write``     nothing of the record reaches the file
``append.partial_write``    a prefix of the frame is written (torn tail)
``append.after_write``      full frame written, no fsync yet
``append.after_fsync``      record durable; crash after the commit point
``snapshot.before_rename``  snapshot temp file written, not yet visible
``snapshot.after_rename``   snapshot live, old log not yet truncated
``compact.after_truncate``  log truncated after a compaction snapshot
==========================  ====================================================

The module also provides after-the-fact file corruption
(:func:`tear_tail`, :func:`corrupt_crc`) for faults a crash cannot
produce, e.g. bit rot in the middle of a log.
"""

from __future__ import annotations

import os
import struct
import zlib
from collections import Counter

from ..errors import StorageError
from .records import HEADER_LEN

__all__ = [
    "SimulatedCrash",
    "FaultPlan",
    "CRASH_POINTS",
    "tear_tail",
    "corrupt_crc",
    "corrupt_length",
]

CRASH_POINTS = (
    "append.before_write",
    "append.partial_write",
    "append.after_write",
    "append.after_fsync",
    "snapshot.before_rename",
    "snapshot.after_rename",
    "compact.after_truncate",
)


class SimulatedCrash(StorageError):
    """Raised by an armed :class:`FaultPlan`: the process 'died' here.

    Tests catch this at the engine boundary, drop the engine object
    without closing it (a real crash runs no destructors), and re-open
    the directory to exercise recovery.
    """


class FaultPlan:
    """Crash at the Nth visit to one named point."""

    def __init__(self, point: str, hit: int = 1):
        if point not in CRASH_POINTS:
            raise StorageError(
                f"unknown crash point {point!r}; expected one of {CRASH_POINTS}"
            )
        self.point = point
        self.hit = hit
        self.hits: Counter[str] = Counter()
        self.fired = False

    @property
    def partial(self) -> bool:
        """Whether the armed point asks for a half-written frame."""
        return self.point == "append.partial_write"

    def would_fire(self, point: str) -> bool:
        """Record one visit; True when this is the armed point's Nth hit.

        Used by the engine for points that must do damage *before*
        dying (the partial write); plain points use :meth:`fire`.
        """
        self.hits[point] += 1
        if point == self.point and self.hits[point] == self.hit:
            self.fired = True
            return True
        return False

    def fire(self, point: str) -> None:
        """Record one visit; raise :class:`SimulatedCrash` on the match."""
        if self.would_fire(point):
            raise SimulatedCrash(f"injected crash at {point} (hit {self.hit})")


def tear_tail(path: str, drop_bytes: int) -> None:
    """Truncate the last ``drop_bytes`` bytes off a store file — the
    on-disk shape of a crash that lost part of the final append."""
    size = os.path.getsize(path)
    if drop_bytes <= 0 or drop_bytes >= size - HEADER_LEN:
        raise StorageError(f"cannot tear {drop_bytes} bytes off a {size}-byte file")
    with open(path, "r+b") as handle:
        handle.truncate(size - drop_bytes)


def _frame_offsets(path: str, data: bytes) -> list[tuple[int, int, int]]:
    """(frame_start, payload_offset, length) of every intact frame."""
    offsets: list[tuple[int, int, int]] = []
    offset = HEADER_LEN
    prefix = struct.Struct(">II")
    while offset + prefix.size <= len(data):
        length, crc = prefix.unpack_from(data, offset)
        payload_at = offset + prefix.size
        if payload_at + length > len(data):
            break
        if zlib.crc32(data[payload_at : payload_at + length]) != crc:
            break
        offsets.append((offset, payload_at, length))
        offset = payload_at + length
    if not offsets:
        raise StorageError(f"{path} holds no intact records to corrupt")
    return offsets


def corrupt_crc(path: str, record_index: int = -1) -> None:
    """Flip a bit in the payload of one record so its CRC check fails.

    ``record_index`` counts valid frames from the file start (negative
    indexes from the end, ``-1`` = last record).
    """
    with open(path, "rb") as handle:
        data = handle.read()
    _start, payload_at, _length = _frame_offsets(path, data)[record_index]
    flipped = data[:payload_at] + bytes((data[payload_at] ^ 0x80,)) + data[payload_at + 1 :]
    with open(path, "wb") as handle:
        handle.write(flipped)


def corrupt_length(path: str, record_index: int = -1, new_length: int = 0xFFFFFFF0) -> None:
    """Overwrite one record's length prefix with a garbage value.

    This is damage a torn append cannot produce — a tear leaves a prefix
    of a frame a writer actually emitted, so any length field it leaves
    behind is a real (bounded) record length.  Recovery must treat an
    implausible length as corruption, never as a tear, or one flipped
    byte could silently swallow every committed record after it.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    frame_start, _payload_at, _length = _frame_offsets(path, data)[record_index]
    damaged = (
        data[:frame_start] + struct.pack(">I", new_length) + data[frame_start + 4 :]
    )
    with open(path, "wb") as handle:
        handle.write(damaged)
