"""Keyless store-file inspection — the engine under ``repro store inspect``.

Operators debugging a deployment need to answer "what is in this store?"
without the store key (which lives in the deployment state bundle, not
on whatever box the files were copied to).  Record *framing* — LSNs,
ops, namespaces, keys, counts — is deliberately left in the clear for
exactly this reason; only values are sealed.

:func:`inspect_store` sniffs the path (a directory with ``wal.log`` →
WAL store; a file starting with the SQLite magic → SQLite store) and
returns a plain dict: record counts, live/tombstone ratio, last
committed LSN, snapshot coverage, and whether the log carries a torn
tail that the next open would truncate.
"""

from __future__ import annotations

import os
import sqlite3

from ..errors import StorageError
from .records import (
    HEADER_LEN,
    LOG_MAGIC,
    SNAPSHOT_MAGIC,
    decode_header,
    iter_live,
    scan_frames,
)
from .wal import LOG_NAME, SNAPSHOT_PREFIX, SNAPSHOT_SUFFIX

__all__ = ["inspect_store", "format_inspection"]

_SQLITE_MAGIC = b"SQLite format 3\x00"


def inspect_store(path: str) -> dict:
    """Summarize one store (WAL directory or SQLite file) without a key."""
    if os.path.isdir(path):
        if not os.path.exists(os.path.join(path, LOG_NAME)):
            raise StorageError(f"{path} is a directory but holds no {LOG_NAME}")
        return _inspect_wal(path)
    if os.path.isfile(path):
        with open(path, "rb") as handle:
            magic = handle.read(len(_SQLITE_MAGIC))
        if magic == _SQLITE_MAGIC:
            return _inspect_sqlite(path)
        if magic[:8] == LOG_MAGIC or magic[:8] == SNAPSHOT_MAGIC:
            raise StorageError(
                f"{path} is a single WAL store file; inspect its directory instead"
            )
        raise StorageError(f"{path} is neither a WAL store directory nor a SQLite store")
    raise StorageError(f"no store at {path}")


def _inspect_wal(path: str) -> dict:
    snapshots = []
    for name in sorted(os.listdir(path)):
        if name.startswith(SNAPSHOT_PREFIX) and name.endswith(SNAPSHOT_SUFFIX):
            snapshots.append(os.path.join(path, name))
    snapshot_lsn = 0
    snapshot_records = []
    snapshot_ok = True
    if snapshots:
        with open(snapshots[-1], "rb") as handle:
            data = handle.read()
        try:
            _sealed, snapshot_lsn = decode_header(data, SNAPSHOT_MAGIC)
            snapshot_records = scan_frames(data, start=HEADER_LEN, strict=True).records
        except StorageError:
            snapshot_ok = False
    with open(os.path.join(path, LOG_NAME), "rb") as handle:
        data = handle.read()
    sealed, _base = decode_header(data, LOG_MAGIC)
    log = scan_frames(data, start=HEADER_LEN, strict=False)
    replayable = [r for r in log.records if r.lsn > snapshot_lsn]
    tombstones = sum(1 for r in replayable if r.is_tombstone)
    live = iter_live(iter(list(snapshot_records) + replayable))
    lsns = [snapshot_lsn] + [r.lsn for r in replayable]
    namespaces: dict[str, int] = {}
    for namespace, _key in live:
        namespaces[namespace] = namespaces.get(namespace, 0) + 1
    total = len(snapshot_records) + len(replayable)
    return {
        "backend": "wal",
        "path": path,
        "sealed": sealed,
        "last_committed_lsn": max(lsns),
        "snapshot_lsn": snapshot_lsn,
        "snapshot_ok": snapshot_ok,
        "snapshot_records": len(snapshot_records),
        "log_records": len(replayable),
        "total_records": total,
        "live_records": len(live),
        "tombstones": tombstones,
        "live_ratio": (len(live) / total) if total else 1.0,
        "torn_tail_bytes": (len(data) - log.torn_at) if log.torn_at is not None else 0,
        "namespaces": dict(sorted(namespaces.items())),
    }


def _inspect_sqlite(path: str) -> dict:
    uri = f"file:{path}?mode=ro"
    conn = sqlite3.connect(uri, uri=True)
    try:
        meta = dict(conn.execute("SELECT name, value FROM meta"))
        namespaces = {
            namespace: int(count)
            for namespace, count in conn.execute(
                "SELECT namespace, COUNT(*) FROM records GROUP BY namespace "
                "ORDER BY namespace"
            )
        }
    finally:
        conn.close()
    live = sum(namespaces.values())
    appended = int(meta.get("appended", 0))
    return {
        "backend": "sqlite",
        "path": path,
        "last_committed_lsn": int(meta.get("last_lsn", 0)),
        "total_records": appended,
        "live_records": live,
        "tombstones": int(meta.get("tombstones", 0)),
        "live_ratio": (live / appended) if appended else 1.0,
        "namespaces": namespaces,
    }


def format_inspection(report: dict) -> str:
    """Human-readable rendering for the CLI."""
    lines = [f"{report['backend']} store at {report['path']}"]
    if report["backend"] == "wal":
        lines.append(
            f"  sealed values: {'yes' if report['sealed'] else 'no'}; "
            f"snapshot lsn {report['snapshot_lsn']}"
            + ("" if report["snapshot_ok"] else " (CORRUPT)")
        )
        lines.append(
            f"  records: {report['snapshot_records']} snapshot "
            f"+ {report['log_records']} log = {report['total_records']}"
        )
        if report["torn_tail_bytes"]:
            lines.append(
                f"  torn tail: {report['torn_tail_bytes']} bytes "
                f"(next open truncates them)"
            )
    else:
        lines.append(f"  records appended: {report['total_records']}")
    lines.append(
        f"  live: {report['live_records']}  tombstones: {report['tombstones']}  "
        f"live ratio: {report['live_ratio']:.2f}"
    )
    lines.append(f"  last committed LSN: {report['last_committed_lsn']}")
    for namespace, count in report["namespaces"].items():
        lines.append(f"    {namespace}: {count} live")
    return "\n".join(lines)
