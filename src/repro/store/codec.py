"""How P3S service state maps onto storage-engine records.

Both substrates (the simulator services in :mod:`repro.core` and the
asyncio TCP services in :mod:`repro.live`) persist through these
codecs, so a store written by one is recoverable by the other.

Namespaces:

``items`` (the RS payload store)
    key = GUID; value = ``stored_at f64 || expires_at f64 ||
    wall_stored_at f64 || ciphertext``.  ``stored_at``/``expires_at``
    are readings of the storing service's own clock (``sim.now`` in the
    simulator, ``time.monotonic`` on the live substrate) — an epoch that
    does **not** survive a reboot or a new simulator run.
    ``wall_stored_at`` is ``time.time()`` at store time: recovery uses
    it to measure real elapsed time and rebase the remaining TTL onto
    the recovering service's clock, so GC still fires on schedule when
    the persisted epoch is dead (see
    :meth:`~repro.core.rs.RepositoryStore._recover`).  The per-item
    request count is deliberately *not* persisted — it is HBC-operator
    observability, not protocol state, and persisting it would turn
    every read into a write.
``tokens`` (the DS delegated-matching registry)
    key = SHA-256 of ``subscriber || 0x00 || token``; value =
    ``u16 name length || name || token bytes``.  Hashed keys keep the
    (long) serialized token out of the record key's 64 KiB budget.
``subs`` (the DS subscription table)
    key = ``topic || 0x00 || client``; value = empty.
"""

from __future__ import annotations

import hashlib
import struct

from ..errors import CorruptRecordError

__all__ = [
    "NS_ITEMS",
    "NS_TOKENS",
    "NS_SUBS",
    "encode_item",
    "decode_item",
    "token_key",
    "encode_token",
    "decode_token",
    "sub_key",
    "decode_sub_key",
]

NS_ITEMS = "items"
NS_TOKENS = "tokens"
NS_SUBS = "subs"

_ITEM_HEADER = struct.Struct(">ddd")


def encode_item(
    stored_at: float, expires_at: float, wall_stored_at: float, ciphertext: bytes
) -> bytes:
    return _ITEM_HEADER.pack(stored_at, expires_at, wall_stored_at) + ciphertext


def decode_item(value: bytes) -> tuple[float, float, float, bytes]:
    """Returns ``(stored_at, expires_at, wall_stored_at, ciphertext)``."""
    try:
        stored_at, expires_at, wall_stored_at = _ITEM_HEADER.unpack_from(value, 0)
    except struct.error as exc:
        raise CorruptRecordError(f"undecodable stored item: {exc}") from exc
    return stored_at, expires_at, wall_stored_at, value[_ITEM_HEADER.size :]


def token_key(subscriber: str, token: bytes) -> bytes:
    return hashlib.sha256(subscriber.encode("utf-8") + b"\x00" + token).digest()


def encode_token(subscriber: str, token: bytes) -> bytes:
    name = subscriber.encode("utf-8")
    if len(name) > 0xFFFF:
        raise CorruptRecordError(f"subscriber name too long: {subscriber!r}")
    return struct.pack(">H", len(name)) + name + token


def decode_token(value: bytes) -> tuple[str, bytes]:
    """Returns ``(subscriber, token_bytes)``."""
    try:
        (name_len,) = struct.unpack_from(">H", value, 0)
        name = value[2 : 2 + name_len].decode("utf-8")
    except (struct.error, UnicodeDecodeError) as exc:
        raise CorruptRecordError(f"undecodable token registration: {exc}") from exc
    return name, value[2 + name_len :]


def sub_key(topic: str, client: str) -> bytes:
    return topic.encode("utf-8") + b"\x00" + client.encode("utf-8")


def decode_sub_key(key: bytes) -> tuple[str, str]:
    """Returns ``(topic, client)``."""
    topic, sep, client = key.partition(b"\x00")
    if not sep:
        raise CorruptRecordError(f"undecodable subscription key {key!r}")
    return topic.decode("utf-8"), client.decode("utf-8")
