"""``repro.store`` — durable persistence for RS/DS state.

The paper's prototype keeps Repository Server state in Apache Derby and
treats timely, *verifiable* deletion as a privacy requirement (§4.3: an
item must be gone after ``TTL_item + T_G``).  This package is that
storage layer for the reproduction: a pluggable
:class:`~repro.store.engine.StorageEngine` with three backends —

* ``memory`` — non-durable dicts (the simulator default);
* ``wal`` — append-only log of CRC-checksummed, AEAD-sealed records
  with snapshot/compaction and torn-tail-tolerant crash recovery;
* ``sqlite`` — the stdlib embedded database, inspectable and
  multi-process-readable (the Derby analogue);

plus deterministic fault injection (:mod:`repro.store.faults`) so the
recovery path is tested, not trusted, and keyless file inspection
(:mod:`repro.store.inspect`) behind ``repro store inspect``.

See ``docs/PERSISTENCE.md`` for the record format, the recovery
protocol, and the deletion/compaction guarantees.
"""

from .codec import NS_ITEMS, NS_SUBS, NS_TOKENS
from .engine import BACKENDS, MemoryEngine, StorageEngine, open_engine
from .faults import (
    CRASH_POINTS,
    FaultPlan,
    SimulatedCrash,
    corrupt_crc,
    corrupt_length,
    tear_tail,
)
from .inspect import format_inspection, inspect_store
from .records import Record
from .sqlite import SqliteEngine
from .wal import RecoveryInfo, WalEngine

__all__ = [
    "BACKENDS",
    "CRASH_POINTS",
    "FaultPlan",
    "MemoryEngine",
    "NS_ITEMS",
    "NS_SUBS",
    "NS_TOKENS",
    "Record",
    "RecoveryInfo",
    "SimulatedCrash",
    "SqliteEngine",
    "StorageEngine",
    "WalEngine",
    "corrupt_crc",
    "corrupt_length",
    "format_inspection",
    "inspect_store",
    "open_engine",
    "tear_tail",
]
