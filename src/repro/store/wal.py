"""The write-ahead-log backend: append, fsync, snapshot, recover.

One store is one directory::

    <dir>/wal.log                    append-only record log
    <dir>/snapshot-<lsn 20d>.snap    periodic full-state snapshots

Every mutation appends one framed record (see
:mod:`repro.store.records`) to the log, flushes, and — with
``fsync=True``, the default — fsyncs before returning: a ``put`` that
returned is a *committed* record and survives ``kill -9``.

**Recovery** (:meth:`WalEngine._recover`) rebuilds the live map as:

1. load the newest snapshot that parses cleanly — a corrupt newer
   snapshot is skipped (counted in ``RecoveryInfo.snapshots_skipped``)
   and the next-newest is tried; ``*.tmp`` leftovers are ignored, since
   a crash mid-snapshot leaves either no new file or a complete one,
   thanks to write-temp-then-rename;
2. replay log records with ``lsn > snapshot_lsn`` in order.  The log
   header's ``base_lsn`` must not exceed the loaded snapshot's LSN:
   once compaction has truncated the log past a snapshot, that
   snapshot no longer combines with the log into a complete state, and
   recovering from it would silently drop the gap — that (e.g. the
   only remaining snapshot being corrupt after the log was truncated
   to it) raises :class:`~repro.errors.RecoveryError` instead;
3. if the log ends in a torn record — the residue of a crash
   mid-append — truncate it off and continue; a bad record *followed by
   more data* is real corruption and raises
   :class:`~repro.errors.CorruptRecordError` instead of silently
   dropping committed suffixes.

**Verified deletion** (paper §4.3): a ``delete`` appends a tombstone —
the dead value's bytes are still in the log at that point — and
:meth:`compact` then writes a snapshot of only the live entries,
truncates the log, and unlinks every older snapshot.  After compaction
returns, no file under the store directory contains the deleted value
(``tests/store/test_rs_persistence.py`` greps the files to prove it).

With a 32-byte ``key``, record values are additionally AEAD-sealed at
rest, so item ciphertext never touches the disk in the clear; framing,
namespaces and keys stay readable for ``repro store inspect``.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass

from ..crypto.symmetric import SecretBox
from ..errors import CorruptRecordError, RecoveryError, StorageError
from ..obs import profile as obs
from .engine import StorageEngine
from .faults import FaultPlan, SimulatedCrash
from .records import (
    HEADER_LEN,
    LOG_MAGIC,
    OP_PUT,
    OP_TOMBSTONE,
    SNAPSHOT_MAGIC,
    decode_header,
    encode_header,
    encode_record,
    iter_live,
    open_value,
    scan_frames,
    seal_value,
)

__all__ = ["WalEngine", "RecoveryInfo", "LOG_NAME", "SNAPSHOT_PREFIX"]

LOG_NAME = "wal.log"
SNAPSHOT_PREFIX = "snapshot-"
SNAPSHOT_SUFFIX = ".snap"


@dataclass(frozen=True)
class RecoveryInfo:
    """What one engine open reconstructed, for telemetry and tests."""

    snapshot_lsn: int
    log_records_replayed: int
    torn_bytes: int
    live_records: int
    last_committed_lsn: int
    snapshots_skipped: int = 0
    # wall-clock seconds the open-time rebuild took — the signal behind
    # the per-shard store-recovery SLO (live only: wall time is not
    # deterministic, so chaos replay ignores it)
    duration_s: float = 0.0

    @property
    def clean(self) -> bool:
        return self.torn_bytes == 0 and self.snapshots_skipped == 0


def snapshot_name(lsn: int) -> str:
    return f"{SNAPSHOT_PREFIX}{lsn:020d}{SNAPSHOT_SUFFIX}"


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WalEngine(StorageEngine):
    """Append-only log + snapshot storage in one directory."""

    backend = "wal"
    durable = True

    def __init__(
        self,
        path: str,
        *,
        key: bytes | None = None,
        fsync: bool = True,
        faults: FaultPlan | None = None,
        snapshot_every: int = 1024,
        component: str = "store",
    ):
        self.path = path
        self.component = component
        self._box = SecretBox(key) if key is not None else None
        self._sealed = key is not None
        self._fsync = fsync
        self._faults = faults
        self.snapshot_every = snapshot_every
        self._live: dict[str, dict[bytes, bytes]] = {}
        self._lsn = 0
        self._crashed = False
        self._closed = False
        self.records_appended = 0
        self.tombstones_appended = 0
        self.compactions = 0
        # records sitting in the log since the last snapshot — the
        # compaction trigger and the measure of recovery replay cost
        self._log_records = 0
        os.makedirs(path, exist_ok=True)
        with obs.span("store.recover", component=component, backend=self.backend):
            started = time.perf_counter()
            self.recovery = dataclasses.replace(
                self._recover(), duration_s=time.perf_counter() - started
            )
        self._handle = open(self._log_path, "ab")

    # -- paths ---------------------------------------------------------------

    @property
    def _log_path(self) -> str:
        return os.path.join(self.path, LOG_NAME)

    def _snapshot_files(self) -> list[tuple[int, str]]:
        """(lsn, path) of every completed snapshot, newest first."""
        found: list[tuple[int, str]] = []
        for name in os.listdir(self.path):
            if name.startswith(SNAPSHOT_PREFIX) and name.endswith(SNAPSHOT_SUFFIX):
                digits = name[len(SNAPSHOT_PREFIX) : -len(SNAPSHOT_SUFFIX)]
                try:
                    found.append((int(digits), os.path.join(self.path, name)))
                except ValueError:
                    continue
        return sorted(found, reverse=True)

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> RecoveryInfo:
        snapshot_lsn, records, snapshots_skipped = self._load_latest_snapshot()
        log_records, torn_bytes = self._replay_log(snapshot_lsn, records)
        live = iter_live(iter(records))
        for (namespace, key), record in live.items():
            value = open_value(self._box, record)
            self._live.setdefault(namespace, {})[key] = value
        self._lsn = max(
            [snapshot_lsn] + [record.lsn for record in records], default=0
        )
        self._log_records = log_records
        return RecoveryInfo(
            snapshot_lsn=snapshot_lsn,
            log_records_replayed=log_records,
            torn_bytes=torn_bytes,
            live_records=sum(len(entries) for entries in self._live.values()),
            last_committed_lsn=self._lsn,
            snapshots_skipped=snapshots_skipped,
        )

    def _load_latest_snapshot(self) -> tuple[int, list, int]:
        """The newest snapshot that parses cleanly, as
        ``(lsn, records, skipped)``.

        A corrupt snapshot is skipped in favour of the next-newest —
        whether the older state plus the log still amounts to the full
        committed state is checked against the log's ``base_lsn`` in
        :meth:`_replay_log`, so skipping here never silently loses
        records.  A sealing-flag mismatch stays fatal: that is an
        engine/file configuration conflict, not file damage.
        """
        skipped = 0
        for lsn, path in self._snapshot_files():
            with open(path, "rb") as handle:
                data = handle.read()
            try:
                sealed, base_lsn = decode_header(data, SNAPSHOT_MAGIC)
                result = scan_frames(data, start=HEADER_LEN, strict=True)
            except CorruptRecordError:
                skipped += 1
                obs.record_op("store.snapshot_skipped")
                continue
            if sealed != self._sealed:
                raise RecoveryError(
                    f"snapshot {path} sealing flag mismatches the engine "
                    f"(file sealed={sealed}, engine sealed={self._sealed})"
                )
            return base_lsn, list(result.records), skipped
        return 0, [], skipped

    def _replay_log(self, snapshot_lsn: int, records: list) -> tuple[int, int]:
        """Append post-snapshot log records onto ``records`` in place."""
        if not os.path.exists(self._log_path):
            self._write_fresh_log(base_lsn=snapshot_lsn)
            return 0, 0
        with open(self._log_path, "rb") as handle:
            data = handle.read()
        sealed, base = decode_header(data, LOG_MAGIC)
        if sealed != self._sealed:
            raise RecoveryError(
                f"log {self._log_path} sealing flag mismatches the engine"
            )
        if base > snapshot_lsn:
            # the log was truncated past every usable snapshot (e.g. the
            # one snapshot covering it is corrupt): the gap between the
            # recovered snapshot and the log's base is gone from disk,
            # and pretending otherwise would resurrect a partial state
            raise RecoveryError(
                f"log {self._log_path} starts at lsn {base} but the newest "
                f"readable snapshot covers only lsn {snapshot_lsn}: committed "
                f"records in between are unrecoverable"
            )
        result = scan_frames(data, start=HEADER_LEN, strict=False)
        replayed = 0
        for record in result.records:
            if record.lsn > snapshot_lsn:
                records.append(record)
                replayed += 1
        torn_bytes = 0
        if result.torn_at is not None:
            torn_bytes = len(data) - result.torn_at
            with open(self._log_path, "r+b") as handle:
                handle.truncate(result.torn_at)
                handle.flush()
                os.fsync(handle.fileno())
        return replayed, torn_bytes

    def _write_fresh_log(self, base_lsn: int) -> None:
        tmp = self._log_path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(encode_header(LOG_MAGIC, self._sealed, base_lsn))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._log_path)
        _fsync_dir(self.path)

    # -- the write path --------------------------------------------------------

    def _append(self, op: int, namespace: str, key: bytes, value: bytes) -> int:
        if self._crashed:
            raise StorageError("engine hit an injected crash; reopen the store")
        if self._closed:
            raise StorageError("engine is closed")
        lsn = self._lsn + 1
        stored = seal_value(self._box, namespace, key, value) if op == OP_PUT else b""
        frame = encode_record(lsn, op, namespace, key, stored)
        try:
            self._fire("append.before_write")
            if self._faults is not None and self._faults.would_fire("append.partial_write"):
                self._handle.write(frame[: max(1, len(frame) // 2)])
                self._handle.flush()
                os.fsync(self._handle.fileno())
                raise SimulatedCrash("injected crash mid-append (torn tail)")
            self._handle.write(frame)
            self._handle.flush()
            self._fire("append.after_write")
            if self._fsync:
                os.fsync(self._handle.fileno())
            self._fire("append.after_fsync")
        except SimulatedCrash:
            self._crashed = True
            raise
        self._lsn = lsn
        self.records_appended += 1
        self._log_records += 1
        if op == OP_TOMBSTONE:
            self.tombstones_appended += 1
            self._live.get(namespace, {}).pop(bytes(key), None)
        else:
            self._live.setdefault(namespace, {})[bytes(key)] = bytes(value)
        if self.snapshot_every and self._log_records >= self.snapshot_every:
            self.compact()
        return lsn

    def _fire(self, point: str) -> None:
        if self._faults is not None:
            self._faults.fire(point)

    def put(self, namespace: str, key: bytes, value: bytes) -> int:
        return self._append(OP_PUT, namespace, key, value)

    def delete(self, namespace: str, key: bytes) -> int:
        return self._append(OP_TOMBSTONE, namespace, key, b"")

    def get(self, namespace: str, key: bytes) -> bytes | None:
        return self._live.get(namespace, {}).get(bytes(key))

    def items(self, namespace: str) -> list[tuple[bytes, bytes]]:
        return list(self._live.get(namespace, {}).items())

    def sync(self) -> None:
        if self._crashed or self._closed:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # -- snapshot + compaction -------------------------------------------------

    def compact(self) -> dict:
        """Snapshot the live set, truncate the log, unlink old snapshots.

        This is the §4.3 deletion guarantee made physical: after this
        returns, the store directory holds exactly one snapshot of the
        live entries plus an empty log — tombstoned values' bytes are in
        no remaining file.
        """
        if self._crashed:
            raise StorageError("engine hit an injected crash; reopen the store")
        log_records_before = self._log_records
        snap_lsn = self._lsn
        live_count = sum(len(entries) for entries in self._live.values())
        with obs.span(
            "store.compact", component=self.component, backend=self.backend,
            live=live_count,
        ):
            final = os.path.join(self.path, snapshot_name(snap_lsn))
            tmp = final + ".tmp"
            try:
                with open(tmp, "wb") as handle:
                    handle.write(encode_header(SNAPSHOT_MAGIC, self._sealed, snap_lsn))
                    for namespace in sorted(self._live):
                        for key in sorted(self._live[namespace]):
                            stored = seal_value(
                                self._box, namespace, key, self._live[namespace][key]
                            )
                            handle.write(
                                encode_record(snap_lsn, OP_PUT, namespace, key, stored)
                            )
                    handle.flush()
                    os.fsync(handle.fileno())
                self._fire("snapshot.before_rename")
                os.replace(tmp, final)
                _fsync_dir(self.path)
                self._fire("snapshot.after_rename")
                # the log is now fully covered by the snapshot: start fresh
                self._handle.close()
                self._write_fresh_log(base_lsn=snap_lsn)
                self._handle = open(self._log_path, "ab")
                self._fire("compact.after_truncate")
            except SimulatedCrash:
                self._crashed = True
                raise
            for lsn, path in self._snapshot_files():
                if lsn != snap_lsn:
                    os.unlink(path)
            _fsync_dir(self.path)
        self._log_records = 0
        self.compactions += 1
        obs.record_op("store.compaction")
        return {
            "backend": self.backend,
            "snapshot_lsn": snap_lsn,
            "live_records": live_count,
            "dropped_records": max(0, log_records_before - live_count),
        }

    # -- lifecycle / introspection ---------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if not self._crashed:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
        self._handle.close()

    @property
    def last_lsn(self) -> int:
        return self._lsn

    @property
    def healthy(self) -> bool:
        return not self._crashed and not self._closed

    def status(self) -> dict:
        live = sum(len(entries) for entries in self._live.values())
        return {
            "backend": self.backend,
            "durable": self.durable,
            "path": self.path,
            "sealed": self._sealed,
            "last_committed_lsn": self._lsn,
            "records_appended": self.records_appended,
            "live_records": live,
            "tombstones": self.tombstones_appended,
            "log_records": self._log_records,
            "compactions": self.compactions,
            "recovery": {
                "snapshot_lsn": self.recovery.snapshot_lsn,
                "log_records_replayed": self.recovery.log_records_replayed,
                "torn_bytes": self.recovery.torn_bytes,
                "live_records": self.recovery.live_records,
                "snapshots_skipped": self.recovery.snapshots_skipped,
                "clean": self.recovery.clean,
                "duration_s": self.recovery.duration_s,
            },
            "namespaces": {
                namespace: len(entries)
                for namespace, entries in sorted(self._live.items())
                if entries
            },
        }
