"""The SQLite backend: stdlib, inspectable, multi-process-readable.

The paper's prototype persists RS state in Apache Derby — an embedded
SQL database; ``sqlite3`` is the stdlib equivalent here.  One store is
one database file with two tables::

    records(namespace TEXT, key BLOB, value BLOB, lsn INTEGER,
            PRIMARY KEY (namespace, key))
    meta(name TEXT PRIMARY KEY, value INTEGER)   -- last_lsn, appended, tombstones

Durability leans on SQLite itself: every mutation commits with
``synchronous=FULL`` (SQLite fsyncs before the commit returns), so a
returned ``put`` is committed state, and recovery is simply opening the
file — SQLite's own journal replay handles torn writes.

Deletion guarantees: ``PRAGMA secure_delete=ON`` makes SQLite zero
deleted row content at ``DELETE`` time, and :meth:`SqliteEngine.compact`
runs ``VACUUM``, rewriting the database file without the dead pages —
so, as with the WAL backend, an expired item's bytes survive in no
store file after GC + compaction.

With a store ``key`` configured, values are AEAD-sealed before they hit
SQL, so external readers (the point of this backend: ad-hoc inspection
with the ``sqlite3`` shell, concurrent read-only monitors) see
namespaces, keys and counts but never plaintext item ciphertext.
"""

from __future__ import annotations

import os
import sqlite3

from ..crypto.symmetric import SecretBox
from ..errors import CorruptRecordError, IntegrityError, RecoveryError, StorageError
from ..obs import profile as obs
from .engine import StorageEngine

__all__ = ["SqliteEngine"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    namespace TEXT NOT NULL,
    key BLOB NOT NULL,
    value BLOB NOT NULL,
    lsn INTEGER NOT NULL,
    PRIMARY KEY (namespace, key)
);
CREATE TABLE IF NOT EXISTS meta (
    name TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""


def _record_ad(namespace: str, key: bytes) -> bytes:
    return namespace.encode("utf-8") + b"\x00" + key


class SqliteEngine(StorageEngine):
    """Namespaced key-value store over one ``sqlite3`` database file."""

    backend = "sqlite"
    durable = True

    def __init__(
        self, path: str, *, key: bytes | None = None, component: str = "store"
    ):
        self.path = path
        self.component = component
        self._box = SecretBox(key) if key is not None else None
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with obs.span("store.recover", component=component, backend=self.backend):
            try:
                self._conn = sqlite3.connect(path)
                self._conn.execute("PRAGMA secure_delete=ON")
                self._conn.execute("PRAGMA synchronous=FULL")
                self._conn.executescript(_SCHEMA)
                self._conn.commit()
            except sqlite3.DatabaseError as exc:
                raise RecoveryError(f"cannot open sqlite store {path}: {exc}") from exc
        self._closed = False

    # -- meta counters ---------------------------------------------------------

    def _meta(self, name: str) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE name = ?", (name,)
        ).fetchone()
        return 0 if row is None else int(row[0])

    def _bump(self, name: str, by: int = 1) -> int:
        value = self._meta(name) + by
        self._conn.execute(
            "INSERT INTO meta (name, value) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = excluded.value",
            (name, value),
        )
        return value

    # -- engine interface ------------------------------------------------------

    def put(self, namespace: str, key: bytes, value: bytes) -> int:
        self._check_open()
        stored = (
            self._box.seal(value, associated_data=_record_ad(namespace, key))
            if self._box is not None
            else bytes(value)
        )
        lsn = self._bump("last_lsn")
        self._bump("appended")
        self._conn.execute(
            "INSERT OR REPLACE INTO records (namespace, key, value, lsn) "
            "VALUES (?, ?, ?, ?)",
            (namespace, bytes(key), stored, lsn),
        )
        self._conn.commit()
        return lsn

    def delete(self, namespace: str, key: bytes) -> int:
        self._check_open()
        lsn = self._bump("last_lsn")
        self._bump("appended")
        self._bump("tombstones")
        self._conn.execute(
            "DELETE FROM records WHERE namespace = ? AND key = ?",
            (namespace, bytes(key)),
        )
        self._conn.commit()
        return lsn

    def get(self, namespace: str, key: bytes) -> bytes | None:
        self._check_open()
        row = self._conn.execute(
            "SELECT value FROM records WHERE namespace = ? AND key = ?",
            (namespace, bytes(key)),
        ).fetchone()
        return None if row is None else self._open_value(namespace, bytes(key), row[0])

    def items(self, namespace: str) -> list[tuple[bytes, bytes]]:
        self._check_open()
        rows = self._conn.execute(
            "SELECT key, value FROM records WHERE namespace = ? ORDER BY key",
            (namespace,),
        ).fetchall()
        return [
            (bytes(key), self._open_value(namespace, bytes(key), value))
            for key, value in rows
        ]

    def _open_value(self, namespace: str, key: bytes, stored: bytes) -> bytes:
        if self._box is None:
            return bytes(stored)
        try:
            return self._box.open(
                bytes(stored), associated_data=_record_ad(namespace, key)
            )
        except IntegrityError as exc:
            raise CorruptRecordError(
                f"sqlite record ns={namespace!r} failed authentication "
                f"(wrong store key or damaged database)"
            ) from exc

    def sync(self) -> None:
        # every mutation commits with synchronous=FULL; nothing is pending
        pass

    def compact(self) -> dict:
        self._check_open()
        live = self._live_count()
        with obs.span("store.compact", component=self.component, backend=self.backend, live=live):
            self._conn.execute("VACUUM")
            self._conn.commit()
        obs.record_op("store.compaction")
        return {"backend": self.backend, "live_records": live, "dropped_records": 0}

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._conn.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("engine is closed")

    def _live_count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM records").fetchone()[0])

    @property
    def last_lsn(self) -> int:
        return self._meta("last_lsn")

    def status(self) -> dict:
        self._check_open()
        namespaces = {
            namespace: int(count)
            for namespace, count in self._conn.execute(
                "SELECT namespace, COUNT(*) FROM records GROUP BY namespace "
                "ORDER BY namespace"
            )
        }
        return {
            "backend": self.backend,
            "durable": self.durable,
            "path": self.path,
            "sealed": self._box is not None,
            "last_committed_lsn": self._meta("last_lsn"),
            "records_appended": self._meta("appended"),
            "live_records": self._live_count(),
            "tombstones": self._meta("tombstones"),
            "namespaces": namespaces,
        }
