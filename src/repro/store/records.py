"""On-disk record framing shared by the WAL log and snapshot files.

One frame carries one storage operation::

    u32  payload length L        (big-endian)
    u32  CRC-32 of the payload
    L    payload

and the payload is::

    u64  LSN (log sequence number, monotone per store)
    u8   op            (1 = PUT, 2 = TOMBSTONE)
    u8   namespace length | namespace (UTF-8)
    u16  key length       | key
    u32  value length     | value   (empty for tombstones)

Framing fields and the namespace/key stay in the clear — they are what
``repro store inspect`` reads without the store key, and they reveal
nothing the storing service does not already know about its own state.
The *value* (the actual ciphertext payload, token bytes, …) is sealed
with the store's :class:`~repro.crypto.symmetric.SecretBox` when a key
is configured, with the record identity ``ns || 0x00 || key`` as
associated data so a sealed value cannot be spliced onto a different
record.

A frame that fails its length or CRC check at the end of a log is a
**torn tail** — the expected residue of a crash mid-append — and recovery
truncates it.  The same failure *before* the end of the file means the
file was damaged after the fact, and decoding raises
:class:`~repro.errors.CorruptRecordError` instead of guessing.

Frames are bounded by :data:`MAX_RECORD_LEN` (writers refuse anything
larger), which lets the scanner tell the two cases apart even when the
*length prefix itself* is the damaged field: a torn append writes a
prefix of a real frame, so any length it leaves on disk is a length a
writer actually produced — an implausibly large one can only be
corruption, and treating it as a tear would silently swallow every
committed record between it and EOF.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

from ..crypto.symmetric import SecretBox
from ..errors import CorruptRecordError, IntegrityError

__all__ = [
    "OP_PUT",
    "OP_TOMBSTONE",
    "MAX_RECORD_LEN",
    "LOG_MAGIC",
    "SNAPSHOT_MAGIC",
    "Record",
    "ScanResult",
    "encode_record",
    "decode_payload",
    "encode_header",
    "decode_header",
    "scan_frames",
    "seal_value",
    "open_value",
    "iter_live",
]

OP_PUT = 1
OP_TOMBSTONE = 2

# Upper bound on one frame's payload, enforced at encode time.  Far above
# any real P3S record (items are single publication ciphertexts), it
# exists so the recovery scanner can reject a damaged length prefix as
# corruption instead of mistaking it for a torn tail.
MAX_RECORD_LEN = 64 * 1024 * 1024

# 8-byte magic + u8 flags + u64 base LSN
LOG_MAGIC = b"P3SWAL1\n"
SNAPSHOT_MAGIC = b"P3SSNAP\n"
HEADER_LEN = 8 + 1 + 8
FLAG_SEALED = 0x01

_FRAME_PREFIX = struct.Struct(">II")
_PAYLOAD_FIXED = struct.Struct(">QB")


@dataclass(frozen=True)
class Record:
    """One decoded storage operation."""

    lsn: int
    op: int
    namespace: str
    key: bytes
    value: bytes  # as stored on disk (sealed when the store has a key)

    @property
    def is_tombstone(self) -> bool:
        return self.op == OP_TOMBSTONE


@dataclass
class ScanResult:
    """What a file scan recovered, and what it had to give up on."""

    records: list[Record]
    torn_at: int | None  # file offset of the torn tail, None if clean
    scanned_bytes: int


def _record_ad(namespace: str, key: bytes) -> bytes:
    return namespace.encode("utf-8") + b"\x00" + key


def seal_value(box: SecretBox | None, namespace: str, key: bytes, value: bytes) -> bytes:
    if box is None:
        return value
    return box.seal(value, associated_data=_record_ad(namespace, key))


def open_value(box: SecretBox | None, record: Record) -> bytes:
    if box is None or record.is_tombstone:
        return record.value
    try:
        return box.open(record.value, associated_data=_record_ad(record.namespace, record.key))
    except IntegrityError as exc:
        raise CorruptRecordError(
            f"record lsn={record.lsn} ns={record.namespace!r}: sealed value "
            f"failed authentication (wrong store key or damaged file)"
        ) from exc


def encode_record(
    lsn: int, op: int, namespace: str, key: bytes, value: bytes
) -> bytes:
    ns_bytes = namespace.encode("utf-8")
    if len(ns_bytes) > 0xFF:
        raise CorruptRecordError(f"namespace too long: {namespace!r}")
    if len(key) > 0xFFFF:
        raise CorruptRecordError(f"key too long: {len(key)} bytes")
    if len(value) > MAX_RECORD_LEN - 64:  # leave room for the fixed fields
        raise CorruptRecordError(
            f"value too long: {len(value)} bytes (records are bounded by "
            f"MAX_RECORD_LEN={MAX_RECORD_LEN} so recovery can vet length prefixes)"
        )
    payload = b"".join(
        (
            _PAYLOAD_FIXED.pack(lsn, op),
            bytes((len(ns_bytes),)),
            ns_bytes,
            struct.pack(">H", len(key)),
            key,
            struct.pack(">I", len(value)),
            value,
        )
    )
    return _FRAME_PREFIX.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> Record:
    try:
        lsn, op = _PAYLOAD_FIXED.unpack_from(payload, 0)
        offset = _PAYLOAD_FIXED.size
        ns_len = payload[offset]
        offset += 1
        namespace = payload[offset : offset + ns_len].decode("utf-8")
        offset += ns_len
        (key_len,) = struct.unpack_from(">H", payload, offset)
        offset += 2
        key = payload[offset : offset + key_len]
        offset += key_len
        (value_len,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        value = payload[offset : offset + value_len]
        if offset + value_len != len(payload):
            raise CorruptRecordError("record payload has trailing garbage")
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise CorruptRecordError(f"undecodable record payload: {exc}") from exc
    if op not in (OP_PUT, OP_TOMBSTONE):
        raise CorruptRecordError(f"unknown record op {op}")
    return Record(lsn=lsn, op=op, namespace=namespace, key=bytes(key), value=bytes(value))


def encode_header(magic: bytes, sealed: bool, base_lsn: int) -> bytes:
    flags = FLAG_SEALED if sealed else 0
    return magic + bytes((flags,)) + struct.pack(">Q", base_lsn)


def decode_header(data: bytes, magic: bytes) -> tuple[bool, int]:
    """Returns ``(sealed, base_lsn)``; raises on a wrong or short header."""
    if len(data) < HEADER_LEN or data[:8] != magic:
        raise CorruptRecordError(f"bad store file header (expected {magic!r})")
    flags = data[8]
    (base_lsn,) = struct.unpack(">Q", data[9:HEADER_LEN])
    return bool(flags & FLAG_SEALED), base_lsn


def scan_frames(data: bytes, start: int, *, strict: bool) -> ScanResult:
    """Decode frames from ``data[start:]`` until EOF or a bad frame.

    ``strict=True`` (snapshots) treats any bad frame as corruption;
    ``strict=False`` (the log) treats a bad *final* region as the torn
    tail of a crashed append and reports where it starts.  A bad frame
    with further bytes beyond its declared extent is corruption either
    way — a torn append can only damage the end of the file.  So is a
    length prefix above :data:`MAX_RECORD_LEN`: writers never produce
    such a frame, so a torn append cannot leave one behind, and
    honouring it as a tear would let a single flipped length byte
    swallow every committed record after it.
    """
    records: list[Record] = []
    offset = start
    end = len(data)
    while offset < end:
        frame_start = offset
        if offset + _FRAME_PREFIX.size > end:
            return _torn(records, frame_start, end, strict, "truncated frame prefix")
        length, crc = _FRAME_PREFIX.unpack_from(data, offset)
        offset += _FRAME_PREFIX.size
        if length > MAX_RECORD_LEN:
            raise CorruptRecordError(
                f"frame at offset {frame_start} declares an implausible "
                f"{length}-byte payload (> MAX_RECORD_LEN={MAX_RECORD_LEN}) "
                f"— damaged length prefix, not a torn append"
            )
        if offset + length > end:
            return _torn(records, frame_start, end, strict, "truncated frame payload")
        payload = data[offset : offset + length]
        offset += length
        if zlib.crc32(payload) != crc:
            if offset < end and not strict:
                # bytes continue past the bad frame: this is damage, not a tear
                raise CorruptRecordError(
                    f"CRC mismatch at offset {frame_start} with "
                    f"{end - offset} bytes following — file is corrupt, not torn"
                )
            return _torn(records, frame_start, end, strict, "CRC mismatch")
        records.append(decode_payload(payload))
    return ScanResult(records=records, torn_at=None, scanned_bytes=end - start)


def _torn(
    records: list[Record], frame_start: int, end: int, strict: bool, why: str
) -> ScanResult:
    if strict:
        raise CorruptRecordError(f"{why} at offset {frame_start}")
    return ScanResult(records=records, torn_at=frame_start, scanned_bytes=end)


def iter_live(records: Iterator[Record]) -> dict[tuple[str, bytes], Record]:
    """Fold a record stream into its live set (last writer wins,
    tombstones delete)."""
    live: dict[tuple[str, bytes], Record] = {}
    for record in records:
        slot = (record.namespace, record.key)
        if record.is_tombstone:
            live.pop(slot, None)
        else:
            live[slot] = record
    return live
