"""The pluggable storage-engine interface and the in-memory backend.

:class:`StorageEngine` is the contract the Repository Server's item
store and the Dissemination Server's registries program against: a
namespaced key→value map with last-writer-wins puts, tombstoning
deletes, an explicit durability barrier (:meth:`StorageEngine.sync`)
and a compaction step after which deleted values are physically
unrecoverable from the backend's files.

Three backends implement it:

``memory`` (:class:`MemoryEngine`, here)
    Today's behaviour and the simulator default.  ``durable=False``:
    state lives exactly as long as the Python object.
``wal`` (:class:`~repro.store.wal.WalEngine`)
    Append-only log of CRC-checksummed, optionally AEAD-sealed records
    with periodic snapshot + compaction, and torn-tail-tolerant crash
    recovery.  The production-shaped backend.
``sqlite`` (:class:`~repro.store.sqlite.SqliteEngine`)
    The stdlib ``sqlite3`` module, for ad-hoc inspection with external
    tooling and multi-process readers.

All three yield byte-identical delivery sets when substituted under a
P3S deployment (``tests/store/test_equivalence.py``) — the engine
changes durability, never protocol behaviour.
"""

from __future__ import annotations

from ..errors import StorageError

__all__ = ["StorageEngine", "MemoryEngine", "BACKENDS", "open_engine"]

BACKENDS = ("memory", "wal", "sqlite")


class StorageEngine:
    """Abstract namespaced key-value store with tombstoning deletes.

    Keys and values are ``bytes``; namespaces are short strings
    (``"items"``, ``"tokens"``, ``"subs"``).  Every mutation is assigned
    a monotonically increasing LSN; ``last_lsn`` after :meth:`sync`
    identifies the committed state a restart must reproduce.
    """

    backend: str = "abstract"
    durable: bool = False

    def put(self, namespace: str, key: bytes, value: bytes) -> int:
        raise NotImplementedError

    def delete(self, namespace: str, key: bytes) -> int:
        """Tombstone ``key``; idempotent, returns the tombstone's LSN."""
        raise NotImplementedError

    def get(self, namespace: str, key: bytes) -> bytes | None:
        raise NotImplementedError

    def items(self, namespace: str) -> list[tuple[bytes, bytes]]:
        """The live (non-tombstoned) entries of one namespace."""
        raise NotImplementedError

    def count(self, namespace: str) -> int:
        return len(self.items(namespace))

    def sync(self) -> None:
        """Durability barrier: everything already written survives a
        crash after this returns (no-op for non-durable backends)."""

    def compact(self) -> dict:
        """Rewrite the backend so tombstoned/overwritten values are gone
        from its files; returns compaction stats."""
        return {"backend": self.backend, "dropped_records": 0}

    def close(self) -> None:
        pass

    @property
    def last_lsn(self) -> int:
        raise NotImplementedError

    @property
    def healthy(self) -> bool:
        """False once the engine can no longer accept writes (injected
        crash, closed handle); feeds service readiness checks."""
        return True

    def status(self) -> dict:
        """Counts for telemetry and ``repro store inspect``."""
        raise NotImplementedError

    # context-manager convenience for tests and CLI one-shots
    def __enter__(self) -> "StorageEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryEngine(StorageEngine):
    """The non-durable backend: plain dicts, LSN bookkeeping for parity."""

    backend = "memory"
    durable = False

    def __init__(self):
        self._namespaces: dict[str, dict[bytes, bytes]] = {}
        self._lsn = 0
        self._appended = 0
        self._tombstones = 0

    def put(self, namespace: str, key: bytes, value: bytes) -> int:
        self._lsn += 1
        self._appended += 1
        self._namespaces.setdefault(namespace, {})[bytes(key)] = bytes(value)
        return self._lsn

    def delete(self, namespace: str, key: bytes) -> int:
        self._lsn += 1
        self._appended += 1
        self._tombstones += 1
        self._namespaces.get(namespace, {}).pop(bytes(key), None)
        return self._lsn

    def get(self, namespace: str, key: bytes) -> bytes | None:
        return self._namespaces.get(namespace, {}).get(bytes(key))

    def items(self, namespace: str) -> list[tuple[bytes, bytes]]:
        return list(self._namespaces.get(namespace, {}).items())

    @property
    def last_lsn(self) -> int:
        return self._lsn

    def status(self) -> dict:
        live = sum(len(entries) for entries in self._namespaces.values())
        return {
            "backend": self.backend,
            "durable": self.durable,
            "last_committed_lsn": self._lsn,
            "records_appended": self._appended,
            "live_records": live,
            "tombstones": self._tombstones,
            "namespaces": {
                namespace: len(entries)
                for namespace, entries in sorted(self._namespaces.items())
                if entries
            },
        }


def open_engine(
    backend: str,
    path: str | None = None,
    *,
    key: bytes | None = None,
    fsync: bool = True,
    faults=None,
    snapshot_every: int = 1024,
    component: str = "store",
) -> StorageEngine:
    """Open one storage engine by backend name.

    ``path`` is a directory for ``wal``, a database file for ``sqlite``,
    and ignored for ``memory``.  ``key`` (32 bytes) turns on at-rest
    AEAD sealing of record values.  ``faults`` threads a
    :class:`~repro.store.faults.FaultPlan` into the WAL write path.
    """
    if backend == "memory":
        return MemoryEngine()
    if path is None:
        raise StorageError(f"backend {backend!r} needs a path")
    if backend == "wal":
        from .wal import WalEngine

        return WalEngine(
            path,
            key=key,
            fsync=fsync,
            faults=faults,
            snapshot_every=snapshot_every,
            component=component,
        )
    if backend == "sqlite":
        from .sqlite import SqliteEngine

        return SqliteEngine(path, key=key, component=component)
    raise StorageError(f"unknown storage backend {backend!r}; expected one of {BACKENDS}")
