"""Request-response helper over the simulated network.

P3S is "request-response" at several points (token requests to the
PBE-TS, payload retrievals from the RS).  :class:`RpcEndpoint` gives a
host:

* ``call(dst, msg_type, payload, size)`` — returns an event that fires
  with the response payload;
* ``serve(msg_type, handler)`` — registers a handler; handlers may return
  a value directly or a generator (run as a simulator process) for
  handlers that themselves need simulated time;
* a dispatch process that must be started once via ``start()``.

Handlers receive ``(src, request_message)`` and their return value is
``(payload, size_bytes)`` for the response frame.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from ..errors import NetworkError, TransportError
from .channel import SecureChannelLayer
from .simulator import Event

__all__ = ["RpcEndpoint"]


class RpcEndpoint:
    """RPC and one-way messaging on top of a :class:`SecureChannelLayer`."""

    _correlation = itertools.count(1)

    def __init__(self, channel: SecureChannelLayer):
        self.channel = channel
        self.sim = channel.host.network.sim
        self._handlers: dict[str, Callable] = {}
        self._pending: dict[int, Event] = {}
        self._started = False

    @property
    def name(self) -> str:
        return self.channel.host.name

    # -- server side ---------------------------------------------------------

    def serve(self, msg_type: str, handler: Callable) -> None:
        if msg_type in self._handlers:
            raise NetworkError(f"handler for {msg_type!r} already registered")
        self._handlers[msg_type] = handler

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.process(self._dispatch_loop())

    # -- client side -----------------------------------------------------------

    def call(
        self,
        dst: str,
        msg_type: str,
        payload: Any,
        size_bytes: int,
        headers: dict[str, Any] | None = None,
        timeout_s: float | None = None,
    ) -> Event:
        """Send a request; the returned event fires with the response payload.

        ``headers`` are merged into the RPC frame headers — the carrier
        for simulation-side metadata such as the observability span
        context (none of it is accounted in ``size_bytes``).

        ``timeout_s`` bounds the wait: when no response lands in time
        the event fails with :class:`TransportError`, mirroring the
        live endpoint's ``call_timeout_s``.  Without it a request or
        response lost on the wire would park the caller forever — the
        timeout is what turns a chaos drop into a retryable error.
        """
        correlation = next(self._correlation)
        reply = self.sim.event()
        self._pending[correlation] = reply
        if timeout_s is not None:
            def _expire(corr: int = correlation, reply: Event = reply) -> None:
                if self._pending.pop(corr, None) is not None and not reply.triggered:
                    reply.fail(
                        TransportError(f"{self.name}: call {msg_type} to {dst} timed out")
                    )

            # non-daemon on purpose: a parked caller is not in the event
            # queue, so if the expiry did not hold the run open, run()
            # would declare quiescence with the call still outstanding
            # and the timeout would never fire.  On success the expiry
            # is a no-op (the correlation is gone from _pending).
            self.sim.schedule(timeout_s, _expire)
        self.channel.send(
            dst,
            msg_type,
            payload,
            size_bytes,
            headers={
                **(headers or {}),
                "rpc": "request",
                "corr": correlation,
                "reply_to": self.name,
            },
        )
        return reply

    def cast(self, dst: str, msg_type: str, payload: Any, size_bytes: int) -> float:
        """One-way message (no response expected)."""
        return self.channel.send(dst, msg_type, payload, size_bytes)

    # -- dispatch ----------------------------------------------------------------

    def _dispatch_loop(self):
        while True:
            src, message = yield self.channel.receive()
            kind = message.headers.get("rpc")
            if kind == "response":
                self._complete(message)
            elif kind == "request":
                self.sim.process(self._handle_request(src, message))
            else:
                handler = self._handlers.get(message.msg_type)
                if handler is None:
                    continue  # unrouted one-way message; drop
                result = handler(src, message)
                if hasattr(result, "send"):  # generator handler
                    self.sim.process(result)

    def _complete(self, message) -> None:
        correlation = message.headers.get("corr")
        reply = self._pending.pop(correlation, None)
        if reply is not None and not reply.triggered:
            reply.succeed(message.payload)

    def _handle_request(self, src: str, message):
        handler = self._handlers.get(message.msg_type)
        if handler is None:
            return  # unknown RPC; P3S services ignore unroutable requests
        result = handler(src, message)
        if hasattr(result, "send"):  # generator handler: run inside this process
            result = yield self.sim.process(result)
        payload, size_bytes = result
        self.channel.send(
            message.headers.get("reply_to", src),
            message.msg_type + ":reply",
            payload,
            size_bytes,
            headers={"rpc": "response", "corr": message.headers.get("corr")},
        )
