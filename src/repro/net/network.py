"""Simulated network: hosts, egress bandwidth, latency, a wire trace.

The model matches the paper's performance analysis (§6.2): sending a
message of size ``m`` from one node to another costs a *serialization
time* ``ser(m) = m/ℬ`` on the sender's egress interface (messages queue
behind each other — this is exactly how the DS and RS become bottlenecks
in the paper's throughput model) plus a *fixed latency* ``ℓ``.

Per-destination bandwidth overrides reproduce the paper's topology where
the DS→RS hop is a 100 Mbps LAN while client links run at 10 Mbps.

Every transmission is appended to :attr:`Network.trace` — the
*eavesdropper's view*: source, destination, size and a coarse wire label
(never plaintext content).  The privacy analysis consumes this trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import RoutingError
from ..obs import profile as obs
from .simulator import Simulator, Store

__all__ = ["Message", "Host", "Network", "WireRecord"]

DEFAULT_BANDWIDTH_BPS = 10_000_000  # 10 Mbps — Table 1
DEFAULT_LATENCY_S = 0.045  # 45 ms — Table 1


@dataclass
class Message:
    """One application message on the wire.

    ``payload`` is an arbitrary Python object (already-encrypted bytes in
    P3S); ``size_bytes`` is the *wire* size used for serialization-time
    accounting; ``wire_label`` is what an eavesdropper could tell about
    the frame (e.g. ``"tls"``), never its content.
    """

    msg_type: str
    payload: Any
    size_bytes: int
    src: str = ""
    dst: str = ""
    wire_label: str = "tls"
    headers: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class WireRecord:
    """One eavesdropper-visible transmission."""

    time: float
    src: str
    dst: str
    size_bytes: int
    wire_label: str


class Host:
    """A network endpoint with a bandwidth-limited egress interface."""

    def __init__(self, network: "Network", name: str, bandwidth_bps: float):
        self.network = network
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.inbox: Store = network.sim.store()
        self._egress_free_at = 0.0
        # per-destination overrides (e.g. the DS→RS LAN hop)
        self._link_bandwidth: dict[str, float] = {}
        self._link_latency: dict[str, float] = {}
        self.bytes_sent = 0
        self.bytes_received = 0

    def set_link_bandwidth(self, dst: str, bandwidth_bps: float) -> None:
        self._link_bandwidth[dst] = bandwidth_bps

    def link_bandwidth(self, dst: str) -> float:
        return self._link_bandwidth.get(dst, self.bandwidth_bps)

    def set_link_latency(self, dst: str, latency_s: float) -> None:
        self._link_latency[dst] = latency_s

    def link_latency(self, dst: str) -> float:
        return self._link_latency.get(dst, self.network.latency_s)

    def send(self, dst: str, message: Message) -> float:
        """Queue ``message`` for transmission; returns predicted arrival time."""
        return self.network.transmit(self, dst, message)

    def receive(self):
        """Event yielding the next ``(src, Message)`` pair."""
        return self.inbox.get()


class Network:
    """All hosts plus the transmission logic and the eavesdropper trace."""

    def __init__(
        self,
        sim: Simulator,
        default_bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        latency_s: float = DEFAULT_LATENCY_S,
    ):
        self.sim = sim
        self.default_bandwidth_bps = default_bandwidth_bps
        self.latency_s = latency_s
        self.hosts: dict[str, Host] = {}
        self.trace: list[WireRecord] = []
        self._drop_filter: Callable[[str, str, Message], bool] | None = None
        self._fault_injector: Callable[[str, str, Message, float], list[float]] | None = None

    def add_host(self, name: str, bandwidth_bps: float | None = None) -> Host:
        if name in self.hosts:
            raise RoutingError(f"duplicate host name {name!r}")
        host = Host(self, name, bandwidth_bps or self.default_bandwidth_bps)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise RoutingError(f"unknown host {name!r}") from None

    def set_drop_filter(self, predicate: Callable[[str, str, Message], bool] | None) -> None:
        """Failure injection: drop transmissions for which ``predicate`` is true."""
        self._drop_filter = predicate

    def set_fault_injector(
        self, injector: Callable[[str, str, Message, float], list[float]] | None
    ) -> None:
        """Chaos seam (see :mod:`repro.chaos`): rewrite delivery scheduling.

        The injector is consulted once per transmission with
        ``(src, dst, message, base_delay)`` and returns the list of
        delivery delays for this frame: ``[base_delay]`` passes it
        through untouched, ``[]`` drops it on the wire, a larger delay
        holds it back (delay/reorder), and multiple entries deliver
        duplicate copies.  Serialization, the wire trace, and byte
        accounting on the sender are unaffected — faults happen *after*
        the frame left the egress interface, exactly where a lossy
        network would lose it.
        """
        self._fault_injector = injector

    def transmit(self, src: Host, dst_name: str, message: Message) -> float:
        """Serialize on ``src``'s egress, then deliver after the fixed latency.

        Returns the arrival time (even for dropped messages, for symmetry).
        """
        dst = self.host(dst_name)
        message.src = src.name
        message.dst = dst_name
        bandwidth = src.link_bandwidth(dst_name)
        serialization = (message.size_bytes * 8) / bandwidth
        start = max(self.sim.now, src._egress_free_at)
        tx_done = start + serialization
        src._egress_free_at = tx_done
        arrival = tx_done + src.link_latency(dst_name)
        src.bytes_sent += message.size_bytes
        self.trace.append(
            WireRecord(self.sim.now, src.name, dst_name, message.size_bytes, message.wire_label)
        )
        active = obs.active()
        if active is not None:
            active.metrics.inc(
                "net.bytes", message.size_bytes, src=src.name, dst=dst_name
            )
            active.metrics.inc("net.messages", 1, src=src.name, dst=dst_name)
            if start > self.sim.now:
                # time this frame waits behind earlier frames on the
                # sender's egress — the DS/RS bottleneck signal
                active.metrics.observe(
                    "net.egress_wait_s", start - self.sim.now, host=src.name
                )
        if self._drop_filter is not None and self._drop_filter(src.name, dst_name, message):
            return arrival  # silently lost on the wire
        base_delay = arrival - self.sim.now
        if self._fault_injector is None:
            delays = (base_delay,)
        else:
            delays = self._fault_injector(src.name, dst_name, message, base_delay)
        for delay in delays:
            self._schedule_delivery(src.name, dst, message, delay)
        return arrival

    def _schedule_delivery(self, src_name: str, dst: Host, message: Message, delay: float) -> None:
        def deliver() -> None:
            dst.bytes_received += message.size_bytes
            active = obs.active()
            if active is not None:
                active.metrics.observe(
                    "net.inbox_depth", len(dst.inbox), host=dst.name
                )
            dst.inbox.put((src_name, message))

        self.sim.schedule(delay, deliver)
