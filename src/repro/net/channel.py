"""TLS-like secure channels over the simulated network.

The paper: "The DS sets up TLS tunnels to subscribers and publishers"
(§4.1) and "Publishers and subscribers interact with the DS over TLS"
(§5).  A :class:`SecureChannelLayer` on a host models exactly the
properties P3S relies on:

* **confidentiality/integrity on the wire** — eavesdroppers see only
  endpoints and sizes (the :class:`~repro.net.network.Network` trace
  records a ``"tls"`` wire label, never content);
* **per-record overhead** — a constant :data:`TLS_RECORD_OVERHEAD` bytes
  are added to every message's wire size;
* **loss detection** — "because of TLS and the request-response nature of
  P3S messages, participants can detect if network failures cause message
  loss" (§6.1): sequence numbers per peer let the receiver detect gaps.

Cryptographic handshakes are not re-simulated — the endpoints are
authenticated out of band by the ARA-issued contact information, and the
actual record protection here is *modeled* (contents already ride inside
the simulator as Python objects; P3S's own application-layer encryption
is real).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ChannelClosedError, MessageLossError
from .network import Host, Message

__all__ = ["SecureChannelLayer", "TLS_RECORD_OVERHEAD"]

TLS_RECORD_OVERHEAD = 29  # TLS 1.2 GCM record overhead: 8 seq + 16 tag + 5 header


@dataclass
class _PeerState:
    send_seq: int = 0
    recv_seq: int = 0
    gaps_detected: int = 0


class SecureChannelLayer:
    """Sequenced, overhead-accounted messaging endpoint for one host.

    ``strict=True`` turns detected sequence gaps into
    :class:`~repro.errors.MessageLossError` (the live substrate's
    behaviour — a gap on an ordered stream means records were dropped);
    the default keeps the paper's application-level model of counting
    gaps and letting the request/response layer retry.
    """

    def __init__(self, host: Host, strict: bool = False):
        self.host = host
        self.strict = strict
        self._peers: dict[str, _PeerState] = {}
        self._closed = False

    def close(self) -> None:
        self._closed = True

    def _peer(self, name: str) -> _PeerState:
        if name not in self._peers:
            self._peers[name] = _PeerState()
        return self._peers[name]

    def send(
        self,
        dst: str,
        msg_type: str,
        payload: Any,
        size_bytes: int,
        headers: dict[str, Any] | None = None,
    ) -> float:
        """Send one protected record; returns predicted arrival time."""
        if self._closed:
            raise ChannelClosedError(f"channel layer on {self.host.name} is closed")
        state = self._peer(dst)
        message = Message(
            msg_type=msg_type,
            payload=payload,
            size_bytes=size_bytes + TLS_RECORD_OVERHEAD,
            wire_label="tls",
            headers={**(headers or {}), "seq": state.send_seq},
        )
        state.send_seq += 1
        return self.host.send(dst, message)

    def receive(self):
        """Event yielding ``(src, Message)``; updates loss-detection state."""
        event = self.host.receive()
        event.add_callback(self._on_receive)
        return event

    def _on_receive(self, event) -> None:
        if event.failure is not None:
            return
        src, message = event.value
        state = self._peer(src)
        seq = message.headers.get("seq")
        if seq is not None:
            expected = state.recv_seq
            if seq > expected:
                state.gaps_detected += seq - expected
            state.recv_seq = max(state.recv_seq, seq + 1)
            if self.strict and seq > expected:
                raise MessageLossError(
                    f"{self.host.name}: sequence gap from {src}: "
                    f"expected {expected}, got {seq}"
                )

    def gaps_detected(self, peer: str) -> int:
        """Messages from ``peer`` known lost (application-level loss detection)."""
        return self._peer(peer).gaps_detected
