"""The substrate-independent transport contract.

P3S components speak a small request/response + one-way messaging
vocabulary: ``serve`` a message type, ``call`` a peer and wait for the
reply, ``cast`` a one-way frame.  Two substrates implement it:

* :class:`repro.net.rpc.RpcEndpoint` — the discrete-event simulator,
  where ``call`` returns a simulator :class:`~repro.net.simulator.Event`
  and time is modeled;
* :class:`repro.live.rpc.LiveRpcEndpoint` — real asyncio TCP services,
  where ``call`` returns an awaitable and time is wall-clock.

Handlers on both substrates receive ``(src, message)`` where ``message``
exposes ``msg_type``, ``payload`` and ``headers`` — the simulator hands
its :class:`~repro.net.network.Message`, the live stack hands a
:class:`TransportMessage` decoded from the wire frame.  Request handlers
return ``(payload, size_bytes)``; the substrate frames and returns the
response.  Everything above this line — DS, RS, PBE-TS, anonymizer,
publisher and subscriber protocol logic — is written against this
contract and runs unchanged on either side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

__all__ = ["TransportMessage", "Endpoint"]


@dataclass
class TransportMessage:
    """One delivered frame, as seen by a handler.

    Structurally compatible with :class:`repro.net.network.Message`
    (``msg_type`` / ``payload`` / ``headers`` / ``src``) so handler
    logic written for the simulator reads live frames unchanged.
    """

    msg_type: str
    payload: Any
    src: str = ""
    headers: dict[str, Any] = field(default_factory=dict)


@runtime_checkable
class Endpoint(Protocol):
    """What a P3S component needs from its messaging substrate."""

    @property
    def name(self) -> str:  # pragma: no cover - protocol
        ...

    def serve(self, msg_type: str, handler: Callable) -> None:
        """Register a handler for ``msg_type`` frames."""
        ...  # pragma: no cover - protocol

    def call(
        self,
        dst: str,
        msg_type: str,
        payload: Any,
        size_bytes: int,
        headers: dict[str, Any] | None = None,
    ):
        """Request/response: returns the substrate's future-like value
        (simulator event or awaitable) that resolves with the reply."""
        ...  # pragma: no cover - protocol

    def cast(self, dst: str, msg_type: str, payload: Any, size_bytes: int):
        """One-way frame; no response expected."""
        ...  # pragma: no cover - protocol
