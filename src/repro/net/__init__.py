"""Discrete-event simulation substrate: event loop, network, channels, RPC.

The physical testbed of the paper (hosts on 10/100 Mbps links with 45 ms
latency) is reproduced as a deterministic simulation; message sizes come
from real serialized ciphertexts, so serialization times are
byte-accurate.
"""

from .simulator import Event, Process, Simulator, Store, all_of
from .network import DEFAULT_BANDWIDTH_BPS, DEFAULT_LATENCY_S, Host, Message, Network, WireRecord
from .channel import SecureChannelLayer, TLS_RECORD_OVERHEAD
from .rpc import RpcEndpoint
from .transport import Endpoint, TransportMessage

__all__ = [
    "Endpoint",
    "TransportMessage",
    "Simulator",
    "Event",
    "Process",
    "Store",
    "all_of",
    "Network",
    "Host",
    "Message",
    "WireRecord",
    "DEFAULT_BANDWIDTH_BPS",
    "DEFAULT_LATENCY_S",
    "SecureChannelLayer",
    "TLS_RECORD_OVERHEAD",
    "RpcEndpoint",
]
