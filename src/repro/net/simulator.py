"""A deterministic discrete-event simulator (generator-based processes).

This is the execution substrate for every end-to-end experiment: the P3S
deployment, the mini-JMS broker, and the baseline all run as simulator
processes, so wall-clock-independent latency/throughput numbers come out
deterministic and reproducible.

Model (deliberately SimPy-like, implemented from scratch):

* :class:`Simulator` owns the clock and a heap of scheduled callbacks.
* A *process* is a generator that yields :class:`Event` objects; the
  simulator resumes it with the event's value when the event fires.
* :class:`Event` is a one-shot future; :meth:`Simulator.timeout` makes a
  delay event; :class:`Store` is an unbounded FIFO whose ``get`` returns
  an event.
* :func:`all_of` joins several events.

Example::

    sim = Simulator()

    def worker():
        yield sim.timeout(5.0)
        return "done"

    process = sim.process(worker())
    sim.run()
    assert sim.now == 5.0 and process.value == "done"
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable

from ..errors import NetworkError

__all__ = ["Simulator", "Event", "Process", "Store", "all_of"]


class Event:
    """A one-shot future; processes wait on it by yielding it."""

    __slots__ = ("sim", "triggered", "value", "_callbacks", "failure")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self.failure: BaseException | None = None
        self._callbacks: list[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event; waiting processes resume on the next tick."""
        if self.triggered:
            raise NetworkError("event already triggered")
        self.triggered = True
        self.value = value
        self.sim._schedule_now(self._dispatch)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception (raised inside waiters)."""
        if self.triggered:
            raise NetworkError("event already triggered")
        self.triggered = True
        self.failure = exception
        self.sim._schedule_now(self._dispatch)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.sim._schedule_now(lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _mark_and_dispatch(self, value: Any) -> None:
        # Timeout events fire exactly at their scheduled tick, without the
        # extra zero-delay hop that succeed() would add.
        self.triggered = True
        self.value = value
        self._dispatch()


class Process(Event):
    """A running generator; also an event that fires when it returns."""

    __slots__ = ("_generator",)

    def __init__(self, sim: "Simulator", generator: Generator):
        super().__init__(sim)
        self._generator = generator
        sim._schedule_now(lambda: self._step(None, None))

    def _step(self, value: Any, failure: BaseException | None) -> None:
        try:
            if failure is not None:
                target = self._generator.throw(failure)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise NetworkError(
                f"process yielded {type(target).__name__}; processes must yield Event objects"
            )
        target.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        self._step(event.value, event.failure)


class Store:
    """Unbounded FIFO connecting producers and consumers."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


def all_of(sim: "Simulator", events: Iterable[Event]) -> Event:
    """An event that fires (with the list of values) when every input has."""
    events = list(events)
    joined = Event(sim)
    remaining = len(events)
    values: list[Any] = [None] * remaining
    if remaining == 0:
        return joined.succeed([])

    def make_callback(index: int):
        def on_fire(event: Event) -> None:
            nonlocal remaining
            if event.failure is not None and not joined.triggered:
                joined.fail(event.failure)
                return
            values[index] = event.value
            remaining -= 1
            if remaining == 0 and not joined.triggered:
                joined.succeed(values)

        return on_fire

    for index, event in enumerate(events):
        event.add_callback(make_callback(index))
    return joined


class Simulator:
    """The event loop: a clock plus a priority queue of callbacks."""

    def __init__(self):
        self.now = 0.0
        self._queue: list[tuple[float, int, bool, Callable[[], None]]] = []
        self._sequence = 0
        self._non_daemon_count = 0

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None], daemon: bool = False) -> None:
        """Schedule ``callback`` after ``delay``.

        ``daemon`` events (periodic housekeeping such as the RS garbage
        collector) do not keep :meth:`run` alive: a run without ``until``
        stops once only daemon events remain.
        """
        if delay < 0:
            raise NetworkError(f"cannot schedule {delay}s in the past")
        heapq.heappush(self._queue, (self.now + delay, self._sequence, daemon, callback))
        self._sequence += 1
        if not daemon:
            self._non_daemon_count += 1

    def _schedule_now(self, callback: Callable[[], None]) -> None:
        self.schedule(0.0, callback)

    def timeout(self, delay: float, value: Any = None, daemon: bool = False) -> Event:
        event = Event(self)
        self.schedule(delay, lambda: event._mark_and_dispatch(value), daemon=daemon)
        return event

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def event(self) -> Event:
        return Event(self)

    def store(self) -> Store:
        return Store(self)

    # -- execution ----------------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Execute events in time order.

        With ``until`` set, runs every event (daemon or not) scheduled up
        to that time and leaves the clock there.  Without it, runs until
        only daemon events remain (quiescence).
        """
        while self._queue:
            if until is None and self._non_daemon_count == 0:
                return
            time, _, daemon, callback = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            if not daemon:
                self._non_daemon_count -= 1
            self.now = time
            callback()
        if until is not None:
            self.now = max(self.now, until)

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def quiescent(self) -> bool:
        """True when only daemon events remain — ``run()`` would return.

        The chaos liveness invariant keys off this: after the fault
        window closes and the system runs to quiescence, no protocol
        process may still be parked on an event that will never fire.
        """
        return self._non_daemon_count == 0
