"""The non-private centralized pub-sub baseline (paper §6.2)."""

from .broker import BaselineBroker, BaselinePublication
from .system import BaselineDelivery, BaselinePublisher, BaselineSubscriber, BaselineSystem

__all__ = [
    "BaselineBroker",
    "BaselinePublication",
    "BaselineSystem",
    "BaselinePublisher",
    "BaselineSubscriber",
    "BaselineDelivery",
]
