"""Orchestration for the baseline pub-sub system (mirror of P3SSystem)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..core.config import ComputeTimings
from ..net.channel import SecureChannelLayer
from ..net.network import Network
from ..net.simulator import Simulator
from ..obs import profile as obs_profile
from ..pbe.schema import Interest
from .broker import MSG_DELIVER, MSG_PUBLISH, MSG_SUBSCRIBE, BaselineBroker, BaselinePublication

__all__ = ["BaselineSystem", "BaselineSubscriber", "BaselinePublisher", "BaselineDelivery"]


@dataclass(frozen=True)
class BaselineDelivery:
    publication_id: int
    payload: bytes
    delivered_at: float


@dataclass
class _SubscriberState:
    name: str
    channel: SecureChannelLayer
    deliveries: list[BaselineDelivery] = field(default_factory=list)


class BaselineSubscriber:
    """Registers plaintext interests; receives matching payloads."""

    def __init__(self, system: "BaselineSystem", name: str):
        self.system = system
        self.name = name
        self.channel = SecureChannelLayer(system.network.add_host(name))
        self.deliveries: list[BaselineDelivery] = []
        system.sim.process(self._receive_loop())

    def subscribe(self, interest: Interest) -> None:
        # interest size on the wire: its JSON form
        self.channel.send(
            self.system.broker.name, MSG_SUBSCRIBE, interest, len(interest.to_json())
        )

    def _receive_loop(self):
        while True:
            _, message = yield self.channel.receive()
            if message.msg_type != MSG_DELIVER:
                continue
            publication: BaselinePublication = message.payload
            self.deliveries.append(
                BaselineDelivery(
                    publication_id=publication.publication_id,
                    payload=publication.payload,
                    delivered_at=self.system.sim.now,
                )
            )
            obs_profile.end_span(
                obs_profile.start_span(
                    "deliver",
                    component=self.name,
                    parent=obs_profile.extract(message.headers),
                    publication_id=publication.publication_id,
                    bytes=len(publication.payload),
                )
            )


class BaselinePublisher:
    """Submits plaintext (metadata, payload) to the broker."""

    _ids = itertools.count(1)

    def __init__(self, system: "BaselineSystem", name: str):
        self.system = system
        self.name = name
        self.channel = SecureChannelLayer(system.network.add_host(name))
        self.published: list[tuple[int, float]] = []  # (publication_id, submitted_at)

    def publish(self, metadata: dict[str, str], payload: bytes) -> int:
        publication = BaselinePublication(
            publication_id=next(self._ids), metadata=dict(metadata), payload=payload
        )
        self.published.append((publication.publication_id, self.system.sim.now))
        with obs_profile.span(
            "publish",
            component=self.name,
            publication_id=publication.publication_id,
        ) as span:
            self.channel.send(
                self.system.broker.name,
                MSG_PUBLISH,
                publication,
                publication.wire_size,
                headers=obs_profile.inject({}, span),
            )
        return publication.publication_id


class BaselineSystem:
    """A broker plus any number of baseline publishers/subscribers."""

    def __init__(
        self,
        bandwidth_bps: float = 10_000_000,
        latency_s: float = 0.045,
        timings: ComputeTimings | None = None,
        obs=None,
    ):
        self.sim = Simulator()
        self.obs = obs
        if self.obs is not None:
            self.obs.bind_clock(lambda: self.sim.now)
            self.obs.install()
        self.network = Network(self.sim, default_bandwidth_bps=bandwidth_bps, latency_s=latency_s)
        self.timings = timings or ComputeTimings()
        self.broker = BaselineBroker(self.network.add_host("broker"), self.timings)
        self.broker.start()
        self.publishers: dict[str, BaselinePublisher] = {}
        self.subscribers: dict[str, BaselineSubscriber] = {}

    def add_publisher(self, name: str) -> BaselinePublisher:
        publisher = BaselinePublisher(self, name)
        self.publishers[name] = publisher
        return publisher

    def add_subscriber(self, name: str) -> BaselineSubscriber:
        subscriber = BaselineSubscriber(self, name)
        self.subscribers[name] = subscriber
        return subscriber

    def run(self, until: float | None = None) -> None:
        self.sim.run(until=until)

    def deliveries_for(self, publication_id: int) -> list[BaselineDelivery]:
        return [
            delivery
            for subscriber in self.subscribers.values()
            for delivery in subscriber.deliveries
            if delivery.publication_id == publication_id
        ]
