"""The non-private baseline: a standard centralized pub-sub broker.

Paper §6.2: "We used a standard centralized pub-sub system as baseline,
where publishers submit their payload and metadata (such as a topic) to a
central broker, subscribers register subscriptions with the broker, and
the broker sends the payload whose metadata matches with a subscription
to the subscriber."

The broker sees everything (that is the point of the comparison):
plaintext metadata, plaintext subscriber interests, and who receives
what.  Links still run over the TLS-like channel layer ("the baseline
system may use standard cryptography (e.g., SSL) ... insignificant to
impact the processing and transmission times").

Matching cost follows the paper's model: each publication is tested
against *every* registered subscription at
:attr:`~repro.core.config.ComputeTimings.baseline_match` (~0.05 ms)
apiece.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import ComputeTimings
from ..net.channel import SecureChannelLayer
from ..net.network import Host
from ..obs import profile as obs
from ..pbe.schema import Interest

__all__ = ["BaselineBroker", "BaselinePublication"]

MSG_SUBSCRIBE = "base.subscribe"
MSG_PUBLISH = "base.publish"
MSG_DELIVER = "base.deliver"


@dataclass
class BaselinePublication:
    """A publish frame: plaintext metadata + payload, visible to the broker."""

    publication_id: int
    metadata: dict[str, str]
    payload: bytes

    @property
    def wire_size(self) -> int:
        metadata_size = sum(len(k) + len(v) + 2 for k, v in self.metadata.items())
        return metadata_size + len(self.payload) + 16


@dataclass
class _Subscription:
    subscriber: str
    interest: Interest


class BaselineBroker:
    """Central broker process: match in the clear, deliver to matchers."""

    def __init__(self, host: Host, timings: ComputeTimings):
        self.host = host
        self.timings = timings
        self.channel = SecureChannelLayer(host)
        self.sim = host.network.sim
        self.subscriptions: list[_Subscription] = []
        self.published_count = 0
        self.delivered_count = 0
        self._started = False

    @property
    def name(self) -> str:
        return self.host.name

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.process(self._serve())

    def _serve(self):
        while True:
            src, message = yield self.channel.receive()
            if message.msg_type == MSG_SUBSCRIBE:
                self.subscriptions.append(_Subscription(src, message.payload))
            elif message.msg_type == MSG_PUBLISH:
                self.published_count += 1
                yield from self._match_and_deliver(message)

    def _match_and_deliver(self, message):
        publication: BaselinePublication = message.payload
        span = obs.start_span(
            "baseline.match",
            component=self.name,
            parent=obs.extract(message.headers),
            subscriptions=len(self.subscriptions),
        )
        # The broker tests the publication against ALL registered
        # subscriptions (t2 = 0.05ms × N_s in the latency model).
        yield self.sim.timeout(self.timings.baseline_match * max(1, len(self.subscriptions)))
        matched = 0
        for subscription in self.subscriptions:
            if subscription.interest.matches(publication.metadata):
                matched += 1
                self.delivered_count += 1
                self.channel.send(
                    subscription.subscriber,
                    MSG_DELIVER,
                    publication,
                    publication.wire_size,
                    headers=obs.inject({}, span),
                )
        obs.end_span(span, matched=matched)
