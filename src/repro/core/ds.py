"""Dissemination Server (DS): the P3S-extended message broker.

Paper §4.1 and §5: the DS is "implemented by extending the AMQ broker".
It keeps TLS tunnels to publishers and subscribers, receives
PBE-encrypted metadata and CP-ABE-encrypted payloads from publishers,
**fans the encrypted metadata out to every registered subscriber** (the
matching happens at the subscribers — the DS cannot match, which is the
point), and forwards the encrypted payload to the RS for storage.

The DS sees only: ciphertext sizes, per-publisher publication rates, and
who is connected — exactly the §6.1 visibility summary; counters exposing
that view feed the privacy analysis.

Extension (paper §6.2: "this issue can be addressed by reconfiguring the
P3S architecture to use hierarchical dissemination"): the analytic model
in :func:`repro.perf.throughput.p3s_throughput` takes a ``relay_fanout``
parameter that moves the metadata fan-out off the DS egress and onto a
k-ary relay tree; ``benchmarks/bench_ext_hierarchical.py`` quantifies it.
"""

from __future__ import annotations

from collections import defaultdict

from ..mq import messages as frames
from ..mq.broker import Broker
from ..mq.messages import JmsFrame
from ..net.network import Host, Message
from ..obs import profile as obs
from .messages import KIND_METADATA, KIND_PAYLOAD, RPC_STORE, PayloadSubmission

__all__ = ["DisseminationServer"]


class DisseminationServer(Broker):
    """The DS: a topic broker with P3S publication handling grafted on."""

    def __init__(self, host: Host, rs_name: str, metadata_topic: str = "p3s.metadata"):
        super().__init__(host)
        self.rs_name = rs_name
        self.metadata_topic = metadata_topic
        # HBC-observable state (§6.1: "the DS knows the per-publisher
        # publication rate and number of items published by each publisher",
        # and "the size of payloads and the size of encrypted PBE metadata").
        self.publications_by_publisher: dict[str, int] = defaultdict(int)
        self.observed_sizes: list[tuple[str, int]] = []

    def on_publish(self, src: str, frame: JmsFrame) -> None:
        kind = frame.headers.get("p3s-kind")
        if kind == KIND_METADATA:
            self.publications_by_publisher[src] += 1
            self.observed_sizes.append((KIND_METADATA, frame.body_size))
            # forward PBE-encrypted metadata to ALL registered subscribers
            with obs.span(
                "ds.fan_out",
                component=self.name,
                parent=obs.extract(frame.headers),
                subscribers=self.registered_subscriber_count,
            ) as span:
                # re-parent the propagated context so each subscriber's
                # match span hangs off this fan-out hop
                obs.inject(frame.headers, span)
                self.fan_out(self.metadata_topic, frame)
        elif kind == KIND_PAYLOAD:
            self.observed_sizes.append((KIND_PAYLOAD, frame.body_size))
            self._forward_to_rs(frame)
        else:
            # plain JMS traffic keeps working unchanged (§5: the top-level
            # JMS interface is retained)
            super().on_publish(src, frame)

    def _forward_to_rs(self, frame: JmsFrame) -> None:
        submission: PayloadSubmission = frame.body
        with obs.span(
            "ds.forward_rs", component=self.name, parent=obs.extract(frame.headers)
        ) as span:
            self.channel.send(
                self.rs_name,
                RPC_STORE,
                submission,
                submission.wire_size,
                headers=obs.inject({}, span),
            )

    @property
    def registered_subscriber_count(self) -> int:
        return self.subscriber_count(self.metadata_topic)
