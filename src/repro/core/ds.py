"""Dissemination Server (DS): the P3S-extended message broker.

Paper §4.1 and §5: the DS is "implemented by extending the AMQ broker".
It keeps TLS tunnels to publishers and subscribers, receives
PBE-encrypted metadata and CP-ABE-encrypted payloads from publishers,
**fans the encrypted metadata out to every registered subscriber** (the
matching happens at the subscribers — the DS cannot match, which is the
point), and forwards the encrypted payload to the RS for storage.

The DS sees only: ciphertext sizes, per-publisher publication rates, and
who is connected — exactly the §6.1 visibility summary; counters exposing
that view feed the privacy analysis.

Extension (paper §6.2: "this issue can be addressed by reconfiguring the
P3S architecture to use hierarchical dissemination"): the analytic model
in :func:`repro.perf.throughput.p3s_throughput` takes a ``relay_fanout``
parameter that moves the metadata fan-out off the DS egress and onto a
k-ary relay tree; ``benchmarks/bench_ext_hierarchical.py`` quantifies it.

Second extension — **delegated matching** (opt-in via
:attr:`P3SConfig.delegated_matching`): subscribers may hand their
serialized PBE tokens to the DS (``KIND_TOKEN_REG`` frames), which then
evaluates each publication against the registered tokens through a
:class:`repro.par.MatchPool` and narrows the fan-out to the matching
subscribers (subscribers with no registered tokens still get the full
broadcast).  This deliberately trades interest privacy at the DS — the
DS learns which subscribers match which publications, the exposure the
baseline architecture exists to avoid — for fan-out bandwidth, and is
the natural host for the parallel matching hot path.  Delivery *sets*
are unchanged: matched subscribers re-run the same local match, so a
delegated deployment delivers byte-identical payloads to the broadcast
one (``tests/par/test_equivalence.py``).
"""

from __future__ import annotations

from collections import defaultdict

from ..mq import messages as frames
from ..mq.broker import Broker
from ..mq.messages import JmsFrame
from ..net.network import Host, Message
from ..obs import profile as obs
from ..par import MatchPool
from ..store import MemoryEngine, StorageEngine
from ..store.codec import (
    NS_SUBS,
    NS_TOKENS,
    decode_sub_key,
    decode_token,
    encode_token,
    sub_key,
    token_key,
)
from .config import ComputeTimings
from .messages import (
    KIND_METADATA,
    KIND_PAYLOAD,
    KIND_TOKEN_REG,
    KIND_TOKEN_UNREG,
    RPC_STORE,
    PayloadSubmission,
)

__all__ = ["DisseminationServer"]


class DisseminationServer(Broker):
    """The DS: a topic broker with P3S publication handling grafted on.

    ``group``/``timings``/``match_workers`` enable delegated matching;
    without a ``group`` the DS ignores token registrations and always
    broadcasts (the baseline architecture).
    """

    def __init__(
        self,
        host: Host,
        rs_name: str,
        metadata_topic: str = "p3s.metadata",
        group=None,
        timings: ComputeTimings | None = None,
        match_workers: int | None = None,
        store: StorageEngine | None = None,
        cluster=None,
    ):
        super().__init__(host)
        self.rs_name = rs_name
        # repro.cluster.ClusterMap (shared by reference through the
        # ServiceDirectory): with one attached, payloads forward to the
        # GUID's full RS replica set instead of the single rs_name
        self.cluster = cluster
        self.metadata_topic = metadata_topic
        self.group = group
        self.timings = timings
        self.match_workers = match_workers
        # Delegated-matching registry: (subscriber name, serialized token).
        # In-process state is lost on crash, like subscriptions; both
        # write through to the store engine, so with a durable backend
        # restart() recovers them instead of waiting for re-registration.
        self.store = store if store is not None else MemoryEngine()
        self.registered_tokens: list[tuple[str, bytes]] = []
        self._match_pool: MatchPool | None = None
        self.recovered_registrations = 0
        if self.store.durable:
            self.recovered_registrations = self._recover_registrations()
        # HBC-observable state (§6.1: "the DS knows the per-publisher
        # publication rate and number of items published by each publisher",
        # and "the size of payloads and the size of encrypted PBE metadata").
        self.publications_by_publisher: dict[str, int] = defaultdict(int)
        self.observed_sizes: list[tuple[str, int]] = []

    def on_publish(self, src: str, frame: JmsFrame) -> None:
        kind = frame.headers.get("p3s-kind")
        if kind == KIND_METADATA:
            self.publications_by_publisher[src] += 1
            self.observed_sizes.append((KIND_METADATA, frame.body_size))
            if self.registered_tokens and self.group is not None:
                self.sim.process(self._delegated_fan_out(frame))
            else:
                # forward PBE-encrypted metadata to ALL registered subscribers
                with obs.span(
                    "ds.fan_out",
                    component=self.name,
                    parent=obs.extract(frame.headers),
                    subscribers=self.registered_subscriber_count,
                ) as span:
                    # re-parent the propagated context so each subscriber's
                    # match span hangs off this fan-out hop
                    obs.inject(frame.headers, span)
                    self.fan_out(self.metadata_topic, frame)
        elif kind == KIND_PAYLOAD:
            self.observed_sizes.append((KIND_PAYLOAD, frame.body_size))
            self._forward_to_rs(frame)
        elif kind == KIND_TOKEN_REG:
            self._register_token(src, frame.body)
        elif kind == KIND_TOKEN_UNREG:
            self._unregister_token(src, frame.body)
        else:
            # plain JMS traffic keeps working unchanged (§5: the top-level
            # JMS interface is retained)
            super().on_publish(src, frame)

    # -- durable registrations -------------------------------------------------

    def _recover_registrations(self) -> int:
        """Reload token registrations and subscriptions from the store.

        Registration order is not persisted (engine iteration order is
        key order); delivery sets do not depend on it — matched fan-out
        iterates the subscription table, and a re-registering client
        lands in the same slots it would have re-earned.
        """
        recovered = 0
        for _key, value in self.store.items(NS_TOKENS):
            entry = decode_token(value)
            if entry not in self.registered_tokens:
                self.registered_tokens.append(entry)
                recovered += 1
        for key, _value in self.store.items(NS_SUBS):
            topic, client = decode_sub_key(key)
            if client not in self.subscriptions[topic]:
                self.subscriptions[topic].append(client)
                recovered += 1
        return recovered

    # -- delegated matching ---------------------------------------------------

    def _register_token(self, src: str, token_bytes: bytes) -> None:
        entry = (src, bytes(token_bytes))
        if entry not in self.registered_tokens:
            self.registered_tokens.append(entry)
            self.store.put(
                NS_TOKENS, token_key(src, entry[1]), encode_token(src, entry[1])
            )
            obs.record_op("ds.token_reg")

    def _unregister_token(self, src: str, token_bytes: bytes) -> None:
        entry = (src, bytes(token_bytes))
        if entry in self.registered_tokens:
            self.registered_tokens.remove(entry)
            self.store.delete(NS_TOKENS, token_key(src, entry[1]))
            obs.record_op("ds.token_unreg")

    # -- durable subscription table --------------------------------------------

    def _subscribe(self, client: str, topic: str) -> None:
        super()._subscribe(client, topic)
        self.store.put(NS_SUBS, sub_key(topic, client), b"")

    def _unsubscribe(self, client: str, topic: str) -> None:
        super()._unsubscribe(client, topic)
        self.store.delete(NS_SUBS, sub_key(topic, client))

    @property
    def match_pool(self) -> MatchPool:
        if self._match_pool is None:
            self._match_pool = MatchPool(self.group, workers=self.match_workers)
        return self._match_pool

    def _delegated_fan_out(self, frame: JmsFrame):
        """Match the publication against registered tokens, then fan out
        only to matching (or token-less) subscribers, in subscription
        order.  Simulated compute time is the pool makespan: the token
        batch split across ``effective_workers`` lanes at ``pbe_match``
        per evaluation."""
        tokens = list(self.registered_tokens)
        envelope = frame.body
        span = obs.start_span(
            "ds.delegated_fan_out",
            component=self.name,
            parent=obs.extract(frame.headers),
            tokens=len(tokens),
        )
        pool = self.match_pool
        effective_workers = max(1, pool.workers)
        lanes = -(-len(tokens) // effective_workers)  # ceil
        if self.timings is not None:
            yield self.sim.timeout(lanes * self.timings.pbe_match)
        with obs.attach(span):
            matched = pool.match_indices(
                envelope.hve_bytes, [token for _, token in tokens]
            )
        matched_names = {tokens[index][0] for index in matched}
        token_holders = {name for name, _ in tokens}
        delivery = JmsFrame(
            topic=self.metadata_topic,
            body=frame.body,
            body_size=frame.body_size,
            message_id=next(self._message_ids),
            headers=self.delivery_headers(frame),
        )
        obs.inject(delivery.headers, span)
        skipped = 0
        for client in self.subscriptions[self.metadata_topic]:
            # token holders are pre-filtered; everyone else still gets the
            # baseline broadcast
            if client in token_holders and client not in matched_names:
                skipped += 1
                continue
            self.deliver_to(client, delivery)
        obs.record_op("ds.delegated_match")
        if skipped:
            obs.record_op("ds.fanout_skipped", skipped)
        obs.end_span(span, matched=len(matched_names), skipped=skipped)

    def close_match_pool(self) -> None:
        if self._match_pool is not None:
            self._match_pool.close()
            self._match_pool = None

    def crash(self) -> None:
        """In-process registrations die with the process; a durable
        store engine (the "disk") keeps its copy for restart()."""
        super().crash()
        self.registered_tokens.clear()
        self.close_match_pool()

    def restart(self) -> None:
        """With a durable store the DS does *not* need to wait for
        re-registration (the §6.1 restart cost the persistence layer
        removes); with the memory engine the old semantics hold."""
        super().restart()
        if self.store.durable:
            self.recovered_registrations = self._recover_registrations()

    def _rs_targets(self, guid: bytes) -> tuple[str, ...]:
        """The RS shards this payload is written to (the replica set)."""
        if self.cluster is None or len(self.cluster.rs_names) <= 1:
            return (self.rs_name,)
        return self.cluster.rs_replicas(guid)

    def _forward_to_rs(self, frame: JmsFrame) -> None:
        submission: PayloadSubmission = frame.body
        targets = self._rs_targets(submission.guid)
        with obs.span(
            "ds.forward_rs",
            component=self.name,
            parent=obs.extract(frame.headers),
            replicas=len(targets),
        ) as span:
            for rs_name in targets:
                self.channel.send(
                    rs_name,
                    RPC_STORE,
                    submission,
                    submission.wire_size,
                    headers=obs.inject({}, span),
                )

    @property
    def registered_subscriber_count(self) -> int:
        return self.subscriber_count(self.metadata_topic)
