"""Attribute-Based Access Control and Registration Authority (ARA).

Paper §4.1/§4.3: the ARA "acts as the certification authority, and only
interacts with other components during registration".  It owns the CP-ABE
master key and the metadata schema, distributes the PBE public parameters
and service contact information, issues role certificates, and hands each
subscriber a CP-ABE secret key SK_C for its attributes.

The ARA is an *offline* trust root here (direct method calls rather than
simulated network traffic): the paper excludes it from both the privacy
analysis ("the ARA, which we assume to be a trusted certification
authority, is not part of the analysis", §6.1) and the performance models
(registration is not on the publish path).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from ..abe.bsw07 import CPABEMasterKey, CPABEPublicKey, CPABESecretKey
from ..abe.hybrid import HybridCPABE
from ..crypto.group import PairingGroup
from ..crypto.pke import PKEPublicKey
from ..crypto.signing import Certificate, SigningKeyPair, VerifyKey
from ..errors import RegistrationError
from ..pbe.hve import HVE, HVEMasterKey, HVEPublicKey
from ..pbe.schema import MetadataSchema

__all__ = [
    "ServiceDirectory",
    "SubscriberCredentials",
    "PublisherCredentials",
    "RegistrationAuthority",
    "SERVICE_KEY_CONTEXT",
]

# Domain-separation prefix for live-channel service-key signatures.
SERVICE_KEY_CONTEXT = b"p3s-live-service-key-v1:"


@dataclass
class ServiceDirectory:
    """Contact information + public keys for the P3S services (§4.3:
    "contact information for the P3S services ... and their public key
    certificates")."""

    ds_name: str = ""
    rs_name: str = ""
    pbe_ts_name: str = ""
    anonymizer_name: str = ""
    rs_public_key: PKEPublicKey | None = None
    pbe_ts_public_key: PKEPublicKey | None = None
    ara_verify_key: VerifyKey | None = None
    # repro.cluster.ClusterMap for sharded deployments, or None for the
    # classic single-DS/single-RS topology.  Credentials embed this
    # directory by reference, so topology changes made through the map
    # (add_ds/add_rs) reach every client without re-registration.
    cluster: object | None = None


@dataclass(frozen=True)
class SubscriberCredentials:
    """Everything Fig. 2 hands to a subscriber."""

    name: str
    schema: MetadataSchema
    directory: ServiceDirectory
    cpabe_secret_key: CPABESecretKey  # SK_C for the client's attributes
    certificate: Certificate  # role = "subscriber"


@dataclass(frozen=True)
class PublisherCredentials:
    """Everything Fig. 2 hands to a publisher."""

    name: str
    schema: MetadataSchema
    directory: ServiceDirectory
    cpabe_public_key: CPABEPublicKey  # PK_C used to encrypt payloads
    hve_public_key: HVEPublicKey  # PBE public parameters
    certificate: Certificate  # role = "publisher"


class RegistrationAuthority:
    """The ARA: trust root and key authority for one P3S deployment."""

    def __init__(self, group: PairingGroup, schema: MetadataSchema):
        self.group = group
        self.schema = schema
        self.directory = ServiceDirectory()
        self._signer = SigningKeyPair(group)
        self.directory.ara_verify_key = self._signer.verify_key

        self._cpabe = HybridCPABE(group)
        self._cpabe_public, self._cpabe_master = self._cpabe.setup()

        self._hve = HVE(group)
        self._hve_public, self._hve_master = self._hve.setup(schema.vector_length)

        self._registered: dict[str, str] = {}  # name -> role
        self._pseudonyms: dict[str, str] = {}  # certificate pseudonym -> name

    # -- service provisioning (deployment time) -----------------------------

    def install_service(
        self, role: str, name: str, public_key: PKEPublicKey | None = None
    ) -> None:
        """Record a service's contact name (and PKE public key if it has one)."""
        if role == "ds":
            self.directory.ds_name = name
        elif role == "rs":
            self.directory.rs_name = name
            self.directory.rs_public_key = public_key
        elif role == "pbe_ts":
            self.directory.pbe_ts_name = name
            self.directory.pbe_ts_public_key = public_key
        elif role == "anonymizer":
            self.directory.anonymizer_name = name
        else:
            raise RegistrationError(f"unknown service role {role!r}")

    def provision_pbe_ts(self) -> tuple[HVEMasterKey, VerifyKey]:
        """Hand the PBE master key + certificate-verification key to the PBE-TS."""
        return self._hve_master, self._signer.verify_key

    def sign_service_key(self, name: str, key_bytes: bytes):
        """Sign a live service's channel key binding (``name ↔ PKE key``).

        The live TCP substrate (:mod:`repro.live`) authenticates servers
        during its channel handshake with exactly this signature: clients
        trust a (name, public key) pair iff it verifies under the ARA's
        verify key — the ARA-issued "public key certificates" of §4.3
        made concrete.
        """
        return self._signer.sign(SERVICE_KEY_CONTEXT + name.encode("utf-8") + key_bytes)

    @property
    def cpabe_public_key(self) -> CPABEPublicKey:
        return self._cpabe_public

    @property
    def hve_public_key(self) -> HVEPublicKey:
        return self._hve_public

    # -- client registration (Fig. 2) -------------------------------------------

    def register_subscriber(
        self, name: str, attributes: set[str], cert_not_after: float | None = None
    ) -> SubscriberCredentials:
        """Register a subscriber with CP-ABE ``attributes`` (its clearances).

        The certificate is issued on a random *pseudonym*, not the name:
        the PBE-TS sees the certificate next to the plaintext predicate
        (Fig. 3), so an identity-bearing certificate would defeat the
        anonymizer and let it form the subscriber↔interest association.
        The ARA (trusted) keeps the pseudonym↔name mapping internally.
        """
        self._check_unregistered(name)
        self._registered[name] = "subscriber"
        pseudonym = f"sub-{secrets.token_hex(8)}"
        self._pseudonyms[pseudonym] = name
        return SubscriberCredentials(
            name=name,
            schema=self.schema,
            directory=self.directory,
            cpabe_secret_key=self._cpabe.keygen(self._cpabe_master, attributes),
            certificate=Certificate.issue(self._signer, pseudonym, "subscriber", cert_not_after),
        )

    def register_publisher(
        self, name: str, cert_not_after: float | None = None
    ) -> PublisherCredentials:
        self._check_unregistered(name)
        self._registered[name] = "publisher"
        return PublisherCredentials(
            name=name,
            schema=self.schema,
            directory=self.directory,
            cpabe_public_key=self._cpabe_public,
            hve_public_key=self._hve_public,
            certificate=Certificate.issue(self._signer, name, "publisher", cert_not_after),
        )

    def _check_unregistered(self, name: str) -> None:
        if name in self._registered:
            raise RegistrationError(f"{name!r} already registered as {self._registered[name]}")

    def registered_role(self, name: str) -> str | None:
        return self._registered.get(name)
