"""Embedded per-subscriber token generation (paper §8 future work).

"One potential approach is to find alternative configurations where
subscriber interest never gets out of the subscriber.  For instance, the
PBE-TS functionality can be embedded in each subscriber instead of being
centralized."

:class:`EmbeddedTokenSource` is that configuration: the ARA provisions
the PBE master key directly into the subscriber's trust boundary (e.g. an
HSM or an enclave in a real deployment), and tokens are minted locally —
the plaintext predicate never crosses the network, and the centralized
PBE-TS's known exposure (§6.1: "the PBE-TS is privy to plaintext
subscriber interest") disappears.  The trade-off is that every subscriber
now holds key material that can mint arbitrary tokens, so this
configuration only fits deployments where subscribers are trusted with
exactly that power (the paper's alternative — 2-party computation — is
future work beyond this reproduction's scope).
"""

from __future__ import annotations

from ..pbe.hve import HVE, HVEMasterKey, HVEToken
from ..pbe.schema import Interest, MetadataSchema

__all__ = ["EmbeddedTokenSource"]


class EmbeddedTokenSource:
    """Local token minting for one subscriber."""

    def __init__(self, hve: HVE, master_key: HVEMasterKey, schema: MetadataSchema):
        self.hve = hve
        self.schema = schema
        self._master = master_key
        self.tokens_minted = 0

    def gen_token(self, interest: Interest) -> HVEToken:
        token = self.hve.gen_token(self._master, self.schema.encode_interest(interest))
        self.tokens_minted += 1
        return token
