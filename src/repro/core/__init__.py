"""The P3S middleware: ARA, DS, RS, PBE-TS, anonymizer, and clients.

The quickest way in is :class:`~repro.core.system.P3SSystem`, which wires
a complete deployment inside the discrete-event simulator.  Individual
components are importable for custom topologies and for the privacy
analysis.
"""

from .ara import (
    PublisherCredentials,
    RegistrationAuthority,
    ServiceDirectory,
    SubscriberCredentials,
)
from .anonymizer import AnonymizationService
from .config import ComputeTimings, P3SConfig, default_schema
from .ds import DisseminationServer
from .guid import GUID_BYTES, format_guid, random_guid
from .messages import AnonEnvelope, EncryptedMetadata, PayloadSubmission
from .embedded_ts import EmbeddedTokenSource
from .pbe_ts import PBETokenServer, SubscriptionPolicy
from .publisher import PublicationRecord, Publisher
from .rs import RepositoryServer
from .subscriber import Delivery, Subscriber, SubscriberStats
from .system import P3SSystem

__all__ = [
    "P3SSystem",
    "P3SConfig",
    "ComputeTimings",
    "default_schema",
    "RegistrationAuthority",
    "ServiceDirectory",
    "SubscriberCredentials",
    "PublisherCredentials",
    "DisseminationServer",
    "RepositoryServer",
    "PBETokenServer",
    "SubscriptionPolicy",
    "EmbeddedTokenSource",
    "AnonymizationService",
    "Publisher",
    "PublicationRecord",
    "Subscriber",
    "SubscriberStats",
    "Delivery",
    "EncryptedMetadata",
    "PayloadSubmission",
    "AnonEnvelope",
    "random_guid",
    "format_guid",
    "GUID_BYTES",
]
