"""Anonymization service: a relay hiding requester identity from servers.

Paper §4.1: "If available, subscribers contact PBE-TS and RS via the
anonymization service.  P3S's basic privacy properties are independent of
anonymization, but if incorporated, anonymization enhances privacy
protection further by hiding the subscriber identity to PBE-TS and RS."

The relay re-originates each request: the destination sees the anonymizer
as the source and replies to it; the relay forwards the response to the
real requester.  Inner payloads are already end-to-end encrypted under
the destination's PKE key, and responses are super-encrypted under the
requester's session key K_s — so the relay itself learns only
(requester, destination, sizes, timing), which is what the paper's model
assumes of an anonymizing channel.
"""

from __future__ import annotations

from ..net.channel import SecureChannelLayer
from ..net.network import Host
from ..net.rpc import RpcEndpoint
from ..obs import profile as obs
from .messages import RPC_ANON_FORWARD, AnonEnvelope, wire_size_of

__all__ = ["AnonymizationService"]


class AnonymizationService:
    """One-hop anonymizing relay for P3S request-response traffic."""

    def __init__(self, host: Host):
        self.host = host
        self.rpc = RpcEndpoint(SecureChannelLayer(host))
        self.rpc.serve(RPC_ANON_FORWARD, self._handle_forward)
        self.forwarded_count = 0
        # what the relay itself could record: (requester, destination) pairs
        self.observed_links: list[tuple[str, str]] = []

    @property
    def name(self) -> str:
        return self.host.name

    def start(self) -> None:
        self.rpc.start()

    def _handle_forward(self, src: str, message):
        envelope: AnonEnvelope = message.payload
        self.observed_links.append((src, envelope.dst))
        self.forwarded_count += 1
        span = obs.start_span(
            "anon.forward",
            component=self.name,
            parent=obs.extract(message.headers),
            dst=envelope.dst,
        )
        response = yield self.rpc.call(
            envelope.dst,
            envelope.inner_type,
            envelope.inner_payload,
            wire_size_of(envelope.inner_payload),
            headers=obs.inject({}, span),
        )
        obs.end_span(span)
        return (response, wire_size_of(response))
