"""P3S application-layer message payloads.

Every payload knows its own wire size (``wire_size``), computed from real
serialized ciphertext lengths, so the simulator's serialization-time
accounting is byte-accurate.  Payload *contents* are ciphertext wherever
the protocol says so — a dataclass here holding ``bytes`` holds actual
encrypted bytes produced by the crypto layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import SerializationError

# P3S frame kinds carried in JMS headers / RPC message types
KIND_METADATA = "p3s.metadata"
KIND_PAYLOAD = "p3s.payload"
# Delegated-matching extension (opt-in; trades interest privacy at the DS
# for fan-out bandwidth — see repro.core.ds): subscribers hand serialized
# PBE tokens to the DS so it can pre-filter the metadata fan-out.
KIND_TOKEN_REG = "p3s.token-reg"
KIND_TOKEN_UNREG = "p3s.token-unreg"
RPC_TOKEN_REQUEST = "p3s.token-request"
RPC_RETRIEVE = "p3s.retrieve"
RPC_STORE = "p3s.store"
RPC_ANON_FORWARD = "p3s.anon-forward"
# Operational telemetry plane (repro.live.telemetry): admin RPCs every
# live service answers.  Responses are JSON text — operational metadata,
# never protocol ciphertext — so they ride the same AEAD channels as
# application traffic without new codec work.
KIND_HEALTH = "p3s.telemetry-health"
KIND_METRICS = "p3s.telemetry-metrics"
KIND_SPANS = "p3s.telemetry-spans"
KIND_PROFILE = "p3s.telemetry-profile"

__all__ = [
    "KIND_METADATA",
    "KIND_PAYLOAD",
    "KIND_TOKEN_REG",
    "KIND_TOKEN_UNREG",
    "KIND_HEALTH",
    "KIND_METRICS",
    "KIND_SPANS",
    "KIND_PROFILE",
    "RPC_TOKEN_REQUEST",
    "RPC_RETRIEVE",
    "RPC_STORE",
    "RPC_ANON_FORWARD",
    "EncryptedMetadata",
    "PayloadSubmission",
    "AnonEnvelope",
    "wire_size_of",
]


@dataclass(frozen=True)
class EncryptedMetadata:
    """PBE-encrypted GUID, broadcast by the DS to every subscriber.

    ``publication_id`` is a simulation-only correlation handle used by the
    metrics collector; it is not on the real wire (and carries no
    information the DS could not already infer from frame ordering).
    """

    hve_bytes: bytes
    publication_id: int

    @property
    def wire_size(self) -> int:
        return len(self.hve_bytes)


@dataclass(frozen=True)
class PayloadSubmission:
    """The 3-tuple (GUID, CP-ABE-encrypted (GUID, payload), TTL) of §4.3."""

    guid: bytes
    ciphertext: bytes
    ttl_s: float

    @property
    def wire_size(self) -> int:
        return len(self.guid) + len(self.ciphertext) + 8  # 8-byte TTL field


@dataclass(frozen=True)
class AnonEnvelope:
    """A request relayed via the anonymization service.

    The anonymizer learns the ultimate destination and the opaque inner
    request, but forwards with itself as the source — hiding the
    requester's identity from the destination.
    """

    dst: str
    inner_type: str
    inner_payload: Any

    @property
    def wire_size(self) -> int:
        return 32 + wire_size_of(self.inner_payload)  # routing header + inner


def wire_size_of(payload: Any) -> int:
    """Wire size of an RPC payload: bytes, None, or size-aware dataclass."""
    if payload is None:
        return 16
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    size = getattr(payload, "wire_size", None)
    if size is None:
        raise SerializationError(f"payload {type(payload).__name__} has no wire size")
    return size
