"""Globally-unique identifiers for publications.

Paper §4.3: the publisher "generates a unique GUID from a large space
(making it hard to guess)".  The GUID is the *only* link between the
PBE-encrypted metadata and the CP-ABE-encrypted payload stored at the RS,
so guessability would let non-matching parties fetch payloads.
"""

from __future__ import annotations

import secrets

__all__ = ["GUID_BYTES", "random_guid", "format_guid"]

GUID_BYTES = 16  # 128-bit space; paper's model uses ~10-byte GUIDs


def random_guid(num_bytes: int = GUID_BYTES) -> bytes:
    """A fresh unguessable GUID."""
    return secrets.token_bytes(num_bytes)


def format_guid(guid: bytes) -> str:
    """Short printable form for logs and reports."""
    return guid[:8].hex()
