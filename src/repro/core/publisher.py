"""The P3S publisher client library.

Implements the publication protocol of §4.3 (Fig. 4) on top of the JMS
client: for each publication the publisher

1. draws a fresh unguessable GUID,
2. PBE-encrypts the GUID under the item's metadata and publishes it to
   the DS (which fans it out to every subscriber),
3. CP-ABE-encrypts the 2-tuple ``(GUID, payload)`` under an access policy
   and sends ``(GUID, ciphertext, TTL_item)`` to the DS (which forwards
   it to the RS).

The publisher never learns whether the item matched anyone, nor who
received it (§6.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..abe.hybrid import HybridCPABE
from ..abe.policy import PolicyNode
from ..abe.serialize import serialize_hybrid
from ..cluster.router import ds_shard_for
from ..crypto.group import PairingGroup
from ..mq.client import JmsConnection
from ..obs import profile as obs
from ..pbe.hve import HVE
from ..pbe.serialize import serialize_hve_ciphertext
from .ara import PublisherCredentials
from .config import ComputeTimings
from .guid import random_guid
from .messages import KIND_METADATA, KIND_PAYLOAD, EncryptedMetadata, PayloadSubmission

__all__ = [
    "Publisher",
    "PublicationRecord",
    "encrypt_metadata_envelope",
    "encrypt_payload_ciphertext",
]


def encrypt_metadata_envelope(hve, group, hve_public_key, schema, metadata, guid):
    """Steps 1–2 of §4.3: PBE-encrypt the GUID under the item's metadata.

    Returns the serialized HVE ciphertext bytes.  Substrate-free — both
    the simulator publisher and :class:`repro.live.clients.LivePublisher`
    call exactly this, so the two substrates put identical protocol
    content on the wire.
    """
    attribute_vector = schema.encode_metadata(metadata)
    hve_ciphertext = hve.encrypt(hve_public_key, attribute_vector, guid)
    return serialize_hve_ciphertext(group, hve_ciphertext)


def encrypt_payload_ciphertext(cpabe, group, cpabe_public_key, guid, payload, policy):
    """Step 3 of §4.3: CP-ABE-encrypt the 2-tuple (GUID, payload).

    Returns the serialized hybrid ciphertext bytes.
    """
    hybrid = cpabe.encrypt(cpabe_public_key, guid + payload, policy)
    return serialize_hybrid(group, hybrid)


@dataclass
class PublicationRecord:
    """What the publisher knows about one of its own publications."""

    publication_id: int
    guid: bytes
    metadata: dict[str, str]
    policy: str | PolicyNode
    ttl_s: float
    submitted_at: float = 0.0
    metadata_bytes: int = 0
    payload_bytes: int = 0
    headers: dict = field(default_factory=dict)


class Publisher:
    """One P3S publisher endpoint."""

    _publication_ids = itertools.count(1)

    def __init__(
        self,
        credentials: PublisherCredentials,
        connection: JmsConnection,
        group: PairingGroup,
        timings: ComputeTimings,
        guid_bytes: int = 16,
        publish_topic: str = "p3s.publish",
        reliable_publish: bool = False,
    ):
        self.credentials = credentials
        self.connection = connection
        self.group = group
        self.timings = timings
        self.guid_bytes = guid_bytes
        # wait for the broker's PUBACK and retransmit on silence (the
        # docs/CHAOS.md publish-path gap, closed).  Opt-in like the
        # subscriber's call_timeout_s: the ack timeout is a non-daemon
        # event, so it holds loss-free runs open past quiescence.
        self.reliable_publish = reliable_publish
        self.hve = HVE(group)
        self.cpabe = HybridCPABE(group)
        self._producer = connection.create_session().create_producer(publish_topic)
        self.published: list[PublicationRecord] = []

    @property
    def name(self) -> str:
        return self.credentials.name

    @property
    def sim(self):
        return self.connection.sim

    def publish(
        self,
        metadata: dict[str, str],
        payload: bytes,
        policy: str | PolicyNode,
        ttl_s: float = 3600.0,
    ) -> PublicationRecord:
        """Publish one item; returns its record immediately.

        Encryption and transmission run as a simulator process; the
        record's ``submitted_at`` is stamped when the process starts.
        """
        record = PublicationRecord(
            publication_id=next(self._publication_ids),
            guid=random_guid(self.guid_bytes),
            metadata=dict(metadata),
            policy=policy,
            ttl_s=ttl_s,
        )
        self.published.append(record)
        self.sim.process(self._publish_process(record, payload))
        return record

    def reconnect(self) -> None:
        """Re-register with a restarted DS (§6.1: "upon restart a publisher
        needs only to (re)register with the DS")."""
        self.connection.reconnect()

    # -- the §4.3 publication protocol ------------------------------------------

    def _publish_process(self, record: PublicationRecord, payload: bytes):
        record.submitted_at = self.sim.now
        schema = self.credentials.schema
        # both frames of one publication go to the DS shard owning its
        # GUID (single-node deployments resolve to the one "ds")
        broker = ds_shard_for(self.credentials.directory, record.guid)
        root = obs.start_span(
            "publish",
            component=self.name,
            publication_id=record.publication_id,
        )

        # Step 1-2: PBE-encrypt the GUID under the metadata, send to DS.
        step = obs.start_span("pbe.encrypt", component=self.name, parent=root)
        yield self.sim.timeout(self.timings.pbe_encrypt)
        with obs.attach(step):
            hve_bytes = encrypt_metadata_envelope(
                self.hve,
                self.group,
                self.credentials.hve_public_key,
                schema,
                record.metadata,
                record.guid,
            )
        record.metadata_bytes = len(hve_bytes)
        obs.end_span(step, bytes=record.metadata_bytes)
        envelope = EncryptedMetadata(hve_bytes=hve_bytes, publication_id=record.publication_id)
        self._send(
            envelope,
            envelope.wire_size,
            obs.inject({"p3s-kind": KIND_METADATA}, root),
            broker,
        )

        # Step 3: CP-ABE-encrypt (GUID, payload) under the policy, send to DS→RS.
        step = obs.start_span("abe.encrypt", component=self.name, parent=root)
        yield self.sim.timeout(
            self.timings.cpabe_encrypt + self.timings.symmetric(len(payload))
        )
        with obs.attach(step):
            ciphertext = encrypt_payload_ciphertext(
                self.cpabe,
                self.group,
                self.credentials.cpabe_public_key,
                record.guid,
                payload,
                record.policy,
            )
        record.payload_bytes = len(ciphertext)
        obs.end_span(step, bytes=record.payload_bytes)
        submission = PayloadSubmission(
            guid=record.guid, ciphertext=ciphertext, ttl_s=record.ttl_s
        )
        self._send(
            submission,
            submission.wire_size,
            obs.inject({"p3s-kind": KIND_PAYLOAD}, root),
            broker,
        )
        obs.end_span(root)

    def _send(self, body, size: int, headers: dict, broker: str) -> None:
        """One publish frame: a fire-and-forget cast, or (reliable mode)
        a detached acked-retransmit process — detached so publish timing
        on the loss-free path matches the classic cast exactly."""
        if self.reliable_publish:
            self.sim.process(
                self._producer.send(
                    body, size, headers=headers, broker=broker, reliable=True
                )
            )
        else:
            self._producer.send(body, size, headers=headers, broker=broker)
